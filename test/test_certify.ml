(* Witness certification: every violation verdict must ship a firing
   sequence that checks out against the net semantics alone.

   The property, per engine and per net: if [Engine.run ~witness:true]
   answers [deadlock = true], then [Certify.deadlock] must accept the
   attached witness, and the acceptance is re-checked here from first
   principles — [Trace.is_valid], [Trace.final_marking], and
   [Semantics.is_deadlock] — so a bug in the checker itself cannot
   silently certify garbage.  Safety verdicts get the same treatment
   through the monitor construction and the witness projection.

   The suite also pins the [Certify.conclusion] semantics (a truncated
   clean run is inconclusive, never "holds" — the regression behind
   julie's exit code 2) and every rejection path of the checker. *)

module E = Harness.Engine
module C = Harness.Certify

let max_states = 150_000

(* ------------------------------------------------------------------ *)
(* Deadlock witnesses                                                  *)

(* Independent re-check of a [Certified] verdict; any engine claiming a
   deadlock without surviving it is a bug in that engine's witness
   reconstruction. *)
let check_deadlock_outcome ~label net (o : E.outcome) =
  if o.deadlock then begin
    match C.deadlock net o with
    | C.Certified { trace; final } ->
        if not (Petri.Trace.is_valid net trace) then
          Failure_dump.failf ~trace ~label net
            "%s: certified trace does not replay" (E.name o.kind);
        let reached = Petri.Trace.final_marking net trace in
        if not (Petri.Bitset.equal reached final) then
          Failure_dump.failf ~trace ~label net
            "%s: certified final marking is not the replay's" (E.name o.kind);
        if not (Petri.Semantics.is_deadlock net final) then
          Failure_dump.failf ~trace ~label net
            "%s: certified final marking is not dead" (E.name o.kind)
    | v ->
        Failure_dump.failf ?trace:o.witness ~label net
          "%s: deadlock verdict not certified: %a" (E.name o.kind) (C.pp net) v
  end

let check_net ~label net =
  List.iter
    (fun kind ->
      let o = E.run ~max_states ~witness:true ~gpo_scan:true kind net in
      check_deadlock_outcome ~label net o)
    E.all

let zoo_certification () =
  List.iter
    (fun (net : Petri.Net.t) -> check_net ~label:net.name net)
    [
      Models.Figures.fig1;
      Models.Figures.fig2 4;
      Models.Figures.fig3;
      Models.Figures.fig5;
      Models.Figures.fig7;
      Models.Nsdp.make 2;
      Models.Nsdp.make 4;
      Models.Asat.make 2;
      Models.Over.make 3;
      Models.Rw.make 3;
      Models.Scheduler.make 3;
    ]

let random_certification () =
  Failure_dump.iter_seeds (fun seed ->
      let net = Models.Random_net.generate seed in
      check_net ~label:(Printf.sprintf "certify-seed-%d" seed) net)

(* The symbolic witness comes from BFS frontier layers, so it is a
   shortest path to its final marking; the explicit BFS predecessor
   map gives another shortest path to the same marking.  Their lengths
   must agree exactly. *)
let symbolic_witness_is_shortest () =
  let net = Models.Nsdp.make 4 in
  let smv = E.run ~witness:true E.Symbolic net in
  match smv.witness with
  | None -> Alcotest.fail "symbolic found no witness on NSDP(4)"
  | Some tr ->
      let final = Petri.Trace.final_marking net tr in
      let full = Petri.Reachability.explore ~traces:true net in
      let shortest = Petri.Reachability.trace_to full final in
      Alcotest.(check int)
        "symbolic witness length = explicit BFS distance"
        (List.length shortest) (List.length tr)

(* ------------------------------------------------------------------ *)
(* Safety witnesses                                                    *)

(* Violated properties are manufactured from markings the net provably
   reaches (a dead marking found by exhaustive search); holding
   properties from pairs of local states of one component of the
   random product nets, which a single token can never cover. *)
let safety_certification () =
  let n = min 80 (Failure_dump.seed_count ()) in
  Failure_dump.iter_seeds ~n (fun seed ->
      let net = Models.Random_net.generate seed in
    let label = Printf.sprintf "safety-seed-%d" seed in
    let full = Petri.Reachability.explore ~max_states net in
    if not (Petri.Reachability.truncated full) then begin
      (* A property the net violates: cover the places of a reachable
         dead marking. *)
      (match full.deadlocks with
      | [] -> ()
      | dead :: _ ->
          let property =
            { Petri.Safety.name = "bad"; never_all = Petri.Bitset.elements dead }
          in
          let monitored = Petri.Safety.monitor net property in
          let o = E.run ~max_states ~witness:true ~gpo_scan:true E.Gpo monitored in
          if not o.E.deadlock then
            Failure_dump.failf ~label net
              "gpo missed a violated safety property (cover of a dead marking)";
          match C.safety net property o with
          | C.Certified { trace; final } ->
              if not (Petri.Trace.is_valid net trace) then
                Failure_dump.failf ~trace ~label net
                  "projected safety witness does not replay on the original net";
              if
                not
                  (Petri.Bitset.equal final (Petri.Trace.final_marking net trace))
              then
                Failure_dump.failf ~trace ~label net
                  "projected safety witness final marking mismatch";
              if not (Petri.Safety.covers property final) then
                Failure_dump.failf ~trace ~label net
                  "projected safety witness does not cover the bad places"
          | v ->
              Failure_dump.failf ?trace:o.E.witness ~label net
                "violated safety property not certified: %a" (C.pp net) v);
      (* A property the net satisfies: two local states of component 0
         are never simultaneously marked (one token per component). *)
      match
        ( Petri.Net.place_index net "c0.s0",
          Petri.Net.place_index net "c0.s1" )
      with
      | exception _ -> ()
      | p0, p1 ->
          let property = { Petri.Safety.name = "ok"; never_all = [ p0; p1 ] } in
          let monitored = Petri.Safety.monitor net property in
          let o = E.run ~max_states ~witness:true ~gpo_scan:true E.Gpo monitored in
          if E.truncated o then ()
          else begin
            match C.safety net property o with
            | C.Clean -> ()
            | v ->
                Failure_dump.failf ?trace:o.E.witness ~label net
                  "holding property (two states of one component) judged %a"
                  (C.pp net) v
          end
    end)

(* ------------------------------------------------------------------ *)
(* Conclusion semantics and rejection paths (unit tests)               *)

let outcome ?(deadlock = false) ?(stop = Guard.Completed) ?witness kind : E.outcome
    =
  { kind; states = 0.; metric = 0.; deadlock; time_s = 0.; stop; witness }

let conclusion_testable =
  Alcotest.testable
    (fun ppf v ->
      Format.pp_print_string ppf
        (match v with
        | `Violated -> "violated"
        | `Holds -> "holds"
        | `Inconclusive -> "inconclusive"))
    ( = )

let conclusion_semantics () =
  let check = Alcotest.check conclusion_testable in
  check "all exhaustive and clean: holds" `Holds
    (C.conclusion [ outcome E.Full; outcome E.Gpo ]);
  (* The regression behind julie exit code 2: a truncated exploration
     that found nothing must NOT be reported as a clean verdict. *)
  check "truncated clean run: inconclusive" `Inconclusive
    (C.conclusion [ outcome ~stop:Guard.State_budget E.Full ]);
  check "one truncated among clean runs: inconclusive" `Inconclusive
    (C.conclusion [ outcome E.Gpo; outcome ~stop:Guard.State_budget E.Full ]);
  (* A found deadlock is trustworthy even out of a truncated run. *)
  check "truncated run that found a deadlock: violated" `Violated
    (C.conclusion [ outcome ~deadlock:true ~stop:Guard.State_budget E.Full ]);
  check "any violation wins over truncation" `Violated
    (C.conclusion
       [ outcome ~stop:Guard.State_budget E.Full; outcome ~deadlock:true E.Gpo ]);
  check "no outcomes: holds vacuously" `Holds (C.conclusion [])

let rejection_paths () =
  let net = Models.Nsdp.make 2 in
  (* Claimed deadlock, no witness attached. *)
  (match C.deadlock net (outcome ~deadlock:true E.Full) with
  | C.Rejected C.No_witness -> ()
  | v -> Alcotest.failf "expected No_witness, got %a" (C.pp net) v);
  (* A witness that does not replay: hungry.0 cannot fire twice. *)
  (match C.deadlock net (outcome ~deadlock:true ~witness:[ 0; 0 ] E.Full) with
  | C.Rejected (C.Replay_failed _) -> ()
  | v -> Alcotest.failf "expected Replay_failed, got %a" (C.pp net) v);
  (* A witness that replays but ends in a live marking: the empty trace
     ends at the initial marking, where every philosopher can get
     hungry. *)
  (match C.deadlock net (outcome ~deadlock:true ~witness:[] E.Full) with
  | C.Rejected (C.Not_dead m) ->
      Alcotest.(check bool)
        "rejected marking is the initial one" true
        (Petri.Bitset.equal m net.Petri.Net.initial)
  | v -> Alcotest.failf "expected Not_dead, got %a" (C.pp net) v);
  (* Truncated clean outcome vs exhaustive clean outcome. *)
  (match C.deadlock net (outcome ~stop:Guard.State_budget E.Full) with
  | C.Inconclusive -> ()
  | v -> Alcotest.failf "expected Inconclusive, got %a" (C.pp net) v);
  match C.deadlock net (outcome E.Full) with
  | C.Clean -> ()
  | v -> Alcotest.failf "expected Clean, got %a" (C.pp net) v

let not_covering_path () =
  let net = Models.Nsdp.make 2 in
  let property =
    {
      Petri.Safety.name = "prop";
      never_all =
        [ Petri.Net.place_index net "gotL.0"; Petri.Net.place_index net "gotL.1" ];
    }
  in
  (* A monitored-net witness whose projection replays to a marking that
     does not cover the property: a single original firing (hungry.0 is
     transition 0 of the monitored net too — the monitor keeps original
     indices) followed by the violate transition index to end the cut. *)
  let violate = net.Petri.Net.n_transitions + 1 in
  match
    C.safety net property (outcome ~deadlock:true ~witness:[ 0; violate ] E.Full)
  with
  | C.Rejected (C.Not_covering m) ->
      Alcotest.(check bool)
        "non-covering marking indeed misses the cover" false
        (Petri.Safety.covers property m)
  | v -> Alcotest.failf "expected Not_covering, got %a" (C.pp net) v

(* The failure-artifact helper itself: a dumped net must reload, and
   the dumped trace must list transition names line by line. *)
let artifact_round_trip () =
  let net = Models.Nsdp.make 2 in
  let o = E.run ~witness:true E.Full net in
  let trace = Option.get o.E.witness in
  let base = Failure_dump.dump ~trace ~label:"round-trip probe" net in
  let reloaded = Petri.Parser.of_file (base ^ ".net") in
  Alcotest.(check int)
    "reloaded net has the same places" net.Petri.Net.n_places
    reloaded.Petri.Net.n_places;
  Alcotest.(check int)
    "reloaded net has the same transitions" net.Petri.Net.n_transitions
    reloaded.Petri.Net.n_transitions;
  Alcotest.(check bool)
    "witness replays on the reloaded net" true
    (Petri.Trace.is_valid reloaded trace);
  let ic = open_in (base ^ ".trace") in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Alcotest.(check (list string))
    "trace file lists transition names"
    (List.map (Petri.Net.transition_name net) trace)
    lines;
  (* Leave [test-failures/] empty on success so a populated directory
     always means a real failure. *)
  Sys.remove (base ^ ".net");
  Sys.remove (base ^ ".trace")

let suite =
  [
    Alcotest.test_case "zoo deadlock witnesses certify" `Quick zoo_certification;
    Alcotest.test_case "failure artifacts round-trip" `Quick artifact_round_trip;
    Alcotest.test_case "symbolic witness is shortest" `Quick
      symbolic_witness_is_shortest;
    Alcotest.test_case "conclusion semantics (truncation regression)" `Quick
      conclusion_semantics;
    Alcotest.test_case "rejection paths" `Quick rejection_paths;
    Alcotest.test_case "safety not-covering rejection" `Quick not_covering_path;
    Alcotest.test_case "random net witnesses certify" `Slow random_certification;
    Alcotest.test_case "random net safety certification" `Slow
      safety_certification;
  ]
