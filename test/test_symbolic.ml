(* Tests for the symbolic reachability engine: exact agreement with the
   explicit engine on counts and deadlock verdicts. *)

let count_agrees ?(max_states = 500_000) net =
  let full = Petri.Reachability.explore ~max_states net in
  Alcotest.(check bool) "explicit exploration complete" false
    (Petri.Reachability.truncated full);
  let sym = Bddkit.Symbolic.analyse net in
  Alcotest.(check (float 0.0))
    (net.Petri.Net.name ^ " state count")
    (float_of_int full.states)
    sym.states;
  Alcotest.(check bool)
    (net.Petri.Net.name ^ " deadlock verdict")
    (full.deadlock_count > 0)
    (sym.deadlock <> None);
  (* A reported deadlock marking must be a real reachable deadlock. *)
  match sym.deadlock with
  | None -> ()
  | Some m ->
      Alcotest.(check bool) "witness dead" true (Petri.Semantics.is_deadlock net m);
      Alcotest.(check bool) "witness reachable" true
        (Petri.Reachability.Marking_table.mem full.visited m)

let test_models () =
  List.iter count_agrees
    [
      Models.Figures.fig1;
      Models.Figures.fig2 3;
      Models.Figures.fig3;
      Models.Figures.fig7;
      Models.Nsdp.make 2;
      Models.Nsdp.make 4;
      Models.Asat.make 2;
      Models.Asat.make 4;
      Models.Over.make 3;
      Models.Over.make 4;
      Models.Rw.make 4;
      Models.Rw.make 6;
    ]

let test_random_nets () =
  for seed = 0 to 99 do
    count_agrees (Models.Random_net.generate seed)
  done

let test_partitioned_equals_monolithic () =
  List.iter
    (fun net ->
      let p = Bddkit.Symbolic.analyse ~partitioned:true net in
      let m = Bddkit.Symbolic.analyse ~partitioned:false net in
      Alcotest.(check (float 0.0)) "same count" p.states m.states;
      Alcotest.(check bool) "same verdict" (p.deadlock <> None) (m.deadlock <> None))
    [ Models.Nsdp.make 3; Models.Rw.make 4; Models.Over.make 3 ]

let test_iterations_is_bfs_depth () =
  (* fig2(3): every run fires its 3 independent conflicts in 1 BFS level
     each... the diameter of the marking graph is 3. *)
  let r = Bddkit.Symbolic.analyse (Models.Figures.fig2 3) in
  Alcotest.(check int) "bfs depth" 4 r.iterations

let test_encoding_internals () =
  let net = Models.Figures.fig3 in
  let enc = Bddkit.Symbolic.Internal.encode net in
  let m = enc.Bddkit.Symbolic.Internal.manager in
  (* The initial BDD has exactly one satisfying assignment over the
     current variables. *)
  let current_only =
    Bddkit.Bdd.rename_monotone m (fun v -> v / 2) enc.Bddkit.Symbolic.Internal.initial
  in
  Alcotest.(check (float 0.0)) "unique initial marking" 1.0
    (Bddkit.Bdd.sat_count m net.Petri.Net.n_places current_only);
  (* The image of the initial set is {after A, after B}. *)
  let img = Bddkit.Symbolic.Internal.image enc enc.Bddkit.Symbolic.Internal.initial in
  let img_compact = Bddkit.Bdd.rename_monotone m (fun v -> v / 2) img in
  Alcotest.(check (float 0.0)) "two successors" 2.0
    (Bddkit.Bdd.sat_count m net.Petri.Net.n_places img_compact)

let test_rw_compact_encoding () =
  (* The paper's observation: OBDDs encode RW efficiently — the peak
     stays small relative to the state count growth. *)
  let peak n = (Bddkit.Symbolic.analyse (Models.Rw.make n)).peak_live_nodes in
  let p6 = peak 6 and p9 = peak 9 in
  let states n =
    (Petri.Reachability.explore (Models.Rw.make n)).Petri.Reachability.states
  in
  let growth_states = float_of_int (states 9) /. float_of_int (states 6) in
  let growth_peak = float_of_int p9 /. float_of_int p6 in
  Alcotest.(check bool) "peak grows slower than states" true
    (growth_peak < growth_states)

let suite =
  [
    Alcotest.test_case "counts agree on models" `Quick test_models;
    Alcotest.test_case "counts agree on random nets" `Slow test_random_nets;
    Alcotest.test_case "partitioned = monolithic" `Quick
      test_partitioned_equals_monolithic;
    Alcotest.test_case "bfs depth" `Quick test_iterations_is_bfs_depth;
    Alcotest.test_case "encoding internals" `Quick test_encoding_internals;
    Alcotest.test_case "RW encodes compactly" `Quick test_rw_compact_encoding;
  ]
