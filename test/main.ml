(* Aggregated test runner: `dune runtest` executes every suite.
   Slow suites (large randomized sweeps) are included by default; use
   `dune exec test/main.exe -- test -q` or ALCOTEST_QUICK_TESTS to skip
   them. *)

let () =
  Alcotest.run "gpo"
    [
      ("bitset", Test_bitset.suite);
      ("net", Test_net.suite);
      ("parser", Test_parser.suite);
      ("guard", Test_guard.suite);
      ("semantics", Test_semantics.suite);
      ("reachability", Test_reachability.suite);
      ("invariant", Test_invariant.suite);
      ("world-set", Test_world_set.suite);
      ("repr-equiv", Test_repr_equiv.suite);
      ("gpn-dynamics", Test_dynamics.suite);
      ("gpo-explorer", Test_explorer.suite);
      ("gpo-random", Test_gpo_random.suite);
      ("bdd", Test_bdd.suite);
      ("symbolic", Test_symbolic.suite);
      ("safety", Test_safety.suite);
      ("siphon", Test_siphon.suite);
      ("models", Test_models.suite);
      ("harness", Test_harness.suite);
      ("conformance", Test_conformance.suite);
      ("reduce", Test_reduce.suite);
      ("certify", Test_certify.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("deep-obs", Test_deep_obs.suite);
      ("bench-compare", Test_bench_compare.suite);
      ("par", Test_par.suite);
      ("serve", Test_serve.suite);
      ("journal", Test_journal.suite);
      ("persist", Test_persist.suite);
      ("chaos", Test_chaos.suite);
    ]
