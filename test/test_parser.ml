(* Parser hardening: every malformed input in the corpus yields a
   located [Error] — never an escaping exception — and the location
   points at the offending line and column. *)

module P = Petri.Parser

(* dune runtest runs the suite from test/'s build directory, where the
   glob dep materializes the corpus; dune exec runs from the project
   root. *)
let corpus_dir =
  if Sys.file_exists "parse-corpus" then "parse-corpus"
  else "test/parse-corpus"

let corpus prefix =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
         && Filename.check_suffix f ".net")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let bad_corpus_is_rejected () =
  let files = corpus "bad-" in
  Alcotest.(check bool) "corpus present" true (List.length files >= 8);
  List.iter
    (fun path ->
      match P.parse_file path with
      | Ok _ -> Alcotest.failf "%s: malformed input accepted" path
      | Error e ->
          (* Located: these corpus errors are all line-level (the
             builder-at-build case, line 0, is pinned separately). *)
          if e.P.line < 1 || e.P.col < 1 then
            Alcotest.failf "%s: error not located (line %d, col %d)" path
              e.P.line e.P.col;
          if e.P.message = "" then Alcotest.failf "%s: empty message" path)
    files

let good_corpus_parses () =
  let files = corpus "good-" in
  Alcotest.(check bool) "corpus present" true (List.length files >= 2);
  List.iter
    (fun path ->
      match P.parse_file path with
      | Ok net ->
          (* Round trip through the printer. *)
          let again = P.of_string (P.to_string net) in
          Alcotest.(check int)
            (path ^ " places survive round trip")
            net.Petri.Net.n_places again.Petri.Net.n_places;
          Alcotest.(check int)
            (path ^ " transitions survive round trip")
            net.Petri.Net.n_transitions again.Petri.Net.n_transitions
      | Error e -> Alcotest.failf "%s: %a" path P.pp_error e)
    files

let locations_are_exact () =
  (* The duplicate '->' error points at the second arrow's column. *)
  (match P.parse "net x\npl a (1)\ntr t : a -> b -> c" with
  | Error { line = 3; col = 15; _ } -> ()
  | Error e -> Alcotest.failf "duplicate arrow at %a" P.pp_error e
  | Ok _ -> Alcotest.fail "duplicate arrow accepted");
  (* An unexpected character points at itself. *)
  (match P.parse "pl a (1)\npl b$" with
  | Error { line = 2; col = 5; _ } -> ()
  | Error e -> Alcotest.failf "bad character at %a" P.pp_error e
  | Ok _ -> Alcotest.fail "bad character accepted");
  (* A structural error from the builder is located at its line. *)
  match P.parse "pl a (1)\ntr t : a -> a\ntr t : a -> a" with
  | Error { line = 3; _ } -> ()
  | Error e -> Alcotest.failf "duplicate transition at %a" P.pp_error e
  | Ok _ -> Alcotest.fail "duplicate transition accepted"

let of_file_raises_syntax_error () =
  (* Unreadable file: Syntax_error, not Sys_error. *)
  (match P.of_file "parse-corpus/no-such-file.net" with
  | _ -> Alcotest.fail "missing file accepted"
  | exception P.Syntax_error { line = 0; _ } -> ()
  | exception P.Syntax_error e ->
      Alcotest.failf "missing file mis-located: %a" P.pp_error e);
  match P.of_file (Filename.concat corpus_dir "bad-missing-arrow.net") with
  | _ -> Alcotest.fail "malformed file accepted"
  | exception P.Syntax_error { line = 4; _ } -> ()
  | exception P.Syntax_error e ->
      Alcotest.failf "missing arrow mis-located: %a" P.pp_error e

let error_printer_registered () =
  let e = { P.line = 3; col = 7; message = "boom" } in
  Alcotest.(check string) "pp_error" "line 3, column 7: boom"
    (Format.asprintf "%a" P.pp_error e);
  Alcotest.(check bool) "Printexc printer" true
    (Astring_contains.contains "line 3, column 7: boom"
       (Printexc.to_string (P.Syntax_error e)))

let suite =
  [
    Alcotest.test_case "bad corpus rejected with locations" `Quick
      bad_corpus_is_rejected;
    Alcotest.test_case "good corpus parses and round-trips" `Quick
      good_corpus_parses;
    Alcotest.test_case "error locations are exact" `Quick locations_are_exact;
    Alcotest.test_case "of_file raises Syntax_error" `Quick
      of_file_raises_syntax_error;
    Alcotest.test_case "error rendering" `Quick error_printer_registered;
  ]
