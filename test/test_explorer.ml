(* Tests for the generalized partial-order explorer: state counts on
   the paper's models, deadlock witnesses and traces, reduction modes,
   and exhaustive cross-validation against the classical engine. *)

let gpo ?reduction ?thorough net = Gpn.Explorer.analyse ?reduction ?thorough net

let test_fig2_two_states () =
  (* The 2^(N+1)-1 → 2 collapse of Section 3.1. *)
  List.iter
    (fun n ->
      let r = gpo (Models.Figures.fig2 n) in
      Alcotest.(check int) (Printf.sprintf "fig2(%d) = 2 states" n) 2 r.states;
      Alcotest.(check int) "single run" 1 (List.length r.runs);
      Alcotest.(check bool) "terminal markings reported dead" false
        (Gpn.Explorer.deadlock_free r))
    [ 1; 2; 4; 8; 12 ]

let test_nsdp_constant_states () =
  (* The headline claim: NSDP needs a number of GPO states independent
     of the number of philosophers, and the deadlock is found. *)
  let counts =
    List.map
      (fun n ->
        let r = gpo (Models.Nsdp.make n) in
        Alcotest.(check bool) "deadlock found" false (Gpn.Explorer.deadlock_free r);
        Alcotest.(check int) "single run" 1 (List.length r.runs);
        r.states)
      [ 2; 4; 6; 8; 10; 12 ]
  in
  match counts with
  | first :: rest ->
      List.iter (Alcotest.(check int) "constant in n" first) rest
  | [] -> assert false

let test_rw_two_states () =
  List.iter
    (fun n ->
      let r = gpo (Models.Rw.make n) in
      Alcotest.(check int) (Printf.sprintf "rw(%d)" n) 2 r.states;
      Alcotest.(check bool) "deadlock free" true (Gpn.Explorer.deadlock_free r))
    [ 3; 6; 9; 12; 15 ]

let test_asat_slow_growth () =
  let states n = (gpo (Models.Asat.make n)).Gpn.Explorer.states in
  let s2 = states 2 and s4 = states 4 and s8 = states 8 in
  Alcotest.(check bool) "monotone growth" true (s2 <= s4 && s4 <= s8);
  (* The paper reports 8/14/23: growth far below the 88/7822/1.58e6 of
     the full graph.  Allow slack but require sub-linear-in-full scaling. *)
  Alcotest.(check bool) "asat(8) stays tiny" true (s8 < 64)

let test_over_deadlock_free () =
  List.iter
    (fun n ->
      let r = gpo (Models.Over.make n) in
      Alcotest.(check bool)
        (Printf.sprintf "over(%d) deadlock free" n)
        true
        (Gpn.Explorer.deadlock_free r))
    [ 2; 3; 4; 5 ]

let test_witness_and_trace () =
  let net = Models.Nsdp.make 4 in
  let r = gpo net in
  match r.deadlocks with
  | [] -> Alcotest.fail "NSDP deadlocks"
  | witness :: _ ->
      (* Witness markings are real deadlocked markings. *)
      List.iter
        (fun m ->
          Alcotest.(check bool) "witness marking dead" true
            (Petri.Semantics.is_deadlock net m))
        witness.markings;
      (* The extracted trace replays and ends deadlocked. *)
      let trace = Gpn.Explorer.deadlock_trace r witness in
      Alcotest.(check bool) "trace valid" true (Petri.Trace.is_valid net trace);
      Alcotest.(check bool) "trace ends dead" true
        (Petri.Semantics.is_deadlock net (Petri.Trace.final_marking net trace))

let test_stepwise_mode () =
  (* Stepwise fires one cluster (or single) per step — more states,
     same verdict: the "one interleaving" variant of Section 3.3. *)
  List.iter
    (fun net ->
      let batched = gpo net in
      let stepwise = gpo ~reduction:Gpn.Explorer.Stepwise net in
      Alcotest.(check bool)
        (net.Petri.Net.name ^ " same verdict")
        (Gpn.Explorer.deadlock_free batched)
        (Gpn.Explorer.deadlock_free stepwise);
      Alcotest.(check bool)
        (net.Petri.Net.name ^ " stepwise explores at least as many states")
        true
        (stepwise.states >= batched.states || List.length stepwise.runs > 1))
    [ Models.Nsdp.make 3; Models.Figures.fig2 4; Models.Rw.make 4 ]

let test_fig2_stepwise_linear () =
  (* Firing one conflict set per step gives a linear number of states
     (the "only one interleaving" variant of Section 3.3), still
     exponentially below the 2^(N+1)-1 of classical partial order. *)
  List.iter
    (fun n ->
      let r = gpo ~reduction:Gpn.Explorer.Stepwise (Models.Figures.fig2 n) in
      Alcotest.(check bool)
        (Printf.sprintf "fig2(%d) stepwise linear (got %d)" n r.states)
        true
        (r.states >= n && r.states <= (4 * n) + 4))
    [ 1; 2; 4; 8 ]

let test_truncation () =
  let r = Gpn.Explorer.analyse ~max_states:1 (Models.Nsdp.make 4) in
  Alcotest.(check bool) "truncated" true (Gpn.Explorer.truncated r);
  Alcotest.(check bool) "stop reason is the state budget" true
    (r.stop = Guard.State_budget)

let test_max_deadlocks () =
  let r = Gpn.Explorer.analyse ~max_deadlocks:1 (Models.Figures.fig2 4) in
  Alcotest.(check int) "witness cap" 1 (List.length r.deadlocks)

(* Exhaustive cross-validation on the benchmark models (small sizes). *)

let test_validate_models () =
  List.iter
    (fun net ->
      match Gpn.Validate.validate net with
      | Error reason ->
          Alcotest.failf "%s: validation stopped (%s)" net.Petri.Net.name
            (Guard.string_of_stop reason)
      | Ok report ->
          Alcotest.(check bool)
            (Format.asprintf "%s validates (%s)" net.Petri.Net.name
               (Option.value ~default:"" report.detail))
            true (Gpn.Validate.ok report))
    [
      Models.Nsdp.make 2;
      Models.Nsdp.make 3;
      Models.Nsdp.make 4;
      Models.Asat.make 2;
      Models.Asat.make 4;
      Models.Over.make 2;
      Models.Over.make 3;
      Models.Over.make 4;
      Models.Rw.make 3;
      Models.Rw.make 5;
      Models.Figures.fig1;
      Models.Figures.fig2 5;
      Models.Figures.fig3;
      Models.Figures.fig5;
      Models.Figures.fig7;
    ]

let test_deviation_restart_example () =
  (* A net whose only extra deadlock needs a conflict cluster to be
     re-entered with a different resolution — the case that forces a
     deviation restart (distilled from a randomized counterexample). *)
  let net =
    Petri.Parser.of_string
      {|net reentry
        pl p (1)
        pl q (1)
        pl done1
        pl trap
        tr take  : p q -> p done1     # cluster {take, stop}: q chooses
        tr stop  : q -> trap
        tr again : done1 -> q|}
  in
  match Gpn.Validate.validate net with
  | Error reason ->
      Alcotest.failf "reentry validation stopped (%s)"
        (Guard.string_of_stop reason)
  | Ok report ->
      Alcotest.(check bool)
        (Format.asprintf "reentry validates (%s)"
           (Option.value ~default:"" report.detail))
        true (Gpn.Validate.ok report)


let test_render () =
  let r = Gpn.Explorer.analyse (Models.Nsdp.make 3) in
  let dot = Gpn.Render.result r in
  Alcotest.(check bool) "digraph" true (String.sub dot 0 8 = "digraph ");
  Alcotest.(check bool) "mentions takeL" true
    (Astring_contains.contains "takeL" dot);
  Alcotest.(check bool) "marks the deadlock" true
    (Astring_contains.contains "lightcoral" dot);
  (* A result with restarts renders the dashed provenance edges. *)
  let r2 = Gpn.Explorer.analyse (Models.Over.make 3) in
  if List.length r2.runs > 1 then
    Alcotest.(check bool) "restart edges" true
      (Astring_contains.contains "restart:" (Gpn.Render.result r2))

let suite =
  [
    Alcotest.test_case "fig2 collapses to 2 states" `Quick test_fig2_two_states;
    Alcotest.test_case "NSDP constant states" `Quick test_nsdp_constant_states;
    Alcotest.test_case "RW two states" `Quick test_rw_two_states;
    Alcotest.test_case "ASAT slow growth" `Quick test_asat_slow_growth;
    Alcotest.test_case "OVER deadlock free" `Quick test_over_deadlock_free;
    Alcotest.test_case "witness and trace" `Quick test_witness_and_trace;
    Alcotest.test_case "stepwise mode" `Quick test_stepwise_mode;
    Alcotest.test_case "fig2 stepwise linear" `Quick test_fig2_stepwise_linear;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "witness cap" `Quick test_max_deadlocks;
    Alcotest.test_case "validate on models" `Quick test_validate_models;
    Alcotest.test_case "deviation restart example" `Quick test_deviation_restart_example;
    Alcotest.test_case "dot rendering" `Quick test_render;
  ]
