(* Property-based cross-validation of the GPO engine against exhaustive
   search on randomized safe nets — the strongest correctness evidence
   in the suite.  The generator builds synchronized products of
   one-token automata (always 1-safe); the oracle checks the deadlock
   verdict, witness soundness and completeness, denotation
   reachability, and counterexample replays (see Gpn.Validate). *)

let validate_range ?spec ?reduction ?thorough ~label lo hi =
  Alcotest.test_case label `Slow (fun () ->
      for seed = lo to hi do
        let net = Models.Random_net.generate ?spec seed in
        match Gpn.Validate.validate ?reduction ?thorough ~max_states:150_000 net with
        | Ok report ->
            if not (Gpn.Validate.ok report) then
              Alcotest.failf "seed %d: %s" seed
                (Option.value ~default:"unknown discrepancy" report.detail)
        | Error _ -> () (* state budget exceeded: skip *)
      done)

let default = None

let bigger =
  Some
    {
      Models.Random_net.components = 4;
      states_per_component = 3;
      transitions = 12;
      max_sync = 3;
    }

let wide =
  Some
    {
      Models.Random_net.components = 5;
      states_per_component = 2;
      transitions = 14;
      max_sync = 2;
    }

let deep =
  Some
    {
      Models.Random_net.components = 2;
      states_per_component = 5;
      transitions = 10;
      max_sync = 2;
    }

let suite =
  [
    validate_range ?spec:default ~label:"default spec, seeds 0-599" 0 599;
    validate_range ?spec:bigger ~label:"4-component spec, seeds 0-199" 0 199;
    validate_range ?spec:wide ~label:"5-component spec, seeds 0-149" 0 149;
    validate_range ?spec:deep ~label:"deep automata spec, seeds 0-149" 0 149;
    validate_range ?spec:default ~reduction:Gpn.Explorer.Stepwise
      ~label:"stepwise reduction, seeds 0-199" 0 199;
    (* The aggressive (non-thorough) batching must still agree on the
       deadlock VERDICT; witness-marking completeness is only guaranteed
       by the default thorough mode (see Explorer's documentation). *)
    Alcotest.test_case "aggressive batching verdict agreement" `Slow (fun () ->
        for seed = 0 to 399 do
          let net = Models.Random_net.generate seed in
          let full = Petri.Reachability.explore ~max_states:150_000 net in
          if not (Petri.Reachability.truncated full) then begin
            let r = Gpn.Explorer.analyse ~thorough:false net in
            if Bool.equal (Gpn.Explorer.deadlock_free r) (full.deadlock_count > 0)
            then Alcotest.failf "seed %d: aggressive verdict mismatch" seed
          end
        done);
  ]
