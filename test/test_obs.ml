(* Tests for the telemetry layer: counter/gauge/dist/span registry
   semantics, sink behaviour (null sink is a no-op, memory and JSONL
   sinks capture events), JSON round-trips, and consistency between the
   explorer's telemetry and the result record it returns. *)

module Obs = Gpo_obs

let find_counter snap name =
  match List.assoc_opt name snap.Obs.counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing from snapshot" name

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)

let test_counter_basics () =
  Obs.reset ();
  let c = Obs.Counter.make "test.counter" in
  Alcotest.(check int) "zero after reset" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "accumulates" 42 (Obs.Counter.value c);
  let c' = Obs.Counter.make "test.counter" in
  Alcotest.(check int) "make interns by name" 42 (Obs.Counter.value c');
  Alcotest.(check string) "name" "test.counter" (Obs.Counter.name c);
  let snap = Obs.snapshot () in
  Alcotest.(check int) "snapshot sees it" 42 (find_counter snap "test.counter");
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c)

let test_counter_touch () =
  Obs.reset ();
  let c = Obs.Counter.make "test.untouched" in
  ignore c;
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "zero counter absent until touched" true
    (List.assoc_opt "test.untouched" snap.Obs.counters = None);
  Obs.Counter.touch c;
  let snap = Obs.snapshot () in
  Alcotest.(check (option int)) "touched zero counter present" (Some 0)
    (List.assoc_opt "test.untouched" snap.Obs.counters)

let test_gauge_and_dist () =
  Obs.reset ();
  let g = Obs.Gauge.make "test.gauge" in
  Obs.Gauge.set g 1.5;
  Obs.Gauge.set_int g 7;
  Alcotest.(check (float 0.0)) "last value wins" 7.0 (Obs.Gauge.value g);
  let d = Obs.Dist.make "test.dist" in
  List.iter (Obs.Dist.observe_int d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "dist count" 4 (Obs.Dist.count d);
  Alcotest.(check (float 1e-9)) "dist mean" 2.5 (Obs.Dist.mean d);
  let snap = Obs.snapshot () in
  match List.assoc_opt "test.dist" snap.Obs.dists with
  | None -> Alcotest.fail "dist missing from snapshot"
  | Some s ->
      Alcotest.(check int) "stats count" 4 s.Obs.count;
      Alcotest.(check (float 0.0)) "stats min" 1.0 s.Obs.min;
      Alcotest.(check (float 0.0)) "stats max" 4.0 s.Obs.max

let test_span_nesting () =
  Obs.reset ();
  let sink, _read = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      Obs.Span.time "outer" (fun () ->
          Obs.Span.time "inner" (fun () -> ())));
  let snap = Obs.snapshot () in
  let names = List.map fst snap.Obs.spans in
  Alcotest.(check (list string)) "nested span paths" [ "outer"; "outer/inner" ]
    names

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let test_null_sink_noop () =
  (* The null sink accepts events without observable effect, and with no
     sink installed the event half is off entirely. *)
  Obs.uninstall ();
  Alcotest.(check bool) "disabled without sink" false (Obs.enabled ());
  Obs.emit Obs.Meta_v "dropped" [];
  Obs.install Obs.null_sink;
  Alcotest.(check bool) "enabled with null sink" true (Obs.enabled ());
  Obs.emit Obs.Meta_v "dropped" [ ("k", Obs.I 1) ];
  Obs.uninstall ();
  Alcotest.(check bool) "disabled after uninstall" false (Obs.enabled ())

let test_memory_sink_captures () =
  Obs.reset ();
  let sink, read = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      Obs.meta "run" [ ("net", Obs.S "nsdp-4") ];
      let c = Obs.Counter.make "test.mem" in
      Obs.Counter.incr c);
  let events = read () in
  Alcotest.(check bool) "captured events" true (List.length events >= 2);
  (match events with
  | { Obs.kind = Obs.Meta_v; name = "run"; fields; _ } :: _ ->
      Alcotest.(check bool) "meta field" true
        (List.assoc_opt "net" fields = Some (Obs.S "nsdp-4"))
  | _ -> Alcotest.fail "first event should be the run meta record");
  (* with_sink streams the final snapshot: the counter must appear. *)
  Alcotest.(check bool) "snapshot counter event present" true
    (List.exists
       (fun e -> e.Obs.kind = Obs.Counter_v && e.Obs.name = "test.mem")
       events)

let test_jsonl_round_trip () =
  Obs.reset ();
  let lines = ref [] in
  let sink = Obs.jsonl_sink (fun l -> lines := l :: !lines) in
  Obs.with_sink sink (fun () ->
      Obs.meta "run" [ ("net", Obs.S "x\"y\n"); ("n", Obs.I 4) ];
      let d = Obs.Dist.make "test.rt" in
      Obs.Dist.observe d 1.25);
  let lines = List.rev !lines in
  Alcotest.(check bool) "emitted lines" true (List.length lines >= 2);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Error msg -> Alcotest.failf "unparsable JSONL line %S: %s" line msg
      | Ok json -> (
          match Obs.event_of_json json with
          | Error msg -> Alcotest.failf "not an event %S: %s" line msg
          | Ok ev ->
              (* Full round-trip: event -> json -> string -> json -> event. *)
              let again =
                Obs.Json.to_string (Obs.json_of_event ev) |> Obs.Json.of_string
              in
              (match again with
              | Ok j2 ->
                  Alcotest.(check bool) "stable rendering" true
                    (Obs.event_of_json j2 = Ok ev)
              | Error m -> Alcotest.failf "re-parse failed: %s" m)))
    lines

let test_json_parser () =
  let cases =
    [
      ("null", Obs.Json.Null);
      ("true", Obs.Json.Bool true);
      ("-42", Obs.Json.Int (-42));
      ("1.5e2", Obs.Json.Float 150.0);
      ({|"a\"b\\c\nA"|}, Obs.Json.String "a\"b\\c\nA");
      ("[1,[2],{}]",
       Obs.Json.(List [ Int 1; List [ Int 2 ]; Obj [] ]));
      ({|{"k":"v","n":[true,false]}|},
       Obs.Json.(Obj [ ("k", String "v"); ("n", List [ Bool true; Bool false ]) ]));
    ]
  in
  List.iter
    (fun (s, expected) ->
      match Obs.Json.of_string s with
      | Ok j when j = expected -> ()
      | Ok j ->
          Alcotest.failf "parse %S: got %s" s (Obs.Json.to_string j)
      | Error m -> Alcotest.failf "parse %S failed: %s" s m)
    cases;
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "parse %S should fail" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "tru"; "1 2"; {|{"a":}|} ];
  (* Printer round-trips every value, and non-finite floats become null. *)
  Alcotest.(check string) "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "escaping" {|"a\"b\nc"|}
    (Obs.Json.to_string (Obs.Json.String "a\"b\nc"))

(* ------------------------------------------------------------------ *)
(* Engine integration: telemetry must agree with the returned result.  *)

let test_explorer_telemetry_consistent () =
  Obs.uninstall ();
  Obs.reset ();
  let r = Gpn.Explorer.analyse (Models.Nsdp.make 4) in
  let states = Obs.Counter.value (Obs.Counter.make "gpo.states") in
  let restarts = Obs.Counter.value (Obs.Counter.make "gpo.restarts") in
  Alcotest.(check int) "gpo.states = result.states" r.Gpn.Explorer.states states;
  Alcotest.(check int) "gpo.restarts = runs - 1"
    (List.length r.Gpn.Explorer.runs - 1)
    restarts;
  (* A scanning run that restarts must also agree. *)
  Obs.reset ();
  let r =
    Gpn.Explorer.analyse ~reduction:Gpn.Explorer.Stepwise (Models.Nsdp.make 4)
  in
  Alcotest.(check int) "stepwise: gpo.states = result.states"
    r.Gpn.Explorer.states
    (Obs.Counter.value (Obs.Counter.make "gpo.states"));
  Alcotest.(check int) "stepwise: gpo.restarts = runs - 1"
    (List.length r.Gpn.Explorer.runs - 1)
    (Obs.Counter.value (Obs.Counter.make "gpo.restarts"))

let test_reachability_telemetry_consistent () =
  Obs.uninstall ();
  Obs.reset ();
  let r = Petri.Reachability.explore (Models.Nsdp.make 4) in
  Alcotest.(check int) "reach.states = result.states"
    r.Petri.Reachability.states
    (Obs.Counter.value (Obs.Counter.make "reach.states"))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter touch" `Quick test_counter_touch;
    Alcotest.test_case "gauge and dist" `Quick test_gauge_and_dist;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "null sink no-op" `Quick test_null_sink_noop;
    Alcotest.test_case "memory sink captures" `Quick test_memory_sink_captures;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "explorer telemetry consistent" `Quick
      test_explorer_telemetry_consistent;
    Alcotest.test_case "reachability telemetry consistent" `Quick
      test_reachability_telemetry_consistent;
  ]
