(* Tests for the harness layer (engines, experiment grid, budgets) and
   a few cross-cutting semantic properties that live naturally at this
   level. *)

let test_engine_names () =
  Alcotest.(check (list string))
    "column order" [ "full"; "spin+po"; "smv"; "gpo" ]
    (List.map Harness.Engine.name Harness.Engine.all)

let test_engine_outcomes_consistent () =
  let net = Models.Nsdp.make 4 in
  List.iter
    (fun kind ->
      let o = Harness.Engine.run kind net in
      Alcotest.(check bool) "found the deadlock" true o.Harness.Engine.deadlock;
      Alcotest.(check bool) "positive metric" true (o.Harness.Engine.metric > 0.);
      Alcotest.(check bool) "not truncated" false (Harness.Engine.truncated o);
      Alcotest.(check bool) "time is sane" true
        (o.Harness.Engine.time_s >= 0. && o.Harness.Engine.time_s < 300.))
    Harness.Engine.all

let test_engine_states_agree () =
  (* The explicit engine's state count equals the symbolic engine's
     reachable-marking count on every family. *)
  List.iter
    (fun net ->
      let full = Harness.Engine.run Harness.Engine.Full net in
      let smv = Harness.Engine.run Harness.Engine.Symbolic net in
      Alcotest.(check (float 0.0))
        (net.Petri.Net.name ^ " counts agree")
        full.Harness.Engine.states smv.Harness.Engine.states)
    [ Models.Nsdp.make 3; Models.Asat.make 2; Models.Over.make 3; Models.Rw.make 4 ]

let test_family_lookup () =
  Alcotest.(check string) "case-insensitive" "NSDP"
    (Harness.Experiment.family "nsdp").Harness.Experiment.id;
  Alcotest.(check bool) "expected deadlock flag" true
    (Harness.Experiment.family "NSDP").Harness.Experiment.expect_deadlock;
  Alcotest.(check bool) "rw expects none" false
    (Harness.Experiment.family "rw").Harness.Experiment.expect_deadlock;
  Alcotest.check_raises "unknown family" Not_found (fun () ->
      ignore (Harness.Experiment.family "nope"))

let test_paper_rows_complete () =
  (* Every family carries the paper's rows for the paper's sizes. *)
  List.iter
    (fun (id, expected_sizes) ->
      let fam = Harness.Experiment.family id in
      Alcotest.(check (list int))
        (id ^ " sizes")
        expected_sizes
        (List.map fst fam.Harness.Experiment.rows))
    [
      ("nsdp", [ 2; 4; 6; 8; 10 ]);
      ("asat", [ 2; 4; 8 ]);
      ("over", [ 2; 3; 4; 5 ]);
      ("rw", [ 6; 9; 12; 15 ]);
    ]

let test_measure_verdicts () =
  List.iter
    (fun fam ->
      let size = List.hd (List.map fst fam.Harness.Experiment.rows) in
      let m = Harness.Experiment.measure fam size in
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Printf.sprintf "%s(%d) %s verdict matches the family" fam.id size
               (Harness.Engine.name o.Harness.Engine.kind))
            fam.Harness.Experiment.expect_deadlock o.Harness.Engine.deadlock)
        m.Harness.Experiment.outcomes)
    Harness.Experiment.families

(* Cross-cutting semantic properties. *)

let test_diamond_property () =
  (* Independent (non-conflicting) enabled transitions commute — the
     basis of every partial-order argument in the library. *)
  for seed = 0 to 49 do
    let net = Models.Random_net.generate seed in
    let conflict = Petri.Conflict.analyse net in
    let m0 = net.Petri.Net.initial in
    let enabled = Petri.Bitset.elements (Petri.Semantics.enabled_set net m0) in
    List.iter
      (fun t ->
        List.iter
          (fun u ->
            if t < u && not (Petri.Conflict.in_conflict conflict t u) then begin
              let tu = Petri.Semantics.fire_sequence net m0 [ t; u ] in
              let ut = Petri.Semantics.fire_sequence net m0 [ u; t ] in
              match (tu, ut) with
              | Some a, Some b ->
                  Alcotest.(check bool)
                    (Printf.sprintf "seed %d: %d and %d commute" seed t u)
                    true (Petri.Bitset.equal a b)
              | _ -> Alcotest.failf "seed %d: independent pair got disabled" seed
            end)
          enabled)
      enabled
  done

let test_stubborn_subset_of_enabled () =
  for seed = 0 to 49 do
    let net = Models.Random_net.generate seed in
    let conflict = Petri.Conflict.analyse net in
    let r = Petri.Reachability.explore ~max_states:5_000 net in
    Petri.Reachability.Marking_table.iter
      (fun m () ->
        let enabled = Petri.Semantics.enabled_set net m in
        List.iter
          (fun heuristic ->
            let stubborn = Petri.Stubborn.compute conflict heuristic m in
            List.iter
              (fun t ->
                Alcotest.(check bool) "stubborn member enabled" true
                  (Petri.Bitset.mem t enabled))
              stubborn;
            Alcotest.(check bool) "nonempty iff live" true
              (Petri.Bitset.is_empty enabled = (stubborn = [])))
          [ Petri.Stubborn.First_seed; Petri.Stubborn.Smallest ])
      r.visited
  done

let test_gpo_metric_is_paper_configuration () =
  (* Engine.Gpo must report the paper-faithful (scan-free) counts. *)
  let net = Models.Over.make 4 in
  let o = Harness.Engine.run Harness.Engine.Gpo net in
  let direct = Gpn.Explorer.analyse ~scan:false net in
  Alcotest.(check (float 0.0)) "states match scan:false"
    (float_of_int direct.Gpn.Explorer.states) o.Harness.Engine.metric

let suite =
  [
    Alcotest.test_case "engine names" `Quick test_engine_names;
    Alcotest.test_case "engine outcomes" `Quick test_engine_outcomes_consistent;
    Alcotest.test_case "explicit = symbolic counts" `Quick test_engine_states_agree;
    Alcotest.test_case "family lookup" `Quick test_family_lookup;
    Alcotest.test_case "paper rows complete" `Quick test_paper_rows_complete;
    Alcotest.test_case "measure verdicts" `Quick test_measure_verdicts;
    Alcotest.test_case "diamond property" `Quick test_diamond_property;
    Alcotest.test_case "stubborn ⊆ enabled" `Quick test_stubborn_subset_of_enabled;
    Alcotest.test_case "gpo metric configuration" `Quick
      test_gpo_metric_is_paper_configuration;
  ]
