(* Sanity tests for the benchmark model generators: sizes, safety,
   deadlock behaviour and the structural features each family is
   supposed to exhibit. *)

module B = Petri.Bitset

let check_safe net =
  let r = Petri.Reachability.explore ~max_states:500_000 net in
  Alcotest.(check bool) (net.Petri.Net.name ^ " explored fully") false
    (Petri.Reachability.truncated r);
  Alcotest.(check (list string)) (net.Petri.Net.name ^ " 1-safe") []
    (List.map (fun (t, _) -> Petri.Net.transition_name net t) r.unsafe);
  r

let test_nsdp () =
  List.iter
    (fun n ->
      let net = Models.Nsdp.make n in
      Alcotest.(check int) "places" (6 * n) net.Petri.Net.n_places;
      Alcotest.(check int) "transitions" (5 * n) net.Petri.Net.n_transitions;
      let r = check_safe net in
      Alcotest.(check bool) "deadlocks" true (r.deadlock_count > 0);
      (* The canonical circular wait: everybody reaching for the right
         fork.  It must be among the deadlocked markings. *)
      let circular =
        B.of_list net.Petri.Net.n_places
          (List.init n (fun i ->
               Petri.Net.place_index net (Printf.sprintf "askR.%d" i)))
      in
      Alcotest.(check bool) "circular wait found" true
        (List.exists (B.equal circular) r.deadlocks))
    [ 2; 3; 4 ]

let test_nsdp_growth () =
  (* The full state space grows by roughly the paper's factor (×18 per
     two philosophers; our model gives ×19.8). *)
  let states n =
    (Petri.Reachability.explore (Models.Nsdp.make n)).Petri.Reachability.states
  in
  let g1 = float_of_int (states 4) /. float_of_int (states 2) in
  let g2 = float_of_int (states 6) /. float_of_int (states 4) in
  Alcotest.(check bool) "exponential factor near paper's" true
    (g1 > 15. && g1 < 25. && g2 > 15. && g2 < 25.)

let test_nsdp_invalid () =
  Alcotest.check_raises "n must be >= 2"
    (Invalid_argument "Nsdp.make: need at least 2 philosophers") (fun () ->
      ignore (Models.Nsdp.make 1))

let test_asat () =
  List.iter
    (fun n ->
      let net = Models.Asat.make n in
      let r = check_safe net in
      Alcotest.(check int) "no deadlock" 0 r.deadlock_count;
      (* Mutual exclusion: no reachable marking has two users using. *)
      let use =
        List.init n (fun i -> Petri.Net.place_index net (Printf.sprintf "u%d.use" i))
      in
      Petri.Reachability.Marking_table.iter
        (fun m () ->
          let users = List.length (List.filter (fun p -> B.mem p m) use) in
          Alcotest.(check bool) "at most one user" true (users <= 1))
        r.visited)
    [ 2; 4 ]

let test_asat_invalid () =
  List.iter
    (fun n ->
      match Models.Asat.make n with
      | _ -> Alcotest.failf "asat(%d) should be rejected" n
      | exception Invalid_argument _ -> ())
    [ 0; 1; 3; 6 ]

let test_over () =
  List.iter
    (fun n ->
      let net = Models.Over.make n in
      let r = check_safe net in
      Alcotest.(check int) "no deadlock" 0 r.deadlock_count;
      (* Adjacent vehicles never pass each other simultaneously. *)
      let pass =
        List.init (n - 1) (fun i ->
            Petri.Net.place_index net (Printf.sprintf "pass.%d" i))
      in
      Petri.Reachability.Marking_table.iter
        (fun m () ->
          List.iteri
            (fun i p ->
              if i + 1 < List.length pass then
                Alcotest.(check bool) "no adjacent passes" true
                  (not (B.mem p m && B.mem (List.nth pass (i + 1)) m)))
            pass)
        r.visited)
    [ 2; 3; 4 ]

let test_rw () =
  List.iter
    (fun n ->
      let net = Models.Rw.make n in
      let r = check_safe net in
      Alcotest.(check int) "no deadlock" 0 r.deadlock_count;
      (* Writers are exclusive: a writing process excludes readers and
         other writers. *)
      let writing =
        List.init n (fun i ->
            Petri.Net.place_index net (Printf.sprintf "writing.%d" i))
      in
      let reading =
        List.init n (fun i ->
            Petri.Net.place_index net (Printf.sprintf "reading.%d" i))
      in
      Petri.Reachability.Marking_table.iter
        (fun m () ->
          let writers = List.length (List.filter (fun p -> B.mem p m) writing) in
          let readers = List.length (List.filter (fun p -> B.mem p m) reading) in
          Alcotest.(check bool) "rw exclusion" true
            (writers = 0 || (writers = 1 && readers = 0)))
        r.visited)
    [ 3; 4; 5 ]

let test_rw_state_count_formula () =
  (* Our RW model has 2^n + n + n·(2^(n-1) - 1)... empirically: check
     against the explicit count for small n and monotone exponential
     growth, and that PO reduction degenerates less than 100x. *)
  let states n =
    (Petri.Reachability.explore (Models.Rw.make n)).Petri.Reachability.states
  in
  Alcotest.(check bool) "exponential growth" true
    (states 6 > 60 && states 9 > 500 && states 9 > 7 * states 6)

let test_rw_single_cluster () =
  (* The feature that defeats classical PO on RW: all start transitions
     form one conflict cluster. *)
  let net = Models.Rw.make 5 in
  let conflict = Petri.Conflict.analyse net in
  let big =
    Array.to_list (Petri.Conflict.clusters conflict)
    |> List.filter (fun c -> B.cardinal c >= 2)
  in
  Alcotest.(check int) "one big cluster" 1 (List.length big);
  Alcotest.(check int) "contains all 2n start transitions" 10
    (B.cardinal (List.hd big))

let test_random_nets_are_safe () =
  for seed = 0 to 99 do
    let net = Models.Random_net.generate seed in
    let r = Petri.Reachability.explore ~max_states:100_000 net in
    Alcotest.(check int)
      (Printf.sprintf "seed %d safe" seed)
      0
      (List.length r.unsafe)
  done

let test_random_net_determinism () =
  let a = Models.Random_net.generate 42 in
  let b = Models.Random_net.generate 42 in
  Alcotest.(check string) "same serialization" (Petri.Parser.to_string a)
    (Petri.Parser.to_string b)


let test_scheduler () =
  List.iter
    (fun n ->
      let net = Models.Scheduler.make n in
      let r = check_safe net in
      Alcotest.(check int) "deadlock free" 0 r.deadlock_count;
      (* Conflict-free: every cluster is a singleton. *)
      let conflict = Petri.Conflict.analyse net in
      Array.iter
        (fun c -> Alcotest.(check int) "singleton cluster" 1 (B.cardinal c))
        (Petri.Conflict.clusters conflict);
      (* Exactly one ring token at any time (P-invariant). *)
      let y =
        Array.init net.Petri.Net.n_places (fun p ->
            if String.length (Petri.Net.place_name net p) >= 5
               && String.sub (Petri.Net.place_name net p) 0 5 = "token"
            then 1
            else 0)
      in
      Alcotest.(check bool) "ring invariant" true (Petri.Invariant.is_p_invariant net y);
      (* Conflict-free nets are trivial for both reductions: linear. *)
      let po = Petri.Stubborn.explore net in
      let gpo = Gpn.Explorer.analyse net in
      Alcotest.(check bool) "po linear" true (po.states <= 4 * n + 4);
      Alcotest.(check bool) "gpo linear" true (gpo.Gpn.Explorer.states <= 4 * n + 4);
      Alcotest.(check bool) "full exponential" true
        (n < 6 || r.states > 1 lsl (n - 1)))
    [ 2; 4; 6; 8 ]

let suite =
  [
    Alcotest.test_case "nsdp" `Quick test_nsdp;
    Alcotest.test_case "nsdp growth factor" `Quick test_nsdp_growth;
    Alcotest.test_case "nsdp invalid size" `Quick test_nsdp_invalid;
    Alcotest.test_case "asat" `Quick test_asat;
    Alcotest.test_case "asat invalid sizes" `Quick test_asat_invalid;
    Alcotest.test_case "over" `Quick test_over;
    Alcotest.test_case "rw" `Quick test_rw;
    Alcotest.test_case "rw state growth" `Quick test_rw_state_count_formula;
    Alcotest.test_case "rw single cluster" `Quick test_rw_single_cluster;
    Alcotest.test_case "scheduler" `Quick test_scheduler;
    Alcotest.test_case "random nets safe" `Quick test_random_nets_are_safe;
    Alcotest.test_case "random net determinism" `Quick test_random_net_determinism;
  ]
