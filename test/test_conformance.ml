(* Cross-engine differential conformance.

   All four engines answer the same question — "does this safe net have
   a reachable dead marking?" — by wildly different means (explicit
   BFS, stubborn sets, BDD fixpoint, GPN worlds), so on any net where
   the exhaustive engine completes they must agree.  The suite runs the
   models zoo plus a seeded sweep of random safe nets and checks:

   - verdict agreement of full / stubborn / symbolic / hardened GPO
     ([Gpn.Explorer] with the deviation scan, the complete
     configuration);
   - the paper-faithful GPO configuration ([~scan:false]) is checked
     for soundness only: any deadlock it reports must be real, but a
     clean answer is not authoritative (it is known to miss deadlocks
     on some nets, e.g. safety monitors);
   - state-count consistency where the theory gives one: the symbolic
     engine counts exactly the reachable markings (= full's states),
     and the stubborn reduction never explores more than full.

   Failures dump the net (and the seed, via the label) under
   [test-failures/] so they reproduce offline. *)

module E = Harness.Engine

let max_states = 150_000

type verdicts = {
  full : Petri.Reachability.result;
  stub : Petri.Reachability.result;
  smv : Bddkit.Symbolic.result;
  gpo : Gpn.Explorer.result;  (* hardened: scan = true *)
  gpo_paper : Gpn.Explorer.result;  (* paper: scan = false *)
}

(* Returns [None] when the exhaustive baseline was truncated: with no
   ground truth there is nothing to compare against. *)
let run_all net =
  let full = Petri.Reachability.explore ~max_states net in
  if Petri.Reachability.truncated full then None
  else
    Some
      {
        full;
        stub = Petri.Stubborn.explore ~max_states net;
        smv = Bddkit.Symbolic.analyse net;
        gpo = Gpn.Explorer.analyse ~max_states net;
        gpo_paper = Gpn.Explorer.analyse ~scan:false ~max_states net;
      }

let check ~label net =
  match run_all net with
  | None -> ()
  | Some v ->
      let truth = v.full.deadlock_count > 0 in
      let disagree engine verdict =
        if verdict <> truth then
          Failure_dump.failf ~label net
            "%s verdict %b disagrees with exhaustive search (%b; %d states)"
            engine verdict truth v.full.states
      in
      (* On a net the exhaustive baseline finishes, every other engine
         must finish too (stubborn/GPO explore subsets of the budget
         full stayed within; the symbolic engine has no budget): a
         truncated stop here is a guard regression silently cutting
         explorations short, which mere verdict agreement would let
         pass. *)
      let incomplete engine stop =
        if stop <> Guard.Completed then
          Failure_dump.failf ~label net
            "%s stopped early (%s) on a net the exhaustive baseline completed \
             (%d states)"
            engine (Guard.string_of_stop stop) v.full.states
      in
      incomplete "stubborn" v.stub.stop;
      incomplete "symbolic" v.smv.stop;
      incomplete "gpo (hardened)" v.gpo.stop;
      disagree "stubborn" (v.stub.deadlock_count > 0);
      disagree "symbolic" (v.smv.deadlock <> None);
      disagree "gpo (hardened)" (not (Gpn.Explorer.deadlock_free v.gpo));
      (* Paper configuration: sound but not complete — one direction. *)
      if
        (not (Gpn.Explorer.truncated v.gpo_paper))
        && (not (Gpn.Explorer.deadlock_free v.gpo_paper))
        && not truth
      then
        Failure_dump.failf ~label net
          "gpo (paper, scan:false) reports a deadlock on a deadlock-free net";
      (* The symbolic state count is a model count of the reachability
         fixpoint: it must equal the number of explicitly visited
         markings exactly. *)
      if Float.of_int v.full.states <> v.smv.states then
        Failure_dump.failf ~label net
          "symbolic counts %.0f reachable markings, explicit visited %d"
          v.smv.states v.full.states;
      if
        (not (Petri.Reachability.truncated v.stub))
        && v.stub.states > v.full.states
      then
        Failure_dump.failf ~label net
          "stubborn explored %d states, more than the full graph (%d)"
          v.stub.states v.full.states

(* The zoo, capped at sizes the from-scratch BDD engine clears quickly. *)
let zoo =
  [
    Models.Figures.fig1;
    Models.Figures.fig2 4;
    Models.Figures.fig2 6;
    Models.Figures.fig3;
    Models.Figures.fig5;
    Models.Figures.fig7;
    Models.Nsdp.make 2;
    Models.Nsdp.make 4;
    Models.Asat.make 2;
    Models.Over.make 2;
    Models.Over.make 3;
    Models.Over.make 4;
    Models.Rw.make 3;
    Models.Rw.make 6;
    Models.Scheduler.make 2;
    Models.Scheduler.make 3;
  ]

let zoo_conformance () =
  List.iter (fun net -> check ~label:net.Petri.Net.name net) zoo

(* The monitor construction is exactly where the paper configuration
   was caught missing deadlocks, so monitored nets get their own
   differential pass: every zoo net is monitored on the preset of one
   of its transitions (a cover that is reachable iff that transition is
   ever enabled — both outcomes occur across the zoo). *)
let monitored_zoo_conformance () =
  List.iter
    (fun (net : Petri.Net.t) ->
      match Petri.Bitset.elements net.pre.(0) with
      | [] -> ()
      | never_all ->
          let property = { Petri.Safety.name = "conf"; never_all } in
          let monitored = Petri.Safety.monitor net property in
          check ~label:(net.name ^ "-monitored") monitored)
    zoo

let random_conformance () =
  Failure_dump.iter_seeds (fun seed ->
      let net = Models.Random_net.generate seed in
      check ~label:(Printf.sprintf "conformance-seed-%d" seed) net)

(* Same agreement, exercised through the uniform [Harness.Engine.run]
   layer that the CLI uses (witnesses on, so the reconstruction paths
   run too). *)
let engine_layer_conformance () =
  List.iter
    (fun (net : Petri.Net.t) ->
      let label = net.name ^ "-engine-layer" in
      let outcomes reduce =
        List.map
          (fun kind ->
            let o = E.run ~max_states ~witness:true ~gpo_scan:true ~reduce kind net in
            (* These instances are far under every budget: any truncated
               stop is a regression, and filtering it out would mute the
               verdict comparison below. *)
            if E.truncated o then
              Failure_dump.failf ~label net
                "%s%s stopped early (%s) on a small instance" (E.name kind)
                (if reduce then " (reduced)" else "")
                (Guard.string_of_stop o.E.stop);
            o)
          E.all
      in
      match outcomes false @ outcomes true with
      | [] -> ()
      | o :: rest ->
          List.iter
            (fun (o' : E.outcome) ->
              if o'.deadlock <> o.deadlock then
                Failure_dump.failf ~label net
                  "%s says deadlock=%b but %s says %b" (E.name o'.kind)
                  o'.deadlock (E.name o.kind) o.deadlock)
            rest)
    [ Models.Nsdp.make 2; Models.Over.make 3; Models.Figures.fig2 4 ]

let suite =
  [
    Alcotest.test_case "zoo conformance" `Quick zoo_conformance;
    Alcotest.test_case "monitored zoo conformance" `Quick
      monitored_zoo_conformance;
    Alcotest.test_case "engine-layer conformance" `Quick
      engine_layer_conformance;
    Alcotest.test_case "random net conformance" `Slow random_conformance;
  ]
