(* Tests for the bench regression gate: row matching by identity
   fields, per-metric noise thresholds, regression/improvement
   detection, and unmatched-row reporting. *)

module J = Gpo_obs.Json
module C = Bench_compare.Compare

(* A report shaped like BENCH_guard.json, with a meta block the gate
   must ignore. *)
let report rows =
  J.Obj
    [
      ( "meta",
        J.Obj
          [
            ("cores", J.Int 4);
            ("os", J.String "TestOS");
            ("git_sha", J.String "deadbeef");
            ("run_id", J.String "0-0");
          ] );
      ("table", J.String "guard");
      ("rows", J.List rows);
    ]

let row ?(net = "nsdp-12") ?(plain = 2.0) ?(guarded = 2.05) ?(overhead = 1.25)
    () =
  J.Obj
    [
      ("net", J.String net);
      ("plain_s", J.Float plain);
      ("guarded_s", J.Float guarded);
      ("overhead_pct", J.Float overhead);
    ]

let test_identical_passes () =
  let r = report [ row (); row ~net:"asat-8" ~plain:0.7 ~guarded:0.71 () ] in
  let o = C.compare_reports ~base:r ~fresh:r () in
  Alcotest.(check bool) "ok" true (C.ok o);
  Alcotest.(check int) "all metrics compared" 6 o.C.compared;
  Alcotest.(check int) "no regressions" 0 (List.length o.C.regressions);
  Alcotest.(check int) "no improvements" 0 (List.length o.C.improvements);
  Alcotest.(check int) "no unmatched" 0
    (List.length o.C.unmatched_base + List.length o.C.unmatched_fresh)

let test_2x_regression_flagged () =
  let base = report [ row () ] in
  let fresh = report [ row ~guarded:4.1 () ] in
  let o = C.compare_reports ~base ~fresh () in
  Alcotest.(check bool) "not ok" false (C.ok o);
  match o.C.regressions with
  | [ v ] ->
      Alcotest.(check string) "metric" "guarded_s" v.C.metric;
      Alcotest.(check bool) "delta is ~2x" true
        (v.C.delta_pct > 90.0 && v.C.delta_pct < 110.0)
  | vs -> Alcotest.failf "expected exactly one regression, got %d"
            (List.length vs)

let test_noise_tolerated () =
  (* 10% wobble on times and a sub-point overhead change stay under the
     default 30% / 3-point thresholds. *)
  let base = report [ row () ] in
  let fresh = report [ row ~plain:2.2 ~guarded:1.9 ~overhead:2.1 () ] in
  let o = C.compare_reports ~base ~fresh () in
  Alcotest.(check bool) "ok under noise" true (C.ok o);
  Alcotest.(check int) "no improvements either" 0
    (List.length o.C.improvements)

let test_improvement_detected () =
  let base = report [ row () ] in
  let fresh = report [ row ~guarded:1.0 () ] in
  let o = C.compare_reports ~base ~fresh () in
  Alcotest.(check bool) "ok" true (C.ok o);
  Alcotest.(check int) "one improvement" 1 (List.length o.C.improvements)

let test_tiny_absolute_change_is_noise () =
  (* A 2x ratio on a microsecond-scale time is below the absolute
     floor: scheduler jitter, not a regression. *)
  let base = report [ row ~plain:0.0005 ~guarded:0.0006 () ] in
  let fresh = report [ row ~plain:0.001 ~guarded:0.0012 () ] in
  let o = C.compare_reports ~base ~fresh () in
  Alcotest.(check bool) "sub-floor change ignored" true (C.ok o)

let test_overhead_points_threshold () =
  let base = report [ row ~overhead:1.2 () ] in
  let fresh = report [ row ~overhead:5.0 () ] in
  let o = C.compare_reports ~base ~fresh () in
  Alcotest.(check bool) "overhead jump regresses" false (C.ok o);
  (* The threshold scales the allowed points: 0.5 -> 5 points slack. *)
  let o = C.compare_reports ~threshold:0.5 ~base ~fresh () in
  Alcotest.(check bool) "wider threshold tolerates it" true (C.ok o)

let test_speedup_direction () =
  let srow s =
    J.Obj
      [ ("net", J.String "nsdp-7"); ("jobs", J.Int 2); ("speedup", J.Float s) ]
  in
  let wrap r = J.Obj [ ("exploration", J.List [ r ]) ] in
  (* Speedup is higher-better: a drop regresses, a rise does not. *)
  let o =
    C.compare_reports ~base:(wrap (srow 1.5)) ~fresh:(wrap (srow 0.7)) ()
  in
  Alcotest.(check bool) "speedup drop regresses" false (C.ok o);
  let o =
    C.compare_reports ~base:(wrap (srow 0.7)) ~fresh:(wrap (srow 1.5)) ()
  in
  Alcotest.(check bool) "speedup rise is fine" true (C.ok o);
  Alcotest.(check int) "and counts as improvement" 1
    (List.length o.C.improvements)

let test_unmatched_rows_reported () =
  let base = report [ row (); row ~net:"asat-8" () ] in
  let fresh = report [ row (); row ~net:"rw-11" () ] in
  let o = C.compare_reports ~base ~fresh () in
  Alcotest.(check bool) "still ok (unmatched is not a regression)" true
    (C.ok o);
  Alcotest.(check int) "baseline-only row" 1 (List.length o.C.unmatched_base);
  Alcotest.(check int) "fresh-only row" 1 (List.length o.C.unmatched_fresh);
  Alcotest.(check bool) "names the missing row" true
    (List.exists
       (fun k -> Astring_contains.contains "asat-8" k)
       o.C.unmatched_base)

let test_identity_includes_non_metric_fields () =
  (* Same net but different jobs: those are different rows, not a
     comparison pair. *)
  let wrap jobs t =
    J.Obj
      [
        ( "exploration",
          J.List
            [
              J.Obj
                [
                  ("net", J.String "nsdp-7");
                  ("jobs", J.Int jobs);
                  ("time_s", J.Float t);
                ];
            ] );
      ]
  in
  let o = C.compare_reports ~base:(wrap 1 0.1) ~fresh:(wrap 2 10.0) () in
  Alcotest.(check int) "nothing compared across identities" 0 o.C.compared;
  Alcotest.(check bool) "so no regression" true (C.ok o)

let suite =
  [
    Alcotest.test_case "identical passes" `Quick test_identical_passes;
    Alcotest.test_case "2x regression flagged" `Quick
      test_2x_regression_flagged;
    Alcotest.test_case "noise tolerated" `Quick test_noise_tolerated;
    Alcotest.test_case "improvement detected" `Quick test_improvement_detected;
    Alcotest.test_case "tiny absolute change is noise" `Quick
      test_tiny_absolute_change_is_noise;
    Alcotest.test_case "overhead points threshold" `Quick
      test_overhead_points_threshold;
    Alcotest.test_case "speedup direction" `Quick test_speedup_direction;
    Alcotest.test_case "unmatched rows reported" `Quick
      test_unmatched_rows_reported;
    Alcotest.test_case "identity includes non-metric fields" `Quick
      test_identity_includes_non_metric_fields;
  ]
