(* Tests for the explicit explorer, the stubborn-set reduction and the
   behavioural property checks. *)

module B = Petri.Bitset

let test_fig1_full_graph () =
  (* Figure 1: three independent transitions — 2^3 = 8 markings, the
     factorial-interleaving example of Section 2.2. *)
  let r = Petri.Reachability.explore Models.Figures.fig1 in
  Alcotest.(check int) "8 states" 8 r.states;
  Alcotest.(check int) "12 edges" 12 r.edges;
  Alcotest.(check int) "one terminal marking" 1 r.deadlock_count;
  Alcotest.(check bool) "not truncated" false (Petri.Reachability.truncated r)

let test_fig2_counts () =
  (* Figure 2: N conflict pairs — full graph 3^N, stubborn 2^(N+1)-1. *)
  List.iter
    (fun n ->
      let net = Models.Figures.fig2 n in
      let full = Petri.Reachability.explore net in
      let po = Petri.Stubborn.explore net in
      let pow b e = int_of_float (Float.pow (float_of_int b) (float_of_int e)) in
      Alcotest.(check int) (Printf.sprintf "full 3^%d" n) (pow 3 n) full.states;
      Alcotest.(check int)
        (Printf.sprintf "po 2^%d-1" (n + 1))
        ((2 * pow 2 n) - 1)
        po.states;
      Alcotest.(check int) "2^N final markings are dead" (pow 2 n)
        full.deadlock_count)
    [ 1; 2; 3; 4; 5 ]

let test_deadlock_trace () =
  let net = Models.Nsdp.make 3 in
  match Petri.Properties.find_deadlock net with
  | None -> Alcotest.fail "NSDP must deadlock"
  | Some trace ->
      Alcotest.(check bool) "trace valid" true (Petri.Trace.is_valid net trace);
      Alcotest.(check bool) "trace ends dead" true
        (Petri.Semantics.is_deadlock net (Petri.Trace.final_marking net trace))

let test_truncation () =
  let net = Models.Nsdp.make 6 in
  let r = Petri.Reachability.explore ~max_states:100 net in
  Alcotest.(check bool) "truncated" true (Petri.Reachability.truncated r);
  Alcotest.(check bool) "stop reason is the state budget" true
    (r.stop = Guard.State_budget);
  Alcotest.(check bool) "states within budget" true (r.states <= 101)

let test_max_deadlocks_cap () =
  let net = Models.Figures.fig2 4 in
  let r = Petri.Reachability.explore ~max_deadlocks:3 net in
  Alcotest.(check int) "kept 3 witnesses" 3 (List.length r.deadlocks);
  Alcotest.(check int) "counted all 16" 16 r.deadlock_count

let test_trace_requires_flag () =
  let net = Models.Figures.fig1 in
  let r = Petri.Reachability.explore net in
  match Petri.Reachability.trace_to r net.Petri.Net.initial with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Stubborn sets *)

let test_stubborn_preserves_deadlock_verdict () =
  let nets =
    [
      Models.Nsdp.make 3;
      Models.Nsdp.make 4;
      Models.Asat.make 4;
      Models.Over.make 3;
      Models.Rw.make 4;
      Models.Figures.fig2 4;
      Models.Figures.fig3;
      Models.Figures.fig7;
    ]
  in
  List.iter
    (fun net ->
      let full = Petri.Reachability.explore net in
      let po = Petri.Stubborn.explore net in
      Alcotest.(check bool)
        (net.Petri.Net.name ^ " verdict agrees")
        (full.deadlock_count > 0)
        (po.deadlock_count > 0);
      Alcotest.(check bool)
        (net.Petri.Net.name ^ " po not larger")
        true
        (po.states <= full.states))
    nets

let test_stubborn_preserves_deadlock_verdict_random () =
  for seed = 0 to 199 do
    let net = Models.Random_net.generate seed in
    let full = Petri.Reachability.explore net in
    List.iter
      (fun heuristic ->
        let po = Petri.Stubborn.explore ~heuristic net in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d verdict" seed)
          (full.deadlock_count > 0)
          (po.deadlock_count > 0);
        (* Every deadlock marking must also be visited by the reduced
           exploration (stubborn sets preserve all deadlocked markings). *)
        List.iter
          (fun m ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d deadlock visited" seed)
              true
              (Petri.Reachability.Marking_table.mem po.visited m))
          full.deadlocks)
      [ Petri.Stubborn.First_seed; Petri.Stubborn.Smallest ]
  done

let test_stubborn_reduces_nsdp () =
  let net = Models.Nsdp.make 6 in
  let full = Petri.Reachability.explore net in
  let po = Petri.Stubborn.explore net in
  Alcotest.(check bool) "at least 10x reduction" true (po.states * 10 < full.states)

(* Properties *)

let test_properties_nsdp () =
  let net = Models.Nsdp.make 3 in
  let report = Petri.Properties.check net in
  Alcotest.(check bool) "not deadlock free" false report.deadlock_free;
  Alcotest.(check bool) "safe" true report.safe;
  Alcotest.(check bool) "quasi-live" true report.quasi_live;
  Alcotest.(check bool) "not reversible (deadlock)" false report.reversible;
  Alcotest.(check bool) "complete" true report.complete

let test_properties_rw () =
  let net = Models.Rw.make 3 in
  let report = Petri.Properties.check net in
  Alcotest.(check bool) "deadlock free" true report.deadlock_free;
  Alcotest.(check bool) "safe" true report.safe;
  Alcotest.(check bool) "quasi-live" true report.quasi_live;
  Alcotest.(check bool) "reversible" true report.reversible

let test_dead_transition_detection () =
  let net =
    Petri.Parser.of_string
      "pl a (1)\npl b\npl c\ntr t1 : a -> b\ntr never : c -> a\n"
  in
  let report = Petri.Properties.check net in
  Alcotest.(check bool) "has dead transition" false report.quasi_live;
  Alcotest.(check (list int)) "never is dead"
    [ Petri.Net.transition_index net "never" ]
    (B.elements report.dead_transitions)

let suite =
  [
    Alcotest.test_case "fig1 full graph" `Quick test_fig1_full_graph;
    Alcotest.test_case "fig2 counts" `Quick test_fig2_counts;
    Alcotest.test_case "deadlock trace" `Quick test_deadlock_trace;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "max deadlocks cap" `Quick test_max_deadlocks_cap;
    Alcotest.test_case "trace requires flag" `Quick test_trace_requires_flag;
    Alcotest.test_case "stubborn verdicts (models)" `Quick
      test_stubborn_preserves_deadlock_verdict;
    Alcotest.test_case "stubborn verdicts (random)" `Slow
      test_stubborn_preserves_deadlock_verdict_random;
    Alcotest.test_case "stubborn reduces NSDP" `Quick test_stubborn_reduces_nsdp;
    Alcotest.test_case "properties of NSDP" `Quick test_properties_nsdp;
    Alcotest.test_case "properties of RW" `Quick test_properties_rw;
    Alcotest.test_case "dead transition detection" `Quick test_dead_transition_detection;
  ]
