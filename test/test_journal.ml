(* The journal storage layer: crash-only record framing.  Every test
   here attacks the on-disk format directly — torn tails, corrupt
   middles, oversized length prefixes — and asserts that [read] always
   recovers exactly the longest verifiable prefix and never raises. *)

module Jn = Harness.Journal

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "julie-journal-test-%d-%d.bin" (Unix.getpid ()) !counter)

let with_tmp f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_records path records =
  let w = Jn.open_append path in
  List.iter (Jn.append w) records;
  Jn.close w

let append_raw path bytes =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  output_string oc bytes;
  close_out oc

let file_size path = (Unix.stat path).Unix.st_size

let check_records msg expected (r : Jn.read_result) =
  Alcotest.(check (list string)) msg expected r.Jn.records

(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_tmp @@ fun path ->
  let records = [ "alpha"; ""; String.make 1000 'x'; "{\"k\":\"v\"}" ] in
  write_records path records;
  let r = Jn.read path in
  check_records "roundtrip preserves records in order" records r;
  Alcotest.(check bool) "clean file is not torn" false r.Jn.torn;
  Alcotest.(check int) "good prefix covers the whole file"
    (file_size path) r.Jn.good_bytes

let test_missing_and_empty () =
  let r = Jn.read (tmp_path ()) in
  check_records "missing file reads as empty" [] r;
  Alcotest.(check bool) "missing file is not torn" false r.Jn.torn;
  with_tmp @@ fun path ->
  write_records path [];
  let r = Jn.read path in
  check_records "empty file reads as empty" [] r;
  Alcotest.(check bool) "empty file is not torn" false r.Jn.torn

let test_torn_tail () =
  with_tmp @@ fun path ->
  write_records path [ "one"; "two" ];
  let clean = file_size path in
  (* A record whose payload never finished: header promises 100 bytes,
     only 5 arrive — exactly what kill -9 mid-append leaves. *)
  let torn = Bytes.create 17 in
  Bytes.set_int32_be torn 0 100l;
  Bytes.set_int64_be torn 4 0L;
  Bytes.blit_string "tornx" 0 torn 12 5;
  append_raw path (Bytes.to_string torn);
  let r = Jn.read path in
  check_records "records before the tear survive" [ "one"; "two" ] r;
  Alcotest.(check bool) "tear detected" true r.Jn.torn;
  Alcotest.(check int) "good prefix ends where the tear starts" clean
    r.Jn.good_bytes;
  (* Truncating at the reported offset yields a clean file again that
     extends correctly. *)
  Jn.truncate path r.Jn.good_bytes;
  let w = Jn.open_append path in
  Jn.append w "three";
  Jn.close w;
  let r = Jn.read path in
  check_records "appends after truncation extend the clean prefix"
    [ "one"; "two"; "three" ] r;
  Alcotest.(check bool) "healed file is not torn" false r.Jn.torn

let test_short_header_tail () =
  with_tmp @@ fun path ->
  write_records path [ "solo" ];
  append_raw path "\x00\x00";
  let r = Jn.read path in
  check_records "short header tail drops only the tail" [ "solo" ] r;
  Alcotest.(check bool) "short header tail is a tear" true r.Jn.torn

let test_corrupt_middle () =
  with_tmp @@ fun path ->
  write_records path [ "first"; "second"; "third" ];
  (* Flip one payload byte of "second" (offset: 12+5 bytes of "first",
     then 12 header bytes of "second").  Its checksum no longer
     verifies, so everything from "second" on is dropped — a corrupt
     middle may have desynchronised the stream. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (12 + 5 + 12) Unix.SEEK_SET : int);
  ignore (Unix.write_substring fd "X" 0 1 : int);
  Unix.close fd;
  let r = Jn.read path in
  check_records "corruption cuts the prefix at the bad record" [ "first" ] r;
  Alcotest.(check bool) "corruption is a tear" true r.Jn.torn;
  Alcotest.(check int) "good prefix ends before the bad record" (12 + 5)
    r.Jn.good_bytes

let test_oversized_prefix () =
  with_tmp @@ fun path ->
  write_records path [ "ok" ];
  (* A length prefix past max_record must not turn into an allocation:
     it ends the prefix immediately. *)
  let b = Bytes.create 12 in
  Bytes.set_int32_be b 0 (Int32.of_int (Jn.max_record + 1));
  Bytes.set_int64_be b 4 0L;
  append_raw path (Bytes.to_string b);
  let r = Jn.read path in
  check_records "oversized prefix ends the good prefix" [ "ok" ] r;
  Alcotest.(check bool) "oversized prefix is a tear" true r.Jn.torn

let test_create_replaces_atomically () =
  with_tmp @@ fun path ->
  write_records path [ "stale-1"; "stale-2" ];
  append_raw path "garbage-tail";
  let w = Jn.create path [ "fresh-a"; "fresh-b" ] in
  Jn.append w "fresh-c";
  Jn.close w;
  let r = Jn.read path in
  check_records "create replaces the file wholesale (garbage gone)"
    [ "fresh-a"; "fresh-b"; "fresh-c" ] r;
  Alcotest.(check bool) "compacted file is clean" false r.Jn.torn

let test_checksum_known_values () =
  (* FNV-1a 64 reference values — pins the on-disk format. *)
  Alcotest.(check int64) "fnv-1a of empty" 0xcbf29ce484222325L (Jn.checksum "");
  Alcotest.(check int64) "fnv-1a of 'a'" 0xaf63dc4c8601ec8cL (Jn.checksum "a");
  Alcotest.(check bool) "checksum separates close payloads" true
    (Jn.checksum "julie" <> Jn.checksum "juliE")

let test_bytes_tracks_size () =
  with_tmp @@ fun path ->
  let w = Jn.open_append path in
  Alcotest.(check int) "fresh file is empty" 0 (Jn.bytes w);
  Jn.append w "12345";
  Alcotest.(check int) "bytes = header + payload" 17 (Jn.bytes w);
  Jn.close w;
  let w = Jn.open_append path in
  Alcotest.(check int) "reopen picks up the existing size" 17 (Jn.bytes w);
  Jn.close w

let suite =
  [
    Alcotest.test_case "record roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "missing and empty files" `Quick test_missing_and_empty;
    Alcotest.test_case "torn tail is dropped and truncatable" `Quick
      test_torn_tail;
    Alcotest.test_case "short header tail" `Quick test_short_header_tail;
    Alcotest.test_case "corrupt middle cuts the prefix" `Quick
      test_corrupt_middle;
    Alcotest.test_case "oversized length prefix" `Quick test_oversized_prefix;
    Alcotest.test_case "create replaces atomically" `Quick
      test_create_replaces_atomically;
    Alcotest.test_case "checksum reference values" `Quick
      test_checksum_known_values;
    Alcotest.test_case "writer tracks file size" `Quick test_bytes_tracks_size;
  ]
