(* The persistent result cache: journal recovery semantics.

   The invariant under test everywhere: after any crash — torn tail,
   corrupted middle, fabricated records, injected journaling faults —
   a restarted cache serves only entries that are [Completed], whose
   net text matches the digest in their key, and whose witnesses
   re-certify by replay; and what it serves is byte-identical to what
   the original process computed. *)

module RC = Harness.Result_cache
module Jn = Harness.Journal
module J = Gpo_obs.Json

let with_sink f =
  if Gpo_obs.enabled () then f ()
  else begin
    Gpo_obs.install Gpo_obs.null_sink;
    Fun.protect ~finally:Gpo_obs.uninstall f
  end

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "julie-persist-test-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Every test leaves the global cache detached and empty. *)
let with_cache_dir f =
  with_sink @@ fun () ->
  let dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () ->
      RC.detach ();
      RC.invalidate ();
      rm_rf dir)
    (fun () ->
      RC.invalidate ();
      f dir)

let journal_path dir = Filename.concat dir "results.journal"

let attach_ok ?compact_bytes dir =
  match RC.attach ?compact_bytes dir with
  | Ok r -> r
  | Error msg -> Alcotest.failf "attach %s: %s" dir msg

(* Restart simulation: what survives [exit] is the file, what dies is
   the process memory. *)
let restart ?compact_bytes dir =
  RC.detach ();
  RC.invalidate ();
  attach_ok ?compact_bytes dir

(* ------------------------------------------------------------------ *)
(* Fixtures: engine outcomes on small nets, computed once              *)

type fixture = {
  name : string;
  net : Petri.Net.t;
  text : string;
  key : RC.key;
  outcome : Harness.Engine.outcome;
  report : string;
}

let make_fixture ?(max_states = 200_000) name net =
  let outcome =
    Harness.Engine.run ~max_states ~witness:true ~gpo_scan:true
      Harness.Engine.Gpo net
  in
  assert (outcome.Harness.Engine.stop = Guard.Completed);
  {
    name;
    net;
    text = Petri.Parser.to_string net;
    key =
      RC.key ~digest:(Petri.Net.digest net) ~engine:"gpo" ~max_states
        ~witness:true ~gpo_scan:true ~reduce:false ();
    outcome;
    report = J.to_string (Harness.Report.json_of_outcome outcome);
  }

let fixtures =
  lazy
    (with_sink @@ fun () ->
     [
       make_fixture "fig1" Models.Figures.fig1;
       make_fixture "fig2-4" (Models.Figures.fig2 4);
       make_fixture "over-3" (Models.Over.make 3);
     ])

let store_fixture (f : fixture) =
  Alcotest.(check bool)
    (f.name ^ " store accepted") true
    (RC.store ~net_text:f.text f.key f.outcome)

let check_served (f : fixture) =
  match RC.find ~verify_net:f.net f.key with
  | None -> Alcotest.failf "%s: recovered entry missing" f.name
  | Some o ->
      Alcotest.(check string)
        (f.name ^ " recovered report is byte-identical")
        f.report
        (J.to_string (Harness.Report.json_of_outcome o))

(* Journal-record crafting (the format the cache writes), for tests
   that fabricate hostile files. *)
let header ?(semantics = RC.semantics_version) () =
  J.to_string
    (J.Obj
       [
         ("magic", J.String "julie-results");
         ("format", J.Int 1);
         ("semantics", J.String semantics);
       ])

let record ?key ?net ?outcome_json (f : fixture) =
  let key = Option.value key ~default:(RC.render f.key) in
  let net = Option.value net ~default:f.text in
  let outcome =
    Option.value outcome_json
      ~default:(Harness.Report.json_of_outcome f.outcome)
  in
  J.to_string
    (J.Obj [ ("key", J.String key); ("net", J.String net); ("outcome", outcome) ])

let write_journal dir records =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Jn.close (Jn.create (journal_path dir) records)

let completed_only () =
  List.iter
    (fun (k, (o : Harness.Engine.outcome)) ->
      if o.Harness.Engine.stop <> Guard.Completed then
        Alcotest.failf "non-completed entry served: %s" k)
    (RC.entries ())

(* ------------------------------------------------------------------ *)

let test_recover_roundtrip () =
  with_cache_dir @@ fun dir ->
  let fs = Lazy.force fixtures in
  let r = attach_ok dir in
  Alcotest.(check int) "fresh dir recovers nothing" 0 r.RC.recovered;
  List.iter store_fixture fs;
  let stored = RC.size () in
  let r = restart dir in
  Alcotest.(check int) "every journaled entry recovers" stored r.RC.recovered;
  Alcotest.(check int) "nothing rejected" 0 r.RC.rejected;
  Alcotest.(check int) "recovery report matches last_recovery"
    r.RC.recovered
    (match RC.last_recovery () with Some r -> r.RC.recovered | None -> -1);
  List.iter check_served fs;
  completed_only ();
  (* A second restart without intervening writes is just as clean. *)
  let r = restart dir in
  Alcotest.(check int) "stable across repeated restarts" stored r.RC.recovered

let test_last_writer_wins () =
  with_cache_dir @@ fun dir ->
  let f = List.hd (Lazy.force fixtures) in
  let stamped t = { f.outcome with Harness.Engine.time_s = t } in
  write_journal dir
    [
      header ();
      record f ~outcome_json:(Harness.Report.json_of_outcome (stamped 1111.0));
      record f ~outcome_json:(Harness.Report.json_of_outcome (stamped 2222.0));
    ];
  let r = restart dir in
  Alcotest.(check int) "duplicates collapse to one entry" 1 r.RC.recovered;
  Alcotest.(check bool) "duplicate collapse compacts" true r.RC.compacted;
  (match RC.find ~verify_net:f.net f.key with
  | Some o ->
      Alcotest.(check (float 0.0)) "the later record wins" 2222.0
        o.Harness.Engine.time_s
  | None -> Alcotest.fail "deduplicated entry missing");
  (* After compaction the file holds exactly header + 1 record. *)
  let read = Jn.read (journal_path dir) in
  Alcotest.(check int) "compacted file holds header + survivor" 2
    (List.length read.Jn.records)

let test_semantics_bump_invalidates () =
  with_cache_dir @@ fun dir ->
  let f = List.hd (Lazy.force fixtures) in
  write_journal dir [ header ~semantics:"gpo-semantics-0-ancient" (); record f ];
  let r = restart dir in
  Alcotest.(check int) "nothing recovered across a semantics bump" 0
    r.RC.recovered;
  Alcotest.(check int) "stale entries invalidated wholesale" 1
    r.RC.invalidated;
  Alcotest.(check int) "cache is empty" 0 (RC.size ());
  (* The file was rewritten under the current semantics: a second
     restart is clean and recovers nothing. *)
  let r = restart dir in
  Alcotest.(check int) "rewritten journal is clean" 0 r.RC.invalidated

let test_rejects_tampering () =
  with_cache_dir @@ fun dir ->
  let fs = Lazy.force fixtures in
  let good = List.hd fs in
  let other = List.nth fs 1 in
  let partial =
    (* Structurally valid outcome, but a budget stop — an answer to a
       budget, not to the net. *)
    J.Obj
      [
        ("engine", J.String "gpo");
        ("states", J.Float 5.0);
        ("metric", J.Float 5.0);
        ("deadlock", J.Bool false);
        ("time_s", J.Float 0.0);
        ("truncated", J.Bool true);
        ("stop_reason", J.String "state_budget");
        ("witness", J.Null);
      ]
  in
  let bogus_witness =
    (* Claims a deadlock with a witness that does not replay to one. *)
    J.Obj
      [
        ("engine", J.String "gpo");
        ("states", J.Float 5.0);
        ("metric", J.Float 5.0);
        ("deadlock", J.Bool true);
        ("time_s", J.Float 0.0);
        ("truncated", J.Bool false);
        ("stop_reason", J.String "completed");
        ("witness", J.List [ J.Int 0; J.Int 0; J.Int 0; J.Int 0; J.Int 0 ]);
      ]
  in
  write_journal dir
    [
      header ();
      record good;
      "this is not json";
      record good ~outcome_json:partial;
      record good ~net:other.text (* digest/key mismatch *);
      record good ~outcome_json:bogus_witness;
    ];
  let r = restart dir in
  Alcotest.(check int) "only the honest record survives" 1 r.RC.recovered;
  Alcotest.(check int) "every tampered record is rejected" 4 r.RC.rejected;
  Alcotest.(check bool) "rejection compacts the file" true r.RC.compacted;
  check_served good;
  completed_only ()

let test_torn_tail_recovery () =
  with_cache_dir @@ fun dir ->
  let fs = Lazy.force fixtures in
  ignore (attach_ok dir);
  List.iter store_fixture fs;
  RC.flush_journal ();
  RC.detach ();
  (* kill -9 mid-append: a header promising more bytes than exist. *)
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644
      (journal_path dir)
  in
  output_string oc "\x00\x00\x01\x00torn";
  close_out oc;
  RC.invalidate ();
  let r = attach_ok dir in
  Alcotest.(check int) "all finished entries recover" (List.length fs)
    r.RC.recovered;
  Alcotest.(check bool) "torn bytes detected" true (r.RC.torn_bytes > 0);
  Alcotest.(check bool) "tear compacts the file" true r.RC.compacted;
  List.iter check_served fs;
  (* The compacted file is clean: restart again, no tear. *)
  let r = restart dir in
  Alcotest.(check int) "healed journal has no torn bytes" 0 r.RC.torn_bytes

(* ------------------------------------------------------------------ *)
(* Chaos: seeded kill -9 simulation sweep                              *)

(* For each seed: build a journal of finished entries, cut the file at
   a seeded byte offset (everything a kill -9 can leave behind is a
   prefix of what was written), recover, and assert the invariant.
   Some seeds also run with fault injection armed at the journal probe
   sites while storing, so injected journaling failures (simulated
   full disk / allocator death inside append, flush, compact) are part
   of the swept space. *)
let kill9_seeds = 24

let test_kill9_sweep () =
  let fs = Lazy.force fixtures in
  let by_key =
    List.map (fun (f : fixture) -> (RC.render f.key, f)) fs
  in
  for seed = 0 to kill9_seeds - 1 do
    with_cache_dir @@ fun dir ->
    let rng = Random.State.make [| 0xC4A05; seed |] in
    ignore (attach_ok dir);
    let faulty = seed mod 3 = 0 in
    if faulty then
      Guard.Fault.enable ~rate:0.5 ~kinds:[ Guard.Fault.Oom ]
        ~sites:[ "journal.append"; "journal.flush"; "journal.compact" ]
        seed;
    Fun.protect ~finally:Guard.Fault.disable (fun () ->
        List.iter
          (fun (f : fixture) ->
            (* Journaling faults must never fail the store itself. *)
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: store %s survives faults" seed f.name)
              true
              (RC.store ~net_text:f.text f.key f.outcome))
          fs;
        RC.flush_journal ());
    RC.detach ();
    (* The kill: the file ends at an arbitrary byte. *)
    let path = journal_path dir in
    let size = (Unix.stat path).Unix.st_size in
    let cut = Random.State.int rng (size + 1) in
    Jn.truncate path cut;
    RC.invalidate ();
    let r = attach_ok dir in
    (* The invariant: whatever survived is Completed, digest-matched,
       re-certified, and byte-identical to the original computation. *)
    completed_only ();
    List.iter
      (fun (k, (o : Harness.Engine.outcome)) ->
        match List.assoc_opt k by_key with
        | None -> Alcotest.failf "seed %d: foreign key recovered: %s" seed k
        | Some f ->
            Alcotest.(check string)
              (Printf.sprintf "seed %d: %s byte-identical" seed f.name)
              f.report
              (J.to_string (Harness.Report.json_of_outcome o)))
      (RC.entries ());
    Alcotest.(check int)
      (Printf.sprintf "seed %d: recovery count matches table" seed)
      (RC.size ()) r.RC.recovered;
    (* Every recovered entry must actually serve (find re-certifies). *)
    List.iter
      (fun (k, _) ->
        let f = List.assoc k by_key in
        match RC.find ~verify_net:f.net f.key with
        | Some _ -> ()
        | None ->
            Alcotest.failf "seed %d: recovered entry refuses to serve: %s"
              seed f.name)
      (RC.entries ())
  done

(* Journaling faults while attached must leave the in-memory cache
   fully functional and the journal error counter ticking, never an
   exception escaping [store]. *)
let test_fault_probes_contained () =
  with_cache_dir @@ fun dir ->
  let f = List.hd (Lazy.force fixtures) in
  ignore (attach_ok dir);
  Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
    ~sites:[ "journal.append" ] 7 (fun () ->
      Alcotest.(check bool) "store succeeds under a 100% append fault" true
        (RC.store ~net_text:f.text f.key f.outcome));
  Alcotest.(check bool) "entry is served from memory" true
    (RC.find ~verify_net:f.net f.key <> None);
  (* The journal never got the record — after restart the entry is
     simply gone, not corrupt. *)
  let r = restart dir in
  Alcotest.(check int) "faulted append journaled nothing" 0 r.RC.recovered;
  completed_only ()

let test_compaction_threshold () =
  with_cache_dir @@ fun dir ->
  let f = List.hd (Lazy.force fixtures) in
  (* A threshold smaller than one record forces a compaction on every
     store; the live set is one entry, so the file never grows beyond
     header + 1 record. *)
  ignore (attach_ok ~compact_bytes:64 dir);
  for _ = 1 to 5 do
    ignore (RC.store ~net_text:f.text f.key f.outcome : bool)
  done;
  RC.detach ();
  let read = Jn.read (journal_path dir) in
  Alcotest.(check int) "compaction keeps the file at header + live set" 2
    (List.length read.Jn.records);
  RC.invalidate ();
  let r = attach_ok dir in
  Alcotest.(check int) "compacted journal recovers the live set" 1
    r.RC.recovered;
  check_served f

let suite =
  [
    Alcotest.test_case "recovery roundtrip is byte-identical" `Quick
      test_recover_roundtrip;
    Alcotest.test_case "duplicate keys: last writer wins" `Quick
      test_last_writer_wins;
    Alcotest.test_case "semantics bump invalidates wholesale" `Quick
      test_semantics_bump_invalidates;
    Alcotest.test_case "tampered records are rejected" `Quick
      test_rejects_tampering;
    Alcotest.test_case "torn tail is truncated and healed" `Quick
      test_torn_tail_recovery;
    Alcotest.test_case "kill -9 simulation sweep (seeded)" `Slow
      test_kill9_sweep;
    Alcotest.test_case "journal faults never fail a store" `Quick
      test_fault_probes_contained;
    Alcotest.test_case "compaction threshold bounds the file" `Quick
      test_compaction_threshold;
  ]
