(* Representation equivalence: the hash-consed {!Gpn.World_set} and the
   balanced-tree {!Gpn.World_set_tree} must be observationally
   identical — first as plain set algebra under randomized operation
   sequences, then as complete engines: [Core.Make] instantiated over
   each representation must produce bit-identical GPO results (states,
   edges, run roots, deadlock witness markings) across the models zoo
   and a sweep of random nets.  Any divergence means either a bug in
   the trie/memo layer or an iteration-order dependence that crept back
   into the explorer. *)

module B = Petri.Bitset
module H = Gpn.World_set
module T = Gpn.World_set_tree
module He = Gpn.Core.Hashconsed.Explorer
module Te = Gpn.Core.Tree.Explorer

(* ------------------------------------------------------------------ *)
(* Randomized operation sequences.                                     *)

let width = 12

let random_world st =
  let k = Random.State.int st (width + 1) in
  let w = ref (B.empty width) in
  for _ = 1 to k do
    w := B.add (Random.State.int st width) !w
  done;
  !w

let check_pair ctx (h, t) =
  if H.cardinal h <> T.cardinal t then
    Alcotest.failf "%s: cardinal %d vs %d" ctx (H.cardinal h) (T.cardinal t);
  if not (List.equal B.equal (H.elements h) (T.elements t)) then
    Alcotest.failf "%s: elements differ" ctx;
  if H.is_empty h <> T.is_empty t then Alcotest.failf "%s: is_empty differs" ctx

(* One random session: grow a pool of (hash-consed, tree) pairs built by
   identical operations, checking observational agreement after every
   step plus the pairwise relations at the end. *)
let op_session seed =
  let st = Random.State.make [| seed |] in
  let pool = ref [| (H.empty, T.empty) |] in
  let pick () = !pool.(Random.State.int st (Array.length !pool)) in
  let push ctx (h, t) =
    check_pair ctx (h, t);
    pool := Array.append !pool [| (h, t) |]
  in
  for step = 1 to 40 do
    let ctx = Printf.sprintf "seed %d step %d" seed step in
    match Random.State.int st 8 with
    | 0 ->
        let w = random_world st in
        push ctx (H.singleton w, T.singleton w)
    | 1 ->
        let w = random_world st in
        let h, t = pick () in
        push ctx (H.add w h, T.add w t)
    | 2 ->
        let ha, ta = pick () and hb, tb = pick () in
        push ctx (H.union ha hb, T.union ta tb)
    | 3 ->
        let ha, ta = pick () and hb, tb = pick () in
        push ctx (H.inter ha hb, T.inter ta tb)
    | 4 ->
        let ha, ta = pick () and hb, tb = pick () in
        push ctx (H.diff ha hb, T.diff ta tb)
    | 5 ->
        let tr = Random.State.int st width in
        let h, t = pick () in
        push ctx (H.filter_member tr h, T.filter_member tr t)
    | 6 ->
        let parity = Random.State.int st 2 in
        let pred w = B.cardinal w land 1 = parity in
        let h, t = pick () in
        push ctx (H.filter pred h, T.filter pred t)
    | _ ->
        let worlds = List.init (Random.State.int st 6) (fun _ -> random_world st) in
        push ctx (H.of_list worlds, T.of_list worlds)
  done;
  (* Pairwise relations must agree between representations, and each
     representation's hash must be consistent with its equality. *)
  Array.iteri
    (fun i (ha, ta) ->
      Array.iteri
        (fun j (hb, tb) ->
          let ctx rel =
            Printf.sprintf "seed %d pair (%d,%d): %s" seed i j rel
          in
          if H.equal ha hb <> T.equal ta tb then Alcotest.failf "%s" (ctx "equal");
          if H.subset ha hb <> T.subset ta tb then
            Alcotest.failf "%s" (ctx "subset");
          if Stdlib.compare (H.compare ha hb = 0) (T.compare ta tb = 0) <> 0 then
            Alcotest.failf "%s" (ctx "compare-zero");
          if H.equal ha hb && H.hash ha <> H.hash hb then
            Alcotest.failf "%s" (ctx "hash/equal (hash-consed)");
          if T.equal ta tb && T.hash ta <> T.hash tb then
            Alcotest.failf "%s" (ctx "hash/equal (tree)"))
        !pool;
      let w = random_world st in
      if H.mem w ha <> T.mem w ta then
        Alcotest.failf "seed %d set %d: mem differs" seed i)
    !pool

let ops_random () =
  for seed = 0 to 199 do
    op_session seed
  done

(* Cartesian products, exercised separately: the pool sets above can
   grow too large to multiply safely. *)
let product_equiv () =
  let st = Random.State.make [| 0xbeef |] in
  for case = 0 to 99 do
    let factors =
      List.init
        (1 + Random.State.int st 3)
        (fun _ ->
          List.init (1 + Random.State.int st 3) (fun _ -> random_world st))
    in
    let h = H.product width (List.map H.of_list factors) in
    let t = T.product width (List.map T.of_list factors) in
    check_pair (Printf.sprintf "product case %d" case) (h, t)
  done

(* Interning invariant of the hash-consed representation: structural
   equality coincides with physical equality. *)
let hashcons_identity () =
  let st = Random.State.make [| 0xcafe |] in
  for _ = 1 to 200 do
    let worlds = List.init (Random.State.int st 8) (fun _ -> random_world st) in
    let a = H.of_list worlds in
    let b = List.fold_left (fun acc w -> H.add w acc) H.empty (List.rev worlds) in
    if not (H.equal a b) then Alcotest.fail "of_list/add disagree";
    if H.compare a b <> 0 then Alcotest.fail "equal sets with compare <> 0";
    if H.hash a <> H.hash b then Alcotest.fail "equal sets with distinct hashes"
  done

(* ------------------------------------------------------------------ *)
(* Engine equivalence: bit-identical GPO results across
   representations. *)

let witness_markings (deadlocks : He.witness list) =
  List.map (fun (w : He.witness) -> w.He.markings) deadlocks

let witness_markings_t (deadlocks : Te.witness list) =
  List.map (fun (w : Te.witness) -> w.Te.markings) deadlocks

let check_engines ?reduction_pair ~label net =
  let rh, rt =
    match reduction_pair with
    | None -> (He.analyse net, Te.analyse net)
    | Some (rh, rt) -> (He.analyse ~reduction:rh net, Te.analyse ~reduction:rt net)
  in
  if rh.He.states <> rt.Te.states then
    Alcotest.failf "%s: states %d vs %d" label rh.He.states rt.Te.states;
  if rh.He.edges <> rt.Te.edges then
    Alcotest.failf "%s: edges %d vs %d" label rh.He.edges rt.Te.edges;
  if List.length rh.He.runs <> List.length rt.Te.runs then
    Alcotest.failf "%s: runs %d vs %d" label (List.length rh.He.runs)
      (List.length rt.Te.runs);
  if
    not
      (List.for_all2
         (fun (a : He.run) (b : Te.run) -> B.equal a.He.root b.Te.root)
         rh.He.runs rt.Te.runs)
  then Alcotest.failf "%s: run roots differ" label;
  if He.deadlock_free rh <> Te.deadlock_free rt then
    Alcotest.failf "%s: deadlock verdicts differ" label;
  if
    not
      (List.equal
         (List.equal B.equal)
         (witness_markings rh.He.deadlocks)
         (witness_markings_t rt.Te.deadlocks))
  then Alcotest.failf "%s: witness markings differ" label;
  if rh.He.stop <> rt.Te.stop then
    Alcotest.failf "%s: stop reasons differ" label

let zoo () =
  List.iter
    (fun net -> check_engines ~label:net.Petri.Net.name net)
    [
      Models.Figures.fig1;
      Models.Figures.fig2 4;
      Models.Figures.fig2 8;
      Models.Nsdp.make 2;
      Models.Nsdp.make 4;
      Models.Nsdp.make 6;
      Models.Asat.make 2;
      Models.Asat.make 4;
      Models.Over.make 2;
      Models.Over.make 4;
      Models.Rw.make 3;
      Models.Rw.make 6;
      Models.Scheduler.make 3;
    ]

let zoo_stepwise () =
  List.iter
    (fun net ->
      check_engines
        ~reduction_pair:(He.Stepwise, Te.Stepwise)
        ~label:(net.Petri.Net.name ^ " (stepwise)")
        net)
    [ Models.Figures.fig2 4; Models.Nsdp.make 3; Models.Rw.make 4 ]

let random_nets () =
  for seed = 0 to 149 do
    let net = Models.Random_net.generate seed in
    check_engines ~label:(Printf.sprintf "random seed %d" seed) net
  done

let suite =
  [
    Alcotest.test_case "randomized op sequences" `Quick ops_random;
    Alcotest.test_case "products" `Quick product_equiv;
    Alcotest.test_case "hash-consing identity" `Quick hashcons_identity;
    Alcotest.test_case "engine equivalence on the zoo" `Quick zoo;
    Alcotest.test_case "engine equivalence, stepwise" `Quick zoo_stepwise;
    Alcotest.test_case "engine equivalence on random nets" `Slow random_nets;
  ]
