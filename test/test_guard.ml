(* Tests for the resource-governance layer: typed stop reasons,
   deadline and memory trips, pressure hooks, and the deterministic
   fault-injection schedule. *)

let stop_strings () =
  Alcotest.(check string) "completed" "completed"
    (Guard.string_of_stop Guard.Completed);
  Alcotest.(check string) "state_budget" "state_budget"
    (Guard.string_of_stop Guard.State_budget);
  Alcotest.(check string) "deadline" "deadline"
    (Guard.string_of_stop Guard.Deadline);
  Alcotest.(check string) "memory" "memory" (Guard.string_of_stop Guard.Memory);
  Alcotest.(check string) "cancelled" "cancelled"
    (Guard.string_of_stop Guard.Cancelled);
  Alcotest.(check string) "crashed" "crashed: boom"
    (Guard.string_of_stop (Guard.Crashed "boom"))

let deadline_trips () =
  Guard.with_guard ~deadline_s:0.0 (fun g ->
      (match Guard.poll_now g with
      | () -> Alcotest.fail "expired deadline did not trip"
      | exception Guard.Interrupted Guard.Deadline -> ()
      | exception Guard.Interrupted r ->
          Alcotest.failf "wrong reason %s" (Guard.string_of_stop r));
      (* Sticky: every later poll re-raises, including the masked one. *)
      (match Guard.poll g with
      | () -> Alcotest.fail "trip was not sticky"
      | exception Guard.Interrupted Guard.Deadline -> ());
      Alcotest.(check bool) "tripped recorded" true
        (Guard.tripped g = Some Guard.Deadline))

let generous_deadline_does_not_trip () =
  Guard.with_guard ~deadline_s:3600. (fun g ->
      for _ = 1 to 10_000 do
        Guard.poll g
      done;
      Alcotest.(check bool) "still clean" true (Guard.stop g = Guard.Completed))

let memory_trips () =
  (* Keep enough live data that the heap provably exceeds the budget,
     then poll: the direct heap check must trip even if no major
     collection (and hence no Gc alarm) happens in between. *)
  let ballast = Array.init (1 lsl 20) (fun i -> i) in
  Guard.with_guard ~mem_mb:4 (fun g ->
      (match Guard.poll_now g with
      | () -> Alcotest.fail "memory budget did not trip"
      | exception Guard.Interrupted Guard.Memory -> ());
      Alcotest.(check bool) "tripped recorded" true
        (Guard.tripped g = Some Guard.Memory));
  assert (Array.length ballast > 0)

let first_trip_wins () =
  let g = Guard.create () in
  Guard.trip g Guard.Deadline;
  Guard.trip g Guard.Memory;
  Alcotest.(check string) "first reason kept" "deadline"
    (Guard.string_of_stop (Guard.stop g));
  Guard.dispose g

let check_prefers_cancellation () =
  let token = Par.Cancel.create () in
  Par.Cancel.cancel token;
  Guard.with_guard ~deadline_s:0.0 (fun g ->
      match Guard.check_now ~cancel:token ~guard:g () with
      | () -> Alcotest.fail "nothing raised"
      | exception Par.Cancel.Cancelled -> ()
      | exception Guard.Interrupted _ ->
          Alcotest.fail "guard polled before the cancellation token")

let pressure_hooks_run () =
  let hits = ref 0 in
  Guard.on_memory_pressure (fun () -> incr hits);
  Guard.on_memory_pressure (fun () -> failwith "hook failure is swallowed");
  Guard.relieve_memory ();
  Alcotest.(check bool) "hook ran" true (!hits >= 1)

(* Engines under a pre-expired deadline: partial result, typed reason,
   no exception escaping the engine entry point. *)
let engines_report_deadline () =
  let net = Models.Nsdp.make 6 in
  Guard.with_guard ~deadline_s:0.0 (fun g ->
      let r = Petri.Reachability.explore ~guard:g net in
      Alcotest.(check bool) "explicit stopped by deadline" true
        (r.stop = Guard.Deadline));
  Guard.with_guard ~deadline_s:0.0 (fun g ->
      let r = Bddkit.Symbolic.analyse ~guard:g net in
      Alcotest.(check bool) "symbolic stopped by deadline" true
        (r.stop = Guard.Deadline));
  Guard.with_guard ~deadline_s:0.0 (fun g ->
      let r = Gpn.Explorer.analyse ~guard:g net in
      Alcotest.(check bool) "gpo stopped by deadline" true
        (r.stop = Guard.Deadline));
  Guard.with_guard ~deadline_s:0.0 (fun g ->
      let r = Petri.Stubborn.explore ~guard:g net in
      Alcotest.(check bool) "stubborn stopped by deadline" true
        (r.stop = Guard.Deadline))

let engine_run_degrades_on_oom () =
  (* A simulated allocation failure in the hot loop: Engine.run must
     recover to a degraded outcome, not crash and not report a verdict. *)
  let net = Models.Nsdp.make 4 in
  let o =
    Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
      ~sites:[ "reach.step" ] 7 (fun () ->
        Harness.Engine.run ~max_states:10_000 Harness.Engine.Full net)
  in
  Alcotest.(check bool) "degraded to a memory stop" true
    (o.Harness.Engine.stop = Guard.Memory);
  Alcotest.(check bool) "no verdict claimed" false o.Harness.Engine.deadlock;
  Alcotest.(check bool) "flagged truncated" true (Harness.Engine.truncated o)

(* The fault schedule is a pure function of (seed, site, call index):
   replaying the same seed replays the same injections. *)
let fault_schedule_deterministic () =
  let schedule seed =
    let hits = ref [] in
    Guard.Fault.with_faults ~rate:0.05 ~kinds:[ Guard.Fault.Oom ] seed
      (fun () ->
        for i = 0 to 999 do
          match Guard.Fault.probe "test.site" with
          | () -> ()
          | exception Out_of_memory -> hits := i :: !hits
        done;
        List.rev !hits)
  in
  let a = schedule 42 in
  let b = schedule 42 in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  Alcotest.(check bool) "faults actually injected" true (List.length a > 0);
  let c = schedule 43 in
  Alcotest.(check bool) "rate is roughly honoured" true
    (List.length c < 200)

let fault_sites_filter () =
  Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
    ~sites:[ "only.this" ] 1 (fun () ->
      (match Guard.Fault.probe "other.site" with
      | () -> ()
      | exception Out_of_memory -> Alcotest.fail "site filter ignored");
      match Guard.Fault.probe "only.this" with
      | () -> Alcotest.fail "rate 1.0 at an enabled site must inject"
      | exception Out_of_memory -> ())

let fault_budget () =
  Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
    ~max_injections:3 11 (fun () ->
      let injected = ref 0 in
      for _ = 1 to 100 do
        match Guard.Fault.probe "budget.site" with
        | () -> ()
        | exception Out_of_memory -> incr injected
      done;
      Alcotest.(check int) "injection budget respected" 3 !injected;
      Alcotest.(check int) "counter agrees" 3 (Guard.Fault.injected ()))

let disabled_probe_is_silent () =
  Guard.Fault.disable ();
  Alcotest.(check bool) "disabled" false (Guard.Fault.enabled ());
  for _ = 1 to 1000 do
    Guard.Fault.probe "reach.step"
  done

let suite =
  [
    Alcotest.test_case "stop strings" `Quick stop_strings;
    Alcotest.test_case "deadline trips and sticks" `Quick deadline_trips;
    Alcotest.test_case "generous deadline is silent" `Quick
      generous_deadline_does_not_trip;
    Alcotest.test_case "memory budget trips" `Quick memory_trips;
    Alcotest.test_case "first trip wins" `Quick first_trip_wins;
    Alcotest.test_case "cancellation precedes guard" `Quick
      check_prefers_cancellation;
    Alcotest.test_case "pressure hooks run" `Quick pressure_hooks_run;
    Alcotest.test_case "all engines report deadline" `Quick
      engines_report_deadline;
    Alcotest.test_case "Engine.run degrades on OOM" `Quick
      engine_run_degrades_on_oom;
    Alcotest.test_case "fault schedule deterministic" `Quick
      fault_schedule_deterministic;
    Alcotest.test_case "fault site filter" `Quick fault_sites_filter;
    Alcotest.test_case "fault injection budget" `Quick fault_budget;
    Alcotest.test_case "disabled probes are silent" `Quick
      disabled_probe_is_silent;
  ]
