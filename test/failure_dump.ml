(* Shared failure-artifact helper for the differential suites.

   When a conformance or certification property fails on a generated
   net, the assertion message alone is not enough to reproduce: the
   net itself (and the offending witness, when there is one) is dumped
   under [test-failures/] — which lands in
   [_build/default/test/test-failures/], where CI picks it up as an
   artifact — and the returned base path is embedded in the Alcotest
   failure message. *)

let dir = "test-failures"

let slug label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

(* Dump the net (textual [Petri.Parser] format, reloadable with
   [julie analyze -f ...]) and the optional witness (one transition
   name per line); returns the base path of the artifacts. *)
let dump ?trace ~label net =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let base = Filename.concat dir (slug label) in
  Petri.Parser.to_file (base ^ ".net") net;
  (match trace with
  | None -> ()
  | Some tr ->
      let oc = open_out (base ^ ".trace") in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun t ->
              output_string oc (Petri.Net.transition_name net t);
              output_char oc '\n')
            tr));
  base

(* Dump and fail in one go; the printf-style arguments describe the
   violated property. *)
let failf ?trace ~label net fmt =
  let base = dump ?trace ~label net in
  Format.kasprintf
    (fun msg -> Alcotest.failf "%s: %s (artifacts: %s.*)" label msg base)
    fmt

(* Seed count for the randomized sweeps, trimmable from the environment
   so CI can run a reduced but still seeded-deterministic sweep. *)
let seed_count ?(default = 200) () =
  match Sys.getenv_opt "GPO_TEST_SEEDS" with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> default)

(* Worker domains for the seeded sweeps, from GPO_TEST_JOBS (default 1:
   plain sequential loops).  0 means auto. *)
let test_jobs () =
  match Sys.getenv_opt "GPO_TEST_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some 0 -> Par.Pool.default_jobs ()
      | _ -> 1)

(* Run [f seed] for every seed below [n] (default {!seed_count}),
   distributing the seeds over a domain pool when GPO_TEST_JOBS asks
   for one.  Each seed's check is self-contained (its own generated
   net, its own artifact basename), so the result is order-independent;
   on failures the pool finishes every seed and re-raises the first
   failure, same as the sequential loop's. *)
let iter_seeds ?n f =
  let n = match n with Some n -> n | None -> seed_count () in
  match test_jobs () with
  | jobs when jobs <= 1 || n <= 1 ->
      for seed = 0 to n - 1 do
        f seed
      done
  | jobs ->
      Par.Pool.with_pool ~jobs:(min jobs n) (fun pool ->
          Par.Pool.iter pool f (List.init n Fun.id))
