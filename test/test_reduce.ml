(* Metamorphic differential suite for the structural reduction pipeline.

   The reduction rewrites a net into a smaller one that must answer the
   query identically, so the whole subsystem is testable from first
   principles without trusting any of its internals:

   - every engine's verdict on the reduced net must equal its verdict on
     the original (and the exhaustive ground truth), over the zoo and a
     seeded sweep of random safe nets;
   - every violated verdict produced through [~reduce:true] must carry a
     witness that replays — via [Harness.Certify] — against the
     {e original} net, i.e. the composed inverse mapping is exact;
   - each rule {e alone} must preserve its query (per-rule differentials
     with the explicit engine as oracle), fire on a hand-made net
     exhibiting its pattern, and leave a net without the pattern alone.

   Failures dump the offending net under [test-failures/]. *)

module E = Harness.Engine
module C = Harness.Certify
module R = Reduce
module Net = Petri.Net
module Bitset = Petri.Bitset
module B = Petri.Builder
module Sem = Petri.Semantics
module Trace = Petri.Trace

let max_states = 150_000

let ground_truth net =
  let r = Petri.Reachability.explore ~max_states net in
  if Petri.Reachability.truncated r then None else Some (r.deadlock_count > 0)

(* --- Full pipeline: engine differentials + certified lifting ---------- *)

(* One net through all four engines (hardened GPO) and the portfolio,
   with and without reduction: identical verdicts, no truncation, and
   every deadlock witness found on the reduced net certifies against
   the original after lifting. *)
let check_pipeline ~label net =
  match ground_truth net with
  | None -> ()
  | Some truth ->
      let red = R.run net in
      if R.ratio red < 1.0 then
        Failure_dump.failf ~label net "reduction grew the net (ratio %.2f)"
          (R.ratio red);
      let check_outcome engine (o : E.outcome) =
        if E.truncated o then
          Failure_dump.failf ~label net "%s stopped early (%s) on a small net"
            engine
            (Guard.string_of_stop o.stop);
        if o.deadlock <> truth then
          Failure_dump.failf ~label net
            "%s with reduction says deadlock=%b, exhaustive truth is %b" engine
            o.deadlock truth;
        if o.deadlock then
          match C.deadlock net o with
          | C.Certified _ -> ()
          | v ->
              Failure_dump.failf ?trace:o.witness ~label net
                "%s lifted witness failed certification against the original \
                 net: %a"
                engine (C.pp net) v
      in
      List.iter
        (fun kind ->
          let plain = E.run ~max_states ~witness:true ~gpo_scan:true kind net in
          let reduced =
            E.run ~max_states ~witness:true ~gpo_scan:true ~reduce:true kind net
          in
          if plain.deadlock <> reduced.deadlock then
            Failure_dump.failf ~label net
              "%s verdict flips under reduction: plain=%b reduced=%b"
              (E.name kind) plain.deadlock reduced.deadlock;
          check_outcome (E.name kind) reduced)
        E.all;
      let r =
        Harness.Portfolio.run ~max_states ~witness:true ~gpo_scan:true
          ~reduce:true net
      in
      check_outcome "portfolio" r.Harness.Portfolio.outcome

let zoo_pipeline () =
  List.iter
    (fun (net : Net.t) -> check_pipeline ~label:(net.name ^ "-reduce") net)
    Test_conformance.zoo

let random_pipeline () =
  Failure_dump.iter_seeds (fun seed ->
      let net = Models.Random_net.generate seed in
      check_pipeline ~label:(Printf.sprintf "reduce-seed-%d" seed) net)

(* --- Per-rule differentials ------------------------------------------- *)

(* Deadlock-preserving rules, one at a time: the reduced net must have a
   reachable dead marking iff the original does (explicit oracle both
   sides), and a witness found on the reduced net must lift through
   [R.lift] to a valid deadlock run of the original — exercising the
   inverse mapping of each rule in isolation. *)
let check_rule_deadlock ~label rule net =
  match ground_truth net with
  | None -> ()
  | Some truth ->
      let red = R.run ~rules:[ rule ] net in
      let o =
        E.run ~max_states ~witness:true ~gpo_scan:true E.Full red.R.net
      in
      if E.truncated o then
        Failure_dump.failf ~label net "%s: reduced-net exploration truncated"
          (R.rule_name rule);
      if o.deadlock <> truth then
        Failure_dump.failf ~label net
          "%s alone flips the deadlock verdict: original=%b reduced=%b"
          (R.rule_name rule) truth o.deadlock;
      if o.deadlock then
        match o.witness with
        | None ->
            Failure_dump.failf ~label net "%s: no witness on the reduced net"
              (R.rule_name rule)
        | Some tr ->
            let lifted = R.lift red tr in
            if not (Trace.is_valid net lifted) then
              Failure_dump.failf ~trace:lifted ~label net
                "%s: lifted witness does not replay on the original"
                (R.rule_name rule);
            let final = Trace.final_marking net lifted in
            if not (Sem.is_deadlock net final) then
              Failure_dump.failf ~trace:lifted ~label net
                "%s: lifted witness ends in a live marking" (R.rule_name rule)

(* Identity_transition preserves coverability only, so its differential
   compares safety ground truth: the cover (preset of transition 0,
   protected so it survives verbatim) is reachable on the original iff
   its image is reachable on the reduced net. *)
let check_identity_rule_safety ~label (net : Net.t) =
  match Bitset.elements net.pre.(0) with
  | [] -> ()
  | never_all -> (
      let property = { Petri.Safety.name = "red"; never_all } in
      let red = R.run ~query:R.Safety ~protect:never_all
          ~rules:[ R.Identity_transition ] net
      in
      let mapped =
        List.map
          (fun p ->
            match R.place_image red p with
            | Some p' -> p'
            | None ->
                Failure_dump.failf ~label net
                  "identity_transition dropped protected place %s"
                  (Net.place_name net p))
          never_all
      in
      let property' = { Petri.Safety.name = "red"; never_all = mapped } in
      match
        ( Petri.Safety.violated_explicit ~max_states net property,
          Petri.Safety.violated_explicit ~max_states red.R.net property' )
      with
      | exception Failure _ -> ()
      | original, reduced ->
          if original <> reduced then
            Failure_dump.failf ~label net
              "identity_transition flips coverability: original=%b reduced=%b"
              original reduced)

let deadlock_rules =
  List.filter (R.preserves R.Deadlock) R.all_rules

let per_rule_zoo () =
  List.iter
    (fun (net : Net.t) ->
      List.iter
        (fun rule ->
          check_rule_deadlock
            ~label:(Printf.sprintf "%s-%s" net.name (R.rule_name rule))
            rule net)
        deadlock_rules;
      check_identity_rule_safety ~label:(net.name ^ "-identity-safety") net)
    Test_conformance.zoo

let per_rule_random () =
  Failure_dump.iter_seeds (fun seed ->
      let net = Models.Random_net.generate seed in
      List.iter
        (fun rule ->
          check_rule_deadlock
            ~label:(Printf.sprintf "seed-%d-%s" seed (R.rule_name rule))
            rule net)
        deadlock_rules;
      check_identity_rule_safety
        ~label:(Printf.sprintf "seed-%d-identity-safety" seed)
        net)

(* --- Rule-specific unit nets: must fire / must not fire ---------------- *)

let sizes (net : Net.t) = (net.n_places, net.n_transitions)

let expect_sizes ~label r expected =
  if sizes r.R.net <> expected then
    Failure_dump.failf ~label r.R.original
      "expected reduction to %d places / %d transitions, got %d / %d"
      (fst expected) (snd expected) r.R.net.Net.n_places
      r.R.net.Net.n_transitions

let expect_identity ~label r =
  if not (R.is_identity r) then
    Failure_dump.failf ~label r.R.original
      "rule fired on a net without its pattern: %a" R.pp_summary r

let dead_transition_units () =
  (* Criterion (a): an input place with no producers, initially empty. *)
  let b = B.create "dead-producerless" in
  let p0 = B.place b ~marked:true "p0" in
  let p1 = B.place b "p1" in
  ignore (B.transition b "live" ~pre:[ p0 ] ~post:[]);
  ignore (B.transition b "dead" ~pre:[ p1 ] ~post:[ p0 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Dead_transition ] net in
  expect_sizes ~label:"dead-producerless" r (2, 1);
  (* Criterion (b): a P-semiflow bound.  y = (1,1,1) caps the token
     count at 1, so the transition needing p0 and p1 at once is dead —
     and only the semiflow sees it: both places have producers. *)
  let b = B.create "dead-semiflow" in
  let p0 = B.place b ~marked:true "p0" in
  let p1 = B.place b "p1" in
  let p2 = B.place b "p2" in
  ignore (B.transition b "move" ~pre:[ p0 ] ~post:[ p1 ]);
  ignore (B.transition b "back" ~pre:[ p1 ] ~post:[ p0 ]);
  ignore (B.transition b "both" ~pre:[ p0; p1 ] ~post:[ p2; p0 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Dead_transition ] net in
  expect_sizes ~label:"dead-semiflow" r (3, 2);
  (* Must not fire: every transition of nsdp-2 can fire. *)
  expect_identity ~label:"dead-not"
    (R.run ~rules:[ R.Dead_transition ] (Models.Nsdp.make 2))

let unread_place_units () =
  let b = B.create "unread" in
  let p0 = B.place b ~marked:true "p0" in
  let p1 = B.place b "sink" in
  ignore (B.transition b "t" ~pre:[ p0 ] ~post:[ p1 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Unread_place ] net in
  expect_sizes ~label:"unread" r (1, 1);
  (* Must not fire: nsdp reads every place. *)
  expect_identity ~label:"unread-not"
    (R.run ~rules:[ R.Unread_place ] (Models.Nsdp.make 2))

let constant_place_units () =
  let b = B.create "constant" in
  let p0 = B.place b ~marked:true "p0" in
  let c = B.place b ~marked:true "const" in
  let p1 = B.place b "p1" in
  ignore (B.transition b "t" ~pre:[ c; p0 ] ~post:[ c; p1 ]);
  ignore (B.transition b "u" ~pre:[ c; p1 ] ~post:[ c; p0 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Constant_place ] net in
  expect_sizes ~label:"constant" r (2, 2);
  (* Must not fire: [c] unmarked is not constant. *)
  let b = B.create "constant-not" in
  let p0 = B.place b ~marked:true "p0" in
  let c = B.place b "const" in
  let p1 = B.place b "p1" in
  ignore (B.transition b "t" ~pre:[ c; p0 ] ~post:[ c; p1 ]);
  ignore (B.transition b "fill" ~pre:[ p0 ] ~post:[ c ]);
  ignore (B.transition b "u" ~pre:[ p1 ] ~post:[ p0 ]);
  expect_identity ~label:"constant-not"
    (R.run ~rules:[ R.Constant_place ] (B.build b))

let duplicate_place_units () =
  let b = B.create "dup-place" in
  let p0 = B.place b ~marked:true "p0" in
  let q1 = B.place b "copy1" in
  let q2 = B.place b "copy2" in
  ignore (B.transition b "t" ~pre:[ p0 ] ~post:[ q1; q2 ]);
  ignore (B.transition b "u" ~pre:[ q1; q2 ] ~post:[ p0 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Duplicate_place ] net in
  expect_sizes ~label:"dup-place" r (2, 2);
  (* Must not fire: different initial markings are not duplicates. *)
  let b = B.create "dup-place-not" in
  let p0 = B.place b ~marked:true "p0" in
  let q1 = B.place b ~marked:true "copy1" in
  let q2 = B.place b "copy2" in
  ignore (B.transition b "t" ~pre:[ p0 ] ~post:[ q1; q2 ]);
  ignore (B.transition b "u" ~pre:[ q1; q2 ] ~post:[ p0 ]);
  expect_identity ~label:"dup-place-not"
    (R.run ~rules:[ R.Duplicate_place ] (B.build b))

let duplicate_transition_units () =
  let b = B.create "dup-trans" in
  let p0 = B.place b ~marked:true "p0" in
  let p1 = B.place b "p1" in
  ignore (B.transition b "t" ~pre:[ p0 ] ~post:[ p1 ]);
  ignore (B.transition b "t-again" ~pre:[ p0 ] ~post:[ p1 ]);
  ignore (B.transition b "u" ~pre:[ p1 ] ~post:[ p0 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Duplicate_transition ] net in
  expect_sizes ~label:"dup-trans" r (2, 2);
  expect_identity ~label:"dup-trans-not"
    (R.run ~rules:[ R.Duplicate_transition ] (Models.Nsdp.make 2))

let identity_transition_units () =
  let b = B.create "identity" in
  let p0 = B.place b ~marked:true "p0" in
  let p1 = B.place b "p1" in
  ignore (B.transition b "noop" ~pre:[ p0 ] ~post:[ p0 ]);
  ignore (B.transition b "t" ~pre:[ p0 ] ~post:[ p1 ]);
  let net = B.build b in
  let r = R.run ~query:R.Safety ~rules:[ R.Identity_transition ] net in
  expect_sizes ~label:"identity" r (2, 1);
  (* The rule is safety-only: a deadlock-query run must filter it out
     even when asked for explicitly — removing the self-loop could
     fabricate a deadlock. *)
  expect_identity ~label:"identity-deadlock-filtered"
    (R.run ~query:R.Deadlock ~rules:[ R.Identity_transition ] net)

let agglomeration_units () =
  let b = B.create "agglo" in
  let p0 = B.place b ~marked:true "p0" in
  let mid = B.place b "mid" in
  let p2 = B.place b "end" in
  ignore (B.transition b "a" ~pre:[ p0 ] ~post:[ mid ]);
  ignore (B.transition b "b" ~pre:[ mid ] ~post:[ p2 ]);
  let net = B.build b in
  let r = R.run ~rules:[ R.Agglomeration ] net in
  expect_sizes ~label:"agglo" r (2, 1);
  (match R.lift r [ 0 ] with
  | [ 0; 1 ] -> ()
  | lifted ->
      Failure_dump.failf ~trace:lifted ~label:"agglo" net
        "fused transition lifts to the wrong sequence");
  if not (Trace.is_valid net (R.lift r [ 0 ])) then
    Failure_dump.failf ~label:"agglo" net "lifted a;b does not replay";
  (* Must not fire: an initially marked intermediate place breaks the
     pendency invariant. *)
  let b = B.create "agglo-not" in
  let p0 = B.place b ~marked:true "p0" in
  let mid = B.place b ~marked:true "mid" in
  let p2 = B.place b "end" in
  ignore (B.transition b "a" ~pre:[ p0 ] ~post:[ mid ]);
  ignore (B.transition b "b" ~pre:[ mid ] ~post:[ p2 ]);
  expect_identity ~label:"agglo-not"
    (R.run ~rules:[ R.Agglomeration ] (B.build b));
  (* On rw-3 the serial reading.i chains fuse: startR.0;endR.0 becomes
     one transition named after both halves. *)
  let rw = Models.Rw.make 3 in
  let r = R.run ~rules:[ R.Agglomeration ] rw in
  match Net.transition_index r.R.net "startR.0+endR.0" with
  | _ -> ()
  | exception Not_found ->
      Failure_dump.failf ~label:"agglo-rw" rw
        "expected fused transition startR.0+endR.0 in the reduced net"

(* --- Protection and degradation --------------------------------------- *)

let protect_survives () =
  List.iter
    (fun (net : Net.t) ->
      let all_places = List.init net.n_places Fun.id in
      let protect = List.filteri (fun i _ -> i mod 2 = 0) all_places in
      let r = R.run ~query:R.Safety ~protect net in
      List.iter
        (fun p ->
          match R.place_image r p with
          | Some p' ->
              if
                not
                  (String.equal (Net.place_name net p)
                     (Net.place_name r.R.net p'))
              then
                Failure_dump.failf ~label:(net.name ^ "-protect") net
                  "protected place %s maps to differently-named %s"
                  (Net.place_name net p)
                  (Net.place_name r.R.net p')
          | None ->
              Failure_dump.failf ~label:(net.name ^ "-protect") net
                "protected place %s was removed" (Net.place_name net p))
        protect)
    Test_conformance.zoo

let suite =
  [
    Alcotest.test_case "rule units: dead transition" `Quick
      dead_transition_units;
    Alcotest.test_case "rule units: unread place" `Quick unread_place_units;
    Alcotest.test_case "rule units: constant place" `Quick constant_place_units;
    Alcotest.test_case "rule units: duplicate place" `Quick
      duplicate_place_units;
    Alcotest.test_case "rule units: duplicate transition" `Quick
      duplicate_transition_units;
    Alcotest.test_case "rule units: identity transition" `Quick
      identity_transition_units;
    Alcotest.test_case "rule units: agglomeration" `Quick agglomeration_units;
    Alcotest.test_case "protected places survive" `Quick protect_survives;
    Alcotest.test_case "zoo: engines agree, witnesses lift" `Quick zoo_pipeline;
    Alcotest.test_case "zoo: each rule alone preserves its query" `Quick
      per_rule_zoo;
    Alcotest.test_case "random: engines agree, witnesses lift" `Slow
      random_pipeline;
    Alcotest.test_case "random: each rule alone preserves its query" `Slow
      per_rule_random;
  ]
