(* The verification service: content-addressed result cache soundness,
   batch scheduling (admission control, in-batch dedupe), per-job fault
   containment, and the wire protocol.

   The cache-identity sweeps assert the central service invariant: a
   cache hit returns the byte-identical Report JSON of the run that
   populated the entry, and never crosses engine configurations or
   semantics versions. *)

module P = Serve.Protocol
module S = Serve.Scheduler
module RC = Harness.Result_cache
module J = Gpo_obs.Json

(* Scoped-capture metrics only record under an installed sink — run
   every scheduler test the way the server runs. *)
let with_sink f =
  if Gpo_obs.enabled () then f ()
  else begin
    Gpo_obs.install Gpo_obs.null_sink;
    Fun.protect ~finally:Gpo_obs.uninstall f
  end

let with_scheduler ?jobs ?queue_limit f =
  with_sink @@ fun () ->
  RC.invalidate ();
  let sched = S.create ?jobs ?queue_limit () in
  Fun.protect ~finally:(fun () -> S.shutdown sched) (fun () -> f sched)

let submit_one sched job =
  match S.submit sched [ job ] with
  | P.Results [ r ] -> r
  | P.Results rs ->
      Alcotest.failf "expected one result, got %d" (List.length rs)
  | P.Rejected _ -> Alcotest.fail "unexpected admission reject"
  | _ -> Alcotest.fail "unexpected scheduler response"

let report_string (r : P.job_result) =
  match r.report with
  | Some j -> J.to_string j
  | None -> Alcotest.failf "job %s: no report (status failed?)" r.id

let check_ok (r : P.job_result) =
  match r.status with
  | P.Ok -> ()
  | P.Failed msg -> Alcotest.failf "job %s failed: %s" r.id msg

(* The nets of the identity sweep: the model zoo (small instances of
   every family, deadlocking and clean) plus seeded random nets. *)
let zoo =
  [
    ("fig1", Models.Figures.fig1);
    ("fig2-4", Models.Figures.fig2 4);
    ("fig3", Models.Figures.fig3);
    ("fig5", Models.Figures.fig5);
    ("fig7", Models.Figures.fig7);
    ("nsdp-3", Models.Nsdp.make 3);
    ("over-3", Models.Over.make 3);
    ("rw-5", Models.Rw.make 5);
  ]

let engines = [ "full"; "po"; "smv"; "gpo" ]

(* ------------------------------------------------------------------ *)
(* Net digest                                                          *)

let test_digest_stable () =
  List.iter
    (fun (name, net) ->
      let d = Petri.Net.digest net in
      Alcotest.(check string)
        (name ^ " digest is deterministic")
        d
        (Petri.Net.digest net);
      (* The digest addresses content, so the parser round trip — a
         structurally identical net built from the rendering — keeps
         it. *)
      let reparsed = Petri.Parser.of_string (Petri.Parser.to_string net) in
      Alcotest.(check string)
        (name ^ " digest survives the parser round trip")
        d
        (Petri.Net.digest reparsed))
    zoo;
  let digests = List.map (fun (_, net) -> Petri.Net.digest net) zoo in
  Alcotest.(check int)
    "distinct nets have distinct digests"
    (List.length zoo)
    (List.length (List.sort_uniq compare digests))

(* ------------------------------------------------------------------ *)
(* Cache identity: hits are byte-identical to the populating run       *)

let check_hit_identity sched job fresh_net =
  let miss = submit_one sched job in
  check_ok miss;
  Alcotest.(check bool) "first submission is a miss" false miss.P.cached;
  let hit = submit_one sched job in
  check_ok hit;
  Alcotest.(check bool) "second submission is a hit" true hit.P.cached;
  Alcotest.(check string)
    "hit report is byte-identical to the populating run"
    (report_string miss) (report_string hit);
  (* The verdict also agrees with an independent fresh computation in
     the service configuration. *)
  (match (fresh_net, job.P.engine) with
  | Some net, ("full" | "po" | "smv" | "gpo") ->
      let kind =
        match job.P.engine with
        | "full" -> Harness.Engine.Full
        | "po" -> Harness.Engine.Stubborn
        | "smv" -> Harness.Engine.Symbolic
        | _ -> Harness.Engine.Gpo
      in
      let fresh =
        Harness.Engine.run ~max_states:job.P.max_states ~witness:job.P.witness
          ~gpo_scan:true kind net
      in
      let flag j name =
        match J.member name j with Some (J.Bool b) -> b | _ -> false
      in
      (match miss.P.report with
      | Some rj ->
          Alcotest.(check bool)
            "cached verdict agrees with a fresh run"
            fresh.Harness.Engine.deadlock (flag rj "deadlock")
      | None -> ())
  | _ -> ())

let test_cache_identity_zoo () =
  with_scheduler @@ fun sched ->
  List.iter
    (fun (name, net) ->
      let text = Petri.Parser.to_string net in
      List.iter
        (fun engine ->
          ignore name;
          let job = P.job ~engine (P.Inline text) in
          check_hit_identity sched job (Some net))
        engines)
    zoo

let test_cache_identity_random () =
  with_scheduler @@ fun sched ->
  for seed = 1 to 10 do
    let job = P.job ~engine:"gpo" (P.Model { id = "random"; size = seed }) in
    check_hit_identity sched job (Some (Models.Random_net.generate seed))
  done

let test_cache_identity_portfolio () =
  (* The portfolio races nondeterministically, so only the hit-identity
     half holds: whatever outcome won the populating run is what every
     hit returns. *)
  with_scheduler @@ fun sched ->
  let job = P.job ~engine:"portfolio" (P.Model { id = "nsdp"; size = 3 }) in
  check_hit_identity sched job None

(* ------------------------------------------------------------------ *)
(* Hits never cross configurations or semantics versions               *)

let test_no_cross_config_hits () =
  with_scheduler @@ fun sched ->
  let base = P.job ~engine:"gpo" (P.Model { id = "nsdp"; size = 3 }) in
  let first = submit_one sched base in
  Alcotest.(check bool) "base populates" false first.P.cached;
  (* Every variation of the engine configuration (or the property) is a
     different question: it must not be served from the base entry. *)
  let variants =
    [
      ("engine", { base with P.engine = "full" });
      ("max_states", { base with P.max_states = 100_000 });
      ("witness", { base with P.witness = false });
      ("reduce", { base with P.reduce = true });
      ("property", { base with P.cover = [ "think.0"; "askL.0" ] });
    ]
  in
  List.iter
    (fun (what, job) ->
      let r = submit_one sched job in
      check_ok r;
      Alcotest.(check bool)
        (Printf.sprintf "differing %s is not served from cache" what)
        false r.P.cached)
    variants;
  (* Same config again: still a hit, the variants did not evict it. *)
  let again = submit_one sched base in
  Alcotest.(check bool) "base entry survived" true again.P.cached

let test_semantics_version_isolates () =
  let digest = Petri.Net.digest (Models.Nsdp.make 3) in
  let key semantics =
    RC.key ~semantics ~digest ~engine:"gpo" ~max_states:1000 ~witness:true
      ~gpo_scan:true ~reduce:false ()
  in
  Alcotest.(check bool)
    "semantics stamp lands in the rendered key" true
    (Astring_contains.contains RC.semantics_version
       (RC.render (key RC.semantics_version)));
  with_sink @@ fun () ->
  RC.invalidate ();
  let o =
    Harness.Engine.run ~witness:true ~gpo_scan:true Harness.Engine.Gpo
      (Models.Nsdp.make 3)
  in
  Alcotest.(check bool) "outcome stored" true
    (RC.store (key RC.semantics_version) o);
  Alcotest.(check bool)
    "a bumped semantics version never sees old entries" true
    (RC.find (key "gpo-semantics-NEXT") = None);
  Alcotest.(check bool) "the original version still hits" true
    (RC.find (key RC.semantics_version) <> None)

let test_jobs_not_in_key () =
  (* Worker count is excluded from the key: the engines are
     bit-identical across worker counts, so jobs=2 may be served the
     jobs=1 result. *)
  with_scheduler @@ fun sched ->
  let j1 = P.job ~engine:"gpo" ~jobs:1 (P.Model { id = "nsdp"; size = 3 }) in
  let j2 = { j1 with P.jobs = 2 } in
  let first = submit_one sched j1 in
  check_ok first;
  let second = submit_one sched j2 in
  Alcotest.(check bool) "jobs=2 hits the jobs=1 entry" true second.P.cached;
  Alcotest.(check string) "and the reports are byte-identical"
    (report_string first) (report_string second)

(* ------------------------------------------------------------------ *)
(* Store refuses partial results; hits re-verify their witness         *)

let test_store_refuses_truncated () =
  with_sink @@ fun () ->
  RC.invalidate ();
  let net = Models.Nsdp.make 6 in
  let o =
    Harness.Engine.run ~max_states:50 ~gpo_scan:true Harness.Engine.Full net
  in
  Alcotest.(check bool) "the run was truncated" true
    (Harness.Engine.truncated o);
  let key =
    RC.key ~digest:(Petri.Net.digest net) ~engine:"full" ~max_states:50
      ~witness:false ~gpo_scan:true ~reduce:false ()
  in
  Alcotest.(check bool) "store refuses a truncated outcome" false
    (RC.store key o);
  Alcotest.(check bool) "nothing was cached" true (RC.find key = None)

let test_hit_reverification_evicts () =
  with_sink @@ fun () ->
  RC.invalidate ();
  let net = Models.Nsdp.make 3 in
  let o =
    Harness.Engine.run ~witness:true ~gpo_scan:true Harness.Engine.Gpo net
  in
  Alcotest.(check bool) "nsdp-3 deadlocks with a witness" true
    (o.Harness.Engine.deadlock && o.Harness.Engine.witness <> None);
  let key =
    RC.key ~digest:(Petri.Net.digest net) ~engine:"gpo" ~max_states:5_000_000
      ~witness:true ~gpo_scan:true ~reduce:false ()
  in
  (* A corrupted entry — its witness no longer replays — must be
     evicted on hit, not served. *)
  let corrupt = { o with Harness.Engine.witness = Some [ 0; 0; 0; 0; 0 ] } in
  Alcotest.(check bool) "corrupt entry stores (stop = Completed)" true
    (RC.store key corrupt);
  Alcotest.(check bool) "verified hit evicts the corrupt entry" true
    (RC.find ~verify_net:net key = None);
  Alcotest.(check int) "the entry is gone" 0 (RC.size ());
  (* The honest outcome passes the same gate. *)
  Alcotest.(check bool) "honest entry stores" true (RC.store key o);
  Alcotest.(check bool) "honest entry survives verification" true
    (RC.find ~verify_net:net key <> None)

let test_memory_pressure_invalidates () =
  with_sink @@ fun () ->
  RC.invalidate ();
  let gen = RC.generation () in
  let net = Models.Nsdp.make 3 in
  let o = Harness.Engine.run ~gpo_scan:true Harness.Engine.Gpo net in
  let key =
    RC.key ~digest:(Petri.Net.digest net) ~engine:"gpo" ~max_states:5_000_000
      ~witness:false ~gpo_scan:true ~reduce:false ()
  in
  Alcotest.(check bool) "stored" true (RC.store key o);
  Alcotest.(check int) "one entry" 1 (RC.size ());
  (* The cache registered with Guard.on_memory_pressure: a pressure
     event (mem budget trip recovery, Out_of_memory) sweeps it. *)
  Guard.relieve_memory ();
  Alcotest.(check int) "pressure swept the cache" 0 (RC.size ());
  Alcotest.(check bool) "generation bumped" true (RC.generation () > gen);
  Alcotest.(check bool) "no stale hit" true (RC.find key = None)

(* ------------------------------------------------------------------ *)
(* Admission control and dedupe                                        *)

let test_admission_control () =
  with_scheduler ~queue_limit:2 @@ fun sched ->
  let job n = P.job ~engine:"gpo" (P.Model { id = "fig2"; size = n }) in
  (match S.submit sched [ job 3; job 4; job 5 ] with
  | P.Rejected r ->
      Alcotest.(check string) "typed reason" "queue_full" r.P.reason;
      Alcotest.(check int) "limit" 2 r.P.limit;
      Alcotest.(check int) "batch" 3 r.P.batch;
      Alcotest.(check int) "depth at reject" 0 r.P.depth
  | _ -> Alcotest.fail "oversized batch must be rejected whole");
  Alcotest.(check int) "rejected batch leaves no residue" 0 (S.depth sched);
  (* A batch within the bound goes through afterwards. *)
  (match S.submit sched [ job 3; job 4 ] with
  | P.Results rs ->
      Alcotest.(check int) "both jobs answered" 2 (List.length rs);
      List.iter check_ok rs
  | _ -> Alcotest.fail "bounded batch must be admitted");
  Alcotest.(check int) "depth drains" 0 (S.depth sched)

let test_batch_dedupe () =
  with_scheduler @@ fun sched ->
  let j = P.job ~engine:"gpo" (P.Model { id = "nsdp"; size = 3 }) in
  let other = P.job ~engine:"gpo" (P.Model { id = "over"; size = 3 }) in
  match S.submit sched [ j; j; other; j ] with
  | P.Results [ a; b; c; d ] ->
      List.iter check_ok [ a; b; c; d ];
      Alcotest.(check bool) "first occurrence computes" false
        (a.P.cached || a.P.deduped);
      Alcotest.(check bool) "second occurrence is deduped" true b.P.deduped;
      Alcotest.(check bool) "distinct job is not deduped" false c.P.deduped;
      Alcotest.(check bool) "third occurrence is deduped" true d.P.deduped;
      Alcotest.(check string) "deduped report is byte-identical"
        (report_string a) (report_string b);
      Alcotest.(check bool) "results keep their slot ids" true
        (a.P.id = "job-0" && b.P.id = "job-1" && c.P.id = "job-2"
        && d.P.id = "job-3")
  | _ -> Alcotest.fail "expected four results"

(* ------------------------------------------------------------------ *)
(* Fault injection at serve.request: contained, never poisons          *)

let test_faults_never_poison () =
  with_scheduler @@ fun sched ->
  let job = P.job ~engine:"gpo" (P.Model { id = "nsdp"; size = 3 }) in
  (* Every request faults: the job fails, the batch survives, and
     nothing lands in the cache. *)
  Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
    ~sites:[ "serve.request" ] 42
    (fun () ->
      match S.submit sched [ job; job ] with
      | P.Results rs ->
          Alcotest.(check int) "both jobs answered" 2 (List.length rs);
          List.iter
            (fun (r : P.job_result) ->
              match r.status with
              | P.Failed _ -> ()
              | P.Ok -> Alcotest.fail "faulted job must report Failed")
            rs
      | _ -> Alcotest.fail "faulted batch still returns results");
  Alcotest.(check int) "no entry was poisoned into the cache" 0 (RC.size ());
  (* With the schedule disabled the same question gets a fresh, honest
     answer. *)
  let r = submit_one sched job in
  check_ok r;
  Alcotest.(check bool) "post-chaos run is a genuine miss" false r.P.cached

let test_chaos_sweep_cache_integrity () =
  (* Randomized fault schedules over a mixed batch: whatever fails, the
     cache only ever holds Completed outcomes (the invariant `store`
     enforces and chaos tries to break). *)
  with_scheduler @@ fun sched ->
  let batch =
    [
      P.job ~engine:"gpo" (P.Model { id = "nsdp"; size = 3 });
      P.job ~engine:"full" (P.Model { id = "over"; size = 3 });
      P.job ~engine:"po" (P.Model { id = "rw"; size = 5 });
    ]
  in
  for seed = 0 to 19 do
    Guard.Fault.with_faults ~rate:0.5
      ~kinds:[ Guard.Fault.Oom; Guard.Fault.Cancel ]
      ~sites:[ "serve.request" ] seed
      (fun () ->
        match S.submit sched batch with
        | P.Results rs -> Alcotest.(check int) "all answered" 3 (List.length rs)
        | _ -> Alcotest.fail "chaos batch still returns results");
    List.iter
      (fun (k, (o : Harness.Engine.outcome)) ->
        if o.stop <> Guard.Completed then
          Alcotest.failf "seed %d: non-Completed entry cached under %s" seed k)
      (RC.entries ())
  done

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let roundtrip_request r =
  match P.request_of_json (P.json_of_request r) with
  | Ok r' -> r'
  | Error msg -> Alcotest.failf "request roundtrip: %s" msg

let roundtrip_response r =
  match P.response_of_json (P.json_of_response r) with
  | Ok r' -> r'
  | Error msg -> Alcotest.failf "response roundtrip: %s" msg

let test_protocol_roundtrip () =
  let job =
    P.job ~id:"q1" ~cover:[ "a"; "b" ] ~engine:"portfolio" ~max_states:123
      ~witness:false ~reduce:true ~jobs:4 ~timeout_s:1.5 ~mem_mb:256
      (P.Inline "net n\n")
  in
  let model_job = P.job (P.Model { id = "nsdp"; size = 7 }) in
  (match roundtrip_request (P.Submit [ job; model_job ]) with
  | P.Submit [ j1; j2 ] ->
      Alcotest.(check bool) "job fields survive" true (j1 = job);
      Alcotest.(check bool) "model job survives" true (j2 = model_job)
  | _ -> Alcotest.fail "submit shape");
  List.iter
    (fun r ->
      Alcotest.(check bool) "control op roundtrips" true
        (roundtrip_request r = r))
    [ P.Ping; P.Stats; P.Shutdown ];
  let results =
    P.Results
      [
        {
          P.id = "q1";
          status = P.Ok;
          cached = true;
          deduped = false;
          certified = Some true;
          report = Some (J.Obj [ ("deadlock", J.Bool true) ]);
          metrics = J.Obj [ ("events", J.Int 3) ];
        };
        {
          P.id = "q2";
          status = P.Failed "boom";
          cached = false;
          deduped = true;
          certified = None;
          report = None;
          metrics = J.Null;
        };
      ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "response roundtrips" true
        (roundtrip_response r = r))
    [
      results;
      P.Rejected { reason = "queue_full"; limit = 8; depth = 6; batch = 4 };
      P.Pong;
      P.Stats_reply (J.Obj [ ("cache", J.Obj [ ("size", J.Int 1) ]) ]);
      P.Bye;
      P.Timed_out;
      P.Error "bad json";
    ]

let test_verdict_mapping () =
  let result ?report status =
    { P.id = "r"; status; cached = false; deduped = false; certified = None;
      report; metrics = J.Null }
  in
  let rep ~deadlock ~truncated =
    J.Obj [ ("deadlock", J.Bool deadlock); ("truncated", J.Bool truncated) ]
  in
  let check msg want r =
    Alcotest.(check bool) msg true (P.verdict_of_result r = want)
  in
  check "clean complete = holds" (Ok P.Holds)
    (result ~report:(rep ~deadlock:false ~truncated:false) P.Ok);
  check "deadlock = violated" (Ok P.Violated)
    (result ~report:(rep ~deadlock:true ~truncated:false) P.Ok);
  check "truncated deadlock is still violated" (Ok P.Violated)
    (result ~report:(rep ~deadlock:true ~truncated:true) P.Ok);
  check "truncated clean = inconclusive" (Ok P.Inconclusive)
    (result ~report:(rep ~deadlock:false ~truncated:true) P.Ok);
  check "failed job carries its message" (Error "boom")
    (result (P.Failed "boom"))

(* ------------------------------------------------------------------ *)
(* The daemon over a real socket                                       *)

let test_server_over_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "julie-test-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serve.Server.Unix_path path in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.serve ~jobs:1 ~queue_limit:8 endpoint)
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Serve.Client.shutdown endpoint) with _ -> ());
      Domain.join server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "server comes up" true
        (Serve.Client.wait_ready endpoint);
      let job = P.job ~engine:"gpo" (P.Model { id = "fig2"; size = 5 }) in
      let miss =
        match Serve.Client.submit endpoint [ job ] with
        | Ok (P.Results [ r ]) -> r
        | Ok _ -> Alcotest.fail "expected one result"
        | Error f -> Alcotest.failf "submit: %s" (Serve.Client.describe_failure f)
      in
      check_ok miss;
      Alcotest.(check bool) "first request misses" false miss.P.cached;
      let hit =
        match Serve.Client.submit endpoint [ job ] with
        | Ok (P.Results [ r ]) -> r
        | Ok _ -> Alcotest.fail "expected one result"
        | Error f -> Alcotest.failf "submit: %s" (Serve.Client.describe_failure f)
      in
      check_ok hit;
      Alcotest.(check bool) "second request hits over the wire" true
        hit.P.cached;
      Alcotest.(check string) "wire hit report is byte-identical"
        (report_string miss) (report_string hit);
      (* Per-request metrics rode back in the response. *)
      (match J.member "events" hit.P.metrics with
      | Some (J.Int n) ->
          Alcotest.(check bool) "request emitted events" true (n > 0)
      | _ -> Alcotest.fail "metrics summary missing from the response");
      match Serve.Client.stats endpoint with
      | Ok (P.Stats_reply stats) ->
          let cache = J.member "cache" stats in
          Alcotest.(check bool) "stats reply lists the cache" true
            (cache <> None)
      | Ok _ -> Alcotest.fail "expected stats reply"
      | Error f -> Alcotest.failf "stats: %s" (Serve.Client.describe_failure f))

(* ------------------------------------------------------------------ *)
(* Frame codec under hostile input                                     *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  ignore (Unix.write_substring fd s 0 (String.length s) : int)

let test_frame_clean_eof () =
  with_socketpair @@ fun a b ->
  Unix.close b;
  (match P.read_frame a with
  | P.Eof -> ()
  | _ -> Alcotest.fail "clean close reads as Eof")

let test_frame_truncated_header () =
  with_socketpair @@ fun a b ->
  write_raw b "\x00\x00";
  Unix.close b;
  (match P.read_frame a with
  | P.Bad (P.Frame_truncated _) -> ()
  | _ -> Alcotest.fail "short header is a typed truncation")

let test_frame_truncated_payload () =
  with_socketpair @@ fun a b ->
  write_raw b "\x00\x00\x00\x64partial";
  Unix.close b;
  (match P.read_frame a with
  | P.Bad (P.Frame_truncated _) -> ()
  | _ -> Alcotest.fail "mid-frame EOF is a typed truncation")

let test_frame_oversized () =
  with_socketpair @@ fun a b ->
  (* Length prefix of max_frame + 1: must come back typed, not as a
     64 MiB allocation attempt. *)
  write_raw b "\x04\x00\x00\x01";
  Unix.close b;
  (match P.read_frame a with
  | P.Bad (P.Frame_oversized n) ->
      Alcotest.(check int) "reported size" (P.max_frame + 1) n
  | _ -> Alcotest.fail "oversized prefix is typed")

let test_frame_garbage_json () =
  with_socketpair @@ fun a b ->
  P.write_frame b "this is not json {";
  (match P.recv a with
  | P.Payload (Error _) -> ()
  | _ -> Alcotest.fail "intact frame with broken JSON survives as Error");
  (* The connection is still usable afterwards. *)
  P.send b (P.json_of_request P.Ping);
  (match P.recv a with
  | P.Payload (Ok json) -> (
      match P.request_of_json json with
      | Ok P.Ping -> ()
      | _ -> Alcotest.fail "later frame decodes")
  | _ -> Alcotest.fail "connection survives garbage JSON")

let test_frame_timeout () =
  with_socketpair @@ fun a _b ->
  P.set_timeouts a 0.1;
  let t0 = Unix.gettimeofday () in
  (match P.read_frame a with
  | P.Bad P.Frame_timeout -> ()
  | _ -> Alcotest.fail "stalled peer reads as a typed timeout");
  Alcotest.(check bool) "timeout fires promptly" true
    (Unix.gettimeofday () -. t0 < 5.0)

let test_frame_fuzz_never_raises () =
  (* Seeded random byte streams: the reader must always return a typed
     incoming — any exception here is a server-killer. *)
  for seed = 0 to 19 do
    let rng = Random.State.make [| 0xF0_22; seed |] in
    with_socketpair @@ fun a b ->
    let len = 1 + Random.State.int rng 200 in
    let garbage =
      String.init len (fun _ -> Char.chr (Random.State.int rng 256))
    in
    write_raw b garbage;
    Unix.close b;
    let rec drain budget =
      if budget > 0 then
        match P.read_frame a with
        | P.Payload _ -> drain (budget - 1)
        | P.Eof | P.Bad _ -> ()
    in
    match drain 64 with
    | () -> ()
    | exception e ->
        Alcotest.failf "seed %d: frame reader raised %s" seed
          (Printexc.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* Slow clients must not head-of-line-block the daemon                 *)

let test_slow_client_times_out () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "julie-test-slow-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serve.Server.Unix_path path in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.serve ~jobs:1 ~queue_limit:8 ~io_timeout_s:0.3 endpoint)
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Serve.Client.shutdown endpoint) with _ -> ());
      Domain.join server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "server comes up" true
        (Serve.Client.wait_ready endpoint);
      (* A slow-loris client: connects, never sends a byte. *)
      let silent = Serve.Client.connect endpoint in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close silent with Unix.Unix_error _ -> ())
        (fun () ->
          (* A well-behaved client right behind it is served once the
             stalled connection blows its 0.3 s deadline — not never. *)
          let t0 = Unix.gettimeofday () in
          (match Serve.Client.ping endpoint with
          | Ok P.Pong -> ()
          | Ok _ -> Alcotest.fail "expected pong behind the slow client"
          | Error f ->
              Alcotest.failf "ping behind the slow client: %s"
                (Serve.Client.describe_failure f));
          Alcotest.(check bool) "served promptly after the deadline" true
            (Unix.gettimeofday () -. t0 < 10.0);
          (* The stalled client got the typed reply before the close. *)
          P.set_timeouts silent 10.0;
          match P.recv silent with
          | P.Payload (Ok json) -> (
              match P.response_of_json json with
              | Ok P.Timed_out -> ()
              | _ -> Alcotest.fail "slow client gets a typed timed_out reply")
          | _ -> Alcotest.fail "slow client gets a reply before the close"))

(* ------------------------------------------------------------------ *)
(* Client retry policy                                                 *)

let test_failure_classification () =
  List.iter
    (fun (f, want) ->
      Alcotest.(check bool)
        (Serve.Client.describe_failure f ^ " transience")
        want
        (Serve.Client.transient f))
    [
      (Serve.Client.Refused "connect: refused", true);
      (Serve.Client.Timed_out "deadline", true);
      (Serve.Client.Closed, false);
      (Serve.Client.Protocol_error "bad frame", false);
      (Serve.Client.Io "EPIPE", false);
    ]

let test_retry_gives_up_on_dead_endpoint () =
  let endpoint =
    Serve.Server.Unix_path
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "julie-test-nobody-%d.sock" (Unix.getpid ())))
  in
  let rng = Random.State.make [| 42 |] in
  let t0 = Unix.gettimeofday () in
  (match Serve.Client.submit ~retries:3 ~backoff_ms:1 ~rng endpoint [] with
  | Error (Serve.Client.Refused _) -> ()
  | Error f ->
      Alcotest.failf "expected Refused, got %s"
        (Serve.Client.describe_failure f)
  | Ok _ -> Alcotest.fail "nobody was listening");
  (* 3 retries at base 1 ms: the full-jitter ceilings sum to ~7 ms. *)
  Alcotest.(check bool) "jittered backoff stays near its ceiling" true
    (Unix.gettimeofday () -. t0 < 5.0)

let test_retry_rides_out_restart () =
  (* The daemon comes up late — exactly the restart window the retry
     policy exists for.  The client's first attempts are refused, a
     later one lands. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "julie-test-lateboot-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serve.Server.Unix_path path in
  let server =
    Domain.spawn (fun () ->
        Unix.sleepf 0.25;
        Serve.Server.serve ~jobs:1 ~queue_limit:8 endpoint)
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Serve.Client.shutdown endpoint) with _ -> ());
      Domain.join server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let rng = Random.State.make [| 7 |] in
      match Serve.Client.submit ~retries:20 ~backoff_ms:50 ~rng endpoint [] with
      | Ok (P.Results []) -> ()
      | Ok _ -> Alcotest.fail "expected an empty result list"
      | Error f ->
          Alcotest.failf "retries should ride out the restart: %s"
            (Serve.Client.describe_failure f))

let suite =
  [
    Alcotest.test_case "net digest is stable content addressing" `Quick
      test_digest_stable;
    Alcotest.test_case "cache hits are byte-identical (zoo, all engines)"
      `Slow test_cache_identity_zoo;
    Alcotest.test_case "cache hits are byte-identical (seeded random nets)"
      `Slow test_cache_identity_random;
    Alcotest.test_case "portfolio results cache like any other" `Quick
      test_cache_identity_portfolio;
    Alcotest.test_case "hits never cross engine configurations" `Quick
      test_no_cross_config_hits;
    Alcotest.test_case "semantics version isolates cache generations" `Quick
      test_semantics_version_isolates;
    Alcotest.test_case "worker count is excluded from the key" `Quick
      test_jobs_not_in_key;
    Alcotest.test_case "store refuses truncated outcomes" `Quick
      test_store_refuses_truncated;
    Alcotest.test_case "hits re-verify and evict corrupt witnesses" `Quick
      test_hit_reverification_evicts;
    Alcotest.test_case "memory pressure sweeps the cache" `Quick
      test_memory_pressure_invalidates;
    Alcotest.test_case "admission control rejects whole batches" `Quick
      test_admission_control;
    Alcotest.test_case "in-batch dedupe computes once" `Quick
      test_batch_dedupe;
    Alcotest.test_case "faults at serve.request never poison the cache"
      `Quick test_faults_never_poison;
    Alcotest.test_case "chaos sweep keeps only Completed entries" `Slow
      test_chaos_sweep_cache_integrity;
    Alcotest.test_case "wire protocol roundtrips" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "verdict mapping follows the exit-code contract"
      `Quick test_verdict_mapping;
    Alcotest.test_case "daemon serves cache hits over a Unix socket" `Quick
      test_server_over_socket;
    Alcotest.test_case "frame: clean EOF" `Quick test_frame_clean_eof;
    Alcotest.test_case "frame: truncated header is typed" `Quick
      test_frame_truncated_header;
    Alcotest.test_case "frame: mid-frame EOF is typed" `Quick
      test_frame_truncated_payload;
    Alcotest.test_case "frame: oversized prefix is typed" `Quick
      test_frame_oversized;
    Alcotest.test_case "frame: garbage JSON keeps the connection" `Quick
      test_frame_garbage_json;
    Alcotest.test_case "frame: stalled peer is a typed timeout" `Quick
      test_frame_timeout;
    Alcotest.test_case "frame: random byte fuzz never raises" `Quick
      test_frame_fuzz_never_raises;
    Alcotest.test_case "slow client times out, next client served" `Quick
      test_slow_client_times_out;
    Alcotest.test_case "failure transience classification" `Quick
      test_failure_classification;
    Alcotest.test_case "retry gives up on a dead endpoint" `Quick
      test_retry_gives_up_on_dead_endpoint;
    Alcotest.test_case "retry rides out a daemon restart" `Quick
      test_retry_rides_out_restart;
  ]
