(* Tests for the deep-observability layer: histogram bucketing and
   quantiles (including cross-domain merge), span misnesting recovery,
   Chrome trace-event export well-formedness, and the seq-vs-par
   differential for per-domain event tagging under Scoped.capture. *)

module Obs = Gpo_obs

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

(* 8 sub-buckets per octave bounds the relative error of a bucket
   midpoint at ~1/16 ≈ 6.25%; leave a little slack for the edges. *)
let rel_err_bound = 0.07

let test_hist_bucketing () =
  (* Monotone over a wide range, and the midpoint stays within the
     advertised relative error. *)
  let values =
    [ 1e-8; 3.7e-5; 0.001; 0.015; 0.5; 1.0; 1.5; 7.0; 42.0; 1e3; 9.99e8 ]
  in
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let i = Obs.Dist.bucket_of_value v in
      Alcotest.(check bool)
        (Printf.sprintf "bucket index for %g in range" v)
        true
        (i >= 0 && i < Obs.Dist.bucket_count);
      Alcotest.(check bool)
        (Printf.sprintf "bucket index monotone at %g" v)
        true (i >= !prev);
      prev := i;
      let mid = Obs.Dist.bucket_mid i in
      let rel = Float.abs (mid -. v) /. v in
      Alcotest.(check bool)
        (Printf.sprintf "midpoint of bucket(%g)=%g within %.0f%%" v mid
           (rel_err_bound *. 100.))
        true (rel <= rel_err_bound))
    values;
  (* Non-positive values land in the underflow bucket. *)
  Alcotest.(check int) "zero underflows" 0 (Obs.Dist.bucket_of_value 0.0);
  Alcotest.(check int) "negative underflows" 0 (Obs.Dist.bucket_of_value (-3.0));
  Alcotest.(check int) "huge overflows"
    (Obs.Dist.bucket_count - 1)
    (Obs.Dist.bucket_of_value 1e300)

let test_hist_quantiles () =
  Obs.reset ();
  let d = Obs.Dist.make "test.hist.quantiles" in
  for i = 1 to 1000 do
    Obs.Dist.observe_int d i
  done;
  Alcotest.(check int) "count" 1000 (Obs.Dist.count d);
  let check_q q expected =
    let v = Obs.Dist.quantile d q in
    let rel = Float.abs (v -. expected) /. expected in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f=%g near %g" (q *. 100.) v expected)
      true (rel <= rel_err_bound)
  in
  check_q 0.50 500.0;
  check_q 0.90 900.0;
  check_q 0.99 990.0;
  (* The extremes are clamped to the exact observed min/max. *)
  Alcotest.(check (float 0.0)) "q0 is min" 1.0 (Obs.Dist.quantile d 0.0);
  Alcotest.(check (float 0.0)) "q1 is max" 1000.0 (Obs.Dist.quantile d 1.0);
  (* Empty distribution: quantile is nan. *)
  let e = Obs.Dist.make "test.hist.empty" in
  Alcotest.(check bool) "empty quantile nan" true
    (Float.is_nan (Obs.Dist.quantile e 0.5))

let test_hist_snapshot_stats () =
  Obs.reset ();
  let d = Obs.Dist.make "test.hist.snap" in
  List.iter (Obs.Dist.observe d) [ 1.0; 2.0; 3.0; 4.0 ];
  let snap = Obs.snapshot () in
  match List.assoc_opt "test.hist.snap" snap.Obs.dists with
  | None -> Alcotest.fail "dist missing from snapshot"
  | Some s ->
      Alcotest.(check int) "count" 4 s.Obs.count;
      Alcotest.(check (float 0.0)) "min exact" 1.0 s.Obs.min;
      Alcotest.(check (float 0.0)) "max exact" 4.0 s.Obs.max;
      Alcotest.(check bool) "p50 in [min,max]" true
        (s.Obs.p50 >= s.Obs.min && s.Obs.p50 <= s.Obs.max);
      Alcotest.(check bool) "p50 <= p90 <= p99" true
        (s.Obs.p50 <= s.Obs.p90 && s.Obs.p90 <= s.Obs.p99)

let test_hist_cross_domain_merge () =
  (* Four domains observe into the same named distribution without any
     coordination; the shared atomic cell is the merge. *)
  Obs.reset ();
  let per_domain = 1000 in
  let spawn () =
    Domain.spawn (fun () ->
        let d = Obs.Dist.make "test.hist.par" in
        for i = 1 to per_domain do
          Obs.Dist.observe_int d i
        done)
  in
  let domains = List.init 4 (fun _ -> spawn ()) in
  List.iter Domain.join domains;
  let d = Obs.Dist.make "test.hist.par" in
  Alcotest.(check int) "no observation lost" (4 * per_domain)
    (Obs.Dist.count d);
  (* Sums of integers this small are exact in floating point. *)
  let expected_sum = float_of_int (4 * (per_domain * (per_domain + 1) / 2)) in
  let snap = Obs.snapshot () in
  (match List.assoc_opt "test.hist.par" snap.Obs.dists with
  | None -> Alcotest.fail "dist missing"
  | Some s ->
      Alcotest.(check (float 0.0)) "sum exact under contention" expected_sum
        s.Obs.sum;
      Alcotest.(check (float 0.0)) "min" 1.0 s.Obs.min;
      Alcotest.(check (float 0.0)) "max" (float_of_int per_domain) s.Obs.max);
  let p50 = Obs.Dist.quantile d 0.5 in
  let rel = Float.abs (p50 -. 500.0) /. 500.0 in
  Alcotest.(check bool) "merged p50 near 500" true (rel <= rel_err_bound)

(* ------------------------------------------------------------------ *)
(* Span misnesting                                                     *)

let misnested_count () =
  Obs.Counter.value (Obs.Counter.make "obs.span.misnested")

let test_span_misnesting_recovery () =
  let sink, _ = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      let a = Obs.Span.enter "a" in
      let b = Obs.Span.enter "b" in
      (* LIFO violation: exit the outer span first. *)
      Obs.Span.exit a;
      Alcotest.(check int) "violation counted" 1 (misnested_count ());
      (* b's token is gone from the stack: its exit is also flagged but
         leaves the stack alone. *)
      Obs.Span.exit b;
      Alcotest.(check int) "stale exit counted" 2 (misnested_count ());
      (* The stack recovered: a new span aggregates at the top level,
         not under a corrupted path. *)
      Obs.Span.time "c" (fun () -> ()));
  let snap = Obs.snapshot () in
  let names = List.map fst snap.Obs.spans in
  Alcotest.(check bool) "recovered span at top level" true
    (List.mem "c" names);
  Alcotest.(check bool) "no corrupted path" true
    (not (List.exists (fun n -> n = "a/c" || n = "a/b/c") names))

let test_span_double_exit () =
  let sink, _ = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      let a = Obs.Span.enter "dbl" in
      Obs.Span.exit a;
      Alcotest.(check int) "clean exit not counted" 0 (misnested_count ());
      Obs.Span.exit a;
      Alcotest.(check int) "double exit counted" 1 (misnested_count ());
      (* Nesting still works afterwards. *)
      Obs.Span.time "outer" (fun () -> Obs.Span.time "inner" (fun () -> ())));
  let snap = Obs.snapshot () in
  let names = List.map fst snap.Obs.spans in
  Alcotest.(check bool) "nesting intact after double exit" true
    (List.mem "outer/inner" names)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let trace_events json =
  match Obs.Json.member "traceEvents" json with
  | Some (Obs.Json.List evs) -> evs
  | _ -> Alcotest.fail "traceEvents missing or not a list"

let str_field name obj =
  match Obs.Json.member name obj with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let test_trace_well_formed () =
  let sink, read = Obs.Trace.collecting_sink () in
  Obs.with_sink sink (fun () ->
      Obs.meta "run" [ ("net", Obs.S "test") ];
      Obs.Span.time "work" (fun () ->
          Obs.Span.time "step" (fun () -> ());
          Obs.instant "guard.trip" [ ("reason", Obs.S "deadline") ];
          let c = Obs.Counter.make "test.trace.counter" in
          Obs.Counter.incr c));
  let events = read () in
  let json = Obs.Trace.json_of_events events in
  (* The rendering must survive a print/parse round trip through our
     own JSON implementation. *)
  let reparsed =
    match Obs.Json.of_string (Obs.Json.to_string json) with
    | Ok j -> j
    | Error m -> Alcotest.failf "trace JSON does not re-parse: %s" m
  in
  Alcotest.(check bool) "displayTimeUnit present" true
    (Obs.Json.member "displayTimeUnit" reparsed = Some (Obs.Json.String "ms"));
  let evs = trace_events reparsed in
  Alcotest.(check bool) "has events" true (List.length evs > 0);
  let count ph =
    List.length (List.filter (fun e -> str_field "ph" e = Some ph) evs)
  in
  List.iter
    (fun e ->
      match str_field "ph" e with
      | None -> Alcotest.fail "event without ph"
      | Some _ ->
          if str_field "name" e = None then Alcotest.fail "event without name")
    evs;
  Alcotest.(check int) "B/E balanced" (count "B") (count "E");
  Alcotest.(check bool) "span begins present" true (count "B" >= 2);
  Alcotest.(check bool) "instant present" true (count "i" >= 1);
  Alcotest.(check bool) "counter track present" true (count "C" >= 1);
  Alcotest.(check bool) "thread metadata present" true
    (List.exists (fun e -> str_field "name" e = Some "thread_name") evs)

let test_trace_sanitizes_unbalanced () =
  let mk kind name fields =
    { Obs.time = 0.001; kind; dom = 3; name; fields }
  in
  (* A stray end (no matching begin) and a dangling begin (never
     ended): the renderer must still produce balanced B/E. *)
  let events =
    [
      mk Obs.Span_v "stray" [ ("phase", Obs.S "end"); ("dur_s", Obs.F 0.1) ];
      mk Obs.Span_v "dangling" [ ("phase", Obs.S "begin") ];
      mk Obs.Instant_v "mark" [];
    ]
  in
  let json = Obs.Trace.json_of_events events in
  let evs = trace_events json in
  let count ph =
    List.length (List.filter (fun e -> str_field "ph" e = Some ph) evs)
  in
  Alcotest.(check int) "stray end dropped, dangling begin closed" (count "B")
    (count "E");
  Alcotest.(check int) "exactly one duration pair" 1 (count "B");
  Alcotest.(check bool) "dom becomes tid" true
    (List.exists
       (fun e ->
         str_field "ph" e = Some "B"
         && Obs.Json.member "tid" e = Some (Obs.Json.Int 3))
       evs)

(* ------------------------------------------------------------------ *)
(* Lock contention probe                                               *)

let test_lock_contention_probe () =
  Obs.reset ();
  let lock = Obs.Lock.make "test.contend" in
  let arrived = Atomic.make false in
  let sink, _read = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      (* Uncontended acquisition: fast path, a zero observation. *)
      Obs.Lock.acquire lock;
      let waiter =
        Domain.spawn (fun () ->
            let (), events =
              Obs.Scoped.capture (fun () ->
                  Atomic.set arrived true;
                  Obs.Lock.with_lock lock (fun () -> ()))
            in
            events)
      in
      (* Release only once the waiter is at the lock, and late enough
         that its [try_lock] has certainly failed — forcing the timed
         contended path. *)
      while not (Atomic.get arrived) do
        Domain.cpu_relax ()
      done;
      Unix.sleepf 0.05;
      Obs.Lock.release lock;
      let events = Domain.join waiter in
      let wait_spans =
        List.filter
          (fun e ->
            e.Obs.kind = Obs.Span_v && e.Obs.name = "lock.wait.test.contend")
          events
      in
      Alcotest.(check int) "wait span begin and end on waiter's track" 2
        (List.length wait_spans));
  let d = Obs.Dist.make "obs.lock.wait.test.contend" in
  Alcotest.(check int) "both acquisitions observed" 2 (Obs.Dist.count d);
  Alcotest.(check bool) "contended wait has positive duration" true
    (Obs.Dist.quantile d 1.0 > 0.0)

(* ------------------------------------------------------------------ *)
(* Per-domain tagging under Scoped.capture (seq vs par differential)   *)

let emit_burst n =
  for i = 1 to n do
    Obs.instant "burst" [ ("i", Obs.I i) ]
  done

let count_bursts events =
  List.length
    (List.filter
       (fun e -> e.Obs.kind = Obs.Instant_v && e.Obs.name = "burst")
       events)

let test_scoped_capture_no_loss () =
  let n = 200 in
  (* Sequential reference: every burst event reaches the sink. *)
  let sink, read = Obs.memory_sink () in
  Obs.with_sink sink (fun () -> emit_burst n);
  let seq_total = count_bursts (read ()) in
  Alcotest.(check int) "sequential reference" n seq_total;
  (* Parallel: four domains each capture a burst, the coordinator
     replays all buffers.  No event may be lost, and each must carry
     its emitting domain's tag. *)
  let sink, read = Obs.memory_sink () in
  Obs.with_sink sink (fun () ->
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                let (), events = Obs.Scoped.capture (fun () -> emit_burst n) in
                ((Domain.self () :> int), events)))
      in
      let captured = List.map Domain.join domains in
      List.iter
        (fun (dom, events) ->
          Alcotest.(check int) "captured everything the domain emitted" n
            (count_bursts events);
          List.iter
            (fun e ->
              Alcotest.(check int) "event tagged with emitting domain" dom
                e.Obs.dom)
            events;
          Obs.Scoped.replay events)
        captured);
  let replayed =
    List.filter
      (fun e -> e.Obs.kind = Obs.Instant_v && e.Obs.name = "burst")
      (read ())
  in
  Alcotest.(check int) "replay loses nothing" (4 * n) (List.length replayed);
  let doms =
    List.sort_uniq Int.compare (List.map (fun e -> e.Obs.dom) replayed)
  in
  Alcotest.(check int) "four distinct domain tags survive replay" 4
    (List.length doms)

let suite =
  [
    Alcotest.test_case "hist bucketing" `Quick test_hist_bucketing;
    Alcotest.test_case "hist quantiles" `Quick test_hist_quantiles;
    Alcotest.test_case "hist snapshot stats" `Quick test_hist_snapshot_stats;
    Alcotest.test_case "hist cross-domain merge" `Quick
      test_hist_cross_domain_merge;
    Alcotest.test_case "span misnesting recovery" `Quick
      test_span_misnesting_recovery;
    Alcotest.test_case "span double exit" `Quick test_span_double_exit;
    Alcotest.test_case "trace well-formed" `Quick test_trace_well_formed;
    Alcotest.test_case "trace sanitizes unbalanced spans" `Quick
      test_trace_sanitizes_unbalanced;
    Alcotest.test_case "lock contention probe" `Quick
      test_lock_contention_probe;
    Alcotest.test_case "scoped capture no loss" `Quick
      test_scoped_capture_no_loss;
  ]
