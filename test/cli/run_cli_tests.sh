#!/usr/bin/env bash
# Exit-code and output contract of the julie CLI.
#
#   0 — property holds / deadlock free (exhaustively)
#   1 — a deadlock or safety violation was found
#   2 — usage error, or an indeterminate verdict (budget exhausted,
#       certification failure)
#
# Run by dune (see ./dune) with the julie executable as $1.

set -u
JULIE="$1"
failures=0

# expect CODE DESCRIPTION -- ARGS...: run julie, compare the exit code.
# Output is kept for the grep helpers below.
out=""
expect() {
  local want="$1" desc="$2"
  shift 2
  [ "$1" = "--" ] && shift
  out="$("$JULIE" "$@" 2>&1)"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got (julie $*)"
    echo "$out" | sed 's/^/      /'
    failures=$((failures + 1))
  else
    echo "ok:   $desc (exit $got)"
  fi
}

# expect_out PATTERN DESCRIPTION: grep the output of the last expect.
expect_out() {
  local pattern="$1" desc="$2"
  if ! printf '%s\n' "$out" | grep -q "$pattern"; then
    echo "FAIL: $desc: output lacks /$pattern/"
    printf '%s\n' "$out" | sed 's/^/      /'
    failures=$((failures + 1))
  else
    echo "ok:   $desc"
  fi
}

# --- analyze: documented verdict codes --------------------------------

expect 1 "analyze finds the NSDP deadlock" -- analyze -m nsdp -n 4
expect 0 "analyze clears the overtake protocol" -- analyze -m over -n 3
expect 2 "analyze rejects an unknown model" -- analyze -m no-such-model
expect 2 "analyze with no net is a usage error" -- analyze

# Regression: a truncated exploration that found nothing must be
# reported as inconclusive (exit 2), never as a clean "no deadlock".
expect 2 "truncated clean run is inconclusive" -- \
  analyze -m asat -n 4 -e full --max-states 50
expect_out "inconclusive" "truncation is called out as inconclusive"

# A deadlock found before the budget ran out is still a verdict.
expect 1 "deadlock found within a tight budget still exits 1" -- \
  analyze -m nsdp -n 4 -e gpo --max-states 50

# --- witnesses --------------------------------------------------------

expect 1 "analyze --witness still exits 1" -- analyze -m nsdp -n 4 --witness
expect_out "witness:" "witness is printed"
expect_out "CERTIFIED" "witness is certified inline"

for engine in full po smv gpo; do
  expect 1 "trace reconstructs a witness ($engine)" -- \
    trace -m nsdp -n 4 -e "$engine"
  expect_out "deadlock reached by:" "trace shows the firing sequence ($engine)"
done
expect 0 "trace on a deadlock-free net exits 0" -- trace -m over -n 3
expect 2 "trace with an exhausted budget is inconclusive" -- \
  trace -m asat -n 4 -e full --max-states 50

# --- certify ----------------------------------------------------------

expect 1 "certify confirms the NSDP deadlock on all engines" -- \
  certify -m nsdp -n 2
expect_out "CERTIFIED" "certify prints the certified witness"
expect 0 "certify reports the overtake protocol clean" -- certify -m over -n 3
expect 2 "certify under an exhausted budget is inconclusive" -- \
  certify -m asat -n 4 -e full --max-states 50

# --- safety (coverability through the monitor reduction) --------------

expect 1 "safety finds the fork cover" -- \
  safety -m nsdp -n 2 -p gotL.0 -p gotL.1 -e smv
expect_out "VIOLATED" "safety announces the violation"
expect_out "scenario (certified):" "safety ships a certified scenario"

# Regression: the GPO engine must use its complete configuration here —
# the paper configuration misses this covering marking and would have
# reported the property as holding.
expect 1 "safety agrees on the gpo engine" -- \
  safety -m nsdp -n 2 -p gotL.0 -p gotL.1 -e gpo
expect_out "scenario (certified):" "gpo safety scenario is certified"

# think.0 and askL.0 are two states of one philosopher: never covered.
expect 0 "safety proves an unreachable cover" -- \
  safety -m nsdp -n 2 -p think.0 -p askL.0 -e full
expect_out "holds:" "safety announces the proof"
expect 2 "safety without --place is a usage error" -- safety -m nsdp -n 2

expect 1 "certify --place certifies the violation per engine" -- \
  certify -m nsdp -n 2 -p gotL.0 -p gotL.1
expect_out "CERTIFIED" "certify --place prints certified witnesses"
expect 0 "certify --place on a holding property" -- \
  certify -m nsdp -n 2 -p think.0 -p askL.0

# --- multicore: --jobs and the racing portfolio -----------------------

# Parallel exploration must reproduce the sequential verdicts exactly.
expect 1 "parallel analyze finds the NSDP deadlock" -- \
  analyze -m nsdp -n 4 -e full -j 4
expect 0 "parallel analyze clears the overtake protocol" -- \
  analyze -m over -n 3 -e full -j 4
expect 2 "parallel truncated clean run is still inconclusive" -- \
  analyze -m asat -n 4 -e full -j 4 --max-states 50
expect_out "inconclusive" "parallel truncation is called out"

# The portfolio returns the first conclusive verdict with its witness.
expect 1 "portfolio finds the NSDP deadlock" -- \
  analyze -m nsdp -n 4 -e portfolio --witness
expect_out "portfolio: .* won" "portfolio announces its winner"
expect_out "CERTIFIED" "portfolio witness is certified inline"
expect 0 "portfolio clears the overtake protocol" -- \
  analyze -m over -n 3 -e portfolio
expect 1 "portfolio safety verdict" -- \
  safety -m nsdp -n 2 -p gotL.0 -p gotL.1 -e portfolio
expect_out "scenario (certified):" "portfolio safety scenario is certified"
expect 1 "certify accepts -e portfolio" -- certify -m nsdp -n 2 -e portfolio
expect_out "CERTIFIED" "portfolio certification prints the witness"
expect 2 "unknown engine is still a usage error" -- \
  analyze -m nsdp -n 2 -e bogus

# --- structural reduction: --reduce / --no-reduce ---------------------

# Verdicts must be invariant under reduction, on both outcomes.
expect 1 "reduced analyze finds the NSDP deadlock" -- \
  analyze -m nsdp -n 4 --reduce
expect_out "reduction:" "the reduction summary is printed"
expect 0 "reduced analyze clears the overtake protocol" -- \
  analyze -m over -n 3 --reduce
expect 0 "--no-reduce wins over --reduce" -- \
  analyze -m over -n 3 --reduce --no-reduce

# A witness found on the reduced net certifies against the original.
expect 1 "reduced analyze --witness certifies" -- \
  analyze -m nsdp -n 4 --reduce --witness
expect_out "CERTIFIED" "lifted witness is certified inline"
expect 1 "reduced certify confirms on all engines" -- \
  certify -m nsdp -n 2 --reduce
expect_out "CERTIFIED" "reduced certify prints certified witnesses"
expect 0 "reduced certify reports the overtake protocol clean" -- \
  certify -m over -n 3 --reduce
expect 1 "reduced trace replays a lifted witness" -- \
  trace -m nsdp -n 4 --reduce
expect_out "deadlock reached by:" "lifted trace replays step by step"

# Safety reduces the monitored net; the scenario still certifies.
expect 1 "reduced safety finds the fork cover" -- \
  safety -m nsdp -n 2 -p gotL.0 -p gotL.1 -e smv --reduce
expect_out "scenario (certified):" "reduced safety scenario is certified"

# Reduction telemetry reaches --stats (rw collapses dramatically).
expect 0 "reduced rw analyze with --stats" -- \
  analyze -m rw -n 6 -e full --reduce --stats
expect_out "reduce.ratio" "reduction ratio gauge is reported"
expect_out "reduce.rule" "per-rule counters are reported"

# --- witness replays through julie trace (file round-trip) ------------

# `trace` on the same model must replay its own reconstruction; the
# replay printer re-validates every step, so a bad witness dies here.
expect 1 "trace replays the witness step by step" -- trace -m nsdp -n 2
expect_out "deadlock reached by:" "replay header present"
expect_out "takeL" "replay mentions a fork acquisition"

# --- resource governance: --timeout and --mem-mb ----------------------

# A one-second deadline on a huge instance: inconclusive (exit 2), with
# the typed reason called out instead of a crash or a hang.
expect 2 "deadline-bound analyze is inconclusive" -- \
  analyze -m nsdp -n 12 -e full --timeout 1
expect_out "deadline" "the deadline is named as the stop reason"

# The typed reason also lands in the telemetry trace.
metrics="$(mktemp)"
expect 2 "deadline run with --metrics-out" -- \
  analyze -m nsdp -n 12 -e full --timeout 1 --metrics-out "$metrics"
if grep -q '"stop_reason":"deadline"' "$metrics"; then
  echo "ok:   metrics record stop_reason deadline"
else
  echo "FAIL: metrics lack stop_reason deadline"
  cat "$metrics" | sed 's/^/      /'
  failures=$((failures + 1))
fi
rm -f "$metrics"

# A violation found before the deadline is still a verdict.
expect 1 "deadlock beats a generous deadline" -- \
  analyze -m nsdp -n 4 -e gpo --timeout 60

# A soft memory budget degrades to inconclusive instead of crashing.
expect 2 "memory-bound symbolic run is inconclusive" -- \
  analyze -m nsdp -n 10 -e smv --mem-mb 64
expect_out "inconclusive" "memory stop is inconclusive"

# The budgets ride along on trace and certify too.
expect 2 "deadline-bound trace is inconclusive" -- \
  trace -m nsdp -n 12 -e full --timeout 1
expect 2 "deadline-bound certify is inconclusive" -- \
  certify -m nsdp -n 12 -e full --timeout 1

# --- parser errors are located ----------------------------------------

badnet="$(mktemp).net"
printf 'net broken\npl p (1\n' > "$badnet"
expect 2 "malformed net file is a usage error" -- analyze -f "$badnet"
expect_out "line 2" "parse error carries its location"
rm -f "$badnet"

# --- verification service: julie serve / julie submit -----------------

sock="$(mktemp -u).sock"
"$JULIE" serve --socket "$sock" --queue-limit 4 >/dev/null 2>&1 &
serve_pid=$!

ready=0
for _ in $(seq 1 100); do
  if "$JULIE" submit --socket "$sock" --ping >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.05
done
if [ "$ready" -ne 1 ]; then
  echo "FAIL: julie serve did not come up on $sock"
  failures=$((failures + 1))
else
  expect 1 "served NSDP verdict follows the exit contract" -- \
    submit --socket "$sock" -m nsdp -n 3
  expect_out "VIOLATED" "submit reports the violation"
  expect_out "certified" "the served witness is certified"
  expect 1 "the repeated query is a cache hit" -- \
    submit --socket "$sock" -m nsdp -n 3
  expect_out "cached" "the repeat is served from the result cache"
  expect_out "certified" "the cached witness re-certified on the hit"
  expect 0 "served clean verdict exits 0" -- submit --socket "$sock" -m over -n 3
  expect 1 "in-batch duplicates are deduped" -- \
    submit --socket "$sock" -m fig2 -n 5 --repeat 3
  expect_out "deduped" "dedupe is reported per job"
  expect 2 "an oversized batch is rejected whole" -- \
    submit --socket "$sock" -m fig2 -n 5 --repeat 5
  expect_out "queue_full" "the typed reject names its reason"
  expect 2 "served truncated clean run is inconclusive" -- \
    submit --socket "$sock" -m asat -n 4 -e full --max-states 50
  expect 2 "an unknown model fails that job only" -- \
    submit --socket "$sock" -m no-such-model
  expect 0 "submit --stats returns the cache stats" -- \
    submit --socket "$sock" --stats
  expect_out "serve.cache.hit" "stats carry the cache counters"
  expect 0 "submit --shutdown stops the daemon" -- \
    submit --socket "$sock" --shutdown
fi
wait "$serve_pid" 2>/dev/null
rm -f "$sock"

# --- crash safety: --cache-dir journal, kill -9, graceful drain -------

wait_ready() {
  local s="$1" n
  for n in $(seq 1 100); do
    if "$JULIE" submit --socket "$s" --ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  return 1
}

cachedir="$(mktemp -d)"
sock="$(mktemp -u).sock"
"$JULIE" serve --socket "$sock" --cache-dir "$cachedir" >/dev/null 2>&1 &
serve_pid=$!

if ! wait_ready "$sock"; then
  echo "FAIL: persistent julie serve did not come up on $sock"
  failures=$((failures + 1))
else
  expect 1 "persistent daemon answers and journals the verdict" -- \
    submit --socket "$sock" -m nsdp -n 3
  expect_out "certified" "the journaled witness is certified"

  # kill -9 mid-batch: a long exploration is in flight when the
  # daemon dies.  Nothing partial may survive into the next life.
  "$JULIE" submit --socket "$sock" -m nsdp -n 10 -e full >/dev/null 2>&1 &
  inflight_pid=$!
  sleep 0.3
  kill -9 "$serve_pid" 2>/dev/null
  wait "$serve_pid" 2>/dev/null
  kill "$inflight_pid" 2>/dev/null
  wait "$inflight_pid" 2>/dev/null

  # Restart on the same --cache-dir: the journal recovers, the cached
  # verdict is served without re-exploration, byte-identical.
  serve_log="$(mktemp)"
  "$JULIE" serve --socket "$sock" --cache-dir "$cachedir" >"$serve_log" 2>&1 &
  serve_pid=$!
  if ! wait_ready "$sock"; then
    echo "FAIL: julie serve did not come back up after kill -9"
    failures=$((failures + 1))
  else
    if grep -q "cache recovered" "$serve_log"; then
      echo "ok:   restart reports the recovered cache"
    else
      echo "FAIL: restart banner lacks the recovery report"
      sed 's/^/      /' "$serve_log"
      failures=$((failures + 1))
    fi
    expect 1 "recovered cache serves the journaled verdict" -- \
      submit --socket "$sock" -m nsdp -n 3
    expect_out "cached" "the verdict survived kill -9 as a cache hit"
    expect_out "certified" "the recovered witness re-certified on the hit"
    expect 0 "stats expose the recovery report" -- \
      submit --socket "$sock" --stats
    expect_out '"recovered":' "stats carry serve.recovered"
    expect_out '"serve.recovered":1' "exactly the finished entry recovered"

    # Graceful drain: SIGTERM finishes in-flight work, flushes the
    # journal, and exits 0.
    kill -TERM "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
    drain_code=$?
    if [ "$drain_code" -eq 0 ]; then
      echo "ok:   SIGTERM drains the daemon with exit 0"
    else
      echo "FAIL: drained daemon exited $drain_code, want 0"
      failures=$((failures + 1))
    fi

    # Third life: the drained journal still serves the entry.
    "$JULIE" serve --socket "$sock" --cache-dir "$cachedir" >/dev/null 2>&1 &
    serve_pid=$!
    if wait_ready "$sock"; then
      expect 1 "the drained journal still serves after restart" -- \
        submit --socket "$sock" -m nsdp -n 3
      expect_out "cached" "cache hit across a graceful drain"
      expect 0 "drained daemon stops via --shutdown" -- \
        submit --socket "$sock" --shutdown
    else
      echo "FAIL: julie serve did not come up after the drain"
      failures=$((failures + 1))
    fi
  fi
  rm -f "$serve_log"
fi
wait "$serve_pid" 2>/dev/null
rm -f "$sock"
rm -rf "$cachedir"

# --- client retry policy ----------------------------------------------

expect 2 "submit --retries gives up on a dead endpoint" -- \
  submit --socket "$(mktemp -u).sock" --retries 2 --backoff-ms 1 -m over -n 3
expect_out "connect" "the final failure names the refused connection"

echo
if [ "$failures" -gt 0 ]; then
  echo "$failures CLI check(s) failed"
  exit 1
fi
echo "all CLI checks passed"
