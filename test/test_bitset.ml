(* Unit and property tests for Petri.Bitset. *)

module B = Petri.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty_full () =
  let e = B.empty 67 in
  let f = B.full 67 in
  check "empty is empty" true (B.is_empty e);
  check "full is not empty" false (B.is_empty f);
  check_int "empty cardinal" 0 (B.cardinal e);
  check_int "full cardinal" 67 (B.cardinal f);
  check "full has 0" true (B.mem 0 f);
  check "full has 66" true (B.mem 66 f);
  check "empty lacks 66" false (B.mem 66 e);
  check_int "width 0 works" 0 (B.cardinal (B.empty 0))

let test_add_remove () =
  let s = B.of_list 100 [ 3; 64; 99 ] in
  check_int "cardinal" 3 (B.cardinal s);
  check "mem 64" true (B.mem 64 s);
  check "not mem 65" false (B.mem 65 s);
  let s' = B.remove 64 s in
  check "removed" false (B.mem 64 s');
  check "others kept" true (B.mem 3 s' && B.mem 99 s');
  check "add idempotent (physical)" true (B.add 3 s == s);
  check "remove missing idempotent" true (B.remove 50 s == s);
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset.add: element 100 outside [0,100)") (fun () ->
      ignore (B.add 100 s))

let test_set_algebra () =
  let a = B.of_list 70 [ 1; 2; 3; 65 ] in
  let b = B.of_list 70 [ 3; 4; 65; 69 ] in
  check "union" true (B.equal (B.union a b) (B.of_list 70 [ 1; 2; 3; 4; 65; 69 ]));
  check "inter" true (B.equal (B.inter a b) (B.of_list 70 [ 3; 65 ]));
  check "diff" true (B.equal (B.diff a b) (B.of_list 70 [ 1; 2 ]));
  check "subset of union" true (B.subset a (B.union a b));
  check "not subset" false (B.subset a b);
  check "intersects" true (B.intersects a b);
  check "disjoint after diff" true (B.disjoint (B.diff a b) b)

let test_iteration_order () =
  let s = B.of_list 130 [ 129; 0; 63; 64; 65 ] in
  Alcotest.(check (list int)) "elements sorted" [ 0; 63; 64; 65; 129 ] (B.elements s);
  check_int "fold counts" 5 (B.fold (fun _ acc -> acc + 1) s 0);
  check_int "choose is min" 0 (B.choose s);
  check "for_all" true (B.for_all (fun i -> i < 130) s);
  check "exists" true (B.exists (fun i -> i = 64) s);
  check "exists false" false (B.exists (fun i -> i = 1) s)

let test_choose_empty () =
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (B.choose (B.empty 10)))

let test_hash_compare () =
  let a = B.of_list 70 [ 1; 69 ] in
  let b = B.of_list 70 [ 1; 69 ] in
  let c = B.of_list 70 [ 1; 68 ] in
  check "equal" true (B.equal a b);
  check_int "compare equal" 0 (B.compare a b);
  check "hash equal" true (B.hash a = B.hash b);
  check "not equal" false (B.equal a c);
  check "compare total" true (B.compare a c * B.compare c a < 0);
  check "widths differ" false (B.equal (B.empty 3) (B.empty 4))

let test_to_string () =
  let s = B.of_list 10 [ 1; 3 ] in
  Alcotest.(check string) "default names" "{1, 3}" (B.to_string s);
  Alcotest.(check string)
    "custom names" "{b, d}"
    (B.to_string ~name:(fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) s)

(* Property tests *)

(* The sharded unique table under concurrent interning: several domains
   intern overlapping random contents at once, and every domain must get
   the same canonical representative with the same stable id. *)
let test_concurrent_interning () =
  let width = 130 in
  let n_domains = 4 in
  let n_contents = 64 in
  (* Deterministic pseudo-random contents, many sharing stripes. *)
  let contents =
    Array.init n_contents (fun i ->
        let rec bits k state acc =
          if k = 0 then acc
          else
            let state = (state * 48271) mod 0x7fffffff in
            bits (k - 1) state (state mod width :: acc)
        in
        B.of_list width (bits (1 + (i mod 9)) (i + 1) []))
  in
  (* Each domain interns fresh structurally-equal copies, in a rotated
     order so stripes are hit in different sequences. *)
  let intern_all rot =
    Array.init n_contents (fun i ->
        let s = contents.((i + rot) mod n_contents) in
        let copy = B.of_list width (B.elements s) in
        let r = B.intern copy in
        ((i + rot) mod n_contents, r, B.id r))
  in
  let per_domain =
    let domains =
      List.init n_domains (fun d -> Domain.spawn (fun () -> intern_all d))
    in
    List.map Domain.join domains
  in
  let canonical = Hashtbl.create n_contents in
  List.iter
    (Array.iter (fun (i, r, id) ->
         check "representative has the content" true (B.equal r contents.(i));
         match Hashtbl.find_opt canonical i with
         | None -> Hashtbl.add canonical i (r, id)
         | Some (r0, id0) ->
             check "physically unique across domains" true (r == r0);
             check_int "stable id across domains" id0 id))
    per_domain;
  (* Re-interning from the test domain still lands on the same object. *)
  Hashtbl.iter
    (fun i (r0, id0) ->
      let again = B.intern (B.of_list width (B.elements contents.(i))) in
      check "re-intern is physical" true (again == r0);
      check_int "re-intern id" id0 (B.id again))
    canonical;
  (* The live count covers at least the distinct contents still held
     here (equal random contents collapse to one id). *)
  let distinct = Hashtbl.create n_contents in
  Hashtbl.iter (fun _ (_, id) -> Hashtbl.replace distinct id ()) canonical;
  check "interned_count covers the held sets" true
    (B.interned_count () >= Hashtbl.length distinct)

let gen_set width =
  QCheck2.Gen.(
    map (fun xs -> B.of_list width xs) (list_size (0 -- 20) (0 -- (width - 1))))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

let width = 67

let props =
  let open QCheck2.Gen in
  [
    prop "union commutative" (pair (gen_set width) (gen_set width)) (fun (a, b) ->
        B.equal (B.union a b) (B.union b a));
    prop "inter distributes over union"
      (triple (gen_set width) (gen_set width) (gen_set width))
      (fun (a, b, c) ->
        B.equal (B.inter a (B.union b c)) (B.union (B.inter a b) (B.inter a c)));
    prop "diff then union restores superset" (pair (gen_set width) (gen_set width))
      (fun (a, b) -> B.equal (B.union (B.diff a b) (B.inter a b)) a);
    prop "cardinal inclusion-exclusion" (pair (gen_set width) (gen_set width))
      (fun (a, b) ->
        B.cardinal (B.union a b) + B.cardinal (B.inter a b)
        = B.cardinal a + B.cardinal b);
    prop "subset iff diff empty" (pair (gen_set width) (gen_set width)) (fun (a, b) ->
        B.subset a b = B.is_empty (B.diff a b));
    prop "elements round-trip" (gen_set width) (fun a ->
        B.equal a (B.of_list width (B.elements a)));
    prop "hash respects equal" (gen_set width) (fun a ->
        B.hash a = B.hash (B.of_list width (B.elements a)));
    prop "compare antisymmetric" (pair (gen_set width) (gen_set width)) (fun (a, b) ->
        let c = B.compare a b and c' = B.compare b a in
        (c = 0 && c' = 0 && B.equal a b) || c * c' < 0);
  ]

let suite =
  [
    Alcotest.test_case "empty and full" `Quick test_empty_full;
    Alcotest.test_case "add and remove" `Quick test_add_remove;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "iteration order" `Quick test_iteration_order;
    Alcotest.test_case "choose on empty" `Quick test_choose_empty;
    Alcotest.test_case "hash and compare" `Quick test_hash_compare;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "concurrent interning" `Quick test_concurrent_interning;
  ]
  @ props
