(* Multicore execution: the par primitives, the domain-parallel
   explorer against its sequential twin, and the racing portfolio.

   The load-bearing property is the differential one: for every net,
   [Reachability.explore_par] must report exactly the same states,
   edges, deadlock count, unsafe count, truncation flag and verdict as
   [Reachability.explore] — the visited set is determined by the
   (deterministic) strategy alone, so worker interleaving must not leak
   into any count.  Witnesses are allowed to differ (the parallel
   predecessor map records first-reach parents), but must certify. *)

module R = Petri.Reachability
module E = Harness.Engine

(* Run the parallel suites with a few workers even on small hosts: the
   scheduler interleaves domains on one core, which still exercises the
   sharded tables and the steal path. *)
let par_jobs = 4

(* [Counter.make] interns by name, so these are the very cells the par
   library increments — the tests read the cancellation handshake off
   them. *)
let c_cancel_requests = Gpo_obs.Counter.make "par.cancel.requests"
let c_cancel_observed = Gpo_obs.Counter.make "par.cancel.observed"

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

let pool_map_preserves_order () =
  Par.Pool.with_pool ~jobs:par_jobs (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "map is an order-preserving parallel map"
        (List.map (fun x -> (x * x) + 1) xs)
        (Par.Pool.map pool (fun x -> (x * x) + 1) xs))

let pool_rethrows_after_finishing () =
  let ran = Atomic.make 0 in
  Par.Pool.with_pool ~jobs:par_jobs (fun pool ->
      (match
         Par.Pool.run pool
           (List.init 8 (fun i () ->
                if i = 3 then failwith "boom" else Atomic.incr ran))
       with
      | () -> Alcotest.fail "expected the thunk exception to propagate"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* Every non-throwing thunk still ran: one failure does not
         abandon the batch. *)
      Alcotest.(check int) "other thunks completed" 7 (Atomic.get ran);
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int))
        "pool is reusable" [ 2; 4 ]
        (Par.Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

let wsq_owner_and_thief_order () =
  let q : int Par.Wsq.t = Par.Wsq.create () in
  List.iter (Par.Wsq.push q) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "owner pops newest" (Some 4) (Par.Wsq.pop q);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1) (Par.Wsq.steal q);
  (* The steal normalized the remaining elements into FIFO order; the
     owner drains them oldest-first from here. *)
  Alcotest.(check (option int)) "owner after steal" (Some 2) (Par.Wsq.pop q);
  Alcotest.(check (option int)) "last element" (Some 3) (Par.Wsq.pop q);
  Alcotest.(check (option int)) "empty pop" None (Par.Wsq.pop q);
  Alcotest.(check (option int)) "empty steal" None (Par.Wsq.steal q)

let cancellation_handshake () =
  let token = Par.Cancel.create () in
  Alcotest.(check bool) "fresh token unset" false (Par.Cancel.is_set token);
  Par.Cancel.check token;
  (* does not raise *)
  let before = Gpo_obs.Counter.value c_cancel_observed in
  Par.Cancel.cancel token;
  Par.Cancel.cancel token;
  (* idempotent *)
  Alcotest.(check bool) "set after cancel" true (Par.Cancel.is_set token);
  (match Par.Cancel.check token with
  | () -> Alcotest.fail "check on a set token must raise"
  | exception Par.Cancel.Cancelled -> ());
  Alcotest.(check bool)
    "observation counted" true
    (Gpo_obs.Counter.value c_cancel_observed > before)

(* A cancelled engine run actually unwinds: cancel the token up front
   and the exploration must raise without visiting the whole space. *)
let engine_runs_are_cancellable () =
  List.iter
    (fun kind ->
      let token = Par.Cancel.create () in
      Par.Cancel.cancel token;
      match E.run ~cancel:token kind (Models.Scheduler.make 6) with
      | (_ : E.outcome) ->
          Alcotest.failf "%s ignored a pre-set cancellation token"
            (E.name kind)
      | exception Par.Cancel.Cancelled -> ())
    E.all

(* ------------------------------------------------------------------ *)
(* Differential: sequential vs parallel exploration                    *)

let same_exploration ~label ?strategy net =
  (* [max_deadlocks] high enough to retain every deadlock: with the
     default cap the two explorers may retain different (but equally
     valid) subsets, since the sequential one keeps the first hits in
     BFS order and the parallel one the content-sorted prefix. *)
  let seq = R.explore ?strategy ~max_deadlocks:100_000 ~traces:true net in
  let par =
    R.explore_par ~jobs:par_jobs ?strategy ~max_deadlocks:100_000 ~traces:true
      net
  in
  let check_int what a b =
    if a <> b then
      Failure_dump.failf ~label net "parallel %s %d <> sequential %d" what b a
  in
  check_int "states" seq.states par.states;
  check_int "edges" seq.edges par.edges;
  check_int "deadlock_count" seq.deadlock_count par.deadlock_count;
  check_int "unsafe count" (List.length seq.unsafe) (List.length par.unsafe);
  if R.truncated seq <> R.truncated par then
    Failure_dump.failf ~label net "truncation flags differ";
  (* Same visited set, not just the same size. *)
  R.Marking_table.iter
    (fun m () ->
      if not (R.Marking_table.mem par.visited m) then
        Failure_dump.failf ~label net
          "marking visited sequentially but not in parallel")
    seq.visited;
  (* Retained deadlock witnesses are content-sorted, hence comparable
     as lists once the sequential side is sorted the same way. *)
  let sorted l = List.sort Petri.Bitset.compare l in
  if
    not
      (List.equal Petri.Bitset.equal (sorted seq.deadlocks)
         (sorted par.deadlocks))
  then Failure_dump.failf ~label net "retained deadlock witnesses differ";
  (* Parallel predecessor chains may differ from sequential ones, but
     every reconstructed witness must replay to its dead marking. *)
  List.iter
    (fun dead ->
      let trace = R.trace_to par dead in
      if not (Petri.Trace.is_valid net trace) then
        Failure_dump.failf ~trace ~label net
          "parallel witness does not replay";
      if
        not
          (Petri.Bitset.equal dead (Petri.Trace.final_marking net trace))
      then
        Failure_dump.failf ~trace ~label net
          "parallel witness reaches the wrong marking")
    par.deadlocks

let differential_zoo () =
  List.iter
    (fun (net : Petri.Net.t) ->
      same_exploration ~label:(net.name ^ "-par-full") net;
      same_exploration ~label:(net.name ^ "-par-stubborn")
        ~strategy:(Petri.Stubborn.strategy (Petri.Conflict.analyse net))
        net)
    [
      Models.Figures.fig1;
      Models.Figures.fig2 4;
      Models.Figures.fig2 6;
      Models.Figures.fig3;
      Models.Figures.fig5;
      Models.Figures.fig7;
      Models.Nsdp.make 2;
      Models.Nsdp.make 4;
      Models.Asat.make 2;
      Models.Over.make 3;
      Models.Rw.make 4;
      Models.Scheduler.make 3;
      Models.Scheduler.make 5;
    ]

let differential_random () =
  Failure_dump.iter_seeds ~n:(min 60 (Failure_dump.seed_count ())) (fun seed ->
      let net = Models.Random_net.generate seed in
      same_exploration ~label:(Printf.sprintf "par-seed-%d" seed) net)

(* Truncation: both explorers must flag it, and the parallel state
   count must respect the budget exactly (the ticketing rollback). *)
let differential_truncation () =
  let net = Models.Scheduler.make 7 in
  let seq = R.explore ~max_states:100 net in
  let par = R.explore_par ~jobs:par_jobs ~max_states:100 net in
  Alcotest.(check bool) "sequential truncated" true (R.truncated seq);
  Alcotest.(check bool) "parallel truncated" true (R.truncated par);
  Alcotest.(check bool) "same stop reason" true (seq.stop = par.stop);
  Alcotest.(check bool)
    "parallel respects the state budget" true (par.states <= 100)

(* The stubborn convenience wrapper agrees with its sequential twin. *)
let stubborn_wrapper_differential () =
  let net = Models.Nsdp.make 4 in
  let seq = Petri.Stubborn.explore net in
  let par = Petri.Stubborn.explore_par ~jobs:par_jobs net in
  Alcotest.(check int) "states" seq.states par.states;
  Alcotest.(check int) "edges" seq.edges par.edges;
  Alcotest.(check int) "deadlocks" seq.deadlock_count par.deadlock_count

(* The engine layer routes jobs>1 through the parallel explorer with
   identical outcomes. *)
let engine_layer_jobs () =
  List.iter
    (fun (net : Petri.Net.t) ->
      List.iter
        (fun kind ->
          let s = E.run ~witness:true kind net in
          let p = E.run ~witness:true ~jobs:par_jobs kind net in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s/%s states" net.name (E.name kind))
            s.states p.states;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s verdict" net.name (E.name kind))
            s.deadlock p.deadlock;
          if p.deadlock then
            match Harness.Certify.deadlock net p with
            | Harness.Certify.Certified _ -> ()
            | v ->
                Alcotest.failf "parallel %s witness not certified: %a"
                  (E.name kind)
                  (Harness.Certify.pp net) v)
        [ E.Full; E.Stubborn ])
    [ Models.Nsdp.make 3; Models.Over.make 3; Models.Scheduler.make 4 ]

(* ------------------------------------------------------------------ *)
(* Differential: sequential vs parallel GPN exploration.  The wave
   design makes jobs=1 and jobs=N bit-identical by construction on any
   run that completes: walks are pure functions of the frozen
   between-waves snapshot, and the coordinator merges them in dequeue
   order.  The differential asserts exactly that — states, edges, run
   roots, witness markings and worlds, reconstructed traces, stop
   reason. *)

module G = Gpn.Explorer

let same_gpo_results ~label net (seq : G.result) (par : G.result) =
  if seq.G.states <> par.G.states then
    Failure_dump.failf ~label net "gpo par states %d <> seq %d" par.G.states
      seq.G.states;
  if seq.G.edges <> par.G.edges then
    Failure_dump.failf ~label net "gpo par edges %d <> seq %d" par.G.edges
      seq.G.edges;
  if seq.G.stop <> par.G.stop then
    Failure_dump.failf ~label net "gpo stop reasons differ";
  if List.length seq.G.runs <> List.length par.G.runs then
    Failure_dump.failf ~label net "gpo par runs %d <> seq %d"
      (List.length par.G.runs) (List.length seq.G.runs);
  if
    not
      (List.for_all2
         (fun (a : G.run) (b : G.run) -> Petri.Bitset.equal a.G.root b.G.root)
         seq.G.runs par.G.runs)
  then Failure_dump.failf ~label net "gpo run roots differ";
  if List.length seq.G.deadlocks <> List.length par.G.deadlocks then
    Failure_dump.failf ~label net "gpo par witnesses %d <> seq %d"
      (List.length par.G.deadlocks)
      (List.length seq.G.deadlocks);
  List.iter2
    (fun (a : G.witness) (b : G.witness) ->
      if not (List.equal Petri.Bitset.equal a.G.markings b.G.markings) then
        Failure_dump.failf ~label net "gpo witness markings differ";
      if
        not
          (List.equal Petri.Bitset.equal
             (Gpn.World_set.elements a.G.worlds)
             (Gpn.World_set.elements b.G.worlds))
      then Failure_dump.failf ~label net "gpo witness worlds differ";
      let ta = G.deadlock_trace seq a and tb = G.deadlock_trace par b in
      if ta <> tb then
        Failure_dump.failf ~label net "gpo witness traces differ")
    seq.G.deadlocks par.G.deadlocks

let gpo_differential_zoo () =
  List.iter
    (fun (net : Petri.Net.t) ->
      let seq = G.analyse ~max_states:200_000 net in
      List.iter
        (fun jobs ->
          let par = G.analyse ~max_states:200_000 ~jobs net in
          same_gpo_results
            ~label:(Printf.sprintf "%s-gpo-jobs-%d" net.name jobs)
            net seq par)
        [ 2; par_jobs ])
    [
      Models.Figures.fig2 6;
      Models.Figures.fig3;
      Models.Figures.fig5;
      Models.Nsdp.make 4;
      Models.Asat.make 2;
      Models.Over.make 3;
      Models.Rw.make 4;
      Models.Scheduler.make 4;
    ]

let gpo_differential_random () =
  Failure_dump.iter_seeds ~n:(min 40 (Failure_dump.seed_count ())) (fun seed ->
      let net = Models.Random_net.generate seed in
      let seq = G.analyse ~max_states:50_000 net in
      let par = G.analyse ~max_states:50_000 ~jobs:par_jobs net in
      same_gpo_results ~label:(Printf.sprintf "gpo-par-seed-%d" seed) net seq
        par)

(* Injected delays perturb worker timing but not walk content, so the
   results stay bit-identical.  Injected cancellation storms may unwind
   either side — results are compared only when both complete (no storm
   fired; the fault-free schedules are then identical). *)
let gpo_differential_faults () =
  let net = Models.Over.make 3 in
  for seed = 0 to 9 do
    let with_kind kind jobs =
      match
        Guard.Fault.with_faults ~rate:0.05 ~kinds:[ kind ]
          ~sites:[ "gpo.step"; "bitset.intern" ] seed (fun () ->
            G.analyse ~max_states:50_000 ~jobs net)
      with
      | r -> Some r
      | exception Par.Cancel.Cancelled -> None
    in
    (match
       (with_kind Guard.Fault.Delay 1, with_kind Guard.Fault.Delay par_jobs)
     with
    | Some seq, Some par ->
        same_gpo_results
          ~label:(Printf.sprintf "gpo-delay-seed-%d" seed)
          net seq par
    | _ -> Alcotest.fail "delay faults must not unwind the run");
    match
      (with_kind Guard.Fault.Cancel 1, with_kind Guard.Fault.Cancel par_jobs)
    with
    | Some seq, Some par ->
        same_gpo_results
          ~label:(Printf.sprintf "gpo-cancel-seed-%d" seed)
          net seq par
    | _ ->
        (* A storm unwound one side: acceptable, the cancellation
           contract belongs to the caller. *)
        ()
  done

(* Truncation cannot stay bit-identical across jobs (walks race the
   state-budget tickets), but the stop classification must agree. *)
let gpo_differential_truncation () =
  (* asat(4) needs 14 GPO states, so a budget of 5 trips both sides. *)
  let net = Models.Asat.make 4 in
  let seq = G.analyse ~max_states:5 net in
  let par = G.analyse ~max_states:5 ~jobs:par_jobs net in
  Alcotest.(check bool) "sequential truncated" true (G.truncated seq);
  Alcotest.(check bool) "parallel truncated" true (G.truncated par);
  Alcotest.(check bool) "same stop reason" true (seq.G.stop = par.G.stop)

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)

(* The winner's verdict must match exhaustive ground truth, its witness
   must certify, and — when an engine wins early — the losers must have
   observed the cancellation (the [par.cancel.*] counters prove the
   handshake rather than trusting the join). *)
let portfolio_matches_truth () =
  List.iter
    (fun (net : Petri.Net.t) ->
      let truth =
        (Petri.Reachability.explore net).deadlock_count > 0
      in
      Gpo_obs.reset ();
      let r = Harness.Portfolio.run ~witness:true ~gpo_scan:true net in
      Alcotest.(check bool)
        (net.name ^ ": portfolio verdict = exhaustive truth")
        truth r.outcome.E.deadlock;
      Alcotest.(check bool) (net.name ^ ": conclusive") true r.conclusive;
      (if r.outcome.E.deadlock then
         match Harness.Certify.deadlock net r.outcome with
         | Harness.Certify.Certified _ -> ()
         | v ->
             Alcotest.failf "%s: portfolio witness not certified: %a" net.name
               (Harness.Certify.pp net) v);
      let requests = Gpo_obs.Counter.value c_cancel_requests in
      let observed = Gpo_obs.Counter.value c_cancel_observed in
      Alcotest.(check bool)
        (net.name ^ ": winner requested cancellation")
        true (requests >= 1);
      (* Each cancelled loser observed the token at least once; the
         report counts the losers that unwound via Cancelled. *)
      Alcotest.(check bool)
        (net.name ^ ": losers observed the cancellation")
        true
        (observed >= r.cancelled_losers))
    [
      Models.Figures.fig2 5;
      Models.Nsdp.make 4;
      Models.Over.make 3;
      Models.Scheduler.make 4;
    ]

(* With every entrant given a budget too small to finish, the race has
   no conclusive winner: the report must say so (julie maps this to
   exit 2, never to a clean verdict). *)
let portfolio_inconclusive_when_truncated () =
  let net = Models.Scheduler.make 7 in
  let r =
    (* Two exhaustive entrants: the symbolic engine has no budget and
       the stubborn reduction finishes this net within 50 states, so
       either would legitimately conclude. *)
    Harness.Portfolio.run ~max_states:50 ~engines:[ E.Full; E.Full ] net
  in
  Alcotest.(check bool) "not conclusive" false r.conclusive;
  Alcotest.(check bool) "outcome flagged truncated" true
    (E.truncated r.outcome);
  (* Every entrant's stop is reported by kind. *)
  Alcotest.(check int) "one stop per entrant" 2 (List.length r.stops);
  List.iter
    (fun (_, stop) ->
      Alcotest.(check bool) "entrant stopped by the state budget" true
        (stop = Guard.State_budget))
    r.stops

(* A single-entrant portfolio degenerates to that engine's run. *)
let portfolio_single_entrant () =
  let net = Models.Nsdp.make 3 in
  let r = Harness.Portfolio.run ~engines:[ E.Stubborn ] net in
  let direct = E.run E.Stubborn net in
  Alcotest.(check bool) "same verdict" direct.deadlock r.outcome.E.deadlock;
  Alcotest.(check (float 0.0)) "same states" direct.states r.outcome.E.states;
  Alcotest.(check int) "no losers" 0 r.cancelled_losers

(* The shape of the parallel seeded test drivers: whole engine runs
   from several pool workers at once.  This exercises the domain safety
   of the engines themselves (interning, GPN serialisation, telemetry)
   and checks that concurrent runs stay deterministic. *)
let parallel_seed_driver () =
  let hits = Atomic.make 0 in
  Par.Pool.with_pool ~jobs:par_jobs (fun pool ->
      Par.Pool.iter pool
        (fun seed ->
          let net = Models.Random_net.generate seed in
          let a = R.explore ~max_states:20_000 net in
          let b = R.explore ~max_states:20_000 net in
          if a.states <> b.states || a.deadlock_count <> b.deadlock_count then
            Failure_dump.failf
              ~label:(Printf.sprintf "driver-seed-%d" seed)
              net "exploration not deterministic under concurrent runs";
          let g = Gpn.Explorer.analyse ~max_states:20_000 net in
          if (not (R.truncated a)) && not (Gpn.Explorer.truncated g) then
            if Gpn.Explorer.deadlock_free g <> (a.deadlock_count = 0) then
              Failure_dump.failf
                ~label:(Printf.sprintf "driver-seed-%d" seed)
                net "gpo verdict diverged when run from a pool worker";
          Atomic.incr hits)
        (List.init 8 Fun.id));
  Alcotest.(check int) "all seeds processed" 8 (Atomic.get hits)

let suite =
  [
    Alcotest.test_case "pool map preserves order" `Quick pool_map_preserves_order;
    Alcotest.test_case "pool rethrows after finishing" `Quick
      pool_rethrows_after_finishing;
    Alcotest.test_case "work-stealing queue order" `Quick
      wsq_owner_and_thief_order;
    Alcotest.test_case "cancellation handshake" `Quick cancellation_handshake;
    Alcotest.test_case "engine runs are cancellable" `Quick
      engine_runs_are_cancellable;
    Alcotest.test_case "seq-vs-par differential (zoo)" `Quick differential_zoo;
    Alcotest.test_case "seq-vs-par differential (random)" `Slow
      differential_random;
    Alcotest.test_case "seq-vs-par truncation" `Quick differential_truncation;
    Alcotest.test_case "stubborn wrapper differential" `Quick
      stubborn_wrapper_differential;
    Alcotest.test_case "engine layer with jobs" `Quick engine_layer_jobs;
    Alcotest.test_case "gpo seq-vs-par differential (zoo)" `Quick
      gpo_differential_zoo;
    Alcotest.test_case "gpo seq-vs-par differential (random)" `Slow
      gpo_differential_random;
    Alcotest.test_case "gpo seq-vs-par under faults" `Quick
      gpo_differential_faults;
    Alcotest.test_case "gpo seq-vs-par truncation" `Quick
      gpo_differential_truncation;
    Alcotest.test_case "portfolio matches exhaustive truth" `Quick
      portfolio_matches_truth;
    Alcotest.test_case "portfolio inconclusive when all truncate" `Quick
      portfolio_inconclusive_when_truncated;
    Alcotest.test_case "portfolio single entrant" `Quick
      portfolio_single_entrant;
    Alcotest.test_case "parallel seed driver shape" `Quick parallel_seed_driver;
  ]
