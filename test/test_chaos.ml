(* Chaos suite: run every engine under a seeded fault-injection
   schedule (simulated allocation failures, delays and cancellation
   storms at the hot-loop probe points) and check the degradation
   contract:

   - an engine may stop early and report an inconclusive (non-Completed)
     partial result, or unwind with [Par.Cancel.Cancelled];
   - a run that claims [Completed] really covered its state space, so
     on a deadlocking net a clean "holds" out of a completed run is a
     bug (an unearned verdict is precisely what governance must never
     fabricate);
   - a reported violation is trustworthy even out of a faulty run: its
     witness, when reconstruction survived, must certify by independent
     replay;
   - no false deadlock is ever reported on a deadlock-free net.

   The seed count comes from GPO_FAULT_SEEDS (default 40); every seed
   replays the exact same fault schedule, so failures (dumped through
   [Failure_dump]) reproduce deterministically. *)

module E = Harness.Engine
module C = Harness.Certify

let fault_seeds () =
  match Sys.getenv_opt "GPO_FAULT_SEEDS" with
  | None -> 40
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 40)

(* One engine run under faults.  [expect_deadlock] is the ground truth
   for the net (established fault-free by the conformance suite). *)
let chaos_run ~label ~expect_deadlock net seed kind =
  match
    Guard.Fault.with_faults ~rate:0.02 seed (fun () ->
        E.run ~max_states:200_000 ~witness:true ~gpo_scan:true kind net)
  with
  | exception Par.Cancel.Cancelled ->
      (* A cancellation storm unwound the whole run: acceptable, the
         caller (portfolio, CLI) owns that contract. *)
      ()
  | o ->
      if o.E.stop = Guard.Completed && not o.E.deadlock then begin
        (* A clean "holds" claims exhaustive coverage.  Injected faults
           must never fabricate that on a net that does deadlock. *)
        if expect_deadlock then
          Failure_dump.failf ~label net
            "%s reported a clean completed run on a deadlocking net \
             (seed %d)"
            (E.name kind) seed
      end;
      if o.E.deadlock then begin
        if not expect_deadlock then
          Failure_dump.failf ?trace:o.E.witness ~label net
            "%s reported a deadlock on a deadlock-free net (seed %d)"
            (E.name kind) seed;
        (* A violation found under faults still certifies, when witness
           reconstruction survived the schedule. *)
        match o.E.witness with
        | None -> ()
        | Some _ -> (
            match C.deadlock net o with
            | C.Certified _ -> ()
            | v ->
                Failure_dump.failf ?trace:o.E.witness ~label net
                  "%s witness found under faults failed certification \
                   (%a, seed %d)"
                  (E.name kind) (C.pp net) v seed)
      end
      else if E.truncated o then
        (* A faulted-out clean run must map to `Inconclusive, never to
           `Holds. *)
        match C.conclusion [ o ] with
        | `Inconclusive -> ()
        | `Holds | `Violated ->
            Failure_dump.failf ~label net
              "%s: partial clean run did not map to inconclusive (seed %d)"
              (E.name kind) seed

let chaos_sweep () =
  let n = fault_seeds () in
  let nets =
    [ (Models.Nsdp.make 4, true); (Models.Over.make 3, false) ]
  in
  Failure_dump.iter_seeds ~n (fun seed ->
      List.iter
        (fun (net, expect_deadlock) ->
          List.iter
            (fun kind ->
              let label =
                Printf.sprintf "chaos-%s-%s-seed-%d" net.Petri.Net.name
                  (Failure_dump.slug (E.name kind))
                  seed
              in
              chaos_run ~label ~expect_deadlock net seed kind)
            E.all)
        nets);
  Guard.Fault.disable ()

(* ------------------------------------------------------------------ *)
(* Cancellation in the middle of witness reconstruction: the walk-back
   loops poll the token, unwind with Cancelled, and no partial witness
   escapes as an outcome. *)

let cancelled_token () =
  let token = Par.Cancel.create () in
  Par.Cancel.cancel token;
  token

let explicit_witness_cancellable () =
  let net = Models.Nsdp.make 4 in
  List.iter
    (fun r ->
      match r.Petri.Reachability.deadlocks with
      | [] -> Alcotest.fail "nsdp-4 must retain a deadlock witness"
      | m :: _ -> (
          match
            Petri.Reachability.trace_to ~cancel:(cancelled_token ()) r m
          with
          | _ -> Alcotest.fail "cancelled witness walk returned a trace"
          | exception Par.Cancel.Cancelled -> ()))
    [
      Petri.Reachability.explore ~traces:true net;
      Petri.Stubborn.explore ~traces:true net;
    ]

let gpo_witness_cancellable () =
  let r = Gpn.Explorer.analyse (Models.Nsdp.make 4) in
  match r.Gpn.Explorer.deadlocks with
  | [] -> Alcotest.fail "nsdp-4 must produce a gpo witness"
  | w :: _ -> (
      match Gpn.Explorer.deadlock_trace ~cancel:(cancelled_token ()) r w with
      | _ -> Alcotest.fail "cancelled gpo witness walk returned a trace"
      | exception Par.Cancel.Cancelled -> ())

(* The symbolic walk is internal to [analyse]; a cancellation storm
   targeted at its probe site cancels reconstruction specifically (the
   fixpoint itself carries no faults). *)
let symbolic_witness_cancellable () =
  match
    Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Cancel ]
      ~sites:[ "smv.witness" ] 3 (fun () ->
        Bddkit.Symbolic.analyse ~witness:true (Models.Nsdp.make 4))
  with
  | _ -> Alcotest.fail "cancelled symbolic reconstruction returned"
  | exception Par.Cancel.Cancelled -> ()

(* Through the uniform engine layer: a storm on the witness sites must
   surface as Cancelled (the portfolio contract), never as an outcome
   with a half-built witness attached. *)
let engine_witness_storms () =
  let net = Models.Nsdp.make 4 in
  List.iter
    (fun (kind, site) ->
      match
        Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Cancel ]
          ~sites:[ site ] 5 (fun () ->
            E.run ~max_states:200_000 ~witness:true ~gpo_scan:true kind net)
      with
      | o ->
          if o.E.witness <> None then
            Alcotest.failf "%s: partial witness escaped a cancellation storm"
              (E.name kind)
      | exception Par.Cancel.Cancelled -> ())
    [
      (E.Full, "reach.witness");
      (E.Stubborn, "reach.witness");
      (E.Symbolic, "smv.witness");
      (E.Gpo, "gpo.witness");
    ]

(* ------------------------------------------------------------------ *)
(* Reduction under faults.  The pipeline's degradation contract is
   all-or-nothing: an allocation failure inside a rule pass abandons
   reduction entirely (the engine then analyses the original net), a
   cancellation storm unwinds, and in no case does a half-reduced net
   or a stale inverse mapping reach an engine. *)

let reduce_degrades_to_identity () =
  let net = Models.Rw.make 6 in
  let r =
    Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
      ~sites:[ "reduce.rule" ] 7 (fun () -> Reduce.run net)
  in
  if not r.Reduce.degraded then
    Alcotest.fail "oom storm in a rule pass did not mark the result degraded";
  if not (Reduce.is_identity r) then
    Alcotest.fail "degraded reduction must hand back the original net";
  if r.Reduce.applied <> [] then
    Alcotest.fail "degraded reduction reported applied rules"

let reduce_cancellable () =
  match
    Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Cancel ]
      ~sites:[ "reduce.rule" ] 11 (fun () -> Reduce.run (Models.Rw.make 6))
  with
  | _ -> Alcotest.fail "cancelled reduction returned a result"
  | exception Par.Cancel.Cancelled -> ()

(* An engine asked to reduce keeps its verdict contract when the
   reduction itself is the faulty component: the storm forces the
   degraded-identity path, and the run must come back correct and
   certified against the (un)reduced net. *)
let engine_survives_reduce_storm () =
  let net = Models.Nsdp.make 4 in
  List.iter
    (fun kind ->
      let o =
        Guard.Fault.with_faults ~rate:1.0 ~kinds:[ Guard.Fault.Oom ]
          ~sites:[ "reduce.rule" ] 13 (fun () ->
            E.run ~max_states:200_000 ~witness:true ~gpo_scan:true
              ~reduce:true kind net)
      in
      if not o.E.deadlock then
        Alcotest.failf "%s missed the nsdp-4 deadlock under a reduce storm"
          (E.name kind);
      match C.deadlock net o with
      | C.Certified _ -> ()
      | v ->
          Failure_dump.failf ?trace:o.E.witness ~label:"reduce-storm" net
            "%s witness failed certification under a reduce storm: %a"
            (E.name kind) (C.pp net) v)
    E.all

(* Seeded mixed sweep with the storm aimed only at the reduction probe
   site: the standard chaos contract must hold for reduced runs too. *)
let reduce_chaos_sweep () =
  let n = fault_seeds () in
  let nets = [ (Models.Nsdp.make 4, true); (Models.Over.make 3, false) ] in
  Failure_dump.iter_seeds ~n (fun seed ->
      List.iter
        (fun ((net : Petri.Net.t), expect_deadlock) ->
          List.iter
            (fun kind ->
              let label =
                Printf.sprintf "reduce-chaos-%s-%s-seed-%d" net.name
                  (Failure_dump.slug (E.name kind))
                  seed
              in
              match
                Guard.Fault.with_faults ~rate:0.2 ~sites:[ "reduce.rule" ]
                  seed (fun () ->
                    E.run ~max_states:200_000 ~witness:true ~gpo_scan:true
                      ~reduce:true kind net)
              with
              | exception Par.Cancel.Cancelled -> ()
              | o ->
                  if
                    o.E.stop = Guard.Completed && (not o.E.deadlock)
                    && expect_deadlock
                  then
                    Failure_dump.failf ~label net
                      "%s reported a clean completed run on a deadlocking \
                       net (seed %d)"
                      (E.name kind) seed;
                  if o.E.deadlock then begin
                    if not expect_deadlock then
                      Failure_dump.failf ?trace:o.E.witness ~label net
                        "%s reported a deadlock on a deadlock-free net \
                         (seed %d)"
                        (E.name kind) seed;
                    match o.E.witness with
                    | None -> ()
                    | Some _ -> (
                        match C.deadlock net o with
                        | C.Certified _ -> ()
                        | v ->
                            Failure_dump.failf ?trace:o.E.witness ~label net
                              "%s lifted witness failed certification under \
                               faults (%a, seed %d)"
                              (E.name kind) (C.pp net) v seed)
                  end)
            E.all)
        nets);
  Guard.Fault.disable ()

let suite =
  [
    Alcotest.test_case "seeded chaos sweep, all engines" `Slow chaos_sweep;
    Alcotest.test_case "reduction degrades to identity on oom" `Quick
      reduce_degrades_to_identity;
    Alcotest.test_case "reduction cancellable" `Quick reduce_cancellable;
    Alcotest.test_case "engines survive a reduce storm" `Quick
      engine_survives_reduce_storm;
    Alcotest.test_case "seeded reduce chaos sweep" `Slow reduce_chaos_sweep;
    Alcotest.test_case "explicit witness walk cancellable" `Quick
      explicit_witness_cancellable;
    Alcotest.test_case "gpo witness walk cancellable" `Quick
      gpo_witness_cancellable;
    Alcotest.test_case "symbolic witness walk cancellable" `Quick
      symbolic_witness_cancellable;
    Alcotest.test_case "no partial witness under storms" `Quick
      engine_witness_storms;
  ]
