(* Verifying a hardware/software interface, the application domain the
   paper comes from (embedded system codesign at IMEC; the method was
   applied to a QAM modem design).  A CPU and a DMA engine share a
   memory bus through an asynchronous arbiter; the DMA signals
   completion through an interrupt line with a ready/ack handshake.

   We check, with the full battery of analyses:
   - deadlock freedom            (GPO + classical engines)
   - bus mutual exclusion        (safety-to-deadlock reduction)
   - interrupt handshake sanity  (safety + structural invariants)
   - structural health           (siphons/traps, P-semiflows)

   Run with:  dune exec examples/embedded_interface.exe *)

let interface =
  {|
  net hw-sw-interface
  # ---- bus arbiter (hardware) ----
  pl bus.free (1)

  # ---- CPU (software) ----
  pl cpu.compute (1)
  pl cpu.want_bus
  pl cpu.on_bus
  pl cpu.wait_irq
  tr cpu.need      : cpu.compute -> cpu.want_bus
  tr cpu.grant     : cpu.want_bus bus.free -> cpu.on_bus
  tr cpu.program   : cpu.on_bus dma.idle -> cpu.wait_irq bus.free dma.armed
  tr cpu.resume    : cpu.wait_irq irq.ready -> cpu.compute irq.ack

  # ---- DMA engine (hardware) ----
  pl dma.idle (1)
  pl dma.armed
  pl dma.on_bus
  pl dma.done
  tr dma.grant     : dma.armed bus.free -> dma.on_bus
  tr dma.transfer  : dma.on_bus -> dma.done bus.free
  tr dma.raise_irq : dma.done irq.line_idle -> dma.idle irq.ready

  # ---- interrupt line (one-place channel with acknowledge) ----
  # The DMA may only raise the line when it is idle, otherwise a second
  # completion could overrun a pending acknowledgement (checked below).
  pl irq.line_idle (1)
  pl irq.ready
  pl irq.ack
  pl irq.clear_done
  tr irq.clear     : irq.ack -> irq.clear_done
  tr irq.rearm     : irq.clear_done -> irq.line_idle
  |}

let () =
  let net = Petri.Parser.of_string interface in
  Format.printf "%a@.@." Petri.Net.pp_summary net;

  (* 1. Deadlock freedom, with the GPO engine and cross-checked. *)
  let gpo = Gpn.Explorer.analyse net in
  Format.printf "%a@." Gpn.Explorer.pp_summary gpo;
  let full = Petri.Reachability.explore net in
  assert (Gpn.Explorer.deadlock_free gpo = (full.deadlock_count = 0));
  Format.printf "cross-checked against %d explicit markings@.@." full.states;

  (* 2. Bus mutual exclusion: CPU and DMA never drive the bus together
     (safety reduced to deadlock, per Section 4 of the paper). *)
  let check_safety name cover expect =
    let property =
      { Petri.Safety.name; never_all = List.map (Petri.Net.place_index net) cover }
    in
    let monitored = Petri.Safety.monitor net property in
    let violated =
      not (Gpn.Explorer.deadlock_free (Gpn.Explorer.analyse monitored))
    in
    assert (violated = Petri.Safety.violated_explicit net property);
    Format.printf "%-34s %s@."
      (Printf.sprintf "never {%s}:" (String.concat ", " cover))
      (if violated then "VIOLATED" else "holds");
    assert (violated = expect)
  in
  check_safety "bus-mutex" [ "cpu.on_bus"; "dma.on_bus" ] false;
  check_safety "irq-overrun" [ "irq.ready"; "irq.ack" ] false;
  check_safety "dma-while-wait" [ "cpu.wait_irq"; "dma.on_bus" ] true;

  (* 3. Structural corroboration: the bus is protected by a weight-1
     P-semiflow (a token-conservation argument a designer can read). *)
  let semiflows = Petri.Invariant.p_semiflows net in
  let bus = Petri.Net.place_index net "bus.free" in
  let cpu_on = Petri.Net.place_index net "cpu.on_bus" in
  let dma_on = Petri.Net.place_index net "dma.on_bus" in
  let bus_invariant =
    List.find
      (fun y ->
        y.(bus) = 1 && y.(cpu_on) = 1 && y.(dma_on) = 1
        && Petri.Invariant.invariant_value net y net.Petri.Net.initial = 1)
      semiflows
  in
  Format.printf "@.bus protected by the P-semiflow@.  %a = 1@."
    (Petri.Invariant.pp_invariant ~kind:`Place net)
    bus_invariant;

  (* 4. Structural deadlock analysis: every minimal siphon carries a
     marked trap except those the interrupt handshake empties on
     purpose; report them for review. *)
  let siphons = Petri.Siphon.minimal_siphons net in
  let unprotected =
    List.filter
      (fun s ->
        let trap = Petri.Siphon.max_trap_inside net s in
        Petri.Bitset.is_empty trap
        || not (Petri.Bitset.intersects trap net.Petri.Net.initial))
      siphons
  in
  Format.printf "@.minimal siphons: %d, without a marked trap: %d@."
    (List.length siphons) (List.length unprotected);
  List.iter
    (fun s -> Format.printf "  review: %a@." (Petri.Net.pp_marking net) s)
    unprotected;

  (* 5. Full behavioural report. *)
  let report = Petri.Properties.check net in
  Format.printf "@.%a@." (Petri.Properties.pp_report net) report
