(* The headline experiment of the paper: the non-serialized dining
   philosophers deadlock, found by GPO in a constant number of states
   while every other engine's cost grows with the number of
   philosophers.

   Run with:  dune exec examples/dining_philosophers.exe *)

let () =
  Format.printf
    "NSDP scaling — states explored per engine (deadlock found by all)@.@.";
  Format.printf "%-6s %10s %10s %14s %6s@." "n" "full" "spin+po" "smv-peak-bdd" "gpo";
  List.iter
    (fun n ->
      let net = Models.Nsdp.make n in
      let full =
        if n <= 8 then
          string_of_int (Petri.Reachability.explore net).Petri.Reachability.states
        else "-"
      in
      let po = (Petri.Stubborn.explore net).Petri.Reachability.states in
      let smv =
        if n <= 6 then
          string_of_int (Bddkit.Symbolic.analyse net).Bddkit.Symbolic.peak_live_nodes
        else "-"
      in
      let gpo = Gpn.Explorer.analyse net in
      assert (not (Gpn.Explorer.deadlock_free gpo));
      Format.printf "%-6d %10s %10d %14s %6d@." n full po smv gpo.states)
    [ 2; 3; 4; 5; 6; 8; 10; 12 ];

  (* Show the witness for a mid-size instance. *)
  let n = 5 in
  let net = Models.Nsdp.make n in
  let result = Gpn.Explorer.analyse net in
  match result.deadlocks with
  | [] -> assert false
  | witness :: _ ->
      Format.printf "@.deadlock witness for n = %d:@." n;
      List.iter
        (fun m -> Format.printf "  %a@." (Petri.Net.pp_marking net) m)
        witness.markings;
      let trace = Gpn.Explorer.deadlock_trace result witness in
      Format.printf "@.reached by: %a@." (Petri.Trace.pp net) trace;
      (* The trace is a genuine firing sequence of the classical net. *)
      assert (Petri.Trace.is_valid net trace);
      assert (
        Petri.Semantics.is_deadlock net (Petri.Trace.final_marking net trace));
      Format.printf "@.(trace replays on the classical net and ends deadlocked)@."
