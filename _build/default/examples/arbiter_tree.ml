(* Verifying a hardware-style asynchronous arbiter tree: deadlock
   freedom with all four engines, plus a structural mutual-exclusion
   proof from P-invariants — the kind of workflow the paper's
   embedded-system methodology (reference [16]) is about.

   Run with:  dune exec examples/arbiter_tree.exe *)

let () =
  let n = 4 in
  let net = Models.Asat.make n in
  Format.printf "%a@.@." Petri.Net.pp_summary net;

  (* 1. The conflict structure: one cluster per arbiter decision. *)
  let conflict = Petri.Conflict.analyse net in
  let choice_clusters =
    Array.to_list (Petri.Conflict.clusters conflict)
    |> List.filter (fun c -> Petri.Bitset.cardinal c >= 2)
  in
  Format.printf "arbitration choices (conflict clusters):@.";
  List.iter
    (fun c -> Format.printf "  %a@." (Petri.Net.pp_transition_set net) c)
    choice_clusters;

  (* 2. Deadlock freedom, four ways. *)
  Format.printf "@.engine comparison:@.";
  List.iter
    (fun kind ->
      let o = Harness.Engine.run kind net in
      Format.printf "  %a@." Harness.Engine.pp_outcome o;
      assert (not o.Harness.Engine.deadlock))
    Harness.Engine.all;

  (* 3. Structural mutual exclusion: a P-invariant containing the user
     "use" places and the resource token with weight 1 proves at most
     one user is ever granted the resource. *)
  let use_places =
    List.filter_map
      (fun i ->
        try Some (Petri.Net.place_index net (Printf.sprintf "u%d.use" i))
        with Not_found -> None)
      (List.init n Fun.id)
  in
  let semiflows = Petri.Invariant.p_semiflows net in
  let mutex_invariant =
    List.find_opt
      (fun y ->
        List.for_all (fun p -> y.(p) = 1) use_places
        && Petri.Invariant.invariant_value net y net.Petri.Net.initial = 1)
      semiflows
  in
  (match mutex_invariant with
  | Some y ->
      Format.printf
        "@.mutual exclusion proved structurally by the P-semiflow@.  %a = 1@."
        (Petri.Invariant.pp_invariant ~kind:`Place net)
        y
  | None -> Format.printf "@.(no single semiflow covers all use places)@.");

  (* 4. Liveness-style sanity: every transition can fire somewhere. *)
  let report = Petri.Properties.check net in
  Format.printf "@.%a@." (Petri.Properties.pp_report net) report;
  assert report.Petri.Properties.quasi_live
