(* Quickstart: model two processes sharing two locks, find the classic
   lock-ordering deadlock, and print a counterexample trace.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a safe Petri net with the Builder DSL.  Process A takes
     lock1 then lock2; process B takes them in the opposite order. *)
  let b = Petri.Builder.create "lock-ordering" in
  let lock1 = Petri.Builder.place b ~marked:true "lock1" in
  let lock2 = Petri.Builder.place b ~marked:true "lock2" in
  let process name first second =
    let idle = Petri.Builder.place b ~marked:true (name ^ ".idle") in
    let has_first = Petri.Builder.place b (name ^ ".has_first") in
    let critical = Petri.Builder.place b (name ^ ".critical") in
    ignore
      (Petri.Builder.transition b (name ^ ".acquire1") ~pre:[ idle; first ]
         ~post:[ has_first ]);
    ignore
      (Petri.Builder.transition b (name ^ ".acquire2") ~pre:[ has_first; second ]
         ~post:[ critical ]);
    ignore
      (Petri.Builder.transition b (name ^ ".release") ~pre:[ critical ]
         ~post:[ idle; first; second ])
  in
  process "A" lock1 lock2;
  process "B" lock2 lock1;
  let net = Petri.Builder.build b in
  Format.printf "%a@.@." Petri.Net.pp_summary net;

  (* 2. Run the generalized partial-order analysis. *)
  let result = Gpn.Explorer.analyse net in
  Format.printf "%a@.@." Gpn.Explorer.pp_summary result;

  (* 3. Extract and replay a counterexample. *)
  match result.deadlocks with
  | [] -> Format.printf "no deadlock — try swapping B's lock order!@."
  | witness :: _ ->
      let trace = Gpn.Explorer.deadlock_trace result witness in
      Format.printf "counterexample:@.  %a@.@." (Petri.Trace.pp net) trace;
      let final = Petri.Trace.final_marking net trace in
      Format.printf "dead marking: %a@." (Petri.Net.pp_marking net) final;

      (* 4. Compare against the conventional engines. *)
      let full = Petri.Reachability.explore net in
      let po = Petri.Stubborn.explore net in
      Format.printf
        "@.state counts — conventional: %d, stubborn sets: %d, GPO: %d@."
        full.states po.states result.states
