(* A debugging session on a faulty communication protocol, written in
   the textual net format: two peers exchange a request/acknowledge
   handshake over one-place channels, but both may initiate — and the
   naive protocol deadlocks when they do so simultaneously.  We find
   the bug with GPO, read the counterexample, apply the classic fix
   (detect and resolve the request collision), and re-verify.

   Run with:  dune exec examples/protocol_debugging.exe *)

let faulty =
  {|
  net handshake
  # peer A
  pl a.idle (1)
  pl a.waiting
  pl a.done
  # peer B
  pl b.idle (1)
  pl b.waiting
  pl b.done
  # one-place channels between the peers
  pl req_ab
  pl req_ba
  pl ack_ab
  pl ack_ba

  # either peer may initiate a session
  tr a.call    : a.idle -> a.waiting req_ab
  tr b.call    : b.idle -> b.waiting req_ba
  # a peer that receives a request while idle acknowledges it
  tr a.serve   : a.idle req_ba -> a.done ack_ba
  tr b.serve   : b.idle req_ab -> b.done ack_ab
  # the initiator completes on the acknowledgement
  tr a.finish  : a.waiting ack_ab -> a.done
  tr b.finish  : b.waiting ack_ba -> b.done
  # sessions repeat forever
  tr a.reset   : a.done -> a.idle
  tr b.reset   : b.done -> b.idle
  |}

let fixed =
  faulty
  ^ {|
  # fix: when both peers initiate at once, the collision is detected
  # (both requests pending, both peers waiting) and resolved atomically
  tr collision : a.waiting b.waiting req_ab req_ba -> a.done b.done
  |}

let analyse label text =
  let net = Petri.Parser.of_string ~name:label text in
  Format.printf "== %s: %a@." label Petri.Net.pp_summary net;
  let result = Gpn.Explorer.analyse net in
  (match result.deadlocks with
  | [] -> Format.printf "verified deadlock free in %d GPO states@." result.states
  | witness :: _ ->
      Format.printf "DEADLOCK (%d GPO states).  One dead marking:@." result.states;
      List.iter
        (fun m -> Format.printf "  %a@." (Petri.Net.pp_marking net) m)
        witness.markings;
      let trace = Gpn.Explorer.deadlock_trace result witness in
      Format.printf "scenario: %a@." (Petri.Trace.pp net) trace);
  Format.printf "@.";
  result

let () =
  let faulty_result = analyse "handshake-faulty" faulty in
  assert (not (Gpn.Explorer.deadlock_free faulty_result));
  let fixed_result = analyse "handshake-fixed" fixed in
  assert (Gpn.Explorer.deadlock_free fixed_result);
  (* Cross-check the fix with the exhaustive engine. *)
  let net = Petri.Parser.of_string ~name:"handshake-fixed" fixed in
  let full = Petri.Reachability.explore net in
  assert (full.deadlock_count = 0);
  Format.printf
    "fix confirmed by exhaustive search: %d reachable markings, none dead@."
    full.states
