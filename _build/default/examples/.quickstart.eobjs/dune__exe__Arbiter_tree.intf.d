examples/arbiter_tree.mli:
