examples/protocol_debugging.ml: Format Gpn List Petri
