examples/quickstart.mli:
