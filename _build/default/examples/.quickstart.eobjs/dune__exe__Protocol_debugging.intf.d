examples/protocol_debugging.mli:
