examples/arbiter_tree.ml: Array Format Fun Harness List Models Petri Printf
