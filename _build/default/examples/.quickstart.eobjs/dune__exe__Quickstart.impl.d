examples/quickstart.ml: Format Gpn Petri
