examples/embedded_interface.mli:
