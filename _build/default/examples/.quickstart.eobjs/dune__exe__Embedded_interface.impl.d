examples/embedded_interface.ml: Array Format Gpn List Petri Printf String
