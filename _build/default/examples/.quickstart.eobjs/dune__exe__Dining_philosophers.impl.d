examples/dining_philosophers.ml: Bddkit Format Gpn List Models Petri
