examples/dining_philosophers.mli:
