(* Tests for Petri.Net, Petri.Builder, Petri.Parser, Petri.Dot and
   Petri.Trace. *)

module B = Petri.Bitset

(* A small shared fixture: producer/consumer over a 1-place buffer. *)
let producer_consumer () =
  let b = Petri.Builder.create "prodcons" in
  let ready = Petri.Builder.place b ~marked:true "ready" in
  let buffer = Petri.Builder.place b "buffer" in
  let idle = Petri.Builder.place b ~marked:true "idle" in
  let busy = Petri.Builder.place b "busy" in
  let produce = Petri.Builder.transition b "produce" ~pre:[ ready ] ~post:[ buffer ] in
  let consume = Petri.Builder.transition b "consume" ~pre:[ buffer; idle ] ~post:[ busy ] in
  let finish = Petri.Builder.transition b "finish" ~pre:[ busy ] ~post:[ idle; ready ] in
  (Petri.Builder.build b, produce, consume, finish)

let test_builder_structure () =
  let net, produce, consume, _finish = producer_consumer () in
  Alcotest.(check int) "places" 4 net.Petri.Net.n_places;
  Alcotest.(check int) "transitions" 3 net.Petri.Net.n_transitions;
  Alcotest.(check string) "place name" "buffer" (Petri.Net.place_name net 1);
  Alcotest.(check string) "transition name" "consume"
    (Petri.Net.transition_name net consume);
  Alcotest.(check int) "index round-trip" produce
    (Petri.Net.transition_index net "produce");
  Alcotest.(check int) "place index" 2 (Petri.Net.place_index net "idle");
  Alcotest.(check bool) "initial marking" true
    (B.equal net.Petri.Net.initial (B.of_list 4 [ 0; 2 ]));
  Alcotest.(check (list int)) "preset of consume" [ 1; 2 ]
    (B.elements (Petri.Net.pre net consume));
  Alcotest.(check (list int)) "postset of consume" [ 3 ]
    (B.elements (Petri.Net.post net consume))

let test_builder_errors () =
  let b = Petri.Builder.create "bad" in
  let p = Petri.Builder.place b "p" in
  Alcotest.check_raises "duplicate place"
    (Invalid_argument "Builder.place: duplicate place \"p\"") (fun () ->
      ignore (Petri.Builder.place b "p"));
  ignore (Petri.Builder.transition b "t" ~pre:[ p ] ~post:[]);
  Alcotest.check_raises "duplicate transition"
    (Invalid_argument "Builder.transition: duplicate transition \"t\"") (fun () ->
      ignore (Petri.Builder.transition b "t" ~pre:[] ~post:[]));
  Alcotest.check_raises "unknown place"
    (Invalid_argument "Builder.transition: unknown place index 7") (fun () ->
      ignore (Petri.Builder.transition b "u" ~pre:[ 7 ] ~post:[]));
  ignore (Petri.Builder.build b);
  Alcotest.check_raises "use after build"
    (Invalid_argument "Builder.place: builder already built") (fun () ->
      ignore (Petri.Builder.place b "q"))

let test_consumers_producers () =
  let net, produce, consume, finish = producer_consumer () in
  let buffer = Petri.Net.place_index net "buffer" in
  Alcotest.(check (list int)) "consumers of buffer" [ consume ]
    (Array.to_list net.Petri.Net.consumers.(buffer));
  Alcotest.(check (list int)) "producers of buffer" [ produce ]
    (Array.to_list net.Petri.Net.producers.(buffer));
  let ready = Petri.Net.place_index net "ready" in
  Alcotest.(check (list int)) "producers of ready" [ finish ]
    (Array.to_list net.Petri.Net.producers.(ready))

let test_parser_round_trip () =
  let net, _, _, _ = producer_consumer () in
  let text = Petri.Parser.to_string net in
  let net' = Petri.Parser.of_string text in
  Alcotest.(check string) "name preserved" net.Petri.Net.name net'.Petri.Net.name;
  Alcotest.(check int) "places preserved" net.Petri.Net.n_places net'.Petri.Net.n_places;
  Alcotest.(check int) "transitions preserved" net.Petri.Net.n_transitions
    net'.Petri.Net.n_transitions;
  Alcotest.(check bool) "marking preserved" true
    (B.equal net.Petri.Net.initial net'.Petri.Net.initial);
  for t = 0 to net.Petri.Net.n_transitions - 1 do
    Alcotest.(check bool) "pre preserved" true
      (B.equal net.Petri.Net.pre.(t) net'.Petri.Net.pre.(t));
    Alcotest.(check bool) "post preserved" true
      (B.equal net.Petri.Net.post.(t) net'.Petri.Net.post.(t))
  done

let test_parser_implicit_places () =
  let net =
    Petri.Parser.of_string "tr t1 : a b -> c\ntr t2 : c -> a\npl b (1)\n"
  in
  Alcotest.(check int) "implicit places" 3 net.Petri.Net.n_places;
  Alcotest.(check bool) "marked b" true
    (B.mem (Petri.Net.place_index net "b") net.Petri.Net.initial)

let test_parser_comments_and_net_line () =
  let net =
    Petri.Parser.of_string
      "# a comment\nnet demo\npl p (1)  # trailing comment\ntr t : p -> p\n"
  in
  Alcotest.(check string) "net name" "demo" net.Petri.Net.name;
  Alcotest.(check int) "one place" 1 net.Petri.Net.n_places

let test_parser_errors () =
  let expect_error text =
    match Petri.Parser.of_string text with
    | _ -> Alcotest.fail "expected syntax error"
    | exception Petri.Parser.Syntax_error _ -> ()
  in
  expect_error "tr t : a b c\n";
  expect_error "tr t : a -> b -> c\n";
  expect_error "pl\n";
  expect_error "frobnicate x\n";
  expect_error "pl p (2)\n"

let test_round_trip_all_models () =
  let nets =
    [
      Models.Nsdp.make 3;
      Models.Asat.make 4;
      Models.Over.make 3;
      Models.Rw.make 4;
      Models.Figures.fig3;
    ]
  in
  List.iter
    (fun net ->
      let net' = Petri.Parser.of_string (Petri.Parser.to_string net) in
      let r = Petri.Reachability.explore net in
      let r' = Petri.Reachability.explore net' in
      Alcotest.(check int)
        (net.Petri.Net.name ^ " same state count")
        r.states r'.states;
      Alcotest.(check int)
        (net.Petri.Net.name ^ " same deadlocks")
        r.deadlock_count r'.deadlock_count)
    nets

let test_dot_output () =
  let net, _, _, _ = producer_consumer () in
  let dot = Petri.Dot.net net in
  Alcotest.(check bool) "mentions digraph" true
    (String.length dot > 0 && String.sub dot 0 8 = "digraph ");
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions buffer" true (contains "buffer" dot);
  Alcotest.(check bool) "mentions consume" true (contains "consume" dot);
  let rg =
    Petri.Dot.reachability_graph net (Petri.Reachability.explore net)
  in
  Alcotest.(check bool) "rg mentions edges" true (contains "->" rg)

let test_trace_replay () =
  let net, produce, consume, finish = producer_consumer () in
  let markings = Petri.Trace.replay net [ produce; consume; finish ] in
  Alcotest.(check int) "markings count" 4 (List.length markings);
  Alcotest.(check bool) "back to initial" true
    (B.equal (Petri.Trace.final_marking net [ produce; consume; finish ])
       net.Petri.Net.initial);
  Alcotest.(check bool) "valid" true (Petri.Trace.is_valid net [ produce; consume ]);
  Alcotest.(check bool) "invalid when disabled" false
    (Petri.Trace.is_valid net [ consume ]);
  match Petri.Trace.replay net [ consume ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "builder structure" `Quick test_builder_structure;
    Alcotest.test_case "builder errors" `Quick test_builder_errors;
    Alcotest.test_case "consumers and producers" `Quick test_consumers_producers;
    Alcotest.test_case "parser round-trip" `Quick test_parser_round_trip;
    Alcotest.test_case "parser implicit places" `Quick test_parser_implicit_places;
    Alcotest.test_case "parser comments" `Quick test_parser_comments_and_net_line;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "round-trip all models" `Quick test_round_trip_all_models;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "trace replay" `Quick test_trace_replay;
  ]
