(* Tests for the structural analysis: incidence matrix, P/T-invariants
   and Farkas semiflows. *)

let test_incidence () =
  let net = Models.Figures.fig3 in
  let c = Petri.Invariant.incidence net in
  let t name = Petri.Net.transition_index net name in
  let p name = Petri.Net.place_index net name in
  Alcotest.(check int) "A consumes p1" (-1) c.(p "p1").(t "A");
  Alcotest.(check int) "A produces p2" 1 c.(p "p2").(t "A");
  Alcotest.(check int) "B untouched by p2" 0 c.(p "p2").(t "B");
  Alcotest.(check int) "C consumes p2" (-1) c.(p "p2").(t "C")

let test_p_invariants_mutex () =
  (* A simple mutex: lock + crit1 + crit2 is invariant. *)
  let net =
    Petri.Parser.of_string
      {|net mutex
        pl idle1 (1)
        pl idle2 (1)
        pl lock (1)
        pl crit1
        pl crit2
        tr enter1 : idle1 lock -> crit1
        tr leave1 : crit1 -> idle1 lock
        tr enter2 : idle2 lock -> crit2
        tr leave2 : crit2 -> idle2 lock|}
  in
  let invariants = Petri.Invariant.p_invariants net in
  Alcotest.(check bool) "basis nonempty" true (invariants <> []);
  List.iter
    (fun y ->
      Alcotest.(check bool) "is a P-invariant" true (Petri.Invariant.is_p_invariant net y);
      (* The weighted token count is constant across reachable markings. *)
      let v0 = Petri.Invariant.invariant_value net y net.Petri.Net.initial in
      let r = Petri.Reachability.explore net in
      Petri.Reachability.Marking_table.iter
        (fun m () ->
          Alcotest.(check int) "invariant value constant" v0
            (Petri.Invariant.invariant_value net y m))
        r.visited)
    invariants;
  (* The mutex semiflow lock + crit1 + crit2 must appear. *)
  let lock = Petri.Net.place_index net "lock" in
  let crit1 = Petri.Net.place_index net "crit1" in
  let crit2 = Petri.Net.place_index net "crit2" in
  let semiflows = Petri.Invariant.p_semiflows net in
  Alcotest.(check bool) "mutex semiflow found" true
    (List.exists
       (fun y ->
         y.(lock) = 1 && y.(crit1) = 1 && y.(crit2) = 1
         && Array.to_list y |> List.filter (fun w -> w <> 0) |> List.length = 3)
       semiflows)

let test_t_invariants () =
  let net = Models.Nsdp.make 2 in
  let invariants = Petri.Invariant.t_invariants net in
  Alcotest.(check bool) "T-invariant basis nonempty" true (invariants <> []);
  List.iter
    (fun x ->
      Alcotest.(check bool) "is a T-invariant" true
        (Petri.Invariant.is_t_invariant net x))
    invariants;
  (* One philosopher's full cycle is a T-invariant. *)
  let x = Array.make net.Petri.Net.n_transitions 0 in
  List.iter
    (fun name -> x.(Petri.Net.transition_index net name) <- 1)
    [ "hungry.0"; "takeL.0"; "reach.0"; "takeR.0"; "release.0" ];
  Alcotest.(check bool) "philosopher cycle is T-invariant" true
    (Petri.Invariant.is_t_invariant net x)

let test_semiflows_cover_models () =
  (* All benchmark models are covered by P-semiflows (hence structurally
     bounded), which is consistent with their 1-safety. *)
  List.iter
    (fun net ->
      Alcotest.(check bool)
        (net.Petri.Net.name ^ " covered")
        true
        (Petri.Invariant.structurally_covered net))
    [ Models.Nsdp.make 3; Models.Over.make 3; Models.Rw.make 3; Models.Figures.fig7 ]

let test_invariant_values_on_random_nets () =
  (* For random nets: every basis vector is killed by the incidence
     matrix, and its value is constant along any firing sequence. *)
  for seed = 0 to 49 do
    let net = Models.Random_net.generate seed in
    let invariants = Petri.Invariant.p_invariants net in
    List.iter
      (fun y ->
        Alcotest.(check bool) "basis vector checks" true
          (Petri.Invariant.is_p_invariant net y);
        let v0 = Petri.Invariant.invariant_value net y net.Petri.Net.initial in
        List.iter
          (fun (_, m) ->
            Alcotest.(check int) "one step preserves value" v0
              (Petri.Invariant.invariant_value net y m))
          (Petri.Semantics.successors net net.Petri.Net.initial))
      invariants
  done

let test_component_invariants_random () =
  (* The random nets are synchronized products of one-token automata, so
     each component's indicator vector is a P-invariant of value 1. *)
  for seed = 0 to 19 do
    let net = Models.Random_net.generate seed in
    let components = Models.Random_net.default_spec.components in
    let per_component = Models.Random_net.default_spec.states_per_component in
    for c = 0 to components - 1 do
      let y =
        Array.init net.Petri.Net.n_places (fun p ->
            if p / per_component = c then 1 else 0)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d component %d" seed c)
        true
        (Petri.Invariant.is_p_invariant net y);
      Alcotest.(check int) "one token" 1
        (Petri.Invariant.invariant_value net y net.Petri.Net.initial)
    done
  done

let suite =
  [
    Alcotest.test_case "incidence matrix" `Quick test_incidence;
    Alcotest.test_case "P-invariants of a mutex" `Quick test_p_invariants_mutex;
    Alcotest.test_case "T-invariants of NSDP" `Quick test_t_invariants;
    Alcotest.test_case "semiflows cover the models" `Quick test_semiflows_cover_models;
    Alcotest.test_case "invariants on random nets" `Quick
      test_invariant_values_on_random_nets;
    Alcotest.test_case "component semiflows" `Quick test_component_invariants_random;
  ]
