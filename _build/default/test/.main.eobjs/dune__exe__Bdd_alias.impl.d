test/bdd_alias.ml: Bddkit
