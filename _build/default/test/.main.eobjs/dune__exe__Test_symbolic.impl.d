test/test_symbolic.ml: Alcotest Bddkit List Models Petri
