test/test_siphon.ml: Alcotest List Models Petri Printf
