test/test_explorer.ml: Alcotest Astring_contains Format Gpn List Models Option Petri Printf String
