test/test_invariant.ml: Alcotest Array List Models Petri Printf
