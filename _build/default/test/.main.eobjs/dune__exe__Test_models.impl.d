test/test_models.ml: Alcotest Array Gpn List Models Petri Printf String
