test/main.mli:
