test/test_reachability.ml: Alcotest Float List Models Petri Printf
