test/test_experiments.ml: Alcotest Astring_contains Float Format Gpn Harness List Models Petri Printf Unix
