test/test_harness.ml: Alcotest Gpn Harness List Models Petri Printf
