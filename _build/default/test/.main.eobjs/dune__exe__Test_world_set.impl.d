test/test_world_set.ml: Alcotest Gpn List Petri QCheck2 QCheck_alcotest
