test/test_bitset.ml: Alcotest Char Petri QCheck2 QCheck_alcotest String
