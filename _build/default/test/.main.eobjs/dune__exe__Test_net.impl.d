test/test_net.ml: Alcotest Array List Models Petri String
