test/test_gpo_random.ml: Alcotest Bool Gpn Models Option Petri
