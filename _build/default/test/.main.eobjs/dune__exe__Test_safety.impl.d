test/test_safety.ml: Alcotest Bddkit Gpn List Models Petri Printf Random String
