test/test_dynamics.ml: Alcotest Array Format Gpn List Models Petri
