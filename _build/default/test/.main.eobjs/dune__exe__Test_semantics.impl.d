test/test_semantics.ml: Alcotest Array List Models Petri Printf
