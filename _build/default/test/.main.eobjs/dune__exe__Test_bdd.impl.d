test/test_bdd.ml: Alcotest Bdd_alias List QCheck2 QCheck_alcotest
