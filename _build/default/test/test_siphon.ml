(* Tests for the structural siphon/trap analysis, including its use as
   an independent oracle for the reachability engines: the empty places
   of every dead marking form a siphon, and every dead marking leaves
   some minimal siphon unmarked. *)

module B = Petri.Bitset

let test_basic_definitions () =
  let net = Models.Nsdp.make 2 in
  let p name = Petri.Net.place_index net name in
  (* All forks plus the places that "hold" them form a siphon and a trap
     in NSDP(2): tokens circulate among them. *)
  let full = B.full net.Petri.Net.n_places in
  Alcotest.(check bool) "all places form a siphon" true (Petri.Siphon.is_siphon net full);
  Alcotest.(check bool) "all places form a trap" true (Petri.Siphon.is_trap net full);
  Alcotest.(check bool) "empty set is no siphon" false
    (Petri.Siphon.is_siphon net (B.empty net.Petri.Net.n_places));
  (* A single fork place is not a siphon: release feeds it without
     consuming from it. *)
  Alcotest.(check bool) "fork alone is not a siphon" false
    (Petri.Siphon.is_siphon net (B.singleton net.Petri.Net.n_places (p "fork.0")))

let test_minimal_siphons_structure () =
  let net = Models.Nsdp.make 3 in
  let siphons = Petri.Siphon.minimal_siphons net in
  Alcotest.(check bool) "some siphons" true (siphons <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "each is a siphon" true (Petri.Siphon.is_siphon net s);
      (* Minimality: removing any place breaks the property. *)
      B.iter
        (fun pl ->
          Alcotest.(check bool) "minimal" false
            (Petri.Siphon.is_siphon net (B.remove pl s)))
        s)
    siphons

let test_dead_marking_empty_places_form_siphon () =
  (* The fundamental theorem connecting structure and behaviour. *)
  let nets =
    [ Models.Nsdp.make 2; Models.Nsdp.make 3; Models.Figures.fig2 3; Models.Figures.fig3 ]
  in
  List.iter
    (fun net ->
      let r = Petri.Reachability.explore ~max_deadlocks:64 net in
      List.iter
        (fun dead ->
          let empty = Petri.Siphon.empty_places net dead in
          Alcotest.(check bool)
            (net.Petri.Net.name ^ ": empty places of a dead marking are a siphon")
            true
            (Petri.Siphon.is_siphon net empty))
        r.deadlocks)
    nets

let test_dead_marking_empty_places_random () =
  for seed = 0 to 99 do
    let net = Models.Random_net.generate seed in
    let r = Petri.Reachability.explore ~max_deadlocks:32 net in
    List.iter
      (fun dead ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d" seed)
          true
          (Petri.Siphon.is_siphon net (Petri.Siphon.empty_places net dead)))
      r.deadlocks
  done

let test_unmarked_witness_at_deadlock () =
  let net = Models.Nsdp.make 3 in
  let r = Petri.Reachability.explore net in
  match r.deadlocks with
  | [] -> Alcotest.fail "NSDP deadlocks"
  | dead :: _ -> begin
      match Petri.Siphon.unmarked_witness net dead with
      | None -> Alcotest.fail "a dead marking always leaves a minimal siphon empty"
      | Some s ->
          Alcotest.(check bool) "witness is a siphon" true (Petri.Siphon.is_siphon net s);
          Alcotest.(check bool) "witness unmarked" true (B.disjoint s dead)
    end

let test_traps () =
  let net = Models.Rw.make 3 in
  let full = B.full net.Petri.Net.n_places in
  let trap = Petri.Siphon.max_trap_inside net full in
  Alcotest.(check bool) "whole net is a trap" true (B.equal trap full);
  (* A trap that starts marked stays marked along every run. *)
  let r = Petri.Reachability.explore net in
  let siphons = Petri.Siphon.minimal_siphons net in
  List.iter
    (fun s ->
      let t = Petri.Siphon.max_trap_inside net s in
      if (not (B.is_empty t)) && B.intersects t net.Petri.Net.initial then
        Petri.Reachability.Marking_table.iter
          (fun m () ->
            Alcotest.(check bool) "marked trap stays marked" true (B.intersects t m))
          r.visited)
    siphons

let test_commoner_on_deadlocking_net () =
  (* NSDP deadlocks, so Commoner's condition must fail for it (the
     contrapositive direction holds for all ordinary nets: a reachable
     dead marking empties some siphon, which therefore cannot contain a
     marked trap). *)
  Alcotest.(check bool) "commoner fails on NSDP" false
    (Petri.Siphon.commoner_holds (Models.Nsdp.make 3));
  (* fig2 ends in terminal (dead) markings: same. *)
  Alcotest.(check bool) "commoner fails on fig2" false
    (Petri.Siphon.commoner_holds (Models.Figures.fig2 2))

let test_commoner_on_live_free_choice_net () =
  (* A live free-choice cycle: one token rotating through three places. *)
  let net =
    Petri.Parser.of_string
      "pl a (1)\npl b\npl c\ntr t1 : a -> b\ntr t2 : b -> c\ntr t3 : c -> a\n"
  in
  Alcotest.(check bool) "free choice" true (Petri.Siphon.is_free_choice net);
  Alcotest.(check bool) "commoner holds" true (Petri.Siphon.commoner_holds net);
  let r = Petri.Reachability.explore net in
  Alcotest.(check int) "indeed deadlock free" 0 r.deadlock_count

let test_free_choice_classification () =
  Alcotest.(check bool) "fig2 is free choice" true
    (Petri.Siphon.is_free_choice (Models.Figures.fig2 3));
  (* NSDP is not free choice: fork places share consumers with other
     input places. *)
  Alcotest.(check bool) "NSDP is not free choice" false
    (Petri.Siphon.is_free_choice (Models.Nsdp.make 3))

let test_commoner_agrees_with_search_on_free_choice () =
  (* For random free-choice nets, Commoner ⟹ deadlock-free.  Build
     free-choice nets from state machines (every transition has one
     input): always free choice. *)
  for seed = 0 to 49 do
    let spec =
      { Models.Random_net.components = 2; states_per_component = 3;
        transitions = 6; max_sync = 1 }
    in
    let net = Models.Random_net.generate ~spec seed in
    if Petri.Siphon.is_free_choice net && Petri.Siphon.commoner_holds net then begin
      let r = Petri.Reachability.explore net in
      Alcotest.(check int) (Printf.sprintf "seed %d deadlock free" seed) 0
        r.deadlock_count
    end
  done

let suite =
  [
    Alcotest.test_case "definitions" `Quick test_basic_definitions;
    Alcotest.test_case "minimal siphons" `Quick test_minimal_siphons_structure;
    Alcotest.test_case "dead markings empty a siphon (models)" `Quick
      test_dead_marking_empty_places_form_siphon;
    Alcotest.test_case "dead markings empty a siphon (random)" `Quick
      test_dead_marking_empty_places_random;
    Alcotest.test_case "unmarked witness at deadlock" `Quick
      test_unmarked_witness_at_deadlock;
    Alcotest.test_case "traps" `Quick test_traps;
    Alcotest.test_case "Commoner fails on deadlocking nets" `Quick
      test_commoner_on_deadlocking_net;
    Alcotest.test_case "Commoner holds on a live cycle" `Quick
      test_commoner_on_live_free_choice_net;
    Alcotest.test_case "free-choice classification" `Quick
      test_free_choice_classification;
    Alcotest.test_case "Commoner implies deadlock-freedom (free choice)" `Quick
      test_commoner_agrees_with_search_on_free_choice;
  ]
