(* Tests for the classical firing semantics (Definitions 2.3/2.4),
   the conflict relation (Definition 2.2) and dynamic MCS computation. *)

module B = Petri.Bitset

let fig3 = Models.Figures.fig3

let t name = Petri.Net.transition_index fig3 name
let p name = Petri.Net.place_index fig3 name

let test_enabling () =
  let m0 = fig3.Petri.Net.initial in
  Alcotest.(check bool) "A enabled" true (Petri.Semantics.enabled fig3 (t "A") m0);
  Alcotest.(check bool) "B enabled" true (Petri.Semantics.enabled fig3 (t "B") m0);
  Alcotest.(check bool) "C disabled" false (Petri.Semantics.enabled fig3 (t "C") m0);
  Alcotest.(check (list int)) "enabled set" [ t "A"; t "B" ]
    (B.elements (Petri.Semantics.enabled_set fig3 m0))

let test_firing () =
  let m0 = fig3.Petri.Net.initial in
  let m1, safe = Petri.Semantics.fire fig3 (t "A") m0 in
  Alcotest.(check bool) "safe firing" true safe;
  Alcotest.(check bool) "A consumed p1, produced p2 p3" true
    (B.equal m1 (B.of_list fig3.Petri.Net.n_places [ p "p2"; p "p3" ]));
  Alcotest.(check bool) "C now enabled" true (Petri.Semantics.enabled fig3 (t "C") m1);
  Alcotest.(check bool) "D still disabled" false
    (Petri.Semantics.enabled fig3 (t "D") m1);
  let m2 = Petri.Semantics.fire_exn fig3 (t "C") m1 in
  Alcotest.(check bool) "C produced p5" true
    (B.equal m2 (B.singleton fig3.Petri.Net.n_places (p "p5")));
  Alcotest.(check bool) "deadlock after C" true (Petri.Semantics.is_deadlock fig3 m2)

let test_successors () =
  let m0 = fig3.Petri.Net.initial in
  let successors = Petri.Semantics.successors fig3 m0 in
  Alcotest.(check int) "two successors" 2 (List.length successors);
  Alcotest.(check bool) "labels are A and B" true
    (List.map fst successors = [ t "A"; t "B" ])

let test_fire_sequence () =
  let m0 = fig3.Petri.Net.initial in
  (match Petri.Semantics.fire_sequence fig3 m0 [ t "A"; t "C" ] with
  | Some m ->
      Alcotest.(check bool) "A;C reaches p5" true
        (B.equal m (B.singleton fig3.Petri.Net.n_places (p "p5")))
  | None -> Alcotest.fail "A;C should be fireable");
  Alcotest.(check bool) "A;D not fireable" true
    (Petri.Semantics.fire_sequence fig3 m0 [ t "A"; t "D" ] = None);
  Alcotest.(check bool) "A;B not fireable" true
    (Petri.Semantics.fire_sequence fig3 m0 [ t "A"; t "B" ] = None)

let test_unsafe_detection () =
  (* t puts a second token into an already marked place. *)
  let b = Petri.Builder.create "unsafe" in
  let src = Petri.Builder.place b ~marked:true "src" in
  let dst = Petri.Builder.place b ~marked:true "dst" in
  let tr = Petri.Builder.transition b "t" ~pre:[ src ] ~post:[ dst ] in
  let net = Petri.Builder.build b in
  let _, safe = Petri.Semantics.fire net tr net.Petri.Net.initial in
  Alcotest.(check bool) "unsafe detected" false safe;
  match Petri.Semantics.fire_exn net tr net.Petri.Net.initial with
  | _ -> Alcotest.fail "expected Unsafe"
  | exception Petri.Semantics.Unsafe (t', _) ->
      Alcotest.(check int) "culprit" tr t'

let test_self_loop () =
  let b = Petri.Builder.create "selfloop" in
  let a = Petri.Builder.place b ~marked:true "a" in
  let c = Petri.Builder.place b "c" in
  let tr = Petri.Builder.transition b "t" ~pre:[ a ] ~post:[ a; c ] in
  let net = Petri.Builder.build b in
  let m1, safe = Petri.Semantics.fire net tr net.Petri.Net.initial in
  Alcotest.(check bool) "self-loop is safe" true safe;
  Alcotest.(check bool) "a kept, c added" true
    (B.equal m1 (B.of_list 2 [ a; c ]))

(* Conflict relation *)

let test_conflict_relation () =
  let conflict = Petri.Conflict.analyse fig3 in
  Alcotest.(check bool) "A conflicts B" true
    (Petri.Conflict.in_conflict conflict (t "A") (t "B"));
  Alcotest.(check bool) "C conflicts D (share p3)" true
    (Petri.Conflict.in_conflict conflict (t "C") (t "D"));
  Alcotest.(check bool) "A does not conflict D directly" false
    (Petri.Conflict.in_conflict conflict (t "A") (t "D"));
  Alcotest.(check bool) "A reflexive" true
    (Petri.Conflict.in_conflict conflict (t "A") (t "A"))

let test_clusters () =
  (* In fig3, A-B and C-D are joined through A's output?  No: clusters are
     closures of shared-preset only: A,B share p1; C,D share p3; A and C do
     not share a preset, so there are two clusters. *)
  let conflict = Petri.Conflict.analyse fig3 in
  Alcotest.(check bool) "A and B same cluster" true
    (Petri.Conflict.cluster_of conflict (t "A") = Petri.Conflict.cluster_of conflict (t "B"));
  Alcotest.(check bool) "C and D same cluster" true
    (Petri.Conflict.cluster_of conflict (t "C") = Petri.Conflict.cluster_of conflict (t "D"));
  Alcotest.(check bool) "A and C different clusters" true
    (Petri.Conflict.cluster_of conflict (t "A") <> Petri.Conflict.cluster_of conflict (t "C"));
  Alcotest.(check bool) "A is a choice transition" true
    (Petri.Conflict.is_choice_transition conflict (t "A"));
  Alcotest.(check (list int)) "conflict places = p1 p3" [ p "p1"; p "p3" ]
    (B.elements (Petri.Conflict.conflict_places conflict))

let test_dynamic_mcs () =
  let conflict = Petri.Conflict.analyse fig3 in
  let m0 = fig3.Petri.Net.initial in
  let enabled = Petri.Semantics.enabled_set fig3 m0 in
  (match Petri.Conflict.dynamic_mcs conflict enabled with
  | [ mcs ] ->
      Alcotest.(check (list int)) "initial MCS = {A,B}" [ t "A"; t "B" ]
        (B.elements mcs)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 MCS, got %d" (List.length other)));
  (* After firing A, only C is enabled: a singleton dynamic MCS even though
     C's static cluster contains D. *)
  let m1 = Petri.Semantics.fire_exn fig3 (t "A") m0 in
  match Petri.Conflict.dynamic_mcs conflict (Petri.Semantics.enabled_set fig3 m1) with
  | [ mcs ] -> Alcotest.(check (list int)) "dynamic MCS = {C}" [ t "C" ] (B.elements mcs)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 MCS, got %d" (List.length other))

let test_nsdp_clusters () =
  let net = Models.Nsdp.make 5 in
  let conflict = Petri.Conflict.analyse net in
  let choice_clusters =
    Array.to_list (Petri.Conflict.clusters conflict)
    |> List.filter (fun c -> B.cardinal c >= 2)
  in
  Alcotest.(check int) "one fork cluster per philosopher" 5
    (List.length choice_clusters);
  List.iter
    (fun c -> Alcotest.(check int) "pair cluster" 2 (B.cardinal c))
    choice_clusters

let suite =
  [
    Alcotest.test_case "enabling rule" `Quick test_enabling;
    Alcotest.test_case "firing rule" `Quick test_firing;
    Alcotest.test_case "successors" `Quick test_successors;
    Alcotest.test_case "fire sequence" `Quick test_fire_sequence;
    Alcotest.test_case "unsafe detection" `Quick test_unsafe_detection;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "conflict relation" `Quick test_conflict_relation;
    Alcotest.test_case "conflict clusters" `Quick test_clusters;
    Alcotest.test_case "dynamic MCS" `Quick test_dynamic_mcs;
    Alcotest.test_case "NSDP clusters" `Quick test_nsdp_clusters;
  ]
