(* Tests for the safety-to-deadlock reduction of Section 4: every
   deadlock engine decides coverability properties through the monitor
   construction, in agreement with direct exhaustive search. *)

let property_of net names =
  {
    Petri.Safety.name = "prop";
    never_all = List.map (Petri.Net.place_index net) names;
  }

(* Decide a property with each engine through the monitor net. *)
let verdicts net property =
  let monitored = Petri.Safety.monitor net property in
  let full = (Petri.Reachability.explore monitored).deadlock_count > 0 in
  let stubborn = (Petri.Stubborn.explore monitored).deadlock_count > 0 in
  let gpo = not (Gpn.Explorer.deadlock_free (Gpn.Explorer.analyse monitored)) in
  let smv = (Bddkit.Symbolic.analyse monitored).deadlock <> None in
  (full, stubborn, gpo, smv)

let check_property ~expect net names =
  let property = property_of net names in
  let direct = Petri.Safety.violated_explicit net property in
  Alcotest.(check bool)
    (Printf.sprintf "%s: direct verdict for %s" net.Petri.Net.name
       (String.concat "," names))
    expect direct;
  let full, stubborn, gpo, smv = verdicts net property in
  Alcotest.(check bool) "monitor+full agrees" expect full;
  Alcotest.(check bool) "monitor+stubborn agrees" expect stubborn;
  Alcotest.(check bool) "monitor+gpo agrees" expect gpo;
  Alcotest.(check bool) "monitor+smv agrees" expect smv

let test_mutex_properties () =
  (* ASAT guarantees mutual exclusion of the users... *)
  let net = Models.Asat.make 2 in
  check_property ~expect:false net [ "u0.use"; "u1.use" ];
  (* ... but two users may certainly wait at the same time. *)
  check_property ~expect:true net [ "u0.wait"; "u1.wait" ]

let test_rw_exclusion () =
  let net = Models.Rw.make 3 in
  (* A writer excludes readers. *)
  check_property ~expect:false net [ "writing.0"; "reading.1" ];
  (* Two writers never write together. *)
  check_property ~expect:false net [ "writing.0"; "writing.1" ];
  (* Two readers may read together. *)
  check_property ~expect:true net [ "reading.0"; "reading.1" ]

let test_nsdp_neighbours () =
  let net = Models.Nsdp.make 3 in
  (* Neighbouring philosophers never eat at the same time... *)
  check_property ~expect:false net [ "eat.0"; "eat.1" ];
  (* ... and with three philosophers no two can eat together at all. *)
  check_property ~expect:false net [ "eat.0"; "eat.2" ];
  (* But everybody can hold the left fork at once (the deadlock!). *)
  check_property ~expect:true net [ "askR.0"; "askR.1"; "askR.2" ]

let test_single_place_reachability () =
  let net = Models.Figures.fig3 in
  check_property ~expect:true net [ "p5" ];
  (* p6 is D's output and D can never fire. *)
  check_property ~expect:false net [ "p6" ]

let test_counterexample_trace () =
  let net = Models.Nsdp.make 3 in
  let property = property_of net [ "askR.0"; "askR.1"; "askR.2" ] in
  match Petri.Safety.covering_marking net property with
  | None -> Alcotest.fail "cover should be reachable"
  | Some trace ->
      let final = Petri.Trace.final_marking net trace in
      Alcotest.(check bool) "trace reaches the cover" true
        (List.for_all
           (fun p -> Petri.Bitset.mem p final)
           property.Petri.Safety.never_all)

let test_monitor_structure () =
  let net = Models.Figures.fig1 in
  let property = property_of net [ "q0" ] in
  let monitored = Petri.Safety.monitor net property in
  Alcotest.(check int) "one extra place" (net.Petri.Net.n_places + 1)
    monitored.Petri.Net.n_places;
  Alcotest.(check int) "two extra transitions" (net.Petri.Net.n_transitions + 2)
    monitored.Petri.Net.n_transitions;
  (* The monitored net of a violated property must deadlock even though
     fig1 itself terminates (its terminal marking is masked by tick). *)
  let r = Petri.Reachability.explore monitored in
  Alcotest.(check bool) "deadlocks" true (r.deadlock_count > 0)

let test_monitor_masks_genuine_deadlocks () =
  (* fig1 deadlocks (terminal marking), but the monitored net with an
     unreachable cover does not: tick keeps running. *)
  let net = Models.Figures.fig1 in
  let b = Petri.Builder.create "with-unreachable" in
  ignore (Petri.Builder.place b ~marked:false "unreachable");
  ignore b;
  let property =
    { Petri.Safety.name = "prop"; never_all = [ Petri.Net.place_index net "q0" ] }
  in
  (* q0 IS reachable; use a two-place cover that never happens: q0 and p0
     are mutually exclusive (p0 is consumed to produce q0). *)
  let property2 = property_of net [ "p0"; "q0" ] in
  ignore property;
  let monitored = Petri.Safety.monitor net property2 in
  let r = Petri.Reachability.explore monitored in
  Alcotest.(check int) "no deadlock despite fig1 terminating" 0 r.deadlock_count

let test_random_agreement () =
  (* Randomized cross-validation: random nets, random 1–2 place covers;
     all engines agree with direct search through the monitor. *)
  let rng = Random.State.make [| 0xbeef |] in
  for seed = 0 to 79 do
    let net = Models.Random_net.generate seed in
    let pick () = Random.State.int rng net.Petri.Net.n_places in
    let cover =
      match Random.State.int rng 3 with
      | 0 -> [ pick () ]
      | _ ->
          let a = pick () in
          let b = pick () in
          if a = b then [ a ] else [ a; b ]
    in
    let property = { Petri.Safety.name = "prop"; never_all = cover } in
    let direct = Petri.Safety.violated_explicit net property in
    let full, stubborn, gpo, smv = verdicts net property in
    Alcotest.(check bool) (Printf.sprintf "seed %d full" seed) direct full;
    Alcotest.(check bool) (Printf.sprintf "seed %d stubborn" seed) direct stubborn;
    Alcotest.(check bool) (Printf.sprintf "seed %d gpo" seed) direct gpo;
    Alcotest.(check bool) (Printf.sprintf "seed %d smv" seed) direct smv
  done

let test_invalid_properties () =
  let net = Models.Figures.fig1 in
  Alcotest.check_raises "empty cover"
    (Invalid_argument "Safety.monitor: empty cover") (fun () ->
      ignore (Petri.Safety.monitor net { name = "p"; never_all = [] }));
  Alcotest.check_raises "unknown place"
    (Invalid_argument "Safety.monitor: unknown place in cover") (fun () ->
      ignore (Petri.Safety.monitor net { name = "p"; never_all = [ 99 ] }))

let suite =
  [
    Alcotest.test_case "mutex properties (ASAT)" `Quick test_mutex_properties;
    Alcotest.test_case "reader/writer exclusion" `Quick test_rw_exclusion;
    Alcotest.test_case "NSDP neighbours" `Quick test_nsdp_neighbours;
    Alcotest.test_case "single-place reachability" `Quick test_single_place_reachability;
    Alcotest.test_case "counterexample trace" `Quick test_counterexample_trace;
    Alcotest.test_case "monitor structure" `Quick test_monitor_structure;
    Alcotest.test_case "tick masks genuine deadlocks" `Quick
      test_monitor_masks_genuine_deadlocks;
    Alcotest.test_case "random agreement" `Slow test_random_agreement;
    Alcotest.test_case "invalid properties" `Quick test_invalid_properties;
  ]
