(* Short alias for the BDD module under test. *)
include Bddkit.Bdd
