(* Unit and property tests for the ROBDD package. *)

module D = Bdd_alias


let test_constants () =
  let m = D.manager () in
  Alcotest.(check bool) "zero is zero" true (D.is_zero (D.zero m));
  Alcotest.(check bool) "one is one" true (D.is_one (D.one m));
  Alcotest.(check bool) "not zero = one" true (D.is_one (D.not_ m (D.zero m)))

let test_hash_consing () =
  let m = D.manager () in
  let a = D.and_ m (D.var m 0) (D.var m 1) in
  let b = D.and_ m (D.var m 1) (D.var m 0) in
  Alcotest.(check bool) "structural sharing" true (D.equal a b);
  let c = D.or_ m (D.nvar m 0) (D.nvar m 1) in
  Alcotest.(check bool) "de morgan" true (D.equal (D.not_ m a) c)

let test_ite () =
  let m = D.manager () in
  let x = D.var m 0 and y = D.var m 1 and z = D.var m 2 in
  let f = D.ite m x y z in
  Alcotest.(check bool) "ite via or/and" true
    (D.equal f (D.or_ m (D.and_ m x y) (D.and_ m (D.not_ m x) z)));
  Alcotest.(check bool) "ite x 1 0 = x" true (D.equal (D.ite m x (D.one m) (D.zero m)) x)

let test_eval () =
  let m = D.manager () in
  let f = D.xor_ m (D.var m 0) (D.var m 1) in
  Alcotest.(check bool) "xor tt" false (D.eval f (fun _ -> true));
  Alcotest.(check bool) "xor tf" true (D.eval f (fun v -> v = 0));
  Alcotest.(check bool) "xor ft" true (D.eval f (fun v -> v = 1));
  Alcotest.(check bool) "xor ff" false (D.eval f (fun _ -> false))

let test_exists () =
  let m = D.manager () in
  let f = D.and_ m (D.var m 0) (D.var m 1) in
  Alcotest.(check bool) "exists x0 (x0 ∧ x1) = x1" true
    (D.equal (D.exists m [ 0 ] f) (D.var m 1));
  Alcotest.(check bool) "exists both = 1" true (D.is_one (D.exists m [ 0; 1 ] f));
  let g = D.and_ m (D.var m 0) (D.not_ m (D.var m 0)) in
  Alcotest.(check bool) "exists over 0 = 0" true (D.is_zero (D.exists m [ 0 ] g))

let test_and_exists () =
  let m = D.manager () in
  let f = D.or_ m (D.var m 0) (D.var m 2) in
  let g = D.or_ m (D.not_ m (D.var m 0)) (D.var m 1) in
  Alcotest.(check bool) "fused = unfused" true
    (D.equal (D.and_exists m [ 0 ] f g) (D.exists m [ 0 ] (D.and_ m f g)))

let test_rename () =
  let m = D.manager () in
  let f = D.and_ m (D.var m 1) (D.var m 3) in
  let g = D.rename_monotone m (fun v -> v - 1) f in
  Alcotest.(check bool) "renamed" true (D.equal g (D.and_ m (D.var m 0) (D.var m 2)))

let test_restrict () =
  let m = D.manager () in
  let f = D.ite m (D.var m 0) (D.var m 1) (D.var m 2) in
  Alcotest.(check bool) "restrict x0=1" true (D.equal (D.restrict m 0 true f) (D.var m 1));
  Alcotest.(check bool) "restrict x0=0" true (D.equal (D.restrict m 0 false f) (D.var m 2))

let test_sat_count () =
  let m = D.manager () in
  let f = D.or_ m (D.var m 0) (D.var m 1) in
  Alcotest.(check (float 1e-9)) "x0 or x1 over 2 vars" 3.0 (D.sat_count m 2 f);
  Alcotest.(check (float 1e-9)) "over 4 vars" 12.0 (D.sat_count m 4 f);
  Alcotest.(check (float 1e-9)) "one" 16.0 (D.sat_count m 4 (D.one m));
  Alcotest.(check (float 1e-9)) "zero" 0.0 (D.sat_count m 4 (D.zero m));
  (* Parity function: exactly half the assignments. *)
  let parity =
    List.fold_left (fun acc v -> D.xor_ m acc (D.var m v)) (D.zero m) [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check (float 1e-9)) "parity over 5" 16.0 (D.sat_count m 5 parity)

let test_any_sat () =
  let m = D.manager () in
  let f = D.and_ m (D.var m 1) (D.nvar m 3) in
  let assignment = D.any_sat f in
  let lookup v = List.assoc_opt v assignment = Some true in
  Alcotest.(check bool) "assignment satisfies" true (D.eval f lookup);
  Alcotest.check_raises "zero has no sat" Not_found (fun () ->
      ignore (D.any_sat (D.zero m)))

let test_size_and_peak () =
  let m = D.manager () in
  let f =
    List.fold_left (fun acc v -> D.and_ m acc (D.var m v)) (D.one m) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "conjunction chain size" 6 (D.size f);
  Alcotest.(check bool) "peak at least live" true (D.peak_nodes m >= D.live_nodes m)

(* Property tests: BDD semantics agrees with direct boolean evaluation
   on random formulas. *)

type formula =
  | Var of int
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Xor of formula * formula

let rec gen_formula depth =
  let open QCheck2.Gen in
  if depth = 0 then map (fun v -> Var v) (0 -- 5)
  else
    frequency
      [
        (1, map (fun v -> Var v) (0 -- 5));
        (2, map (fun f -> Not f) (gen_formula (depth - 1)));
        (2, map2 (fun a b -> And (a, b)) (gen_formula (depth - 1)) (gen_formula (depth - 1)));
        (2, map2 (fun a b -> Or (a, b)) (gen_formula (depth - 1)) (gen_formula (depth - 1)));
        (1, map2 (fun a b -> Xor (a, b)) (gen_formula (depth - 1)) (gen_formula (depth - 1)));
      ]

let rec to_bdd m = function
  | Var v -> D.var m v
  | Not f -> D.not_ m (to_bdd m f)
  | And (a, b) -> D.and_ m (to_bdd m a) (to_bdd m b)
  | Or (a, b) -> D.or_ m (to_bdd m a) (to_bdd m b)
  | Xor (a, b) -> D.xor_ m (to_bdd m a) (to_bdd m b)

let rec eval_formula env = function
  | Var v -> env v
  | Not f -> not (eval_formula env f)
  | And (a, b) -> eval_formula env a && eval_formula env b
  | Or (a, b) -> eval_formula env a || eval_formula env b
  | Xor (a, b) -> eval_formula env a <> eval_formula env b

let all_envs n =
  List.init (1 lsl n) (fun bits -> fun v -> bits land (1 lsl v) <> 0)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen f)

let props =
  [
    prop "bdd agrees with boolean semantics" (gen_formula 4) (fun f ->
        let m = D.manager () in
        let bdd = to_bdd m f in
        List.for_all (fun env -> D.eval bdd env = eval_formula env f) (all_envs 6));
    prop "sat_count agrees with enumeration" (gen_formula 4) (fun f ->
        let m = D.manager () in
        let bdd = to_bdd m f in
        let expected =
          List.length (List.filter (fun env -> eval_formula env f) (all_envs 6))
        in
        D.sat_count m 6 bdd = float_of_int expected);
    prop "double negation" (gen_formula 4) (fun f ->
        let m = D.manager () in
        let bdd = to_bdd m f in
        D.equal bdd (D.not_ m (D.not_ m bdd)));
    prop "exists = or of restricts" (gen_formula 4) (fun f ->
        let m = D.manager () in
        let bdd = to_bdd m f in
        D.equal (D.exists m [ 2 ] bdd)
          (D.or_ m (D.restrict m 2 true bdd) (D.restrict m 2 false bdd)));
  ]

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "and_exists" `Quick test_and_exists;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "size and peak" `Quick test_size_and_peak;
  ]
  @ props
