(* Tiny substring helper shared by tests. *)
let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0
