(* Step-by-step replays of the paper's worked examples (Figures 3, 4,
   5, 6 and 7) on the GPN dynamics, plus unit tests of the firing
   rules. *)

module B = Petri.Bitset
module W = Gpn.World_set

let world net names =
  B.of_list net.Petri.Net.n_transitions
    (List.map (Petri.Net.transition_index net) names)

let ws net worlds = W.of_list (List.map (world net) worlds)

let check_ws net msg expected actual =
  Alcotest.(check bool)
    (msg ^ Format.asprintf " (got %a)" (W.pp ~name:(Petri.Net.transition_name net) ()) actual)
    true
    (W.equal (ws net expected) actual)

let check_marking net msg expected actual =
  Alcotest.(check bool)
    (msg ^ Format.asprintf " (got %a)" (Petri.Net.pp_marking net) actual)
    true
    (B.equal
       (B.of_list net.Petri.Net.n_places
          (List.map (Petri.Net.place_index net) expected))
       actual)

(* ------------------------------------------------------------------ *)
(* Figure 3: simultaneous firing of conflicting A and B, then C; D is
   blocked by its mixed-color inputs. *)

let test_fig3_replay () =
  let net = Models.Figures.fig3 in
  let ctx = Gpn.Dynamics.make net in
  let t name = Petri.Net.transition_index net name in
  let p name = Petri.Net.place_index net name in
  let s0 = Gpn.Dynamics.initial ctx in
  (* The valid sets are the maximal conflict-free sets over the clusters
     {A,B} and {C,D}. *)
  check_ws net "r0" [ [ "A"; "C" ]; [ "A"; "D" ]; [ "B"; "C" ]; [ "B"; "D" ] ]
    (Gpn.State.valid s0);
  check_ws net "m_enabled(A) at s0" [ [ "A"; "C" ]; [ "A"; "D" ] ]
    (Gpn.Dynamics.m_enabled ctx (t "A") s0);
  check_ws net "m_enabled(B) at s0" [ [ "B"; "C" ]; [ "B"; "D" ] ]
    (Gpn.Dynamics.m_enabled ctx (t "B") s0);
  (* Fire A and B simultaneously (Figure 3(b)). *)
  let ab = B.of_list net.Petri.Net.n_transitions [ t "A"; t "B" ] in
  let s1 = Gpn.Dynamics.multiple_fire ctx ab s0 in
  Gpn.Dynamics.check_invariant ctx s1;
  check_ws net "p2 red" [ [ "A"; "C" ]; [ "A"; "D" ] ] (Gpn.State.marking s1 (p "p2"));
  check_ws net "p3 red" [ [ "A"; "C" ]; [ "A"; "D" ] ] (Gpn.State.marking s1 (p "p3"));
  check_ws net "p4 green" [ [ "B"; "C" ]; [ "B"; "D" ] ] (Gpn.State.marking s1 (p "p4"));
  Alcotest.(check bool) "p1 empty" true (W.is_empty (Gpn.State.marking s1 (p "p1")));
  (* C is single-enabled (common history), D is not (conflicting colors). *)
  check_ws net "s_enabled(C)" [ [ "A"; "C" ]; [ "A"; "D" ] ]
    (Gpn.Dynamics.s_enabled ctx (t "C") s1);
  Alcotest.(check bool) "D blocked by conflicting colors" true
    (W.is_empty (Gpn.Dynamics.s_enabled ctx (t "D") s1));
  (* The state denotes both classical markings of the original graph. *)
  Alcotest.(check int) "two denoted markings" 2 (List.length (Gpn.State.mapping s1));
  (* The B-worlds are deadlocked at {p4}: the B branch is stuck. *)
  let dead = Gpn.Dynamics.deadlock_worlds ctx s1 in
  check_ws net "dead worlds" [ [ "B"; "C" ]; [ "B"; "D" ] ] dead;
  check_marking net "dead denotation" [ "p4" ]
    (Gpn.State.denoted_marking s1 (world net [ "B"; "C" ]));
  (* Fire C (Figure 3(c)): the red token moves to p5. *)
  let s2 = Gpn.Dynamics.multiple_fire ctx (B.singleton net.Petri.Net.n_transitions (t "C")) s1 in
  check_ws net "p5 red" [ [ "A"; "C" ] ] (Gpn.State.marking s2 (p "p5"));
  check_ws net "r2 keeps only the fired world" [ [ "A"; "C" ] ] (Gpn.State.valid s2)

(* ------------------------------------------------------------------ *)
(* Figure 5: the single firing rule.  The marking is built by hand to
   match the paper's: m(p0) = {{A},{B}}, m(p1) = {{A}}, m(p2) = {{B}},
   r = {{A},{B}}. *)

let test_fig5_replay () =
  let net = Models.Figures.fig5 in
  let ctx = Gpn.Dynamics.make net in
  let t name = Petri.Net.transition_index net name in
  let p name = Petri.Net.place_index net name in
  let va = world net [ "A" ] and vb = world net [ "B" ] in
  let r = W.of_list [ va; vb ] in
  let m = Array.make net.Petri.Net.n_places W.empty in
  m.(p "p0") <- r;
  m.(p "p1") <- W.singleton va;
  m.(p "p2") <- W.singleton vb;
  let s = Gpn.State.make m r in
  (* A is single-enabled with the common history {{A}}; B is not. *)
  check_ws net "s_enabled(A)" [ [ "A" ] ] (Gpn.Dynamics.s_enabled ctx (t "A") s);
  Alcotest.(check bool) "B not single-enabled" true
    (W.is_empty (Gpn.Dynamics.s_enabled ctx (t "B") s));
  (* mapping(⟨m,r⟩) = {{p0,p1}, {p0,p2}} as printed in the paper. *)
  check_marking net "world A denotes {p0,p1}" [ "p0"; "p1" ]
    (Gpn.State.denoted_marking s va);
  check_marking net "world B denotes {p0,p2}" [ "p0"; "p2" ]
    (Gpn.State.denoted_marking s vb);
  (* Fire A with the single rule (Figure 5(b)). *)
  let s' = Gpn.Dynamics.single_fire ctx (t "A") s in
  Gpn.Dynamics.check_invariant ctx s';
  check_ws net "history moved to p3" [ [ "A" ] ] (Gpn.State.marking s' (p "p3"));
  Alcotest.(check bool) "p1 emptied" true (W.is_empty (Gpn.State.marking s' (p "p1")));
  check_ws net "p0 keeps world B" [ [ "B" ] ] (Gpn.State.marking s' (p "p0"));
  Alcotest.(check bool) "r unchanged by single firing" true
    (W.equal r (Gpn.State.valid s'));
  (* mapping(⟨m',r⟩) = {{p3}, {p0,p2}}: exactly the classical markings
     reached from Figure 6(a) by firing A. *)
  check_marking net "world A now denotes {p3}" [ "p3" ]
    (Gpn.State.denoted_marking s' va);
  check_marking net "world B untouched" [ "p0"; "p2" ]
    (Gpn.State.denoted_marking s' vb)

(* ------------------------------------------------------------------ *)
(* Figure 7: two concurrently marked conflict places; firing {A,B} then
   {C,D} narrows the valid sets to {{A,C},{B,D}} — the "extended
   conflict" between A/D and B/C. *)

let test_fig7_replay () =
  let net = Models.Figures.fig7 in
  let ctx = Gpn.Dynamics.make net in
  let t name = Petri.Net.transition_index net name in
  let p name = Petri.Net.place_index net name in
  let s0 = Gpn.Dynamics.initial ctx in
  check_ws net "m_enabled(A) = {{A,C},{A,D}}" [ [ "A"; "C" ]; [ "A"; "D" ] ]
    (Gpn.Dynamics.m_enabled ctx (t "A") s0);
  check_ws net "m_enabled(B) = {{B,C},{B,D}}" [ [ "B"; "C" ]; [ "B"; "D" ] ]
    (Gpn.Dynamics.m_enabled ctx (t "B") s0);
  Alcotest.(check int) "mapping(s0) = {m0}" 1 (List.length (Gpn.State.mapping s0));
  let s1 =
    Gpn.Dynamics.multiple_fire ctx
      (B.of_list net.Petri.Net.n_transitions [ t "A"; t "B" ])
      s0
  in
  (* r1 = r0: the first simultaneous firing does not restrict r. *)
  Alcotest.(check bool) "r1 = r0" true
    (W.equal (Gpn.State.valid s0) (Gpn.State.valid s1));
  check_ws net "p1 after A" [ [ "A"; "C" ]; [ "A"; "D" ] ]
    (Gpn.State.marking s1 (p "p1"));
  check_ws net "p2 after B" [ [ "B"; "C" ]; [ "B"; "D" ] ]
    (Gpn.State.marking s1 (p "p2"));
  (* mapping(s1) = two classical markings: {p1,p3} and {p2,p3}. *)
  Alcotest.(check int) "mapping(s1)" 2 (List.length (Gpn.State.mapping s1));
  check_marking net "A-worlds denote {p1,p3}" [ "p1"; "p3" ]
    (Gpn.State.denoted_marking s1 (world net [ "A"; "C" ]));
  check_marking net "B-worlds denote {p2,p3}" [ "p2"; "p3" ]
    (Gpn.State.denoted_marking s1 (world net [ "B"; "D" ]));
  (* Fire {C,D} simultaneously. *)
  check_ws net "m_enabled(C) at s1" [ [ "A"; "C" ] ]
    (Gpn.Dynamics.m_enabled ctx (t "C") s1);
  check_ws net "m_enabled(D) at s1" [ [ "B"; "D" ] ]
    (Gpn.Dynamics.m_enabled ctx (t "D") s1);
  let s2 =
    Gpn.Dynamics.multiple_fire ctx
      (B.of_list net.Petri.Net.n_transitions [ t "C"; t "D" ])
      s1
  in
  (* The extra conditioning rules out {A,D} and {B,C}: the extended
     conflict of the paper. *)
  check_ws net "r2 = {{A,C},{B,D}}" [ [ "A"; "C" ]; [ "B"; "D" ] ]
    (Gpn.State.valid s2);
  check_ws net "p4 = {{A,C}}" [ [ "A"; "C" ] ] (Gpn.State.marking s2 (p "p4"));
  check_ws net "p5 = {{B,D}}" [ [ "B"; "D" ] ] (Gpn.State.marking s2 (p "p5"));
  Alcotest.(check int) "mapping(s2)" 2 (List.length (Gpn.State.mapping s2))

(* ------------------------------------------------------------------ *)
(* Firing-rule units beyond the figures. *)

let test_initial_construction () =
  let net = Models.Figures.fig2 3 in
  let ctx = Gpn.Dynamics.make net in
  let s0 = Gpn.Dynamics.initial ctx in
  (* 3 independent pairs: 2^3 maximal conflict-free sets. *)
  Alcotest.(check int) "8 worlds" 8 (W.cardinal (Gpn.State.valid s0));
  Alcotest.(check int) "3 choice clusters" 3
    (List.length (Gpn.Dynamics.cluster_alternatives ctx));
  (* Every marked place holds r0, every unmarked place is empty. *)
  for p = 0 to net.Petri.Net.n_places - 1 do
    if B.mem p net.Petri.Net.initial then
      Alcotest.(check bool) "marked place holds r0" true
        (W.equal (Gpn.State.valid s0) (Gpn.State.marking s0 p))
    else
      Alcotest.(check bool) "unmarked place empty" true
        (W.is_empty (Gpn.State.marking s0 p))
  done

let test_non_choice_transitions_not_in_labels () =
  let net = Models.Nsdp.make 3 in
  let ctx = Gpn.Dynamics.make net in
  let choice = Gpn.Dynamics.choice_transitions ctx in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " is not a choice transition") false
        (B.mem (Petri.Net.transition_index net name) choice))
    [ "hungry.0"; "reach.1"; "release.2" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " is a choice transition") true
        (B.mem (Petri.Net.transition_index net name) choice))
    [ "takeL.0"; "takeR.2" ];
  (* Worlds only mention choice transitions. *)
  W.iter
    (fun v -> Alcotest.(check bool) "world within choice" true (B.subset v choice))
    (Gpn.State.valid (Gpn.Dynamics.initial ctx))

let test_batch_single_fire_equals_sequential () =
  let net = Models.Figures.fig1 in
  let ctx = Gpn.Dynamics.make net in
  let s0 = Gpn.Dynamics.initial ctx in
  let ts = [ 0; 1; 2 ] in
  let batched = Gpn.Dynamics.batch_single_fire ctx ts s0 in
  let sequential =
    List.fold_left (fun s t -> Gpn.Dynamics.single_fire ctx t s) s0 ts
  in
  Alcotest.(check bool) "batch = sequential composition" true
    (Gpn.State.equal batched sequential)

let test_step_fire_combines () =
  (* fig2(1) plus an independent conflict-free transition: one step can
     fire the conflicting pair (multiple rule) and the free transition
     (single rule) together. *)
  let b = Petri.Builder.create "mixed" in
  let c = Petri.Builder.place b ~marked:true "c" in
  let a_out = Petri.Builder.place b "a_out" in
  let b_out = Petri.Builder.place b "b_out" in
  let x = Petri.Builder.place b ~marked:true "x" in
  let y = Petri.Builder.place b "y" in
  let ta = Petri.Builder.transition b "A" ~pre:[ c ] ~post:[ a_out ] in
  let tb = Petri.Builder.transition b "B" ~pre:[ c ] ~post:[ b_out ] in
  let tu = Petri.Builder.transition b "U" ~pre:[ x ] ~post:[ y ] in
  let net = Petri.Builder.build b in
  let ctx = Gpn.Dynamics.make net in
  let s0 = Gpn.Dynamics.initial ctx in
  let s1 =
    Gpn.Dynamics.step_fire ctx
      ~multiples:(B.of_list net.Petri.Net.n_transitions [ ta; tb ])
      ~singles:[ tu ] s0
  in
  Gpn.Dynamics.check_invariant ctx s1;
  Alcotest.(check bool) "x emptied" true (W.is_empty (Gpn.State.marking s1 x));
  Alcotest.(check int) "y holds both worlds" 2 (W.cardinal (Gpn.State.marking s1 y));
  Alcotest.(check int) "a_out holds the A world" 1
    (W.cardinal (Gpn.State.marking s1 a_out));
  (* Denotations: {a_out, y} and {b_out, y}. *)
  Alcotest.(check int) "two denotations" 2 (List.length (Gpn.State.mapping s1))

let test_initial_of_marking () =
  let net = Models.Figures.fig3 in
  let ctx = Gpn.Dynamics.make net in
  let marking =
    B.of_list net.Petri.Net.n_places
      [ Petri.Net.place_index net "p2"; Petri.Net.place_index net "p3" ]
  in
  let s = Gpn.Dynamics.initial_of_marking ctx marking in
  Alcotest.(check int) "denotes the marking" 1 (List.length (Gpn.State.mapping s));
  check_marking net "denotation" [ "p2"; "p3" ]
    (List.hd (Gpn.State.mapping s))

let suite =
  [
    Alcotest.test_case "figure 3 replay" `Quick test_fig3_replay;
    Alcotest.test_case "figure 5 replay" `Quick test_fig5_replay;
    Alcotest.test_case "figure 7 replay" `Quick test_fig7_replay;
    Alcotest.test_case "initial construction" `Quick test_initial_construction;
    Alcotest.test_case "labels mention only choice transitions" `Quick
      test_non_choice_transitions_not_in_labels;
    Alcotest.test_case "batch single = sequential" `Quick
      test_batch_single_fire_equals_sequential;
    Alcotest.test_case "combined step" `Quick test_step_fire_combines;
    Alcotest.test_case "initial of marking" `Quick test_initial_of_marking;
  ]
