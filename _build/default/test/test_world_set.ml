(* Tests for Gpn.World_set and Gpn.State. *)

module B = Petri.Bitset
module W = Gpn.World_set

let w xs = B.of_list 8 xs

let test_basics () =
  let s = W.of_list [ w [ 0 ]; w [ 1; 2 ]; w [ 0 ] ] in
  Alcotest.(check int) "duplicates collapse" 2 (W.cardinal s);
  Alcotest.(check bool) "mem" true (W.mem (w [ 1; 2 ]) s);
  Alcotest.(check bool) "not mem" false (W.mem (w [ 2 ]) s);
  Alcotest.(check bool) "empty" true (W.is_empty W.empty);
  Alcotest.(check bool) "singleton" true (W.mem (w [ 3 ]) (W.singleton (w [ 3 ])))

let test_algebra () =
  let a = W.of_list [ w [ 0 ]; w [ 1 ] ] in
  let b = W.of_list [ w [ 1 ]; w [ 2 ] ] in
  Alcotest.(check int) "union" 3 (W.cardinal (W.union a b));
  Alcotest.(check int) "inter" 1 (W.cardinal (W.inter a b));
  Alcotest.(check bool) "inter content" true (W.mem (w [ 1 ]) (W.inter a b));
  Alcotest.(check int) "diff" 1 (W.cardinal (W.diff a b));
  Alcotest.(check bool) "subset" true (W.subset (W.inter a b) a);
  Alcotest.(check bool) "equal" true (W.equal (W.union a b) (W.union b a));
  Alcotest.(check bool) "hash agrees" true
    (W.hash (W.union a b) = W.hash (W.union b a))

let test_filter_member () =
  let s = W.of_list [ w [ 0; 1 ]; w [ 1; 2 ]; w [ 2; 3 ] ] in
  let with1 = W.filter_member 1 s in
  Alcotest.(check int) "two contain 1" 2 (W.cardinal with1);
  Alcotest.(check bool) "right ones" true
    (W.mem (w [ 0; 1 ]) with1 && W.mem (w [ 1; 2 ]) with1)

let test_inter_all () =
  let a = W.of_list [ w [ 0 ]; w [ 1 ]; w [ 2 ] ] in
  let b = W.of_list [ w [ 1 ]; w [ 2 ] ] in
  let c = W.of_list [ w [ 2 ]; w [ 3 ] ] in
  Alcotest.(check int) "three-way inter" 1 (W.cardinal (W.inter_all [ a; b; c ]));
  match W.inter_all [] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_product () =
  let f1 = W.of_list [ w [ 0 ]; w [ 1 ] ] in
  let f2 = W.of_list [ w [ 2 ]; w [ 3 ] ] in
  let p = W.product 8 [ f1; f2 ] in
  Alcotest.(check int) "2x2 product" 4 (W.cardinal p);
  Alcotest.(check bool) "contains 0+2" true (W.mem (w [ 0; 2 ]) p);
  Alcotest.(check bool) "contains 1+3" true (W.mem (w [ 1; 3 ]) p);
  let empty_product = W.product 8 [] in
  Alcotest.(check int) "empty product = {∅}" 1 (W.cardinal empty_product);
  Alcotest.(check bool) "empty world" true (W.mem (B.empty 8) empty_product)

let test_state_denotation () =
  (* Build a GPN state by hand and check the mapping of Definition 3.4. *)
  let v1 = w [ 0 ] and v2 = w [ 1 ] in
  let r = W.of_list [ v1; v2 ] in
  let m = [| W.singleton v1; W.singleton v2; r; W.empty |] in
  let s = Gpn.State.make m r in
  Alcotest.(check (list int)) "world v1 denotes {p0, p2}" [ 0; 2 ]
    (B.elements (Gpn.State.denoted_marking s v1));
  Alcotest.(check (list int)) "world v2 denotes {p1, p2}" [ 1; 2 ]
    (B.elements (Gpn.State.denoted_marking s v2));
  Alcotest.(check int) "mapping has two markings" 2
    (List.length (Gpn.State.mapping s))

let test_state_normalizes_to_r () =
  (* State.make intersects every place with r. *)
  let v1 = w [ 0 ] and v2 = w [ 1 ] in
  let r = W.singleton v1 in
  let s = Gpn.State.make [| W.of_list [ v1; v2 ] |] r in
  Alcotest.(check int) "stale world pruned" 1 (W.cardinal (Gpn.State.marking s 0))

let test_state_equality_and_hash () =
  let v1 = w [ 0 ] and v2 = w [ 1 ] in
  let r = W.of_list [ v1; v2 ] in
  let s1 = Gpn.State.make [| W.singleton v1; W.singleton v2 |] r in
  let s2 = Gpn.State.make [| W.singleton v1; W.singleton v2 |] r in
  let s3 = Gpn.State.make [| W.singleton v2; W.singleton v1 |] r in
  Alcotest.(check bool) "equal states" true (Gpn.State.equal s1 s2);
  Alcotest.(check int) "compare 0" 0 (Gpn.State.compare s1 s2);
  Alcotest.(check bool) "hash agrees" true (Gpn.State.hash s1 = Gpn.State.hash s2);
  Alcotest.(check bool) "different states differ" false (Gpn.State.equal s1 s3)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen f)

let gen_world = QCheck2.Gen.(map (fun xs -> w xs) (list_size (0 -- 4) (0 -- 7)))
let gen_ws = QCheck2.Gen.(map W.of_list (list_size (0 -- 8) gen_world))

let props =
  let open QCheck2.Gen in
  [
    prop "world-set union commutes" (pair gen_ws gen_ws) (fun (a, b) ->
        W.equal (W.union a b) (W.union b a));
    prop "world-set inter associates" (triple gen_ws gen_ws gen_ws) (fun (a, b, c) ->
        W.equal (W.inter a (W.inter b c)) (W.inter (W.inter a b) c));
    prop "filter_member is a filter" (pair (0 -- 7) gen_ws) (fun (t, s) ->
        W.for_all (fun v -> B.mem t v) (W.filter_member t s));
    prop "singleton product is identity" gen_ws (fun a ->
        W.equal (W.product 8 [ a ]) a || W.is_empty a);
  ]

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "algebra" `Quick test_algebra;
    Alcotest.test_case "filter_member" `Quick test_filter_member;
    Alcotest.test_case "inter_all" `Quick test_inter_all;
    Alcotest.test_case "product" `Quick test_product;
    Alcotest.test_case "state denotation" `Quick test_state_denotation;
    Alcotest.test_case "state normalizes to r" `Quick test_state_normalizes_to_r;
    Alcotest.test_case "state equality and hash" `Quick test_state_equality_and_hash;
  ]
  @ props
