(* The Section 4 claims of the paper, asserted as tests on the harness:
   who wins, by what shape, and where the method does not help. *)

let measure family size =
  Harness.Experiment.measure ~max_states:2_000_000
    (Harness.Experiment.family family)
    size

let metric kind (m : Harness.Experiment.measurement) =
  let o = List.find (fun o -> o.Harness.Engine.kind = kind) m.outcomes in
  o.Harness.Engine.metric

let verdict kind (m : Harness.Experiment.measurement) =
  let o = List.find (fun o -> o.Harness.Engine.kind = kind) m.outcomes in
  o.Harness.Engine.deadlock

let test_all_engines_agree () =
  (* Deadlock verdicts agree across all four engines on every Table 1
     instance we can afford exhaustively. *)
  List.iter
    (fun (family, size, expected) ->
      let m = measure family size in
      List.iter
        (fun kind ->
          Alcotest.(check bool)
            (Printf.sprintf "%s(%d) %s verdict" family size (Harness.Engine.name kind))
            expected (verdict kind m))
        Harness.Engine.all)
    [
      ("nsdp", 2, true);
      ("nsdp", 4, true);
      ("nsdp", 6, true);
      ("asat", 2, false);
      ("asat", 4, false);
      ("over", 2, false);
      ("over", 4, false);
      ("rw", 6, false);
      ("rw", 9, false);
    ]

let test_nsdp_ordering () =
  (* Section 4: "For NSDP, ASAT and OVER, generalized partial-order
     analysis outperforms both SPIN+PO and SMV.  A drastic improvement
     is observed for NSDP." *)
  let m = measure "nsdp" 6 in
  let gpo = metric Harness.Engine.Gpo m in
  let po = metric Harness.Engine.Stubborn m in
  let full = metric Harness.Engine.Full m in
  let smv = metric Harness.Engine.Symbolic m in
  Alcotest.(check bool) "gpo < po" true (gpo < po);
  Alcotest.(check bool) "po < full" true (po < full);
  Alcotest.(check bool) "gpo drastically below smv peak" true (gpo *. 100. < smv)

let test_nsdp_gpo_constant () =
  (* "For NSDP 3 states are sufficient ... independent of the number of
     philosophers" — our model needs a different constant, but it is a
     constant. *)
  let g n = metric Harness.Engine.Gpo (measure "nsdp" n) in
  Alcotest.(check (float 0.0)) "n=4 equals n=2" (g 2) (g 4);
  Alcotest.(check (float 0.0)) "n=6 equals n=2" (g 2) (g 6)

let test_nsdp_gpo_stays_fast () =
  (* "CPU times increase linearly with problem size."  In the
     paper-faithful configuration (no deviation scan, pure set algebra)
     a 12-philosopher instance — hopeless for the exponential engines —
     finishes in a fraction of a second. *)
  let time n =
    let t0 = Unix.gettimeofday () in
    let r = Gpn.Explorer.analyse ~scan:false (Models.Nsdp.make n) in
    assert (not (Gpn.Explorer.deadlock_free r));
    Unix.gettimeofday () -. t0
  in
  ignore (time 4);
  Alcotest.(check bool) "n=12 stays fast" true (time 12 < 1.0)

let test_rw_po_degenerates () =
  (* "For RW ... this is also visible in the reduced state space which
     equals the complete state space" — with our stronger stubborn sets
     the reduced space is not equal, but at the initial state no
     reduction is possible: the stubborn set contains every enabled
     transition. *)
  let net = Models.Rw.make 6 in
  let conflict = Petri.Conflict.analyse net in
  let stubborn =
    Petri.Stubborn.compute conflict Petri.Stubborn.Smallest net.Petri.Net.initial
  in
  let enabled =
    Petri.Bitset.cardinal (Petri.Semantics.enabled_set net net.Petri.Net.initial)
  in
  Alcotest.(check int) "no reduction at the initial state" enabled
    (List.length stubborn);
  (* ... while GPO still collapses RW to 2 states. *)
  let m = measure "rw" 6 in
  Alcotest.(check (float 0.0)) "gpo = 2" 2. (metric Harness.Engine.Gpo m)

let test_rw_smv_beats_spin () =
  (* "For RW, generalized partial-order analysis performs better than
     SPIN+PO, but slightly worse than SMV" (on time).  Shape claim we
     keep: the SMV peak grows much slower than the full state count on
     RW. *)
  let peak n = metric Harness.Engine.Symbolic (measure "rw" n) in
  let full n = metric Harness.Engine.Full (measure "rw" n) in
  let peak_growth = peak 9 /. peak 6 in
  let full_growth = full 9 /. full 6 in
  Alcotest.(check bool) "BDD peak grows slower than state count" true
    (peak_growth < full_growth)

let test_asat_nsdp_smv_blows_up () =
  (* The SMV column blows up on NSDP and ASAT (">24 hours" rows): the
     peak grows by about an order of magnitude per size step. *)
  let peak fam n = metric Harness.Engine.Symbolic (measure fam n) in
  Alcotest.(check bool) "nsdp peak explodes" true (peak "nsdp" 6 > 6. *. peak "nsdp" 4);
  Alcotest.(check bool) "asat peak explodes" true (peak "asat" 4 > 6. *. peak "asat" 2)

let test_fig1_series () =
  Alcotest.(check (list (pair string int)))
    "figure 1 numbers"
    [
      ("full reachability graph states (Fig 1b)", 8);
      ("maximal interleavings (3!)", 6);
      ("partial-order path states", 4);
      ("GPO states", 2);
    ]
    (Harness.Experiment.fig1_series ())

let test_fig2_series () =
  let series = Harness.Experiment.fig2_series ~max_n:6 () in
  List.iter
    (fun (n, full, po, gpo) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "full(%d) = 3^n" n)
        (Float.pow 3. (float_of_int n))
        full;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "po(%d) = 2^(n+1)-1" n)
        ((2. *. Float.pow 2. (float_of_int n)) -. 1.)
        po;
      Alcotest.(check (float 0.0)) (Printf.sprintf "gpo(%d) = 2" n) 2. gpo)
    series

let test_table1_renders () =
  let measurements =
    Harness.Experiment.table1
      ~engines:[ Harness.Engine.Gpo ]
      ~sizes:[ ("NSDP", [ 2 ]); ("ASAT", [ 2 ]); ("OVER", [ 2 ]); ("RW", [ 6 ]) ]
      ()
  in
  let rendered = Format.asprintf "%a" Harness.Experiment.pp_table1 measurements in
  Alcotest.(check bool) "mentions NSDP" true
    (Astring_contains.contains "NSDP(2)" rendered);
  Alcotest.(check bool) "mentions RW" true (Astring_contains.contains "RW(6)" rendered)

let suite =
  [
    Alcotest.test_case "all engines agree" `Quick test_all_engines_agree;
    Alcotest.test_case "NSDP engine ordering" `Quick test_nsdp_ordering;
    Alcotest.test_case "NSDP GPO constant" `Quick test_nsdp_gpo_constant;
    Alcotest.test_case "NSDP GPO stays fast" `Quick test_nsdp_gpo_stays_fast;
    Alcotest.test_case "RW defeats classical PO" `Quick test_rw_po_degenerates;
    Alcotest.test_case "RW: BDDs compact" `Quick test_rw_smv_beats_spin;
    Alcotest.test_case "NSDP/ASAT: BDDs blow up" `Quick test_asat_nsdp_smv_blows_up;
    Alcotest.test_case "figure 1 series" `Quick test_fig1_series;
    Alcotest.test_case "figure 2 series" `Quick test_fig2_series;
    Alcotest.test_case "table 1 renders" `Quick test_table1_renders;
  ]
