(** Milner's cyclic scheduler.

    A classic partial-order benchmark: [n] cells arranged in a ring
    schedule [n] tasks so that task starts happen in cyclic order while
    the tasks themselves run concurrently.  Each cell waits for the
    ring token, starts its task, passes the token on, waits for its
    task to finish and for its next turn.

    Per cell [i] (indices mod [n]):
    - [token.0] is marked (cell 0 owns the ring token initially);
    - [start.i : token.i, task_idle.i → task_busy.i, pass.i]
    - [hand.i  : pass.i → token.(i+1)]
    - [finish.i : task_busy.i → task_done.i]
    - [reset.i : task_done.i, turn.i → task_idle.i, ...]

    The net is deadlock-free and safe; its full state space grows
    exponentially with [n] (the tasks run concurrently) while the
    scheduler's control is a simple ring — exactly the shape
    partial-order and GPO analyses exploit. *)

val make : int -> Petri.Net.t
(** [make n] builds the [n]-cell scheduler ([n ≥ 2];
    [Invalid_argument] otherwise). *)
