(* Conflict-free by construction: the scheduler exhibits the paper's
   {e first} source of explosion (pure concurrency, Section 2.2) with no
   conflict places at all, so both stubborn sets and GPO collapse it to
   a linear exploration while the full graph is exponential. *)
let make n =
  if n < 2 then invalid_arg "Scheduler.make: need at least 2 cells";
  let b = Petri.Builder.create (Printf.sprintf "scheduler-%d" n) in
  let place ?marked fmt = Printf.ksprintf (Petri.Builder.place b ?marked) fmt in
  let transition name ~pre ~post = ignore (Petri.Builder.transition b name ~pre ~post) in
  let token = Array.init n (fun i -> place ~marked:(i = 0) "token.%d" i) in
  let ready = Array.init n (fun i -> place ~marked:true "ready.%d" i) in
  let busy = Array.init n (fun i -> place "busy.%d" i) in
  for i = 0 to n - 1 do
    transition
      (Printf.sprintf "start.%d" i)
      ~pre:[ token.(i); ready.(i) ]
      ~post:[ busy.(i); token.((i + 1) mod n) ];
    transition (Printf.sprintf "finish.%d" i) ~pre:[ busy.(i) ] ~post:[ ready.(i) ]
  done;
  Petri.Builder.build b
