lib/models/over.ml: Array Petri Printf
