lib/models/random_net.mli: Petri
