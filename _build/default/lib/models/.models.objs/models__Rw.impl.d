lib/models/rw.ml: Array Petri Printf
