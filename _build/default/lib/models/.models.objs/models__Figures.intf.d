lib/models/figures.mli: Petri
