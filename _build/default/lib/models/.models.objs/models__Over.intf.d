lib/models/over.mli: Petri
