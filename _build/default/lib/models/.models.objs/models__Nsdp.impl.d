lib/models/nsdp.ml: Array Petri Printf
