lib/models/figures.ml: List Petri Printf
