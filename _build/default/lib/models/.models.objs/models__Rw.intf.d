lib/models/rw.mli: Petri
