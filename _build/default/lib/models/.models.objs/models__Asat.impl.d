lib/models/asat.ml: List Petri Printf
