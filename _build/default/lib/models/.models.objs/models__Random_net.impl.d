lib/models/random_net.ml: Array Petri Printf Random
