lib/models/asat.mli: Petri
