lib/models/scheduler.mli: Petri
