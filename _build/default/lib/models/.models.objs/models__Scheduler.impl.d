lib/models/scheduler.ml: Array Petri Printf
