lib/models/nsdp.mli: Petri
