let make n =
  if n < 2 then invalid_arg "Rw.make: need at least 2 processes";
  let b = Petri.Builder.create (Printf.sprintf "rw-%d" n) in
  let place ?marked fmt = Printf.ksprintf (Petri.Builder.place b ?marked) fmt in
  let transition name ~pre ~post = ignore (Petri.Builder.transition b name ~pre ~post) in
  let idle = Array.init n (fun i -> place ~marked:true "idle.%d" i) in
  let permit = Array.init n (fun i -> place ~marked:true "permit.%d" i) in
  let all_permits = Array.to_list permit in
  for i = 0 to n - 1 do
    let reading = place "reading.%d" i in
    let writing = place "writing.%d" i in
    transition (Printf.sprintf "startR.%d" i)
      ~pre:[ idle.(i); permit.(i) ]
      ~post:[ reading ];
    transition (Printf.sprintf "endR.%d" i)
      ~pre:[ reading ]
      ~post:[ idle.(i); permit.(i) ];
    transition (Printf.sprintf "startW.%d" i)
      ~pre:(idle.(i) :: all_permits)
      ~post:[ writing ];
    transition (Printf.sprintf "endW.%d" i)
      ~pre:[ writing ]
      ~post:(idle.(i) :: all_permits)
  done;
  Petri.Builder.build b

let sizes = [ 6; 9; 12; 15 ]
