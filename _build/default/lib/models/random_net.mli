(** Random safe Petri nets for property-based testing.

    Nets are generated as synchronized products of finite automata:
    each component owns a ring of local-state places with exactly one
    token, and every transition consumes one local state and produces
    one local state in each component it participates in.  Such nets
    are 1-safe by construction; conflicts appear whenever two
    transitions leave the same local state, and deadlocks appear
    naturally from cyclic synchronization.

    The generator is deterministic in its seed, so failing QCheck
    cases can be replayed. *)

type spec = {
  components : int;  (** Number of automata (≥ 1). *)
  states_per_component : int;  (** Local states per automaton (≥ 1). *)
  transitions : int;  (** Number of transitions (≥ 1). *)
  max_sync : int;  (** Max components a transition touches (≥ 1). *)
}

val default_spec : spec
(** 3 components, 3 states each, 8 transitions, 2-way synchronization
    — small enough for exhaustive cross-validation, rich enough to
    exercise conflicts and deadlocks. *)

val generate : ?spec:spec -> int -> Petri.Net.t
(** [generate seed] builds a random safe net from the seed. *)
