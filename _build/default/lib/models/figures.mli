(** The illustration nets of the paper's figures.

    These small nets are used by the unit tests to replay, step by
    step, the worked examples of Sections 2 and 3, and by the figure
    benches to regenerate the state-count series. *)

val fig1 : Petri.Net.t
(** Figure 1(a): three concurrently enabled independent transitions
    [A, B, C].  Its full reachability graph (Figure 1(b)) has 8
    markings and 3! = 6 maximal interleavings; partial-order analysis
    needs a single path of 4 states. *)

val fig2 : int -> Petri.Net.t
(** Figure 2(a) with parameter [N]: [N] concurrently marked conflict
    places [c.i], each feeding a conflicting pair [A.i]/[B.i].  The
    full graph has [3^N] states, the partial-order graph [2^(N+1) - 1]
    states, and GPO needs 2 (Section 3.1). *)

val fig3 : Petri.Net.t
(** Figure 3: [p1] (marked) feeds conflicting [A] (→ [p2], [p3]) and
    [B] (→ [p4]); [C : p2, p3 → p5] continues the [A]-path while
    [D : p3, p4 → p6] mixes conflicting colors and must never fire.
    [p0] of Figure 4 is the marked input place. *)

val fig5 : Petri.Net.t
(** Figure 5: conflicting [A]/[B] compete for [p0]; [A] additionally
    needs [p1] and [B] needs [p2]; used to illustrate the single
    firing rule ([A] single-enabled, [B] not). *)

val fig7 : Petri.Net.t
(** Figure 7: two concurrently marked conflict places — [p0] feeding
    the pair [A]/[B] and [p3] feeding the pair [C]/[D], with
    [A → p1 → C] and [B → p2 → D]; the multiple firing of [{A,B}] then
    [{C,D}] narrows the valid sets to [{{A,C},{B,D}}]. *)
