type spec = {
  components : int;
  states_per_component : int;
  transitions : int;
  max_sync : int;
}

let default_spec =
  { components = 3; states_per_component = 3; transitions = 8; max_sync = 2 }

let generate ?(spec = default_spec) seed =
  if spec.components < 1 || spec.states_per_component < 1 || spec.transitions < 1
     || spec.max_sync < 1
  then invalid_arg "Random_net.generate: malformed spec";
  let rng = Random.State.make [| seed; 0x5eed |] in
  let b = Petri.Builder.create (Printf.sprintf "random-%d" seed) in
  (* places.(c).(s) is local state [s] of component [c]; state 0 is
     initially marked. *)
  let places =
    Array.init spec.components (fun c ->
        Array.init spec.states_per_component (fun s ->
            Petri.Builder.place b
              ~marked:(s = 0)
              (Printf.sprintf "c%d.s%d" c s)))
  in
  for t = 0 to spec.transitions - 1 do
    let width = min spec.max_sync spec.components in
    let n_sync = 1 + Random.State.int rng width in
    (* Choose [n_sync] distinct components. *)
    let chosen = Array.init spec.components (fun c -> c) in
    for i = 0 to spec.components - 2 do
      let j = i + Random.State.int rng (spec.components - i) in
      let tmp = chosen.(i) in
      chosen.(i) <- chosen.(j);
      chosen.(j) <- tmp
    done;
    let pre = ref [] and post = ref [] in
    for i = 0 to n_sync - 1 do
      let c = chosen.(i) in
      let from_state = Random.State.int rng spec.states_per_component in
      let to_state = Random.State.int rng spec.states_per_component in
      pre := places.(c).(from_state) :: !pre;
      post := places.(c).(to_state) :: !post
    done;
    ignore
      (Petri.Builder.transition b (Printf.sprintf "t%d" t) ~pre:!pre ~post:!post)
  done;
  Petri.Builder.build b
