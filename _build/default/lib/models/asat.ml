(* Every tree node exposes three places to its parent: req (the node
   wants the resource), grant (the parent awards it), done (the node
   releases it).  Users are leaves; cells multiplex two children. *)

type port = { req : Petri.Net.place; grant : Petri.Net.place; done_ : Petri.Net.place }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make n =
  if n < 2 || not (is_power_of_two n) then
    invalid_arg "Asat.make: the number of users must be a power of two, at least 2";
  let b = Petri.Builder.create (Printf.sprintf "asat-%d" n) in
  let place ?marked fmt = Printf.ksprintf (Petri.Builder.place b ?marked) fmt in
  let transition name ~pre ~post = ignore (Petri.Builder.transition b name ~pre ~post) in
  let port prefix =
    {
      req = place "%s.req" prefix;
      grant = place "%s.grant" prefix;
      done_ = place "%s.done" prefix;
    }
  in
  let user i =
    let p = port (Printf.sprintf "u%d" i) in
    let idle = place ~marked:true "u%d.idle" i in
    let wait = place "u%d.wait" i in
    let use = place "u%d.use" i in
    transition (Printf.sprintf "u%d.ask" i) ~pre:[ idle ] ~post:[ wait; p.req ];
    transition (Printf.sprintf "u%d.enter" i) ~pre:[ wait; p.grant ] ~post:[ use ];
    transition (Printf.sprintf "u%d.leave" i) ~pre:[ use ] ~post:[ idle; p.done_ ];
    p
  in
  let cell name a b_port =
    let p = port name in
    let free = place ~marked:true "%s.free" name in
    let side tag child =
      let wait = place "%s.wait%s" name tag in
      let busy = place "%s.busy%s" name tag in
      transition (Printf.sprintf "%s.fwd%s" name tag)
        ~pre:[ child.req; free ]
        ~post:[ wait; p.req ];
      transition (Printf.sprintf "%s.grant%s" name tag)
        ~pre:[ wait; p.grant ]
        ~post:[ busy; child.grant ];
      transition (Printf.sprintf "%s.back%s" name tag)
        ~pre:[ busy; child.done_ ]
        ~post:[ free; p.done_ ]
    in
    side "A" a;
    side "B" b_port;
    p
  in
  (* Build the tree bottom-up; level 0 holds the user ports. *)
  let level = ref (List.init n user) in
  let next_cell = ref 0 in
  while List.length !level > 1 do
    let rec pair = function
      | a :: b_port :: rest ->
          let name = Printf.sprintf "c%d" !next_cell in
          incr next_cell;
          cell name a b_port :: pair rest
      | [] -> []
      | [ _ ] -> assert false
    in
    level := pair !level
  done;
  let root =
    match !level with [ p ] -> p | _ -> assert false
  in
  (* The root arbiter: one resource token. *)
  let token = place ~marked:true "resource" in
  transition "root.award" ~pre:[ root.req; token ] ~post:[ root.grant ];
  transition "root.reclaim" ~pre:[ root.done_ ] ~post:[ token ];
  Petri.Builder.build b

let sizes = [ 2; 4; 8 ]
