(* Rendezvous-style model (forks are server tasks, as in Corbett's Ada
   benchmark suite the paper cites): requesting a fork and being granted
   it are separate steps, which reproduces the state-count growth of
   Table 1 (≈ ×18 per two philosophers). *)
let make n =
  if n < 2 then invalid_arg "Nsdp.make: need at least 2 philosophers";
  let b = Petri.Builder.create (Printf.sprintf "nsdp-%d" n) in
  let place ?marked fmt = Printf.ksprintf (Petri.Builder.place b ?marked) fmt in
  let think = Array.init n (fun i -> place ~marked:true "think.%d" i) in
  let askL = Array.init n (fun i -> place "askL.%d" i) in
  let gotL = Array.init n (fun i -> place "gotL.%d" i) in
  let askR = Array.init n (fun i -> place "askR.%d" i) in
  let eat = Array.init n (fun i -> place "eat.%d" i) in
  let fork = Array.init n (fun i -> place ~marked:true "fork.%d" i) in
  for i = 0 to n - 1 do
    let right = (i + 1) mod n in
    let transition fmt = Printf.ksprintf (fun s -> fun ~pre ~post ->
        ignore (Petri.Builder.transition b s ~pre ~post)) fmt in
    transition "hungry.%d" i ~pre:[ think.(i) ] ~post:[ askL.(i) ];
    transition "takeL.%d" i ~pre:[ askL.(i); fork.(i) ] ~post:[ gotL.(i) ];
    transition "reach.%d" i ~pre:[ gotL.(i) ] ~post:[ askR.(i) ];
    transition "takeR.%d" i ~pre:[ askR.(i); fork.(right) ] ~post:[ eat.(i) ];
    transition "release.%d" i
      ~pre:[ eat.(i) ]
      ~post:[ think.(i); fork.(i); fork.(right) ]
  done;
  Petri.Builder.build b

let sizes = [ 2; 4; 6; 8; 10 ]
