let transition b name ~pre ~post = ignore (Petri.Builder.transition b name ~pre ~post)

let fig1 =
  let b = Petri.Builder.create "fig1" in
  let src = List.init 3 (fun i -> Petri.Builder.place b ~marked:true (Printf.sprintf "p%d" i)) in
  let dst = List.init 3 (fun i -> Petri.Builder.place b (Printf.sprintf "q%d" i)) in
  List.iteri
    (fun i name ->
      transition b name ~pre:[ List.nth src i ] ~post:[ List.nth dst i ])
    [ "A"; "B"; "C" ];
  Petri.Builder.build b

let fig2 n =
  if n < 1 then invalid_arg "Figures.fig2: need at least one conflict pair";
  let b = Petri.Builder.create (Printf.sprintf "fig2-%d" n) in
  for i = 0 to n - 1 do
    let c = Petri.Builder.place b ~marked:true (Printf.sprintf "c%d" i) in
    let a_out = Petri.Builder.place b (Printf.sprintf "a%d" i) in
    let b_out = Petri.Builder.place b (Printf.sprintf "b%d" i) in
    transition b (Printf.sprintf "A%d" i) ~pre:[ c ] ~post:[ a_out ];
    transition b (Printf.sprintf "B%d" i) ~pre:[ c ] ~post:[ b_out ]
  done;
  Petri.Builder.build b

let fig3 =
  let b = Petri.Builder.create "fig3" in
  let p1 = Petri.Builder.place b ~marked:true "p1" in
  let p2 = Petri.Builder.place b "p2" in
  let p3 = Petri.Builder.place b "p3" in
  let p4 = Petri.Builder.place b "p4" in
  let p5 = Petri.Builder.place b "p5" in
  let p6 = Petri.Builder.place b "p6" in
  transition b "A" ~pre:[ p1 ] ~post:[ p2; p3 ];
  transition b "B" ~pre:[ p1 ] ~post:[ p4 ];
  transition b "C" ~pre:[ p2; p3 ] ~post:[ p5 ];
  transition b "D" ~pre:[ p3; p4 ] ~post:[ p6 ];
  Petri.Builder.build b

let fig5 =
  let b = Petri.Builder.create "fig5" in
  let p0 = Petri.Builder.place b ~marked:true "p0" in
  let p1 = Petri.Builder.place b ~marked:true "p1" in
  let p2 = Petri.Builder.place b "p2" in
  let p3 = Petri.Builder.place b "p3" in
  let p4 = Petri.Builder.place b "p4" in
  transition b "A" ~pre:[ p0; p1 ] ~post:[ p3 ];
  transition b "B" ~pre:[ p1; p2 ] ~post:[ p4 ];
  Petri.Builder.build b

let fig7 =
  let b = Petri.Builder.create "fig7" in
  let p0 = Petri.Builder.place b ~marked:true "p0" in
  let p1 = Petri.Builder.place b "p1" in
  let p2 = Petri.Builder.place b "p2" in
  let p3 = Petri.Builder.place b ~marked:true "p3" in
  let p4 = Petri.Builder.place b "p4" in
  let p5 = Petri.Builder.place b "p5" in
  transition b "A" ~pre:[ p0 ] ~post:[ p1 ];
  transition b "B" ~pre:[ p0 ] ~post:[ p2 ];
  transition b "C" ~pre:[ p1; p3 ] ~post:[ p4 ];
  transition b "D" ~pre:[ p2; p3 ] ~post:[ p5 ];
  Petri.Builder.build b
