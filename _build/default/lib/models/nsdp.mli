(** Non-Serialized Dining Philosophers (NSDP).

    The deadlock-prone dining philosophers: each of the [n]
    philosophers grabs the left fork, then the right fork, as two
    separate (non-serialized) actions, and releases both after eating.
    The circular wait where everybody holds the left fork is a
    reachable deadlock.

    The model follows the Ada-task structure of Corbett's benchmark
    suite (forks are server tasks, so requesting a fork and being
    granted it are separate steps).  Per philosopher [i] (mod [n]):
    - places [think.i] (marked), [askL.i], [gotL.i], [askR.i], [eat.i],
      and the shared [fork.i] (marked);
    - [hungry.i  : think.i → askL.i]
    - [takeL.i   : askL.i, fork.i → gotL.i]
    - [reach.i   : gotL.i → askR.i]
    - [takeR.i   : askR.i, fork.(i+1) → eat.i]
    - [release.i : eat.i → think.i, fork.i, fork.(i+1)]

    Fork [i] is a conflict place shared by [takeL.i] and
    [takeR.(i-1)]; the [n] conflict clusters are marked concurrently,
    which defeats classical partial-order reduction but is ideal for
    GPO (Table 1 of the paper reports a constant 3 GPO states). *)

val make : int -> Petri.Net.t
(** [make n] builds the [n]-philosopher net ([n ≥ 2];
    [Invalid_argument] otherwise). *)

val sizes : int list
(** Instance sizes used in Table 1 of the paper: [2; 4; 6; 8; 10]. *)
