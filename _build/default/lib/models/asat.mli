(** Asynchronous Arbiter Tree (ASAT).

    A binary tree of asynchronous arbiter cells granting [n] leaf users
    mutually exclusive access to one shared resource held at the root
    (the benchmark of Alur et al. cited as [1] in the paper).  Every
    cell forwards a request from one of its two children up the tree —
    the choice of which child to serve is a conflict — and propagates
    the grant down and the release back up.

    Per user [i]: [idle.i] (marked) → [ask.i] → request token to its
    leaf cell; on grant, [use.i]; then release.  Per cell [c] with
    children [a, b]: [free.c] (marked) plus wait/busy slots:
    - [fwdA.c : req_a, free.c → waitA.c, req_c]   (conflict with [fwdB.c])
    - [grantA.c : waitA.c, grant_c → busyA.c, grant_a]
    - [backA.c : busyA.c, done_a → free.c, done_c]   (and symmetrically B)

    The root converts [req] into [grant] through the resource token.
    The net is deadlock-free and safe; with all users requesting
    concurrently, every cell on the way up is a concurrently marked
    conflict place — the situation of Figure 2 of the paper. *)

val make : int -> Petri.Net.t
(** [make n] builds the tree with [n] leaf users.  [n] must be a power
    of two and at least 2 ([Invalid_argument] otherwise). *)

val sizes : int list
(** Instance sizes used in Table 1 of the paper: [2; 4; 8]. *)
