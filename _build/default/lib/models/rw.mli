(** Readers and Writers (RW).

    [n] processes share a store through [n] read permits: a reader
    takes its own permit, a writer takes {e all} permits (rebuilt from
    the description of Corbett's benchmark suite, reference [4] of the
    paper).  Per process [i]:
    - [startR.i : idle.i, permit.i → reading.i]
    - [endR.i   : reading.i → idle.i, permit.i]
    - [startW.i : idle.i, permit.0 … permit.(n-1) → writing.i]
    - [endW.i   : writing.i → idle.i, permit.0 … permit.(n-1)]

    Every [startW] conflicts with every other start transition (they
    all compete for permits), so the conflict relation has a single
    giant cluster and classical partial-order reduction degenerates —
    the reduced graph equals the full graph, exactly the behaviour
    Table 1 reports for SPIN+PO on RW.  GPO still collapses the
    exploration to a couple of states.  The net is deadlock-free. *)

val make : int -> Petri.Net.t
(** [make n] builds the [n]-process net ([n ≥ 2]; [Invalid_argument]
    otherwise). *)

val sizes : int list
(** Instance sizes used in Table 1 of the paper: [6; 9; 12; 15]. *)
