(** Overtake protocol (OVER).

    A line of [n] vehicles coordinating overtake manoeuvres with an
    asynchronous request/accept/cancel handshake (rebuilt from the
    description of Corbett's benchmark suite, reference [4] of the
    paper).  Vehicle [i < n-1] may request to overtake its right
    neighbour; the neighbour accepts when free, or the requester may
    cancel a pending request.  Accepting locks both vehicles for the
    manoeuvre; completion frees them.

    Per vehicle [i]: place [free.i] (marked).  Per pair [(i, i+1)]:
    - [req.i    : free.i → want.i, msg.i]
    - [accept.i : msg.i, free.(i+1) → ok.i]     (conflicts with [req.(i+1)] and [cancel.i])
    - [cancel.i : want.i, msg.i → free.i]
    - [go.i     : want.i, ok.i → pass.i]
    - [done.i   : pass.i → free.i, free.(i+1)]

    The conflicts chain along the line ([free.(i+1)] is shared by
    [accept.i] and [req.(i+1)]; [msg.i] by [accept.i] and [cancel.i]),
    so many conflict places are marked concurrently.  The protocol is
    deadlock-free thanks to [cancel]. *)

val make : int -> Petri.Net.t
(** [make n] builds the [n]-vehicle net ([n ≥ 2]; [Invalid_argument]
    otherwise). *)

val sizes : int list
(** Instance sizes used in Table 1 of the paper: [2; 3; 4; 5]. *)
