let make n =
  if n < 2 then invalid_arg "Over.make: need at least 2 vehicles";
  let b = Petri.Builder.create (Printf.sprintf "over-%d" n) in
  let place ?marked fmt = Printf.ksprintf (Petri.Builder.place b ?marked) fmt in
  let transition name ~pre ~post = ignore (Petri.Builder.transition b name ~pre ~post) in
  let free = Array.init n (fun i -> place ~marked:true "free.%d" i) in
  (* Concurrent driver activity: every vehicle keeps polling its
     mirrors, but may only resume normal driving while it is not
     engaged in a manoeuvre (read arc on [free]).  This gives the full
     reachability graph its exponential interleaving blow-up and makes
     [resume] compete with the handshake for the [free] places. *)
  for i = 0 to n - 1 do
    let drive = place ~marked:true "drive.%d" i in
    let scan = place "scan.%d" i in
    transition (Printf.sprintf "poll.%d" i) ~pre:[ drive ] ~post:[ scan ];
    transition (Printf.sprintf "resume.%d" i)
      ~pre:[ scan; free.(i) ]
      ~post:[ drive; free.(i) ]
  done;
  for i = 0 to n - 2 do
    let want = place "want.%d" i in
    let msg = place "msg.%d" i in
    let ok = place "ok.%d" i in
    let pass = place "pass.%d" i in
    transition (Printf.sprintf "req.%d" i) ~pre:[ free.(i) ] ~post:[ want; msg ];
    transition (Printf.sprintf "accept.%d" i) ~pre:[ msg; free.(i + 1) ] ~post:[ ok ];
    transition (Printf.sprintf "cancel.%d" i) ~pre:[ want; msg ] ~post:[ free.(i) ];
    transition (Printf.sprintf "go.%d" i) ~pre:[ want; ok ] ~post:[ pass ];
    transition (Printf.sprintf "done.%d" i) ~pre:[ pass ] ~post:[ free.(i); free.(i + 1) ]
  done;
  Petri.Builder.build b

let sizes = [ 2; 3; 4; 5 ]
