(** The paper's experiments: Table 1 rows and the figure series.

    Every row of Table 1 is encoded with the numbers printed in the
    paper, so the harness can regenerate the table side by side with
    the reproduction's measurements; the figure experiments regenerate
    the state-count series behind Figures 1 and 2. *)

type paper_row = {
  full_states : float;  (** "States" column. *)
  spin_states : float;  (** SPIN+PO states. *)
  spin_time : float;  (** SPIN+PO seconds (HP K260). *)
  smv_peak : float option;  (** Peak BDD size; [None] = "> 24 hours". *)
  smv_time : float option;
  gpo_states : float;  (** GPO states. *)
  gpo_time : float;
}

type family = {
  id : string;  (** "NSDP", "ASAT", "OVER", "RW". *)
  description : string;
  make : int -> Petri.Net.t;
  expect_deadlock : bool;
  rows : (int * paper_row) list;  (** Size → paper numbers. *)
}

val families : family list
(** The four benchmark families, in Table 1 order. *)

val family : string -> family
(** Look up a family by (case-insensitive) id.  Raises [Not_found]. *)

type measurement = {
  family_id : string;
  size : int;
  paper : paper_row;
  outcomes : Engine.outcome list;  (** In {!Engine.all} order. *)
}

val measure :
  ?engines:Engine.kind list ->
  ?max_states:int ->
  ?full_budget:float ->
  family ->
  int ->
  measurement
(** Run the engines on one instance.  [engines] defaults to all four.
    [full_budget] (seconds, default: unlimited) skips the conventional
    and symbolic engines when the time spent on the family's {e previous}
    sizes, extrapolated pessimistically, exceeds the budget — the
    paper's ">24 hours" cells; a skipped outcome is reported truncated
    with 0 states. *)

val table1 :
  ?engines:Engine.kind list ->
  ?max_states:int ->
  ?full_budget:float ->
  ?sizes:(string * int list) list ->
  unit ->
  measurement list
(** Run the whole Table 1 grid with a [full_budget] of 60 s per family.
    [sizes] overrides the per-family instance sizes (default: the
    paper's). *)

val pp_table1 : Format.formatter -> measurement list -> unit
(** Render the reproduction of Table 1, paper numbers beside measured
    ones. *)

val fig1_series : unit -> (string * int) list
(** Figure 1 reproduction: labelled state counts for the 3-transition
    net — full interleaving graph (8), its maximal interleavings (6),
    partial-order path (4), GPO (2). *)

val fig2_series : ?max_n:int -> unit -> (int * float * float * float) list
(** Figure 2 reproduction: for each [N ≤ max_n] (default 12), the
    state counts [(N, full = 3^N, po = 2^(N+1) - 1, gpo = 2)] measured
    by actually running the three engines. *)

val pp_fig2 : Format.formatter -> (int * float * float * float) list -> unit
(** Render the Figure 2 series as a table. *)
