(** Uniform interface over the four verification engines of Table 1.

    Each engine takes a safe net and answers the deadlock question,
    reporting the exploration size in its own metric: visited markings
    for the explicit engines, GPN states for GPO, peak BDD nodes for
    the symbolic engine. *)

type kind =
  | Full  (** Conventional exhaustive analysis ("States" column). *)
  | Stubborn  (** Stubborn-set partial order ("SPIN+PO" column). *)
  | Symbolic  (** BDD reachability ("SMV" column). *)
  | Gpo  (** Generalized partial order ("GPO" column). *)

type outcome = {
  kind : kind;
  states : float;
      (** Visited states (explicit/GPO) or reachable markings (symbolic). *)
  metric : float;
      (** The Table 1 size metric: states for explicit/GPO engines,
          peak live BDD nodes for the symbolic engine. *)
  deadlock : bool;
  time_s : float;  (** Wall-clock analysis time. *)
  truncated : bool;  (** [true] if a state budget was exhausted. *)
}

val all : kind list
(** The four engines in Table 1 column order. *)

val name : kind -> string
(** Display name ("full", "spin+po", "smv", "gpo"). *)

val run : ?max_states:int -> kind -> Petri.Net.t -> outcome
(** Run one engine.  [max_states] (default [5_000_000]) bounds the
    explicit engines and GPO; the symbolic engine ignores it.  The GPO
    engine runs in the paper-faithful configuration
    ([Gpn.Explorer.analyse ~scan:false]): the hardened default with the
    deviation scan is the library default and is compared against it by
    the ablation bench. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line rendering: name, metric, deadlock verdict, time. *)
