lib/harness/engine.ml: Bddkit Format Gpn Petri Unix
