lib/harness/experiment.ml: Engine Float Format Gpn Hashtbl List Models Option Petri Printf String
