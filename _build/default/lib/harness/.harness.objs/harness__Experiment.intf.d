lib/harness/experiment.mli: Engine Format Petri
