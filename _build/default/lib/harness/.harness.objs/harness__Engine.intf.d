lib/harness/engine.mli: Format Petri
