lib/gpn/world_set.mli: Format Petri
