lib/gpn/render.ml: Buffer Dynamics Explorer List Petri Printf State String World_set
