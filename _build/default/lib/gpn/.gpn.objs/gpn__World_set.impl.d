lib/gpn/world_set.ml: Format List Petri Set
