lib/gpn/state.ml: Array Format Hashtbl Int List Petri World_set
