lib/gpn/render.mli: Explorer
