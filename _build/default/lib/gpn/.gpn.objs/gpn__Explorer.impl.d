lib/gpn/explorer.ml: Array Bool Dynamics Format Hashtbl Int Lazy List Petri Printf Queue State Sys World_set
