lib/gpn/dynamics.mli: Petri State World_set
