lib/gpn/validate.ml: Bool Explorer Format List Petri Printf State
