lib/gpn/validate.mli: Explorer Format Petri
