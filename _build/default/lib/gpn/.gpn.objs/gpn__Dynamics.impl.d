lib/gpn/dynamics.ml: Array Hashtbl List Petri Printf State World_set
