lib/gpn/explorer.mli: Dynamics Format Petri State World_set
