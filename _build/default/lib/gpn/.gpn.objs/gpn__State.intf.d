lib/gpn/state.mli: Format Hashtbl Petri World_set
