(** Graphviz rendering of GPO analysis results.

    Produces the "anticipated reachability graph" pictures of the
    paper (Figure 2(b)): one node per GPN state — labelled with the
    number of worlds and the classical markings it denotes — and one
    edge per analysis step, labelled with the transitions fired.
    Deviation-restart runs appear as separate clusters linked by dashed
    edges from the state that spawned them. *)

val result : ?max_markings:int -> Explorer.result -> string
(** Render a whole analysis.  Each node lists up to [max_markings]
    (default [4]) denoted classical markings; deadlocked states are
    highlighted. *)

val write : string -> Explorer.result -> unit
(** [write path result] renders to a file. *)
