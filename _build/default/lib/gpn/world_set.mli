(** Sets of transition sets — the markings of Generalized Petri Nets.

    A {e world} is a transition set ([Petri.Bitset.t] over transitions):
    a complete pre-resolution of every conflict cluster of the net (a
    "color" in the intuition of Section 3.1 of the paper, a {e valid
    transition set} in Definition 3.1).  A [World_set.t] is a set of
    worlds: both the content [m(p)] of a GPN place and the valid-set
    component [r] of a GPN state are world sets.

    This module is deliberately abstract so the representation can be
    swapped (the default is a balanced tree of bit sets; an alternative
    shared/hash-consed representation is benchmarked in the ablation
    suite). *)

type t

type world = Petri.Bitset.t

val empty : t
val is_empty : t -> bool
val singleton : world -> t
val add : world -> t -> t
val mem : world -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Compatible with {!equal}. *)

val cardinal : t -> int
val choose : t -> world
(** Some element; raises [Not_found] on the empty set. *)

val filter : (world -> bool) -> t -> t

val filter_member : int -> t -> t
(** [filter_member t ws] keeps the worlds containing transition [t] —
    the core of the multiple enabling rule (Definition 3.5). *)

val iter : (world -> unit) -> t -> unit
val fold : (world -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (world -> bool) -> t -> bool
val exists : (world -> bool) -> t -> bool
val elements : t -> world list
val of_list : world list -> t

val inter_all : t list -> t
(** Intersection of a non-empty list of world sets; raises
    [Invalid_argument] on the empty list. *)

val product : int -> t list -> t
(** [product width factors] is the set of unions [w1 ∪ ... ∪ wk] for
    every choice of [wi] in the [i]-th factor — used to build the
    initial valid sets [r0] as the product of per-cluster alternatives.
    [width] is the bit-set width used when [factors] is empty (the
    result is then the singleton of the empty world). *)

val pp : ?name:(int -> string) -> unit -> Format.formatter -> t -> unit
(** Pretty-print as [{{a,b},{c}}] with element names. *)
