(** States of a Generalized Petri Net.

    A GPN state is the pair [⟨m, r⟩] of Definition 3.1: [m] maps every
    place to a world set (its "colored tokens") and [r] is the set of
    currently valid worlds.  The denotation of a state is the set of
    classical markings [mapping⟨m,r⟩ = { {p | v ∈ m(p)} | v ∈ r }]
    (Definition 3.4): one classical marking per world.

    Invariant maintained by the dynamics: [m(p) ⊆ r] for every place. *)

type t = private {
  m : World_set.t array;  (** Indexed by place. *)
  r : World_set.t;
}

val make : World_set.t array -> World_set.t -> t
(** [make m r] builds a state; every [m.(p)] is intersected with [r] to
    establish the invariant.  The array is copied. *)

val marking : t -> Petri.Net.place -> World_set.t
(** [marking s p] is [m(p)]. *)

val valid : t -> World_set.t
(** [valid s] is [r]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val denoted_marking : t -> World_set.world -> Petri.Bitset.t
(** [denoted_marking s v] is the classical marking [{p | v ∈ m(p)}]
    denoted by world [v]. *)

val mapping : t -> Petri.Bitset.t list
(** Definition 3.4: the classical markings denoted by the state, one
    per valid world, deduplicated, in increasing order. *)

val pp : Petri.Net.t -> Format.formatter -> t -> unit
(** Multi-line rendering with place and transition names; empty places
    are omitted. *)

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by GPN states. *)
