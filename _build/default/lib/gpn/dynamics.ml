module Bitset = Petri.Bitset

type ctx = {
  net : Petri.Net.t;
  conflict : Petri.Conflict.t;
  choice : Bitset.t;
  alternatives : Bitset.t list list;  (* per choice cluster: its maximal independent sets *)
  initial : State.t;
}

let net ctx = ctx.net
let conflict ctx = ctx.conflict
let choice_transitions ctx = ctx.choice
let cluster_alternatives ctx = ctx.alternatives
let initial ctx = ctx.initial

(* Maximal independent sets of the conflict relation restricted to a
   cluster, by Bron-Kerbosch on the independence ("non-conflict")
   adjacency.  Clusters are small in practice (a handful of transitions
   competing for shared places), and cliques — the worst case for state
   count — are the best case here (each MIS is a singleton). *)
let maximal_independent_sets conflict members =
  let width = Bitset.width members in
  let independent v =
    Bitset.diff (Bitset.remove v members) (Petri.Conflict.conflicting conflict v)
  in
  let results = ref [] in
  let rec bron_kerbosch r p x =
    if Bitset.is_empty p && Bitset.is_empty x then results := r :: !results
    else begin
      let p = ref p and x = ref x in
      Bitset.iter
        (fun v ->
          if Bitset.mem v !p then begin
            let n = independent v in
            bron_kerbosch (Bitset.add v r) (Bitset.inter !p n) (Bitset.inter !x n);
            p := Bitset.remove v !p;
            x := Bitset.add v !x
          end)
        members
    end
  in
  bron_kerbosch (Bitset.empty width) members (Bitset.empty width);
  !results

let make ?conflict (net : Petri.Net.t) =
  let conflict =
    match conflict with Some c -> c | None -> Petri.Conflict.analyse net
  in
  let n = net.n_transitions in
  let choice = ref (Bitset.empty n) in
  let alternatives = ref [] in
  Array.iter
    (fun members ->
      if Bitset.cardinal members >= 2 then begin
        choice := Bitset.union !choice members;
        alternatives := maximal_independent_sets conflict members :: !alternatives
      end)
    (Petri.Conflict.clusters conflict);
  let alternatives = List.rev !alternatives in
  let r0 =
    World_set.product n (List.map World_set.of_list alternatives)
  in
  let m0 =
    Array.init net.n_places (fun p ->
        if Bitset.mem p net.initial then r0 else World_set.empty)
  in
  {
    net;
    conflict;
    choice = !choice;
    alternatives;
    initial = State.make m0 r0;
  }

let initial_of_marking ctx marking =
  let r0 = State.valid ctx.initial in
  let m =
    Array.init ctx.net.n_places (fun p ->
        if Bitset.mem p marking then r0 else World_set.empty)
  in
  State.make m r0

let s_enabled ctx t (s : State.t) =
  let pre = ctx.net.pre_list.(t) in
  if Array.length pre = 0 then State.valid s
  else begin
    let acc = ref (State.marking s pre.(0)) in
    for i = 1 to Array.length pre - 1 do
      acc := World_set.inter !acc (State.marking s pre.(i))
    done;
    !acc
  end

let enabled_transitions ctx s =
  let rec loop t acc =
    if t < 0 then acc
    else begin
      let acc =
        if World_set.is_empty (s_enabled ctx t s) then acc else Bitset.add t acc
      in
      loop (t - 1) acc
    end
  in
  loop (ctx.net.n_transitions - 1) (Bitset.empty ctx.net.n_transitions)

let m_enabled ctx t s =
  if Bitset.mem t ctx.choice then World_set.filter_member t (s_enabled ctx t s)
  else World_set.empty

let single_fire ctx t (s : State.t) =
  let history = s_enabled ctx t s in
  assert (not (World_set.is_empty history));
  let pre = ctx.net.pre.(t) and post = ctx.net.post.(t) in
  let m =
    Array.mapi
      (fun p ws ->
        let in_pre = Bitset.mem p pre and in_post = Bitset.mem p post in
        if in_pre && not in_post then World_set.diff ws history
        else if in_post && not in_pre then World_set.union ws history
        else ws)
      (Array.init (Array.length ctx.net.place_names) (State.marking s))
  in
  State.make m (State.valid s)

let batch_single_fire ctx ts (s : State.t) =
  let histories =
    List.map
      (fun t ->
        let h = s_enabled ctx t s in
        assert (not (World_set.is_empty h));
        (t, h))
      ts
  in
  let n_places = ctx.net.n_places in
  let removed = Array.make n_places World_set.empty in
  let added = Array.make n_places World_set.empty in
  List.iter
    (fun (t, h) ->
      let pre = ctx.net.pre.(t) and post = ctx.net.post.(t) in
      Array.iter
        (fun p ->
          if not (Bitset.mem p post) then removed.(p) <- World_set.union removed.(p) h)
        ctx.net.pre_list.(t);
      Array.iter
        (fun p ->
          if not (Bitset.mem p pre) then added.(p) <- World_set.union added.(p) h)
        ctx.net.post_list.(t))
    histories;
  let m =
    Array.init n_places (fun p ->
        World_set.union (World_set.diff (State.marking s p) removed.(p)) added.(p))
  in
  State.make m (State.valid s)

let multiple_fire ctx fired (s : State.t) =
  let n_places = ctx.net.n_places in
  let histories =
    (* m_enabled per fired transition, computed once. *)
    let table = Hashtbl.create 16 in
    Bitset.iter
      (fun t ->
        let h = m_enabled ctx t s in
        assert (not (World_set.is_empty h));
        Hashtbl.add table t h)
      fired;
    table
  in
  (* r' keeps the worlds that chose a fired transition, plus the worlds
     still single-enabling some unfired transition (Definition 3.6). *)
  let r' = ref World_set.empty in
  for t = 0 to ctx.net.n_transitions - 1 do
    if Bitset.mem t fired then r' := World_set.union !r' (Hashtbl.find histories t)
    else r' := World_set.union !r' (s_enabled ctx t s)
  done;
  let r' = !r' in
  let removed = Array.make n_places World_set.empty in
  let added = Array.make n_places World_set.empty in
  Bitset.iter
    (fun t ->
      let h = Hashtbl.find histories t in
      Array.iter
        (fun p -> removed.(p) <- World_set.union removed.(p) h)
        ctx.net.pre_list.(t);
      Array.iter
        (fun p -> added.(p) <- World_set.union added.(p) h)
        ctx.net.post_list.(t))
    fired;
  let m =
    Array.init n_places (fun p ->
        World_set.union (World_set.diff (State.marking s p) removed.(p)) added.(p))
  in
  (* State.make intersects every place with r'. *)
  State.make m r'

let step_fire ctx ~multiples ~singles (s : State.t) =
  let n_places = ctx.net.n_places in
  let histories = Hashtbl.create 16 in
  Bitset.iter
    (fun t ->
      let h = m_enabled ctx t s in
      assert (not (World_set.is_empty h));
      Hashtbl.add histories t h)
    multiples;
  List.iter
    (fun t ->
      let h = s_enabled ctx t s in
      assert (not (World_set.is_empty h));
      Hashtbl.add histories t h)
    singles;
  (* Definition 3.6 with T' = multiples: worlds that chose and fired a
     multiple, or that still single-enable any transition outside T'
     (including the fired singles). *)
  let r' = ref World_set.empty in
  for t = 0 to ctx.net.n_transitions - 1 do
    if Bitset.mem t multiples then r' := World_set.union !r' (Hashtbl.find histories t)
    else r' := World_set.union !r' (s_enabled ctx t s)
  done;
  let removed = Array.make n_places World_set.empty in
  let added = Array.make n_places World_set.empty in
  let move t h =
    Array.iter (fun p -> removed.(p) <- World_set.union removed.(p) h) ctx.net.pre_list.(t);
    Array.iter (fun p -> added.(p) <- World_set.union added.(p) h) ctx.net.post_list.(t)
  in
  Hashtbl.iter move histories;
  let m =
    Array.init n_places (fun p ->
        World_set.union (World_set.diff (State.marking s p) removed.(p)) added.(p))
  in
  State.make m !r'

let deadlock_worlds ctx (s : State.t) =
  let live = ref World_set.empty in
  for t = 0 to ctx.net.n_transitions - 1 do
    live := World_set.union !live (s_enabled ctx t s)
  done;
  World_set.diff (State.valid s) !live

let check_invariant _ctx (s : State.t) =
  Array.iteri
    (fun p ws ->
      if not (World_set.subset ws (State.valid s)) then
        failwith (Printf.sprintf "GPN invariant violated: m(%d) ⊄ r" p))
    s.State.m
