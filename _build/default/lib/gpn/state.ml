type t = { m : World_set.t array; r : World_set.t }

let make m r = { m = Array.map (fun ws -> World_set.inter ws r) m; r }

let marking s p = s.m.(p)
let valid s = s.r

let equal a b =
  World_set.equal a.r b.r
  && Array.length a.m = Array.length b.m
  && Array.for_all2 World_set.equal a.m b.m

let compare a b =
  let c = World_set.compare a.r b.r in
  if c <> 0 then c
  else begin
    let n = Array.length a.m and n' = Array.length b.m in
    let c = Int.compare n n' in
    if c <> 0 then c
    else begin
      let rec loop i =
        if i >= n then 0
        else begin
          let c = World_set.compare a.m.(i) b.m.(i) in
          if c <> 0 then c else loop (i + 1)
        end
      in
      loop 0
    end
  end

let hash s =
  Array.fold_left
    (fun acc ws -> (acc * 486187739) + World_set.hash ws)
    (World_set.hash s.r) s.m

let denoted_marking s v =
  let n_places = Array.length s.m in
  let rec loop p acc =
    if p < 0 then acc
    else loop (p - 1) (if World_set.mem v s.m.(p) then Petri.Bitset.add p acc else acc)
  in
  loop (n_places - 1) (Petri.Bitset.empty n_places)

let mapping s =
  World_set.fold
    (fun v acc ->
      let m = denoted_marking s v in
      if List.exists (Petri.Bitset.equal m) acc then acc else m :: acc)
    s.r []
  |> List.sort Petri.Bitset.compare

let pp (net : Petri.Net.t) ppf s =
  let name = Petri.Net.transition_name net in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun p ws ->
      if not (World_set.is_empty ws) then
        Format.fprintf ppf "%s: %a@ " (Petri.Net.place_name net p)
          (World_set.pp ~name ()) ws)
    s.m;
  Format.fprintf ppf "r: %a@]" (World_set.pp ~name ()) s.r

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
