(** Generalized Petri Net dynamics (Section 3.2 of the paper).

    A GPN shares the structure of a safe classical net; only the
    marking representation and the firing rules change.  The central
    objects are {e worlds}: maximal conflict-free transition sets.  The
    formal definition of [r0] in Section 3.3 says "all conflict-free
    subsets", but the worked example of Figure 7 ([m_enabled(A) =
    {{A,C},{A,D}}]) is only consistent with {e maximal} conflict-free
    sets, which is what this module uses (see DESIGN.md).  Each world
    [v ∈ r] is a complete pre-resolution of every conflict cluster and
    denotes one classical marking [{p | v ∈ m(p)}]; the rules below
    update all worlds simultaneously.

    Transitions belonging to a conflict cluster of size ≥ 2 are
    {e choice transitions}; only they appear in world labels.  Worlds
    are restricted to choice transitions, which keeps [r0] the product
    of the per-cluster maximal independent sets of the conflict
    graph. *)

type ctx
(** Precomputed GPN context for one net: conflict structure, choice
    transitions, cluster alternatives and the initial state. *)

val make : ?conflict:Petri.Conflict.t -> Petri.Net.t -> ctx
(** Build the context.  [conflict] may be supplied when already
    computed.  Cost is dominated by the construction of [r0]: the
    product over conflict clusters of their maximal independent sets
    (exponential in the number of {e concurrently structured} conflict
    clusters — the very quantity GPO trades state count against). *)

val net : ctx -> Petri.Net.t
val conflict : ctx -> Petri.Conflict.t

val choice_transitions : ctx -> Petri.Bitset.t
(** Transitions in conflict with at least one other transition. *)

val cluster_alternatives : ctx -> Petri.Bitset.t list list
(** For each conflict cluster of size ≥ 2, its maximal independent
    sets (the per-cluster alternatives multiplied into [r0]). *)

val initial : ctx -> State.t
(** [⟨m0^G, r0⟩] per Section 3.3: [m0^G(p) = r0] iff [p ∈ m0]. *)

val initial_of_marking : ctx -> Petri.Bitset.t -> State.t
(** Like {!initial} for an arbitrary safe marking — used by the
    explorer to restart the analysis from a deviation marking. *)

val s_enabled : ctx -> Petri.Net.transition -> State.t -> World_set.t
(** Definition 3.2 (single enabling): the worlds in which every input
    place of the transition is marked — exactly the worlds whose
    denoted classical marking enables it. *)

val enabled_transitions : ctx -> State.t -> Petri.Bitset.t
(** Transitions with a non-empty {!s_enabled} set. *)

val m_enabled : ctx -> Petri.Net.transition -> State.t -> World_set.t
(** Definition 3.5 (multiple enabling): the single-enabling worlds that
    additionally {e chose} the transition ([t ∈ v]).  Empty for
    non-choice transitions, which never appear in labels. *)

val single_fire : ctx -> Petri.Net.transition -> State.t -> State.t
(** Definition 3.3: move the common history [s_enabled t s] from the
    input places to the output places; [r] is unchanged.  Requires a
    single-enabled transition ([assert]ed). *)

val batch_single_fire : ctx -> Petri.Net.transition list -> State.t -> State.t
(** Fire a set of pairwise non-conflicting transitions as one step of
    the single firing rule: all histories are computed first, then all
    moves are applied.  Because the transitions share no input places,
    the result equals firing them sequentially in any order; batching
    them keeps the number of analysis states independent of the amount
    of concurrency (the [N!] → [N] → [1] collapse of Sections 2.2/2.3).
    Requires every transition to be single-enabled ([assert]ed). *)

val multiple_fire : ctx -> Petri.Bitset.t -> State.t -> State.t
(** Definition 3.6: fire a set [T'] of (possibly conflicting) choice
    transitions simultaneously.  Every member must be multiple-enabled
    ([assert]ed).  The new valid set [r'] keeps the worlds that either
    chose and fired some member of [T'] or still single-enable some
    unfired transition; all place contents are filtered by [r']. *)

val step_fire :
  ctx ->
  multiples:Petri.Bitset.t ->
  singles:Petri.Net.transition list ->
  State.t ->
  State.t
(** One combined analysis step: fire [multiples] with the multiple rule
    and [singles] with the single rule, all from the same source state.
    Choice and conflict-free transitions never share input places, so
    the moves compose; the new valid set follows Definition 3.6 with
    [T' = multiples] (the singles' worlds are kept by the unfired
    [s_enabled] term, and worlds enabling nothing — already reported as
    deadlocks — are pruned).  Firing both kinds in the same step keeps
    pending conflict-free transitions from being postponed forever when
    a multiple firing closes a cycle (the "ignoring" problem).
    Requires every multiple to be multiple-enabled and every single to
    be single-enabled ([assert]ed). *)

val deadlock_worlds : ctx -> State.t -> World_set.t
(** The worlds [v ∈ r] whose denoted classical marking enables no
    transition — the deadlock characterization of Section 3.3
    ([⋃_t s_enabled(t,s) ≠ r]). *)

val check_invariant : ctx -> State.t -> unit
(** Assert the representation invariant [m(p) ⊆ r] and that every
    world in [r] denotes a marking consistent with [s_enabled] — used
    by the test suite and debug builds. *)
