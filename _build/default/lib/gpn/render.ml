let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let result ?(max_markings = 4) (r : Explorer.result) =
  let net = Dynamics.net r.ctx in
  let ctx = r.ctx in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %S {\n  rankdir=TB;\n  node [shape=box fontsize=10];\n"
    (net.Petri.Net.name ^ "-gpo");
  (* Globally unique state ids across runs. *)
  let ids = State.Table.create 64 in
  let next = ref 0 in
  let id_of run_index s =
    match State.Table.find_opt ids s with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        State.Table.add ids s i;
        let markings = State.mapping s in
        let shown = List.filteri (fun i _ -> i < max_markings) markings in
        let dead = not (World_set.is_empty (Dynamics.deadlock_worlds ctx s)) in
        let label =
          Printf.sprintf "run %d / %d world(s)\\n%s%s" run_index
            (World_set.cardinal (State.valid s))
            (String.concat "\\n"
               (List.map
                  (fun m ->
                    escape (Petri.Bitset.to_string ~name:(Petri.Net.place_name net) m))
                  shown))
            (if List.length markings > max_markings then
               Printf.sprintf "\\n… %d more" (List.length markings - max_markings)
             else "")
        in
        out "  s%d [label=\"%s\"%s];\n" i label
          (if dead then " style=filled fillcolor=lightcoral" else "");
        i
  in
  let label_of (l : Explorer.label) =
    let multiples =
      Petri.Bitset.fold
        (fun t acc -> Petri.Net.transition_name net t :: acc)
        l.multiples []
      |> List.rev
    in
    let singles = List.map (Petri.Net.transition_name net) l.singles in
    escape (String.concat ", " (multiples @ singles))
  in
  List.iteri
    (fun run_index (run : Explorer.run) ->
      (* Edges of the run, reconstructed from the predecessor map. *)
      State.Table.iter
        (fun s' (label, s) ->
          out "  s%d -> s%d [label=\"%s\"];\n" (id_of run_index s)
            (id_of run_index s') (label_of label))
        run.predecessor;
      ignore (id_of run_index run.initial);
      (* Restart provenance. *)
      match run.origin with
      | Explorer.Init -> ()
      | Explorer.Deviation d -> begin
          match State.Table.find_opt ids d.state with
          | Some origin ->
              out "  s%d -> s%d [style=dashed label=\"restart: %s\"];\n" origin
                (id_of run_index run.initial)
                (escape (Petri.Net.transition_name net d.transition))
          | None -> ()
        end)
    r.runs;
  out "}\n";
  Buffer.contents buf

let write path r =
  let oc = open_out path in
  output_string oc (result r);
  close_out oc
