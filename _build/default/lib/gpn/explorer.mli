(** Generalized partial-order reachability analysis (Section 3.3).

    At every state the explorer:

    + checks the deadlock condition [⋃_t s_enabled(t,s) ≠ r] and
      records the dead worlds;
    + runs the {e deviation scan} (see below);
    + computes the {e firable} transitions: a choice transition is
      firable when it is multiple-enabled (some world that {e chose} it
      marks its preset — Definition 3.5); a conflict-free transition is
      firable when it is single-enabled.  A choice transition that is
      single- but not multiple-enabled is never fired: the worlds
      enabling it resolved the conflict in favour of a competitor, and
      the branch in which it fires is denoted by the sibling worlds
      that chose it (the {e anticipation} at the heart of the method);
    + fires the firable multiple-enabled transitions with the multiple
      firing rule, then the conflict-free ones with the (batched)
      single rule — by default everything of a kind at once, one
      successor per state.

    {2 Deviation restarts}

    A world fixes each conflict cluster's resolution {e once}; an
    execution that re-enters a cluster and resolves it differently is
    not denoted by any world.  (The paper's footnote 2 alludes to extra
    bookkeeping "that the firing of an enabled transition is not
    postponed forever" without giving it.)  The explorer therefore
    scans every state for {e deviations}: a world [v] and a choice
    transition [t] with [v ∈ s_enabled(t) \ m_enabled(t)] — the marking
    denoted by [v] enables [t], but [v]'s label rejected it.  The
    deviating branch is covered when a sibling world at the same
    denoted marking is about to fire [t], or when some world already
    denotes the post-firing marking; otherwise the analysis is
    {e restarted} from the post-firing marking (globally memoized).
    Restart roots are reachable classical markings, so soundness is
    preserved; the scan makes deadlock detection complete (validated
    against exhaustive search on thousands of random nets by the test
    suite).  On the paper's benchmark families the scan triggers no
    (or almost no) restarts and the state counts keep the paper's
    constant/linear shape. *)

type label = {
  multiples : Petri.Bitset.t;
      (** Choice transitions fired with the multiple rule. *)
  singles : Petri.Net.transition list;
      (** Conflict-free transitions fired with the single rule. *)
}
(** One analysis step: all of [multiples] and [singles] fire
    simultaneously from the source state (see {!Dynamics.step_fire}). *)

type reduction =
  | Batched  (** Fire all candidates at the same time (default). *)
  | Stepwise
      (** One conflict cluster or one single transition per step —
          the "one interleaving" variant of Section 3.3, for ablation. *)

type run = {
  root : Petri.Bitset.t;  (** Classical marking the run starts from. *)
  origin : origin;  (** How that marking was reached. *)
  initial : State.t;
  predecessor : (label * State.t) State.Table.t;
      (** First-reach predecessor of every non-initial state of the run. *)
  visited : unit State.Table.t;  (** The states of the run. *)
}

and origin =
  | Init  (** The net's initial marking. *)
  | Deviation of {
      parent : run;  (** Run whose scan produced this root. *)
      state : State.t;  (** State at which the deviation was found. *)
      world : World_set.world;  (** The rejecting world. *)
      transition : Petri.Net.transition;  (** The rejected transition. *)
    }

type witness = {
  run : run;  (** The run in which the deadlock was found. *)
  state : State.t;  (** The GPN state exhibiting the deadlock. *)
  worlds : World_set.t;  (** Valid worlds whose denoted marking is dead. *)
  markings : Petri.Bitset.t list;
      (** The dead classical markings, first reported at this state. *)
}

type result = {
  ctx : Dynamics.ctx;
  states : int;  (** Total GPN states over all runs — the Table 1 count. *)
  edges : int;
  runs : run list;
      (** All runs, in scheduling order (a single run means no
          deviation restart was needed). *)
  deadlocks : witness list;
  truncated : bool;
}

val explore :
  ?reduction:reduction ->
  ?thorough:bool ->
  ?scan:bool ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  Dynamics.ctx ->
  result
(** Run the analysis from the initial marking, restarting on uncovered
    deviations until the pending-root queue empties.  [max_states]
    (default [1_000_000]) bounds the total number of states across all
    runs; [max_deadlocks] (default [64]) bounds retained witnesses.
    Witness markings are deduplicated globally, so a deadlock lingering
    over several states is reported once.

    [scan] (default [true]) runs the deviation scan described above.
    Disabling it gives exactly the paper's procedure (state graph and
    deadlock check only): per-state cost drops from per-world to pure
    set algebra — the configuration behind the paper's linear CPU-time
    claim — at the price of missing deadlocks that require re-entering
    a conflict cluster with a different resolution (on the benchmark
    families of Table 1 the verdicts are unchanged; on randomized nets
    roughly 2%% of deadlock verdicts were missed without the scan).

    [thorough] (default [true]) additionally serializes same-cluster
    transitions that would fire in overlapping worlds within one step:
    such a step can skip the serialization in which the first firing
    re-enables a competitor of the second through a chain of other
    transitions, hiding a deviation.  Disabling it recovers the paper's
    aggressive all-at-once batching (slightly smaller state counts, used
    by the ablation bench) at the cost of missing rare deadlock
    {e markings} of that nested re-entrant shape — deadlock verdicts
    agreed with exhaustive search on all randomized nets we tested in
    both modes, but only the thorough mode also witnessed every dead
    marking. *)

val analyse :
  ?reduction:reduction ->
  ?thorough:bool ->
  ?scan:bool ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  Petri.Net.t ->
  result
(** [Dynamics.make] followed by {!explore}. *)

val deadlock_free : result -> bool
(** [true] iff no deadlock witness was found (meaningful only when
    [truncated = false]). *)

val deadlock_trace : result -> witness -> Petri.Net.transition list
(** Extract a classical firing sequence from the net's initial marking
    to the first dead marking of the witness: deviation origins are
    unwound recursively, and each run's GPN path is replayed in the
    relevant world, collecting the transitions that actually fired in
    it.  The result is a valid trace of the classical net (checked by
    the test suite with {!Petri.Trace.replay}). *)

val pp_summary : Format.formatter -> result -> unit
(** One-line summary: states, edges, runs, deadlock verdict. *)
