let preset_hits (net : Net.t) t s =
  Array.exists (fun q -> Bitset.mem q s) net.pre_list.(t)

let postset_hits (net : Net.t) t s =
  Array.exists (fun q -> Bitset.mem q s) net.post_list.(t)

let is_siphon (net : Net.t) s =
  (not (Bitset.is_empty s))
  && Bitset.for_all
       (fun p -> Array.for_all (fun t -> preset_hits net t s) net.producers.(p))
       s

let is_trap (net : Net.t) s =
  (not (Bitset.is_empty s))
  && Bitset.for_all
       (fun p -> Array.for_all (fun t -> postset_hits net t s) net.consumers.(p))
       s

let empty_places (net : Net.t) m = Bitset.diff (Bitset.full net.n_places) m

(* Enumerate the inclusion-minimal siphons by backtracking closure:
   grow a candidate from a seed place, justifying every producer of
   every member by branching over which of its input places to add. *)
let minimal_siphons ?(max_count = 2048) (net : Net.t) =
  let candidates = ref [] in
  let work = ref 0 in
  let rec close s = function
    | [] -> candidates := s :: !candidates
    | p :: rest -> begin
        incr work;
        if !work > max_count * 64 then
          failwith "Siphon.minimal_siphons: search blow-up, raise ~max_count";
        (* Find a producer of [p] not yet consuming from [s]. *)
        let unjustified =
          Array.to_list net.producers.(p)
          |> List.find_opt (fun t -> not (preset_hits net t s))
        in
        match unjustified with
        | None -> close s rest
        | Some t ->
            if Array.length net.pre_list.(t) = 0 then
              (* A source transition feeds [p]: no siphon contains [p]. *)
              ()
            else
              Array.iter
                (fun q -> close (Bitset.add q s) (q :: p :: rest))
                net.pre_list.(t)
      end
  in
  for p = 0 to net.n_places - 1 do
    close (Bitset.singleton net.n_places p) [ p ]
  done;
  (* Keep the inclusion-minimal candidates. *)
  let sorted =
    List.sort_uniq Bitset.compare !candidates
    |> List.sort (fun a b -> Int.compare (Bitset.cardinal a) (Bitset.cardinal b))
  in
  let minimal = ref [] in
  List.iter
    (fun s ->
      if not (List.exists (fun kept -> Bitset.subset kept s) !minimal) then
        minimal := s :: !minimal)
    sorted;
  if List.length !minimal > max_count then
    failwith "Siphon.minimal_siphons: too many siphons, raise ~max_count";
  List.rev !minimal

let max_trap_inside (net : Net.t) q0 =
  let rec fixpoint q =
    let q' =
      Bitset.fold
        (fun p acc ->
          if Array.for_all (fun t -> postset_hits net t q) net.consumers.(p) then acc
          else Bitset.remove p acc)
        q q
    in
    if Bitset.equal q' q then q else fixpoint q'
  in
  fixpoint q0

let is_free_choice (net : Net.t) =
  let rec check p =
    p >= net.n_places
    || ((Array.length net.consumers.(p) <= 1
        || Array.for_all
             (fun t -> Bitset.equal net.pre.(t) (Bitset.singleton net.n_places p))
             net.consumers.(p))
       && check (p + 1))
  in
  check 0

let commoner_holds ?max_count (net : Net.t) =
  List.for_all
    (fun s ->
      let trap = max_trap_inside net s in
      (not (Bitset.is_empty trap)) && Bitset.intersects trap net.initial)
    (minimal_siphons ?max_count net)

let unmarked_witness ?max_count (net : Net.t) m =
  List.find_opt (fun s -> Bitset.disjoint s m) (minimal_siphons ?max_count net)
