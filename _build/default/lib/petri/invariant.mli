(** Structural analysis: incidence matrix, place and transition invariants.

    A {e P-invariant} is an integer vector [y] over places with
    [yᵀ · C = 0] where [C] is the incidence matrix; the weighted token
    count [y · m] is then constant over all reachable markings.  A
    non-negative P-invariant covering a place proves its boundedness,
    and a net covered by P-semiflows of weight 1 per marked component is
    structurally safe.  A {e T-invariant} is a vector [x] over
    transitions with [C · x = 0]; firing a realizable T-invariant
    reproduces the marking.

    Invariants are computed exactly: a rational Gaussian elimination
    gives a basis of the null space, and Farkas' algorithm enumerates
    the minimal non-negative semiflows. *)

val incidence : Net.t -> int array array
(** [incidence net] is the [n_places × n_transitions] matrix with
    [C.(p).(t) = (if p ∈ t• then 1 else 0) - (if p ∈ •t then 1 else 0)]. *)

val p_invariants : Net.t -> int array list
(** Basis of the integer P-invariants (null space of [Cᵀ]), each vector
    scaled to coprime integers with positive leading coefficient. *)

val t_invariants : Net.t -> int array list
(** Basis of the integer T-invariants (null space of [C]). *)

val p_semiflows : ?max_count:int -> Net.t -> int array list
(** Minimal support non-negative P-invariants, by Farkas' algorithm.
    [max_count] (default [4096]) caps the number of intermediate rows to
    keep the worst-case blow-up in check; raises [Failure] when
    exceeded. *)

val is_p_invariant : Net.t -> int array -> bool
(** Check [yᵀ · C = 0]. *)

val is_t_invariant : Net.t -> int array -> bool
(** Check [C · x = 0]. *)

val invariant_value : Net.t -> int array -> Bitset.t -> int
(** [invariant_value net y m] is the weighted token count [y · m]. *)

val structurally_covered : Net.t -> bool
(** [true] iff every place lies in the support of some P-semiflow —
    a sufficient structural condition for boundedness of the net. *)

val pp_invariant : kind:[ `Place | `Transition ] -> Net.t -> Format.formatter -> int array -> unit
(** Print an invariant as a weighted sum of place or transition names. *)
