(** Siphons, traps and Commoner's structural deadlock condition.

    A {e siphon} is a place set [S] with [•S ⊆ S•]: every transition
    feeding [S] also consumes from it, so an unmarked siphon stays
    unmarked forever and its output transitions are dead.  Dually a
    {e trap} [Q] satisfies [Q• ⊆ •Q] and once marked stays marked.
    At any dead marking the set of empty places is a siphon — the
    structural shadow of every deadlock the reachability engines find,
    used by the test suite as an independent oracle.  For free-choice
    nets, Commoner's condition — every minimal siphon contains an
    initially marked trap — implies deadlock freedom. *)

val is_siphon : Net.t -> Bitset.t -> bool
(** [•S ⊆ S•], for a non-empty [S]. *)

val is_trap : Net.t -> Bitset.t -> bool
(** [Q• ⊆ •Q], for a non-empty [Q]. *)

val empty_places : Net.t -> Bitset.t -> Bitset.t
(** The unmarked places of a marking. *)

val minimal_siphons : ?max_count:int -> Net.t -> Bitset.t list
(** All minimal (inclusion-wise) siphons, by backtracking closure.
    [max_count] (default [2048]) bounds the search; raises [Failure]
    when exceeded. *)

val max_trap_inside : Net.t -> Bitset.t -> Bitset.t
(** The largest trap contained in a place set (possibly empty),
    computed as a greatest fixpoint. *)

val is_free_choice : Net.t -> bool
(** [true] iff every shared place is the only input of all its
    consumers ([∀p: |p•| ≤ 1 ∨ ∀t ∈ p•: •t = {p}]) — the class for
    which Commoner's condition is exact. *)

val commoner_holds : ?max_count:int -> Net.t -> bool
(** Every minimal siphon contains a trap marked at [m0].  For
    free-choice nets this implies deadlock freedom; for general nets it
    is neither necessary nor sufficient, but a failing siphon is a good
    hint where a deadlock may hide. *)

val unmarked_witness : ?max_count:int -> Net.t -> Bitset.t -> Bitset.t option
(** [unmarked_witness net m] is a minimal siphon unmarked at [m], if
    any — at a dead marking one always exists. *)
