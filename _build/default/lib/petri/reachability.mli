(** Explicit-state reachability analysis (Section 2.2 of the paper).

    The explorer is generic in the {e expansion strategy}: at each
    visited marking a strategy selects which enabled transitions to
    fire.  {!full} fires all of them (conventional analysis, the
    "States" column of Table 1); {!Stubborn.strategy} fires a stubborn
    subset (partial-order analysis, the "SPIN+PO" column).

    Deadlocks are detected at every visited marking regardless of the
    strategy, so any deadlock-preserving strategy reports the same
    verdict as conventional analysis. *)

module Marking_table : Hashtbl.S with type key = Bitset.t
(** Hash tables keyed by markings. *)

type strategy = Net.t -> Bitset.t -> Net.transition list
(** [strategy net m] returns the transitions to fire from marking [m];
    each returned transition must be enabled in [m]. *)

type result = {
  net : Net.t;
  states : int;  (** Number of distinct visited markings. *)
  edges : int;  (** Number of explored firings. *)
  deadlocks : Bitset.t list;  (** Up to [max_deadlocks] deadlocked markings. *)
  deadlock_count : int;  (** Total number of deadlocked markings found. *)
  unsafe : (Net.transition * Bitset.t) list;
      (** Firings that violated 1-safeness, up to [max_deadlocks] of them. *)
  truncated : bool;  (** [true] iff the [max_states] budget was hit. *)
  predecessor : (Net.transition * Bitset.t) Marking_table.t option;
      (** When traces were requested: for each non-initial visited
          marking, the transition and marking it was first reached
          from. *)
  visited : unit Marking_table.t;  (** The set of visited markings. *)
}

val full : strategy
(** Fire every enabled transition: conventional exhaustive analysis. *)

val explore :
  ?strategy:strategy ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  ?traces:bool ->
  Net.t ->
  result
(** [explore net] runs a breadth-first exploration from the initial
    marking.  [strategy] defaults to {!full}; [max_states] (default
    [10_000_000]) bounds the number of visited states, setting
    [truncated] when exceeded; [max_deadlocks] (default [16]) bounds the
    retained deadlock witnesses; [traces] (default [false]) records
    predecessors for counterexample extraction. *)

val trace_to : result -> Bitset.t -> Net.transition list
(** [trace_to result m] reconstructs a firing sequence from the initial
    marking to [m].  Requires [explore ~traces:true]; raises
    [Invalid_argument] otherwise and [Not_found] if [m] was not
    visited. *)

val deadlock_free : result -> bool
(** [true] iff no deadlocked marking was visited (meaningful only when
    [truncated = false]). *)

val pp_summary : Format.formatter -> result -> unit
(** One-line summary: states, edges, deadlocks, truncation. *)
