(** Graphviz export for nets and reachability graphs. *)

val net : ?marking:Bitset.t -> Net.t -> string
(** [net ?marking n] renders the net structure in DOT: places as
    circles (filled when marked — default marking is [n.initial]),
    transitions as boxes, the flow relation as arrows. *)

val reachability_graph : Net.t -> Reachability.result -> string
(** Render the explored state graph: one node per visited marking
    (labelled with the marked places), one edge per firing.  Intended
    for small graphs; emits a warning comment beyond 2000 states. *)

val write : string -> string -> unit
(** [write path dot] writes a DOT string to a file. *)
