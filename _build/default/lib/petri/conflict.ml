type t = {
  net : Net.t;
  conflicting : Bitset.t array;  (* per transition: transitions sharing an input place *)
  cluster_of : int array;  (* transition -> cluster index *)
  clusters : Bitset.t array;
  conflict_places : Bitset.t;
}

let net c = c.net

let analyse (net : Net.t) =
  let n = net.n_transitions in
  let conflicting = Array.make n (Bitset.empty n) in
  for t = 0 to n - 1 do
    let acc = ref (if Bitset.is_empty net.pre.(t) then Bitset.empty n else Bitset.singleton n t) in
    Array.iter
      (fun p -> Array.iter (fun u -> acc := Bitset.add u !acc) net.consumers.(p))
      net.pre_list.(t);
    conflicting.(t) <- !acc
  done;
  (* Connected components of the conflict relation, by DFS. *)
  let cluster_of = Array.make n (-1) in
  let clusters = ref [] in
  let n_clusters = ref 0 in
  for t = 0 to n - 1 do
    if cluster_of.(t) < 0 then begin
      let id = !n_clusters in
      incr n_clusters;
      let members = ref (Bitset.empty n) in
      let rec visit u =
        if cluster_of.(u) < 0 then begin
          cluster_of.(u) <- id;
          members := Bitset.add u !members;
          Bitset.iter visit conflicting.(u)
        end
      in
      visit t;
      clusters := !members :: !clusters
    end
  done;
  let conflict_places =
    let acc = ref (Bitset.empty net.n_places) in
    for p = 0 to net.n_places - 1 do
      if Array.length net.consumers.(p) >= 2 then acc := Bitset.add p !acc
    done;
    !acc
  in
  {
    net;
    conflicting;
    cluster_of;
    clusters = Array.of_list (List.rev !clusters);
    conflict_places;
  }

let in_conflict c t u = Bitset.mem u c.conflicting.(t)
let conflicting c t = c.conflicting.(t)
let cluster_of c t = c.cluster_of.(t)
let clusters c = c.clusters
let cluster_members c i = c.clusters.(i)
let is_choice_transition c t = Bitset.cardinal c.clusters.(c.cluster_of.(t)) >= 2
let conflict_places c = c.conflict_places

let dynamic_mcs c enabled =
  (* Connected components of the conflict relation restricted to [enabled]. *)
  let seen = ref (Bitset.empty (Bitset.width enabled)) in
  let components = ref [] in
  let explore root =
    if not (Bitset.mem root !seen) then begin
      let members = ref (Bitset.empty (Bitset.width enabled)) in
      let rec visit u =
        if Bitset.mem u enabled && not (Bitset.mem u !seen) then begin
          seen := Bitset.add u !seen;
          members := Bitset.add u !members;
          Bitset.iter visit c.conflicting.(u)
        end
      in
      visit root;
      components := !members :: !components
    end
  in
  Bitset.iter explore enabled;
  List.rev !components

let pp_clusters c ppf () =
  Array.iteri
    (fun i members ->
      Format.fprintf ppf "cluster %d: %a@." i (Net.pp_transition_set c.net) members)
    c.clusters
