exception Unsafe of Net.transition * Bitset.t

let enabled (net : Net.t) t m = Bitset.subset net.pre.(t) m

let enabled_set (net : Net.t) m =
  let rec loop t acc =
    if t < 0 then acc
    else loop (t - 1) (if enabled net t m then Bitset.add t acc else acc)
  in
  loop (net.n_transitions - 1) (Bitset.empty net.n_transitions)

let is_deadlock (net : Net.t) m =
  let rec loop t = t >= net.n_transitions || ((not (enabled net t m)) && loop (t + 1)) in
  loop 0

let fire (net : Net.t) t m =
  assert (enabled net t m);
  let after_consume = Bitset.diff m net.pre.(t) in
  let safe = Bitset.disjoint after_consume net.post.(t) in
  (Bitset.union after_consume net.post.(t), safe)

let fire_exn net t m =
  let m', safe = fire net t m in
  if not safe then raise (Unsafe (t, m));
  m'

let successors (net : Net.t) m =
  let rec loop t acc =
    if t < 0 then acc
    else if enabled net t m then loop (t - 1) ((t, fst (fire net t m)) :: acc)
    else loop (t - 1) acc
  in
  loop (net.n_transitions - 1) []

let fire_sequence net m ts =
  let step acc t =
    match acc with
    | None -> None
    | Some m -> if enabled net t m then Some (fst (fire net t m)) else None
  in
  List.fold_left step (Some m) ts
