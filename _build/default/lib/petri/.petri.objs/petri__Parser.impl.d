lib/petri/parser.ml: Array Bitset Buffer Builder Filename List Net Printf String
