lib/petri/stubborn.ml: Array Bitset Conflict List Net Queue Reachability Semantics
