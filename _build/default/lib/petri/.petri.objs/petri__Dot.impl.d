lib/petri/dot.ml: Array Bitset Buffer List Net Option Printf Reachability Semantics String
