lib/petri/bitset.mli: Format
