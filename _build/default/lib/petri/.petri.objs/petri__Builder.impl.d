lib/petri/builder.ml: Array Hashtbl List Net Printf
