lib/petri/reachability.mli: Bitset Format Hashtbl Net
