lib/petri/siphon.mli: Bitset Net
