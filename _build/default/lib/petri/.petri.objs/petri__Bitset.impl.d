lib/petri/bitset.ml: Array Format Int List Printf Stdlib Sys
