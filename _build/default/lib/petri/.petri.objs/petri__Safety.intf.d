lib/petri/safety.mli: Net
