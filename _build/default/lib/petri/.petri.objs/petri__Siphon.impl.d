lib/petri/siphon.ml: Array Bitset Int List Net
