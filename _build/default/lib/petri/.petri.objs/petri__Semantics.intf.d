lib/petri/semantics.mli: Bitset Net
