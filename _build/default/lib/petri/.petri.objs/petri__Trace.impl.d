lib/petri/trace.ml: Format List Net Printf Semantics
