lib/petri/builder.mli: Net
