lib/petri/parser.mli: Net
