lib/petri/invariant.ml: Array Bitset Format List Net Seq
