lib/petri/trace.mli: Bitset Format Net
