lib/petri/properties.mli: Bitset Format Net
