lib/petri/conflict.mli: Bitset Format Net
