lib/petri/conflict.ml: Array Bitset Format List Net
