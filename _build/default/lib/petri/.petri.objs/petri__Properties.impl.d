lib/petri/properties.ml: Bitset Format List Net Queue Reachability Semantics
