lib/petri/net.mli: Bitset Format
