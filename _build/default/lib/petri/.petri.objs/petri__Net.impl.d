lib/petri/net.ml: Array Bitset Format Hashtbl List Printf String
