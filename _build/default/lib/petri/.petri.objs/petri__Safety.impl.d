lib/petri/safety.ml: Array Bitset Builder List Net Option Reachability
