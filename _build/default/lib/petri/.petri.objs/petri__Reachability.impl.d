lib/petri/reachability.ml: Bitset Format Hashtbl List Net Queue Semantics
