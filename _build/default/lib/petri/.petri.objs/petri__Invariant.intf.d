lib/petri/invariant.mli: Bitset Format Net
