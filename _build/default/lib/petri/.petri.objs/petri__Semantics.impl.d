lib/petri/semantics.ml: Array Bitset List Net
