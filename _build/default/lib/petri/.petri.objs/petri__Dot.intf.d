lib/petri/dot.mli: Bitset Net Reachability
