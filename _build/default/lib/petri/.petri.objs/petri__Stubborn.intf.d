lib/petri/stubborn.mli: Bitset Conflict Net Reachability
