(** Structural conflict relation and maximal conflicting sets.

    Two transitions are {e in conflict} when they share an input place
    (Definition 2.2).  The reflexive-transitive closure of this relation
    partitions the transitions into {e clusters}; a cluster with at least
    two members is a maximal conflicting set (MCS) in the sense of the
    paper, and the places shared inside it are the {e conflict places}.

    The analysis precomputes this structural information once per net;
    the {e dynamic} MCSs of a marking (maximal sets of conflicting
    transitions that are currently enabled) are obtained by restricting
    the clusters to an enabled set. *)

type t

val analyse : Net.t -> t
(** Precompute the conflict relation of a net. *)

val net : t -> Net.t
(** The net the analysis was computed for. *)

val in_conflict : t -> Net.transition -> Net.transition -> bool
(** [in_conflict c t u] is Definition 2.2: [•t ∩ •u ≠ ∅].  Reflexive for
    transitions with a non-empty preset. *)

val conflicting : t -> Net.transition -> Bitset.t
(** [conflicting c t] is the set of transitions sharing an input place
    with [t] (including [t] itself when [•t ≠ ∅]). *)

val cluster_of : t -> Net.transition -> int
(** Index of the conflict cluster (connected component of the conflict
    relation) containing the transition. *)

val clusters : t -> Bitset.t array
(** All conflict clusters, as transition sets; singleton clusters are
    transitions in conflict with nobody else. *)

val cluster_members : t -> int -> Bitset.t
(** Transition set of a cluster, by cluster index. *)

val is_choice_transition : t -> Net.transition -> bool
(** [true] iff the transition belongs to a cluster of size ≥ 2, i.e.
    actually competes with another transition for some input place. *)

val conflict_places : t -> Bitset.t
(** The set of conflict places: places with at least two consumers. *)

val dynamic_mcs : t -> Bitset.t -> Bitset.t list
(** [dynamic_mcs c enabled] partitions the [enabled] transitions into
    maximal sets of (transitively) conflicting enabled transitions —
    the connected components of the conflict relation restricted to
    [enabled].  Order follows the smallest member of each set. *)

val pp_clusters : t -> Format.formatter -> unit -> unit
(** Debug printer listing every cluster with transition names. *)
