(* Exact linear algebra over the rationals, specialised to the small dense
   matrices arising from net structure.  Rationals are (num, den) pairs of
   ints kept in lowest terms with den > 0; net sizes in this library keep
   the numbers far from overflow. *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

module Rat = struct
  (* A rational is an (num, den) pair with den > 0 and num/den in lowest
     terms; values are built with [make] or the arithmetic below. *)

  let zero = (0, 1)

  let make n d =
    assert (d <> 0);
    let s = if d < 0 then -1 else 1 in
    let n = s * n and d = s * d in
    let g = gcd n d in
    if g = 0 then (0, 1) else (n / g, d / g)

  let of_int n = (n, 1)
  let is_zero (n, _) = n = 0
  let add (a, b) (c, d) = make ((a * d) + (c * b)) (b * d)
  let mul (a, b) (c, d) = make (a * c) (b * d)
  let neg (a, b) = (-a, b)
  let div (a, b) (c, d) = assert (c <> 0); make (a * d) (b * c)
  let sub x y = add x (neg y)
end

(* Basis of the null space of [m] (rows × cols), as rational vectors of
   length [cols], by Gauss-Jordan elimination. *)
let nullspace_rat (m : int array array) ~cols =
  let rows = Array.length m in
  let a = Array.init rows (fun i -> Array.map Rat.of_int m.(i)) in
  let pivot_col = Array.make rows (-1) in
  let row = ref 0 in
  for col = 0 to cols - 1 do
    if !row < rows then begin
      (* Find a pivot in this column at or below !row. *)
      let p = ref (-1) in
      for i = !row to rows - 1 do
        if !p < 0 && not (Rat.is_zero a.(i).(col)) then p := i
      done;
      if !p >= 0 then begin
        let tmp = a.(!p) in
        a.(!p) <- a.(!row);
        a.(!row) <- tmp;
        let inv = Rat.div (Rat.of_int 1) a.(!row).(col) in
        for j = 0 to cols - 1 do
          a.(!row).(j) <- Rat.mul a.(!row).(j) inv
        done;
        for i = 0 to rows - 1 do
          if i <> !row && not (Rat.is_zero a.(i).(col)) then begin
            let f = a.(i).(col) in
            for j = 0 to cols - 1 do
              a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(!row).(j))
            done
          end
        done;
        pivot_col.(!row) <- col;
        incr row
      end
    end
  done;
  let n_pivots = !row in
  let is_pivot = Array.make cols false in
  for i = 0 to n_pivots - 1 do
    is_pivot.(pivot_col.(i)) <- true
  done;
  (* One basis vector per free column. *)
  let basis = ref [] in
  for free = cols - 1 downto 0 do
    if not is_pivot.(free) then begin
      let v = Array.make cols Rat.zero in
      v.(free) <- Rat.of_int 1;
      for i = 0 to n_pivots - 1 do
        v.(pivot_col.(i)) <- Rat.neg a.(i).(free)
      done;
      basis := v :: !basis
    end
  done;
  !basis

(* Scale a rational vector to coprime integers with positive first
   non-zero coefficient. *)
let to_integer_vector v =
  let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b in
  let denominator = Array.fold_left (fun acc (_, d) -> lcm acc d) 1 v in
  let ints = Array.map (fun (n, d) -> n * (denominator / d)) v in
  let g = Array.fold_left (fun acc x -> gcd acc x) 0 ints in
  let ints = if g > 1 then Array.map (fun x -> x / g) ints else ints in
  let rec first_sign i =
    if i >= Array.length ints then 1 else if ints.(i) <> 0 then compare ints.(i) 0 else first_sign (i + 1)
  in
  if first_sign 0 < 0 then Array.map (fun x -> -x) ints else ints

let incidence (net : Net.t) =
  let c = Array.make_matrix net.n_places net.n_transitions 0 in
  for t = 0 to net.n_transitions - 1 do
    Array.iter (fun p -> c.(p).(t) <- c.(p).(t) - 1) net.pre_list.(t);
    Array.iter (fun p -> c.(p).(t) <- c.(p).(t) + 1) net.post_list.(t)
  done;
  c

let transpose m ~rows ~cols =
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let p_invariants net =
  let c = incidence net in
  let ct = transpose c ~rows:net.Net.n_places ~cols:net.Net.n_transitions in
  List.map to_integer_vector (nullspace_rat ct ~cols:net.Net.n_places)

let t_invariants net =
  let c = incidence net in
  List.map to_integer_vector (nullspace_rat c ~cols:net.Net.n_transitions)

(* Farkas' algorithm: maintain rows [y | y·C]; combine rows pairwise to
   cancel each transition column in turn; minimal-support non-negative
   solutions remain. *)
let p_semiflows ?(max_count = 4096) (net : Net.t) =
  let n_p = net.n_places and n_t = net.n_transitions in
  let c = incidence net in
  (* Row = (y : int array over places, d : int array over transitions). *)
  let initial =
    List.init n_p (fun p ->
        let y = Array.make n_p 0 in
        y.(p) <- 1;
        (y, Array.copy c.(p)))
  in
  let support y =
    Array.to_seq y
    |> Seq.mapi (fun i w -> (i, w))
    |> Seq.filter (fun (_, w) -> w <> 0)
    |> Seq.map fst |> List.of_seq
  in
  let subsumes (y1, _) (y2, _) =
    (* support(y1) ⊆ support(y2), strictly or equal *)
    let s1 = support y1 and s2 = support y2 in
    List.for_all (fun p -> List.mem p s2) s1
  in
  let minimise rows =
    List.filter
      (fun r -> not (List.exists (fun r' -> r' != r && subsumes r' r) rows))
      rows
  in
  let step rows t =
    let keep = List.filter (fun (_, d) -> d.(t) = 0) rows in
    let pos = List.filter (fun (_, d) -> d.(t) > 0) rows in
    let neg = List.filter (fun (_, d) -> d.(t) < 0) rows in
    let combined =
      List.concat_map
        (fun (y1, d1) ->
          List.map
            (fun (y2, d2) ->
              let a = d1.(t) and b = -d2.(t) in
              let g = gcd a b in
              let f1 = b / g and f2 = a / g in
              let y = Array.init n_p (fun p -> (f1 * y1.(p)) + (f2 * y2.(p))) in
              let d = Array.init n_t (fun u -> (f1 * d1.(u)) + (f2 * d2.(u))) in
              let g_all = Array.fold_left gcd (Array.fold_left gcd 0 y) d in
              if g_all > 1 then
                (Array.map (fun x -> x / g_all) y, Array.map (fun x -> x / g_all) d)
              else (y, d))
            neg)
        pos
    in
    let rows = minimise (keep @ combined) in
    if List.length rows > max_count then
      failwith "Invariant.p_semiflows: row blow-up, raise ~max_count";
    rows
  in
  let rec all_t t rows = if t >= n_t then rows else all_t (t + 1) (step rows t) in
  let final = all_t 0 initial in
  List.map (fun (y, _) -> y) final

let dot v w =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * w.(i))) v;
  !acc

let is_p_invariant net y =
  if Array.length y <> net.Net.n_places then false
  else begin
    let c = incidence net in
    let rec ok t =
      t >= net.Net.n_transitions
      || (Array.to_list c |> List.mapi (fun p row -> y.(p) * row.(t))
          |> List.fold_left ( + ) 0 = 0)
         && ok (t + 1)
    in
    ok 0
  end

let is_t_invariant net x =
  if Array.length x <> net.Net.n_transitions then false
  else begin
    let c = incidence net in
    Array.for_all (fun row -> dot row x = 0) c
  end

let invariant_value _net y m = Bitset.fold (fun p acc -> acc + y.(p)) m 0

let structurally_covered net =
  match p_semiflows net with
  | flows ->
      let covered = Array.make net.Net.n_places false in
      List.iter
        (fun y -> Array.iteri (fun p w -> if w > 0 then covered.(p) <- true) y)
        flows;
      Array.for_all (fun b -> b) covered
  | exception Failure _ -> false

let pp_invariant ~kind net ppf v =
  let name i =
    match kind with
    | `Place -> Net.place_name net i
    | `Transition -> Net.transition_name net i
  in
  let first = ref true in
  Array.iteri
    (fun i w ->
      if w <> 0 then begin
        if not !first then Format.fprintf ppf " %s " (if w > 0 then "+" else "-")
        else if w < 0 then Format.fprintf ppf "-";
        first := false;
        if abs w <> 1 then Format.fprintf ppf "%d·" (abs w);
        Format.pp_print_string ppf (name i)
      end)
    v;
  if !first then Format.pp_print_string ppf "0"
