type t = {
  name : string;
  mutable places : string list;  (* reversed *)
  mutable n_places : int;
  mutable transitions : (string * Net.place array * Net.place array) list;  (* reversed *)
  mutable n_transitions : int;
  mutable marked : Net.place list;
  mutable frozen : bool;
  place_by_name : (string, Net.place) Hashtbl.t;
  transition_names : (string, unit) Hashtbl.t;
}

let create name =
  {
    name;
    places = [];
    n_places = 0;
    transitions = [];
    n_transitions = 0;
    marked = [];
    frozen = false;
    place_by_name = Hashtbl.create 64;
    transition_names = Hashtbl.create 64;
  }

let check_live b fname =
  if b.frozen then invalid_arg (Printf.sprintf "Builder.%s: builder already built" fname)

let place b ?(marked = false) name =
  check_live b "place";
  if Hashtbl.mem b.place_by_name name then
    invalid_arg (Printf.sprintf "Builder.place: duplicate place %S" name);
  let p = b.n_places in
  b.places <- name :: b.places;
  b.n_places <- p + 1;
  Hashtbl.add b.place_by_name name p;
  if marked then b.marked <- p :: b.marked;
  p

let check_place b fname p =
  if p < 0 || p >= b.n_places then
    invalid_arg (Printf.sprintf "Builder.%s: unknown place index %d" fname p)

let transition b name ~pre ~post =
  check_live b "transition";
  if Hashtbl.mem b.transition_names name then
    invalid_arg (Printf.sprintf "Builder.transition: duplicate transition %S" name);
  List.iter (check_place b "transition") pre;
  List.iter (check_place b "transition") post;
  Hashtbl.add b.transition_names name ();
  let t = b.n_transitions in
  b.transitions <- (name, Array.of_list pre, Array.of_list post) :: b.transitions;
  b.n_transitions <- t + 1;
  t

let mark b p =
  check_live b "mark";
  check_place b "mark" p;
  b.marked <- p :: b.marked

let build b =
  check_live b "build";
  b.frozen <- true;
  let transitions = Array.of_list (List.rev b.transitions) in
  Net.make ~name:b.name
    ~place_names:(Array.of_list (List.rev b.places))
    ~transition_names:(Array.map (fun (n, _, _) -> n) transitions)
    ~arcs:(Array.mapi (fun t (_, pre, post) -> (t, pre, post)) transitions)
    ~initial:b.marked
