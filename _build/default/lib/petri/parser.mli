(** Textual net format, read and write.

    The format is line-oriented, in the spirit of Tina's [.net] files:

    {v
    # comment
    net mutex
    pl idle1 (1)          # place, (1) marks it initially
    pl idle2 (1)
    pl lock (1)
    pl crit1
    pl crit2
    tr enter1 : idle1 lock -> crit1
    tr leave1 : crit1 -> idle1 lock
    v}

    Identifiers match [\[A-Za-z0-9_.'\[\]-\]+].  Places may be declared
    implicitly by appearing in a [tr] line; an explicit [pl] line is
    only needed to mark a place or fix its declaration order. *)

exception Syntax_error of int * string
(** [(line_number, message)] raised on malformed input. *)

val of_string : ?name:string -> string -> Net.t
(** Parse a net from a string.  The [net] line is optional; [name]
    (default ["net"]) is used when absent. *)

val of_file : string -> Net.t
(** Parse a net from a file; the default name is the file's basename. *)

val to_string : Net.t -> string
(** Serialize a net; [of_string (to_string net)] is structurally equal
    to [net]. *)

val to_file : string -> Net.t -> unit
(** Write the serialization of a net to a file. *)
