exception Syntax_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Syntax_error (line, msg))) fmt

let is_ident_char c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '\'' | '[' | ']' | '-' -> true
  | _ -> false

let tokenize line_no line =
  (* Split on whitespace, treating "->" and ":" as standalone tokens. *)
  let tokens = ref [] in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n
    else if c = ':' then begin
      tokens := ":" :: !tokens;
      incr i
    end
    else if c = '-' && !i + 1 < n && line.[!i + 1] = '>' then begin
      tokens := "->" :: !tokens;
      i := !i + 2
    end
    else if c = '(' then begin
      let close = try String.index_from line !i ')' with Not_found -> fail line_no "unclosed '('" in
      tokens := String.sub line !i (close - !i + 1) :: !tokens;
      i := close + 1
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      tokens := String.sub line start (!i - start) :: !tokens
    end
    else fail line_no "unexpected character %C" c
  done;
  List.rev !tokens

type accumulator = {
  builder : Builder.t;
  mutable known_places : (string * Net.place) list;
}

let get_place acc name =
  match List.assoc_opt name acc.known_places with
  | Some p -> p
  | None ->
      let p = Builder.place acc.builder name in
      acc.known_places <- (name, p) :: acc.known_places;
      p

let parse_line acc line_no tokens =
  match tokens with
  | [] -> ()
  | "net" :: _ -> () (* handled in a first pass *)
  | [ "pl"; name ] -> ignore (get_place acc name)
  | [ "pl"; name; "(1)" ] -> Builder.mark acc.builder (get_place acc name)
  | [ "pl"; name; "(0)" ] -> ignore (get_place acc name)
  | "pl" :: _ -> fail line_no "malformed place line (expected: pl <name> [(0|1)])"
  | "tr" :: name :: ":" :: rest | "tr" :: name :: rest -> begin
      let rec split_arrow before = function
        | [] -> fail line_no "transition %s: missing '->'" name
        | "->" :: after -> (List.rev before, after)
        | tok :: rest -> split_arrow (tok :: before) rest
      in
      let inputs, outputs = split_arrow [] rest in
      if List.mem "->" outputs then fail line_no "transition %s: duplicate '->'" name;
      let pre = List.map (get_place acc) inputs in
      let post = List.map (get_place acc) outputs in
      ignore (Builder.transition acc.builder name ~pre ~post)
    end
  | tok :: _ -> fail line_no "unknown directive %S" tok

let of_string ?(name = "net") text =
  let lines = String.split_on_char '\n' text in
  (* First pass: find an optional net name. *)
  let net_name = ref name in
  List.iteri
    (fun i line ->
      match tokenize (i + 1) line with
      | [ "net"; n ] -> net_name := n
      | "net" :: _ :: _ :: _ -> fail (i + 1) "malformed net line"
      | _ -> ())
    lines;
  let acc = { builder = Builder.create !net_name; known_places = [] } in
  List.iteri (fun i line -> parse_line acc (i + 1) (tokenize (i + 1) line)) lines;
  Builder.build acc.builder

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~name:(Filename.remove_extension (Filename.basename path)) text

let to_string (net : Net.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "net %s\n" net.name);
  for p = 0 to net.n_places - 1 do
    Buffer.add_string buf
      (Printf.sprintf "pl %s%s\n" net.place_names.(p)
         (if Bitset.mem p net.initial then " (1)" else ""))
  done;
  for t = 0 to net.n_transitions - 1 do
    let names ps =
      Array.to_list ps |> List.map (fun p -> net.place_names.(p)) |> String.concat " "
    in
    Buffer.add_string buf
      (Printf.sprintf "tr %s : %s -> %s\n" net.transition_names.(t)
         (names net.pre_list.(t)) (names net.post_list.(t)))
  done;
  Buffer.contents buf

let to_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
