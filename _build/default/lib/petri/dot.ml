let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let net ?marking (n : Net.t) =
  let marking = Option.value marking ~default:n.initial in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %S {\n  rankdir=LR;\n" n.name;
  for p = 0 to n.n_places - 1 do
    out "  p%d [label=\"%s\" shape=circle%s];\n" p
      (escape n.place_names.(p))
      (if Bitset.mem p marking then " style=filled fillcolor=gray80 peripheries=2"
       else "")
  done;
  for t = 0 to n.n_transitions - 1 do
    out "  t%d [label=\"%s\" shape=box style=filled fillcolor=black fontcolor=white height=0.2];\n"
      t
      (escape n.transition_names.(t));
    Array.iter (fun p -> out "  p%d -> t%d;\n" p t) n.pre_list.(t);
    Array.iter (fun p -> out "  t%d -> p%d;\n" t p) n.post_list.(t)
  done;
  out "}\n";
  Buffer.contents buf

let reachability_graph (n : Net.t) (result : Reachability.result) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %S {\n" (n.name ^ "-rg");
  if result.states > 2000 then out "  // warning: %d states, rendering will be slow\n" result.states;
  let ids = Reachability.Marking_table.create result.states in
  let next_id = ref 0 in
  let id_of m =
    match Reachability.Marking_table.find_opt ids m with
    | Some i -> i
    | None ->
        let i = !next_id in
        incr next_id;
        Reachability.Marking_table.add ids m i;
        let label = escape (Bitset.to_string ~name:(Net.place_name n) m) in
        let dead = Semantics.is_deadlock n m in
        out "  s%d [label=\"%s\"%s%s];\n" i label
          (if Bitset.equal m n.initial then " penwidth=2" else "")
          (if dead then " style=filled fillcolor=lightcoral" else "");
        i
  in
  Reachability.Marking_table.iter
    (fun m () ->
      let src = id_of m in
      List.iter
        (fun (t, m') ->
          if Reachability.Marking_table.mem result.visited m' then
            out "  s%d -> s%d [label=\"%s\"];\n" src (id_of m')
              (escape n.transition_names.(t)))
        (Semantics.successors n m))
    result.visited;
  out "}\n";
  Buffer.contents buf

let write path dot =
  let oc = open_out path in
  output_string oc dot;
  close_out oc
