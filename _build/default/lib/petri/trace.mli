(** Firing sequences as verification witnesses. *)

type t = Net.transition list
(** A firing sequence, starting from the initial marking. *)

val replay : Net.t -> t -> Bitset.t list
(** [replay net trace] returns the sequence of markings traversed,
    starting with the initial marking (so its length is
    [List.length trace + 1]).  Raises [Invalid_argument] if a step is
    not enabled. *)

val final_marking : Net.t -> t -> Bitset.t
(** The marking reached after replaying the whole trace. *)

val is_valid : Net.t -> t -> bool
(** [true] iff every step of the trace is enabled when fired. *)

val pp : Net.t -> Format.formatter -> t -> unit
(** Print as [t1 ; t2 ; ...] using transition names. *)

val pp_replay : Net.t -> Format.formatter -> t -> unit
(** Multi-line rendering interleaving markings and fired transitions. *)
