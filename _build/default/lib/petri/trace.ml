type t = Net.transition list

let replay (net : Net.t) trace =
  let step (m, acc) transition =
    if not (Semantics.enabled net transition m) then
      invalid_arg
        (Printf.sprintf "Trace.replay: %s not enabled"
           (Net.transition_name net transition));
    let m', _safe = Semantics.fire net transition m in
    (m', m' :: acc)
  in
  let _, markings = List.fold_left step (net.initial, [ net.initial ]) trace in
  List.rev markings

let final_marking net trace =
  match List.rev (replay net trace) with
  | last :: _ -> last
  | [] -> assert false

let is_valid net trace =
  match replay net trace with
  | _ -> true
  | exception Invalid_argument _ -> false

let pp net ppf trace =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ; ")
    (fun ppf t -> Format.pp_print_string ppf (Net.transition_name net t))
    ppf trace

let pp_replay net ppf trace =
  let markings = replay net trace in
  let rec go markings trace =
    match (markings, trace) with
    | [ last ], [] -> Format.fprintf ppf "%a" (Net.pp_marking net) last
    | m :: markings', t :: trace' ->
        Format.fprintf ppf "%a@   --%s-->@ " (Net.pp_marking net) m
          (Net.transition_name net t);
        go markings' trace'
    | _ -> assert false
  in
  Format.fprintf ppf "@[<v>";
  go markings trace;
  Format.fprintf ppf "@]"
