(** Behavioural properties of safe Petri nets, checked by exploration.

    These are the properties Section 2.1 of the paper cares about:
    deadlock freedom (the main check of Section 4), safeness, and
    liveness-related facts (dead transitions, quasi-liveness). *)

type report = {
  deadlock_free : bool;
  safe : bool;
  dead_transitions : Bitset.t;
      (** Transitions never fired anywhere in the reachable graph. *)
  quasi_live : bool;  (** [true] iff there is no dead transition. *)
  reversible : bool;
      (** [true] iff the initial marking is reachable from every
          reachable marking (home-state property of [m0]). *)
  states : int;
  complete : bool;  (** [false] if the exploration was truncated. *)
}

val check : ?max_states:int -> Net.t -> report
(** Explore the full reachability graph and evaluate all properties.
    Reversibility is checked with a backward pass over the explored
    graph, so the cost stays linear in its size. *)

val find_deadlock : ?max_states:int -> Net.t -> Net.transition list option
(** [find_deadlock net] returns a firing sequence from the initial
    marking to some deadlocked marking, or [None] when the net is
    deadlock free (within the exploration budget). *)

val pp_report : Net.t -> Format.formatter -> report -> unit
(** Human-readable multi-line report. *)
