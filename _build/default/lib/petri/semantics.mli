(** Classical safe-Petri-net dynamics (Definitions 2.3 and 2.4).

    A marking of a safe net is a set of marked places ({!Bitset.t} over
    places).  Firing is the classical token game; because the library is
    restricted to safe nets, {!fire} additionally reports whether the
    firing would violate safeness (produce a second token in a place). *)

exception Unsafe of Net.transition * Bitset.t
(** Raised by {!fire_exn} when firing the transition from the marking
    would put a second token into some place. *)

val enabled : Net.t -> Net.transition -> Bitset.t -> bool
(** [enabled net t m] is Definition 2.3: every input place of [t] is
    marked in [m]. *)

val enabled_set : Net.t -> Bitset.t -> Bitset.t
(** [enabled_set net m] is the set of transitions enabled in [m], as a
    bit set over transitions. *)

val is_deadlock : Net.t -> Bitset.t -> bool
(** [is_deadlock net m] holds iff no transition is enabled in [m]. *)

val fire : Net.t -> Net.transition -> Bitset.t -> Bitset.t * bool
(** [fire net t m] fires an enabled [t] from [m] (Definition 2.4) and
    returns [(m', safe)] where [safe] is [false] if a token was produced
    into a place already marked after consumption (the net is not
    1-safe along this step; [m'] then over-approximates by keeping a
    single token).  It is a programming error to call [fire] on a
    disabled transition; this is enforced with [assert]. *)

val fire_exn : Net.t -> Net.transition -> Bitset.t -> Bitset.t
(** Like {!fire} but raises {!Unsafe} instead of returning a flag. *)

val successors : Net.t -> Bitset.t -> (Net.transition * Bitset.t) list
(** All one-step successors of a marking, in increasing transition
    order, ignoring safety violations (over-approximated as in
    {!fire}). *)

val fire_sequence : Net.t -> Bitset.t -> Net.transition list -> Bitset.t option
(** [fire_sequence net m ts] fires the sequence [ts] from [m]; [None]
    if some transition in the sequence is not enabled when its turn
    comes. *)
