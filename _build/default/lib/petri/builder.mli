(** Imperative construction of {!Net.t} values.

    A builder accumulates places, transitions and arcs, then {!build}
    freezes the result.  Names must be unique per kind.  Example:

    {[
      let b = Builder.create "handshake" in
      let p0 = Builder.place b ~marked:true "p0" in
      let p1 = Builder.place b "p1" in
      ignore (Builder.transition b "send" ~pre:[ p0 ] ~post:[ p1 ]);
      let net = Builder.build b
    ]} *)

type t

val create : string -> t
(** [create name] starts an empty net named [name]. *)

val place : t -> ?marked:bool -> string -> Net.place
(** [place b name] declares a new place and returns its index.
    [marked] (default [false]) puts a token in it in the initial marking.
    Raises [Invalid_argument] on a duplicate name or if {!build} was
    already called. *)

val transition :
  t -> string -> pre:Net.place list -> post:Net.place list -> Net.transition
(** [transition b name ~pre ~post] declares a transition with the given
    preset and postset and returns its index.  Raises [Invalid_argument]
    on a duplicate name, an unknown place, or if {!build} was already
    called. *)

val mark : t -> Net.place -> unit
(** [mark b p] adds a token to [p] in the initial marking. *)

val build : t -> Net.t
(** Freeze the builder into an immutable net.  The builder must not be
    used afterwards. *)
