type property = {
  name : string;
  never_all : Net.place list;
}

let monitor (net : Net.t) property =
  if property.never_all = [] then invalid_arg "Safety.monitor: empty cover";
  List.iter
    (fun p ->
      if p < 0 || p >= net.n_places then
        invalid_arg "Safety.monitor: unknown place in cover")
    property.never_all;
  let b = Builder.create (net.name ^ "+" ^ property.name) in
  let places =
    Array.init net.n_places (fun p ->
        Builder.place b
          ~marked:(Bitset.mem p net.initial)
          net.place_names.(p))
  in
  let run = Builder.place b ~marked:true (property.name ^ ".run") in
  for t = 0 to net.n_transitions - 1 do
    let map ps = Array.to_list (Array.map (fun p -> places.(p)) ps) in
    ignore
      (Builder.transition b net.transition_names.(t)
         ~pre:(run :: map net.pre_list.(t))
         ~post:(run :: map net.post_list.(t)))
  done;
  (* [tick] masks genuine deadlocks of the original net. *)
  ignore (Builder.transition b (property.name ^ ".tick") ~pre:[ run ] ~post:[ run ]);
  (* [violate] halts everything exactly when the cover is reached. *)
  let cover = List.map (fun p -> places.(p)) property.never_all in
  ignore
    (Builder.transition b (property.name ^ ".violate") ~pre:(run :: cover)
       ~post:cover);
  Builder.build b

let covers property m = List.for_all (fun p -> Bitset.mem p m) property.never_all

let covering_marking ?(max_states = 1_000_000) net property =
  let result = Reachability.explore ~max_states ~traces:true net in
  if result.truncated then failwith "Safety: exploration truncated";
  let found = ref None in
  Reachability.Marking_table.iter
    (fun m () -> if !found = None && covers property m then found := Some m)
    result.visited;
  Option.map (Reachability.trace_to result) !found

let violated_explicit ?max_states net property =
  covering_marking ?max_states net property <> None
