lib/bdd/bdd.mli:
