lib/bdd/symbolic.ml: Array Bdd List Petri Unix
