lib/bdd/symbolic.mli: Bdd Petri
