lib/bdd/bdd.ml: Hashtbl List
