(* julie — generalized partial-order verification of safe Petri nets.

   Command-line front end over the gpo libraries, named after the
   prototype tool of the paper.  Sub-commands:

     julie analyze   — run one or all engines on a net (file or builtin)
     julie trace     — print a firing sequence to a deadlock
     julie certify   — run engines with witnesses and check them independently
     julie serve     — warm-state verification daemon (batches, result cache)
     julie submit    — send a batch of jobs to a running daemon
     julie table1    — reproduce Table 1 of the paper
     julie fig       — reproduce the Figure 1 / Figure 2 series
     julie dot       — export a net or its reachability graph to DOT
     julie info      — structural report: conflicts, clusters, invariants *)

open Cmdliner

(* Exit codes (PROVE-style, so the CLI is scriptable):
     0 — the property holds / no deadlock found;
     1 — a deadlock or safety violation was found;
     2 — usage error (bad net source, bad arguments), or an
         indeterminate verdict: the exploration stopped early (state
         budget, --timeout deadline, --mem-mb memory budget,
         cancellation) before the space was covered, or a claimed
         violation failed certification.  A stopped exploration that
         found nothing is NOT a clean "no deadlock". *)
let exit_holds = 0
let exit_violated = 1
let exit_usage = 2
let exit_indeterminate = 2

let verdict_exits =
  Cmd.Exit.info exit_holds ~doc:"the net is deadlock free / the property holds."
  :: Cmd.Exit.info exit_violated ~doc:"a deadlock or property violation was found."
  :: Cmd.Exit.info exit_usage
       ~doc:"usage error (bad net source or arguments), or an indeterminate \
             verdict (state budget exhausted, certification failed)."
  :: Cmd.Exit.defaults

let inconclusive ?(stop = Guard.State_budget) () =
  Format.printf "inconclusive: %s before the state space was covered%s@."
    (Guard.describe_stop stop)
    (match stop with
    | Guard.State_budget -> " (raise --max-states)"
    | Guard.Deadline -> " (raise --timeout)"
    | Guard.Memory -> " (raise --mem-mb)"
    | _ -> "");
  exit_indeterminate

(* The stop reason to blame an `Inconclusive verdict on: the first
   outcome that stopped short of completion. *)
let first_stop outcomes =
  List.find_map
    (fun (o : Harness.Engine.outcome) ->
      if Harness.Engine.truncated o then Some o.stop else None)
    outcomes

(* Wrap a command body so our own [failwith]s (and unreadable or
   malformed --file arguments) become exit code 2. *)
let usage_checked f =
  try f () with
  | Failure msg | Sys_error msg ->
      Format.eprintf "julie: %s@." msg;
      exit_usage
  | Petri.Parser.Syntax_error e ->
      Format.eprintf "julie: %a@." Petri.Parser.pp_error e;
      exit_usage

(* ------------------------------------------------------------------ *)
(* Observability options (shared by analyze and safety)                *)

type obs_opts = {
  stats : bool;
  metrics_out : string option;
  trace_out : string option;
  progress : bool;
}

let obs_term =
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"After each engine run, print the telemetry summary: counters \
                 (states, restarts, cache hits), distributions (worlds per \
                 state, stubborn-set sizes, p50/p90/p99) and span timings.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Stream the telemetry event trace (spans, progress samples, \
                 final totals) to $(docv) as JSON Lines, one event per line.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the run's timeline to $(docv) as Chrome trace-event \
                 JSON: open it in Perfetto (ui.perfetto.dev) or \
                 chrome://tracing to see spans on one track per domain, \
                 counter tracks, lock-wait spans and guard/fault/cancel \
                 markers.")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"Force the stderr progress heartbeat (default: enabled by \
                 $(b,--stats) when stderr is a terminal).")
  in
  Term.(const (fun stats metrics_out trace_out progress ->
            { stats; metrics_out; trace_out; progress })
        $ stats $ metrics_out $ trace_out $ progress)

(* Install the sink/heartbeat described by the options around [f].
   [--stats] alone still installs the (null) sink: spans and
   distributions only record while a sink is enabled.  With both
   --metrics-out and --trace-out the event stream is teed; the trace
   file is rendered once the run is over and the sink uninstalled. *)
let with_obs opts f =
  let oc = Option.map open_out opts.metrics_out in
  let trace =
    Option.map
      (fun path ->
        let sink, read = Gpo_obs.Trace.collecting_sink () in
        (path, sink, read))
      opts.trace_out
  in
  let want_sink = opts.stats || opts.progress || oc <> None || trace <> None in
  let sinks =
    Option.to_list (Option.map Gpo_obs.jsonl_channel_sink oc)
    @ Option.to_list (Option.map (fun (_, s, _) -> s) trace)
  in
  (match sinks with
  | [] -> if want_sink then Gpo_obs.install Gpo_obs.null_sink
  | [ s ] -> Gpo_obs.install s
  | s :: rest -> Gpo_obs.install (List.fold_left Gpo_obs.tee_sink s rest));
  if opts.progress || (opts.stats && Unix.isatty Unix.stderr) then
    Gpo_obs.Progress.set_heartbeat
      (Some (fun line -> Format.eprintf "[progress] %s@." line));
  Fun.protect
    ~finally:(fun () ->
      Gpo_obs.Progress.set_heartbeat None;
      if want_sink then Gpo_obs.uninstall ();
      Option.iter close_out oc;
      Option.iter
        (fun (path, _, read) ->
          Gpo_obs.Trace.write_file path (read ());
          Format.eprintf "wrote %s@." path)
        trace)
    f

(* One instrumented engine run: telemetry is reset so the summary and
   the emitted totals cover exactly this run. *)
let observed_run opts ~net_name ~engine f =
  Gpo_obs.reset ();
  Gpo_obs.meta "run" [ ("net", Gpo_obs.S net_name); ("engine", Gpo_obs.S engine) ];
  let outcome : Harness.Engine.outcome = f () in
  Gpo_obs.meta "outcome"
    [
      ("engine", Gpo_obs.S engine);
      ("deadlock", Gpo_obs.B outcome.deadlock);
      ("stop_reason", Gpo_obs.S (Guard.string_of_stop outcome.stop));
    ];
  Gpo_obs.emit_snapshot ();
  if opts.stats then Format.printf "%a@." Gpo_obs.pp_summary (Gpo_obs.snapshot ());
  outcome

(* ------------------------------------------------------------------ *)
(* Net sources                                                         *)

let load_net file builtin size =
  match (file, builtin) with
  | Some path, None -> Petri.Parser.of_file path
  | None, Some id -> begin
      match String.lowercase_ascii id with
      | "fig1" -> Models.Figures.fig1
      | "fig2" -> Models.Figures.fig2 size
      | "fig3" -> Models.Figures.fig3
      | "fig5" -> Models.Figures.fig5
      | "fig7" -> Models.Figures.fig7
      | "scheduler" -> Models.Scheduler.make size
      | "random" -> Models.Random_net.generate size
      | id -> (
          match Harness.Experiment.family id with
          | fam -> fam.make size
          | exception Not_found ->
              failwith
                (Printf.sprintf
                   "unknown model %S (expected nsdp, asat, over, rw, scheduler, \
                    random, or a figure)" id))
    end
  | Some _, Some _ -> failwith "give either --file or --model, not both"
  | None, None -> failwith "a net is required: --file FILE or --model NAME"

let file_arg =
  let doc = "Read the net from $(docv) (textual format, see Petri.Parser)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let model_arg =
  let doc =
    "Use a builtin model: nsdp, asat, over, rw, scheduler, fig1, fig2, \
     fig3, fig5, fig7, or random (seeded by --size)."
  in
  Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"NAME" ~doc)

let size_arg =
  let doc = "Instance size (or random seed) for --model." in
  Arg.(value & opt int 4 & info [ "n"; "size" ] ~docv:"N" ~doc)

let max_states_arg =
  let doc = "State budget for the explicit engines." in
  Arg.(value & opt int 5_000_000 & info [ "max-states" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)
(* Resource governance (shared by the verdict commands)                *)

let timeout_arg =
  let doc =
    "Wall-clock deadline in $(docv) seconds for each engine run.  A run \
     that overshoots stops cooperatively and reports stop reason \
     $(i,deadline); a clean verdict is then inconclusive (exit 2), while \
     a violation found before the deadline still counts."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)

let mem_mb_arg =
  let doc =
    "Soft memory budget in $(docv) MiB for each engine run.  When the \
     major heap crosses the budget the run stops with stop reason \
     $(i,memory) and degrades to an inconclusive verdict instead of \
     crashing."
  in
  Arg.(value & opt (some int) None & info [ "mem-mb" ] ~docv:"MB" ~doc)

(* Run [body ?guard] under a guard armed with the requested budgets;
   without budgets, no guard is created and the default path is
   untouched. *)
let guarded ?deadline_s ?mem_mb body =
  match (deadline_s, mem_mb) with
  | None, None -> body None
  | _ -> Guard.with_guard ?deadline_s ?mem_mb (fun g -> body (Some g))

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let parse_engine = function
  | "full" -> Ok Harness.Engine.Full
  | "po" | "spin+po" | "stubborn" -> Ok Harness.Engine.Stubborn
  | "smv" | "bdd" | "symbolic" -> Ok Harness.Engine.Symbolic
  | "gpo" -> Ok Harness.Engine.Gpo
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))

let engine_conv =
  Arg.conv
    (parse_engine, fun ppf k -> Format.pp_print_string ppf (Harness.Engine.name k))

(* Engine selection for the verdict commands: one engine, or the racing
   portfolio of [Harness.Portfolio]. *)
type engine_sel = Single of Harness.Engine.kind | Portfolio

let sel_name = function
  | Single k -> Harness.Engine.name k
  | Portfolio -> "portfolio"

let engine_sel_conv =
  let parse = function
    | "portfolio" -> Ok Portfolio
    | s -> Result.map (fun k -> Single k) (parse_engine s)
  in
  Arg.conv (parse, fun ppf sel -> Format.pp_print_string ppf (sel_name sel))

let engines_arg =
  let doc =
    "Engine to run: full, po, smv, gpo, or portfolio (race the engines in \
     separate domains, first conclusive verdict wins).  Repeatable; default \
     all four single engines."
  in
  Arg.(value & opt_all engine_sel_conv [] & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel exploration (full, po, and gpo — the GPO \
     explorer fans each wave of runs out over $(docv) domains); 0 means \
     auto (the recommended domain count for this machine).  With \
     $(b,-e portfolio) the racing entrants additionally get $(docv) workers \
     each for their own exploration."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs n = if n <= 0 then Par.Pool.default_jobs () else n

(* Run one selection.  The portfolio races for the verdict itself, so
   its GPO entrant always uses the hardened (scan) configuration —
   the paper configuration can miss deadlocks. *)
let run_sel ~max_states ~witness ~gpo_scan ~reduce ~jobs ?deadline_s ?mem_mb sel
    net =
  match sel with
  | Single kind ->
      guarded ?deadline_s ?mem_mb (fun guard ->
          Harness.Engine.run ~max_states ~witness ~gpo_scan ~reduce ~jobs ?guard
            kind net)
  | Portfolio ->
      (* The portfolio arms one guard per entrant, inside each racing
         domain (Gc alarms are per-domain). *)
      let r =
        Harness.Portfolio.run ~max_states ~witness ~gpo_scan:true ~reduce ~jobs
          ?deadline_s ?mem_mb net
      in
      Format.printf "portfolio: %s won [%s]%s@."
        (Harness.Engine.name r.Harness.Portfolio.outcome.Harness.Engine.kind)
        (String.concat " " (List.map Harness.Engine.name r.Harness.Portfolio.raced))
        (if r.Harness.Portfolio.cancelled_losers > 0 then
           Printf.sprintf ", %d loser(s) cancelled"
             r.Harness.Portfolio.cancelled_losers
         else "");
      r.Harness.Portfolio.outcome

let witness_arg =
  let doc =
    "Attach a counterexample witness to every deadlock verdict: a firing \
     sequence from the initial marking to the dead marking, certified by an \
     independent replay check."
  in
  Arg.(value & flag & info [ "w"; "witness" ] ~doc)

let reduce_term =
  let reduce =
    Arg.(value & flag
         & info [ "reduce" ]
             ~doc:"Apply the structural reduction pipeline (agglomeration, \
                   redundant-place removal, dead-transition elimination) to \
                   the net before each engine runs.  Only verdict-preserving \
                   rules fire, and witnesses are lifted back so they replay \
                   — and certify — against the original net.")
  in
  let no_reduce =
    Arg.(value & flag
         & info [ "no-reduce" ]
             ~doc:"Disable structural reduction (overrides $(b,--reduce)).")
  in
  Term.(const (fun r nr -> r && not nr) $ reduce $ no_reduce)

(* The human-readable reduction summary, printed once per command before
   the engine runs.  This informational pipeline run happens before any
   [observed_run] resets telemetry, so the per-run stats and metrics
   carry only the engine-internal reduction. *)
let pp_reduction net =
  let r = Reduce.run net in
  Format.printf "reduction: %a@." Reduce.pp_summary r

let analyze file builtin size engines max_states jobs witness reduce timeout
    mem_mb obs =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  Format.printf "%a@." Petri.Net.pp_summary net;
  let jobs = resolve_jobs jobs in
  let engines =
    if engines = [] then List.map (fun k -> Single k) Harness.Engine.all
    else engines
  in
  if reduce then pp_reduction net;
  with_obs obs @@ fun () ->
  let outcomes =
    List.map
      (fun sel ->
        let o =
          observed_run obs ~net_name:net.Petri.Net.name ~engine:(sel_name sel)
            (fun () ->
              run_sel ~max_states ~witness ~gpo_scan:false ~reduce ~jobs
                ?deadline_s:timeout ?mem_mb sel net)
        in
        Format.printf "%a@." Harness.Engine.pp_outcome o;
        (match o.Harness.Engine.witness with
        | Some tr ->
            Format.printf "  witness: %a@." (Petri.Trace.pp net) tr;
            Format.printf "  %a@." (Harness.Certify.pp net)
              (Harness.Certify.deadlock net o)
        | None -> ());
        o)
      engines
  in
  match Harness.Certify.conclusion outcomes with
  | `Violated -> exit_violated
  | `Holds -> exit_holds
  | `Inconclusive -> inconclusive ?stop:(first_stop outcomes) ()

let analyze_cmd =
  let info =
    Cmd.info "analyze" ~exits:verdict_exits
      ~doc:"Check a net for deadlock with the chosen engines.  Exits with 0 \
            when every engine reports the net deadlock free, 1 when a \
            deadlock is found, 2 on usage errors or when every clean report \
            came from a truncated exploration (inconclusive)."
  in
  Cmd.v info
    Term.(const analyze $ file_arg $ model_arg $ size_arg $ engines_arg
          $ max_states_arg $ jobs_arg $ witness_arg $ reduce_term $ timeout_arg
          $ mem_mb_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace file builtin size engine max_states jobs reduce timeout mem_mb =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  let jobs = resolve_jobs jobs in
  if reduce then pp_reduction net;
  let o =
    guarded ?deadline_s:timeout ?mem_mb (fun guard ->
        Harness.Engine.run ~max_states ~witness:true ~gpo_scan:true ~reduce ~jobs
          ?guard engine net)
  in
  match o.Harness.Engine.witness with
  | Some tr ->
      Format.printf "@[<v>deadlock reached by:@ %a@ @ %a@]@." (Petri.Trace.pp net) tr
        (Petri.Trace.pp_replay net) tr;
      exit_violated
  | None ->
      if o.Harness.Engine.deadlock then begin
        (* An engine claiming a deadlock must produce a witness; treat a
           missing one as an internal failure, not a verdict. *)
        Format.eprintf "julie: %s reported a deadlock without a witness@."
          (Harness.Engine.name engine);
        exit_indeterminate
      end
      else if Harness.Engine.truncated o then
        inconclusive ~stop:o.Harness.Engine.stop ()
      else begin
        Format.printf "deadlock free (%s engine, %.0f %s)@."
          (Harness.Engine.name engine)
          o.Harness.Engine.metric
          (match engine with
          | Harness.Engine.Symbolic -> "peak nodes"
          | _ -> "states");
        exit_holds
      end

let trace_cmd =
  let engine =
    Arg.(value & opt engine_conv Harness.Engine.Gpo
         & info [ "e"; "engine" ] ~docv:"ENGINE"
             ~doc:"Engine reconstructing the witness: full, po, smv or gpo.")
  in
  let info =
    Cmd.info "trace" ~exits:verdict_exits
      ~doc:"Print a firing sequence reaching a deadlock, reconstructed by the \
            chosen engine (default gpo) and replayed step by step."
  in
  Cmd.v info
    Term.(const trace $ file_arg $ model_arg $ size_arg $ engine $ max_states_arg
          $ jobs_arg $ reduce_term $ timeout_arg $ mem_mb_arg)

(* ------------------------------------------------------------------ *)
(* table1 / fig                                                        *)

let table1 budget =
  let measurements =
    Harness.Experiment.table1 ~max_states:5_000_000 ~full_budget:budget ()
  in
  Format.printf "%a@." Harness.Experiment.pp_table1 measurements;
  exit_holds

let table1_cmd =
  let budget =
    Arg.(value & opt float 60. & info [ "budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per family for the expensive engines.")
  in
  let info = Cmd.info "table1" ~doc:"Reproduce Table 1 of the paper." in
  Cmd.v info Term.(const table1 $ budget)

let fig which max_n =
  usage_checked @@ fun () ->
  (match which with
  | "fig1" | "1" ->
      List.iter
        (fun (label, count) -> Format.printf "%-45s %d@." label count)
        (Harness.Experiment.fig1_series ())
  | "fig2" | "2" ->
      Format.printf "%a@." Harness.Experiment.pp_fig2
        (Harness.Experiment.fig2_series ~max_n ())
  | s -> failwith (Printf.sprintf "unknown figure %S (expected fig1 or fig2)" s));
  exit_holds

let fig_cmd =
  let which =
    Arg.(value & pos 0 string "fig2" & info [] ~docv:"FIGURE" ~doc:"fig1 or fig2.")
  in
  let max_n =
    Arg.(value & opt int 12 & info [ "max-n" ] ~docv:"N" ~doc:"Largest N for fig2.")
  in
  let info = Cmd.info "fig" ~doc:"Reproduce the figure series of the paper." in
  Cmd.v info Term.(const fig $ which $ max_n)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot file builtin size graph gpo_graph output =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  let contents =
    if gpo_graph then Gpn.Render.result (Gpn.Explorer.analyse net)
    else if graph then
      Petri.Dot.reachability_graph net (Petri.Reachability.explore ~max_states:10_000 net)
    else Petri.Dot.net net
  in
  (match output with
  | None -> print_string contents
  | Some path ->
      Petri.Dot.write path contents;
      Format.printf "wrote %s@." path);
  exit_holds

let dot_cmd =
  let graph =
    Arg.(value & flag & info [ "g"; "graph" ]
           ~doc:"Render the reachability graph instead of the net structure.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to $(docv) instead of stdout.")
  in
  let gpo_graph =
    Arg.(value & flag & info [ "gpo" ]
           ~doc:"Render the generalized partial-order state graph instead.")
  in
  let info = Cmd.info "dot" ~doc:"Export a net (or a state graph) to Graphviz." in
  Cmd.v info
    Term.(const dot $ file_arg $ model_arg $ size_arg $ graph $ gpo_graph $ output)

(* ------------------------------------------------------------------ *)
(* safety                                                              *)

let safety file builtin size cover engine jobs reduce timeout mem_mb obs =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  if cover = [] then failwith "--place PLACE (repeatable) is required";
  let property =
    {
      Petri.Safety.name = "prop";
      never_all = List.map (Petri.Net.place_index net) cover;
    }
  in
  let monitored = Petri.Safety.monitor net property in
  let jobs = resolve_jobs jobs in
  (* The engines see the monitored net, so that is what the reduction
     pipeline shrinks (as a deadlock query — the monitor has already
     turned coverability into deadlock); the lifted witness comes back
     in monitored-net indices and [Certify.safety] projects it. *)
  if reduce then pp_reduction monitored;
  with_obs obs @@ fun () ->
  let outcome =
    (* gpo_scan: the verdict itself is the product here, so the GPO
       engine must run in its complete (hardened) configuration — the
       paper configuration can miss covering markings. *)
    observed_run obs ~net_name:monitored.Petri.Net.name
      ~engine:(sel_name engine) (fun () ->
        run_sel ~max_states:5_000_000 ~witness:true ~gpo_scan:true ~reduce ~jobs
          ?deadline_s:timeout ?mem_mb engine monitored)
  in
  if outcome.Harness.Engine.deadlock then begin
    Format.printf "VIOLATED: {%s} can be marked simultaneously@."
      (String.concat ", " cover);
    (* The engine's witness (on the monitored net), projected back to
       the original net and certified; fall back to a direct search if
       certification fails. *)
    (match Harness.Certify.safety net property outcome with
    | Harness.Certify.Certified { trace; _ } ->
        Format.printf "scenario (certified): %a@." (Petri.Trace.pp net) trace
    | _ -> (
        match Petri.Safety.covering_marking net property with
        | Some trace -> Format.printf "scenario: %a@." (Petri.Trace.pp net) trace
        | None -> ()));
    exit_violated
  end
  else if Harness.Engine.truncated outcome then
    inconclusive ~stop:outcome.Harness.Engine.stop ()
  else begin
    Format.printf "holds: {%s} never marked simultaneously (%s engine, %.0f %s)@."
      (String.concat ", " cover)
      (Harness.Engine.name outcome.Harness.Engine.kind)
      outcome.Harness.Engine.metric
      (match outcome.Harness.Engine.kind with
      | Harness.Engine.Symbolic -> "peak nodes"
      | _ -> "states");
    exit_holds
  end

let safety_cmd =
  let cover =
    Arg.(value & opt_all string [] & info [ "p"; "place" ] ~docv:"PLACE"
           ~doc:"Place of the cover to check (repeatable): the property is                  that all given places are never marked at once.")
  in
  let engine =
    Arg.(value & opt engine_sel_conv (Single Harness.Engine.Gpo)
           & info [ "e"; "engine" ] ~docv:"ENGINE"
               ~doc:"Engine for the deadlock check (or portfolio).")
  in
  let info =
    Cmd.info "safety" ~exits:verdict_exits
      ~doc:"Check a coverability safety property by reduction to deadlock.  \
            Exits with 0 when the property holds, 1 when it is violated, 2 \
            on usage errors."
  in
  Cmd.v info
    Term.(const safety $ file_arg $ model_arg $ size_arg $ cover $ engine
          $ jobs_arg $ reduce_term $ timeout_arg $ mem_mb_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* certify                                                             *)

let certify file builtin size engines max_states jobs cover reduce timeout
    mem_mb obs =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  let jobs = resolve_jobs jobs in
  let engines =
    if engines = [] then List.map (fun k -> Single k) Harness.Engine.all
    else engines
  in
  let property =
    match cover with
    | [] -> None
    | places ->
        Some
          {
            Petri.Safety.name = "prop";
            never_all = List.map (Petri.Net.place_index net) places;
          }
  in
  let target =
    match property with None -> net | Some p -> Petri.Safety.monitor net p
  in
  if reduce then pp_reduction target;
  with_obs obs @@ fun () ->
  let results =
    List.map
      (fun sel ->
        let o =
          observed_run obs ~net_name:target.Petri.Net.name
            ~engine:(sel_name sel) (fun () ->
              run_sel ~max_states ~witness:true ~gpo_scan:true ~reduce ~jobs
                ?deadline_s:timeout ?mem_mb sel target)
        in
        let v =
          match property with
          | None -> Harness.Certify.deadlock net o
          | Some p -> Harness.Certify.safety net p o
        in
        Format.printf "@[<v 2>%-8s %a@]@." (sel_name sel)
          (Harness.Certify.pp net) v;
        (o, v))
      engines
  in
  let verdicts = List.map snd results in
  let any p = List.exists p verdicts in
  if any (function Harness.Certify.Rejected _ -> true | _ -> false) then begin
    Format.printf "CERTIFICATION FAILED: a claimed violation did not check out@.";
    exit_indeterminate
  end
  else if any Harness.Certify.certified then exit_violated
  else if any (function Harness.Certify.Inconclusive -> true | _ -> false) then
    inconclusive ?stop:(first_stop (List.map fst results)) ()
  else exit_holds

let certify_cmd =
  let cover =
    Arg.(value & opt_all string [] & info [ "p"; "place" ] ~docv:"PLACE"
           ~doc:"Certify a safety property instead of deadlock freedom: the \
                 places given (repeatable) must never be marked at once.")
  in
  let info =
    Cmd.info "certify" ~exits:verdict_exits
      ~doc:"Run the chosen engines with witnesses and check every violation \
            verdict independently: the witness is replayed step by step \
            against the net semantics and its final marking is confirmed \
            dead (or, with $(b,--place), to cover the bad places on the \
            original net).  Exits 0 when the property holds, 1 when a \
            certified violation exists, 2 when inconclusive or when a \
            claimed violation fails certification."
  in
  Cmd.v info
    Term.(const certify $ file_arg $ model_arg $ size_arg $ engines_arg
          $ max_states_arg $ jobs_arg $ cover $ reduce_term $ timeout_arg
          $ mem_mb_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* bench-diff                                                          *)

let bench_diff base fresh threshold =
  usage_checked @@ fun () ->
  match Bench_compare.Compare.compare_files ~threshold ~base ~fresh () with
  | Error msg ->
      Format.eprintf "julie: %s@." msg;
      exit_usage
  | Ok outcome ->
      Format.printf "@[<v>%a@]@?" Bench_compare.Compare.pp_outcome outcome;
      if Bench_compare.Compare.ok outcome then exit_holds else exit_violated

let bench_diff_cmd =
  let base =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE"
           ~doc:"Committed baseline report (a BENCH_*.json).")
  in
  let fresh =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FRESH"
           ~doc:"Freshly produced report to check against the baseline.")
  in
  let threshold =
    Arg.(value & opt float Bench_compare.Compare.default_threshold
         & info [ "threshold" ] ~docv:"FRACTION"
             ~doc:"Noise slack as a fraction: a time-like metric regresses \
                   only beyond base*(1+$(docv)) (and a small absolute \
                   floor); speedup mirrors the test; overhead_pct is \
                   judged on absolute growth of 10*$(docv) points.")
  in
  let info =
    Cmd.info "bench-diff" ~exits:verdict_exits
      ~doc:"Diff two bench reports (fresh vs committed baseline).  Rows are \
            matched by their identity fields (net, jobs, …); known metric \
            fields are compared under per-metric noise thresholds.  Exits 0 \
            when no metric regressed beyond threshold, 1 on regression, 2 on \
            unreadable or malformed reports — the CI regression gate."
  in
  Cmd.v info Term.(const bench_diff $ base $ fresh $ threshold)

(* ------------------------------------------------------------------ *)
(* serve / submit                                                      *)

let endpoint_of socket port host =
  match (socket, port) with
  | Some path, None -> Serve.Server.Unix_path path
  | None, Some port -> Serve.Server.Tcp { host; port }
  | Some _, Some _ -> failwith "give either --socket or --port, not both"
  | None, None -> failwith "an endpoint is required: --socket PATH or --port N"

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Serve on (or connect to) the Unix-domain socket at $(docv).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Serve on (or connect to) TCP port $(docv) at $(b,--host); \
               port 0 lets the OS pick and the server prints the bound \
               port on startup.")

let host_arg =
  Arg.(value & opt string "localhost" & info [ "host" ] ~docv:"HOST"
         ~doc:"Host for $(b,--port) (default localhost).")

let serve socket port host jobs queue_limit max_requests cache_dir io_timeout_s
    obs =
  usage_checked @@ fun () ->
  let endpoint = endpoint_of socket port host in
  with_obs obs @@ fun () ->
  Serve.Server.serve ~jobs ~queue_limit ?max_requests ?cache_dir ~io_timeout_s
    ~on_ready:(fun ep ->
      (match Harness.Result_cache.last_recovery () with
      | Some r ->
          Format.printf
            "julie: cache recovered %d entr%s (%d rejected, %d invalidated, \
             %d torn bytes%s)@."
            r.Harness.Result_cache.recovered
            (if r.Harness.Result_cache.recovered = 1 then "y" else "ies")
            r.Harness.Result_cache.rejected
            r.Harness.Result_cache.invalidated
            r.Harness.Result_cache.torn_bytes
            (if r.Harness.Result_cache.compacted then ", compacted" else "")
      | None -> ());
      Format.printf "julie: listening on %a@." Serve.Server.pp_endpoint ep;
      Format.print_flush ())
    endpoint;
  exit_holds

let serve_cmd =
  let queue_limit =
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Bounded admission queue: a batch whose jobs would push the \
                 number of admitted-but-unfinished jobs past $(docv) is \
                 refused whole with a typed rejection instead of queuing.")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N"
           ~doc:"Stop after $(docv) processed requests (tests and CI smoke).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist the result cache as an append-only checksummed \
                 journal under $(docv) (created if missing).  On startup the \
                 journal is recovered: torn tails are truncated at the first \
                 bad checksum, and every entry is re-admitted only after its \
                 witness re-certifies by replay — a restarted server serves \
                 byte-identical cached verdicts, never corrupt ones.")
  in
  let io_timeout_s =
    Arg.(value & opt float 30. & info [ "io-timeout-s" ] ~docv:"SECONDS"
           ~doc:"Per-connection read/write deadline: a client that stalls \
                 mid-frame or stops reading gets a typed timed_out reply and \
                 its socket closed instead of blocking the accept loop \
                 (<= 0 disables; default 30).")
  in
  let info =
    Cmd.info "serve"
      ~doc:"Run the warm-state verification daemon.  The process keeps the \
            interned-state tables, engine memo caches and the \
            content-addressed result cache alive across requests, so \
            repeated questions are answered from cache (after their witness \
            re-certifies by replay) instead of re-explored.  One \
            length-prefixed JSON frame per request/response; stop it with \
            $(b,julie submit --shutdown) or a SIGTERM (graceful drain: stop \
            accepting, finish in-flight work, flush the journal, exit 0)."
  in
  Cmd.v info
    Term.(const serve $ socket_arg $ port_arg $ host_arg $ jobs_arg
          $ queue_limit $ max_requests $ cache_dir $ io_timeout_s $ obs_term)

let jobs_of_batch_text text =
  let job_of item =
    match Serve.Protocol.job_of_json item with
    | Ok j -> j
    | Error msg -> failwith ("batch: " ^ msg)
  in
  match Gpo_obs.Json.of_string text with
  | Error msg -> failwith ("batch: " ^ msg)
  | Ok (Gpo_obs.Json.List items) -> List.map job_of items
  | Ok (Gpo_obs.Json.Obj _ as o) -> (
      match Gpo_obs.Json.member "jobs" o with
      | Some (Gpo_obs.Json.List items) -> List.map job_of items
      | _ -> failwith "batch: expected a list of jobs or {\"jobs\": [...]}")
  | Ok _ -> failwith "batch: expected a list of jobs"

let describe_verdict = function
  | Stdlib.Ok Serve.Protocol.Holds -> "holds"
  | Stdlib.Ok Serve.Protocol.Violated -> "VIOLATED"
  | Stdlib.Ok Serve.Protocol.Inconclusive -> "inconclusive"
  | Stdlib.Error msg -> "failed: " ^ msg

let submit socket port host file builtin size cover engine max_states jobs
    witness reduce timeout mem_mb repeat batch json_out retries backoff_ms ping
    stats shutdown =
  usage_checked @@ fun () ->
  let endpoint = endpoint_of socket port host in
  let fail msg =
    Format.eprintf "julie: %s@." msg;
    exit_usage
  in
  let failc f = fail (Serve.Client.describe_failure f) in
  if ping then
    match Serve.Client.ping endpoint with
    | Ok Serve.Protocol.Pong ->
        Format.printf "pong@.";
        exit_holds
    | Ok _ -> fail "unexpected reply to ping"
    | Error f -> failc f
  else if stats then
    match Serve.Client.stats endpoint with
    | Ok (Serve.Protocol.Stats_reply stats) ->
        print_endline (Gpo_obs.Json.to_string stats);
        exit_holds
    | Ok _ -> fail "unexpected reply to stats"
    | Error f -> failc f
  else if shutdown then
    match Serve.Client.shutdown endpoint with
    | Ok Serve.Protocol.Bye ->
        Format.printf "server stopped@.";
        exit_holds
    | Ok _ -> fail "unexpected reply to shutdown"
    | Error f -> failc f
  else
    let batch_jobs =
      match batch with
      | Some path ->
          jobs_of_batch_text (In_channel.with_open_text path In_channel.input_all)
      | None ->
          let net =
            match (file, builtin) with
            | Some path, None ->
                Serve.Protocol.Inline
                  (In_channel.with_open_text path In_channel.input_all)
            | None, Some id -> Serve.Protocol.Model { id; size }
            | Some _, Some _ -> failwith "give either --file or --model, not both"
            | None, None ->
                failwith
                  "a net is required: --file FILE, --model NAME, or --batch FILE"
          in
          let j =
            Serve.Protocol.job ~cover ~engine ~max_states ~witness ~reduce ~jobs
              ?timeout_s:timeout ?mem_mb net
          in
          List.init (max 1 repeat) (fun _ -> j)
    in
    match Serve.Client.submit ~retries ~backoff_ms endpoint batch_jobs with
    | Error f -> failc f
    | Ok (Serve.Protocol.Rejected r) ->
        Format.eprintf "julie: rejected: %s (limit %d, depth %d, batch %d)@."
          r.Serve.Protocol.reason r.limit r.depth r.batch;
        exit_usage
    | Ok (Serve.Protocol.Results results) ->
        if json_out then
          print_endline
            (Gpo_obs.Json.to_string
               (Serve.Protocol.json_of_response (Serve.Protocol.Results results)))
        else
          List.iter
            (fun (r : Serve.Protocol.job_result) ->
              Format.printf "%-10s %s%s%s%s@." r.id
                (describe_verdict (Serve.Protocol.verdict_of_result r))
                (if r.cached then " [cached]" else "")
                (if r.deduped then " [deduped]" else "")
                (match r.certified with
                | Some true -> " [certified]"
                | Some false -> " [CERTIFICATION FAILED]"
                | None -> ""))
            results;
        let verdicts = List.map Serve.Protocol.verdict_of_result results in
        let any p = List.exists p verdicts in
        if
          List.exists
            (fun (r : Serve.Protocol.job_result) -> r.certified = Some false)
            results
        then exit_indeterminate
        else if any (function Stdlib.Ok Serve.Protocol.Violated -> true | _ -> false)
        then exit_violated
        else if
          any (function
            | Stdlib.Error _ | Stdlib.Ok Serve.Protocol.Inconclusive -> true
            | _ -> false)
        then exit_indeterminate
        else exit_holds
    | Ok _ -> fail "unexpected reply to submit"

let submit_cmd =
  let cover =
    Arg.(value & opt_all string [] & info [ "p"; "place" ] ~docv:"PLACE"
           ~doc:"Check a coverability property (repeatable, as in \
                 $(b,julie safety)) instead of deadlock freedom.")
  in
  let engine =
    Arg.(value & opt string "gpo" & info [ "e"; "engine" ] ~docv:"ENGINE"
           ~doc:"Engine: full, po, smv, gpo, or portfolio.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Submit $(docv) copies of the job in one batch — duplicates \
                 are deduped server-side, so this demonstrates in-batch \
                 dedupe and cache hits.")
  in
  let batch =
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Read the batch from $(docv): a JSON list of job objects \
                 (or {\"jobs\": [...]}) in the wire format.")
  in
  let json_out =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the raw JSON response instead of one line per job.")
  in
  let retries =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry a transient failure (connection refused, i/o \
                 timeout, typed queue_full rejection) up to $(docv) times \
                 with exponential backoff and full jitter.  Safe: jobs are \
                 idempotent content-addressed questions.  Default 0.")
  in
  let backoff_ms =
    Arg.(value & opt int 50 & info [ "backoff-ms" ] ~docv:"MS"
           ~doc:"Base backoff for $(b,--retries): attempt k sleeps uniformly \
                 in [0, $(docv)*2^k] milliseconds (ceiling 10s).")
  in
  let witness =
    Arg.(value & opt bool true & info [ "witness" ] ~docv:"BOOL"
           ~doc:"Ask for (and certify) counterexample witnesses (default \
                 true — certification is the point of the service).")
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Health check: expect pong.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the server's lifetime telemetry snapshot, cache and \
                 queue stats as JSON.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Stop the server gracefully.")
  in
  let info =
    Cmd.info "submit" ~exits:verdict_exits
      ~doc:"Submit a batch of verification jobs to a running $(b,julie \
            serve) daemon and fold the results into the usual exit-code \
            contract: 0 when every job holds, 1 when any certified violation \
            was found, 2 on failures, inconclusive verdicts, admission \
            rejection, or certification failure."
  in
  Cmd.v info
    Term.(const submit $ socket_arg $ port_arg $ host_arg $ file_arg $ model_arg
          $ size_arg $ cover $ engine $ max_states_arg $ jobs_arg $ witness
          $ reduce_term $ timeout_arg $ mem_mb_arg $ repeat $ batch $ json_out
          $ retries $ backoff_ms $ ping $ stats $ shutdown)

(* ------------------------------------------------------------------ *)
(* siphons                                                             *)

let siphons file builtin size =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  Format.printf "%a@." Petri.Net.pp_summary net;
  Format.printf "free choice: %b@." (Petri.Siphon.is_free_choice net);
  let siphons = Petri.Siphon.minimal_siphons net in
  Format.printf "minimal siphons: %d@." (List.length siphons);
  List.iter
    (fun s ->
      let trap = Petri.Siphon.max_trap_inside net s in
      let marked =
        (not (Petri.Bitset.is_empty trap))
        && Petri.Bitset.intersects trap net.Petri.Net.initial
      in
      Format.printf "  %a — max trap %s@." (Petri.Net.pp_marking net) s
        (if marked then "marked (protected)" else "unmarked (deadlock risk)"))
    siphons;
  Format.printf "Commoner's condition: %b@." (Petri.Siphon.commoner_holds net);
  exit_holds

let siphons_cmd =
  let info =
    Cmd.info "siphons" ~doc:"Structural deadlock analysis: minimal siphons and traps."
  in
  Cmd.v info Term.(const siphons $ file_arg $ model_arg $ size_arg)

(* ------------------------------------------------------------------ *)
(* info                                                                *)

let info_command file builtin size =
  usage_checked @@ fun () ->
  let net = load_net file builtin size in
  Format.printf "%a@." Petri.Net.pp_summary net;
  let conflict = Petri.Conflict.analyse net in
  let clusters =
    Array.to_list (Petri.Conflict.clusters conflict)
    |> List.filter (fun c -> Petri.Bitset.cardinal c >= 2)
  in
  Format.printf "conflict clusters (size ≥ 2): %d@." (List.length clusters);
  List.iter
    (fun c -> Format.printf "  %a@." (Petri.Net.pp_transition_set net) c)
    clusters;
  let p_invariants = Petri.Invariant.p_invariants net in
  Format.printf "P-invariant basis (%d):@." (List.length p_invariants);
  List.iter
    (fun y -> Format.printf "  %a@." (Petri.Invariant.pp_invariant ~kind:`Place net) y)
    p_invariants;
  let report = Petri.Properties.check ~max_states:200_000 net in
  Format.printf "%a@." (Petri.Properties.pp_report net) report;
  exit_holds

let info_cmd =
  let info = Cmd.info "info" ~doc:"Structural and behavioural report for a net." in
  Cmd.v info Term.(const info_command $ file_arg $ model_arg $ size_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc = "generalized partial-order verification of safe Petri nets" in
  let info = Cmd.info "julie" ~version:"1.0.0" ~doc ~exits:verdict_exits in
  Cmd.group info
    [
      analyze_cmd; trace_cmd; certify_cmd; safety_cmd; serve_cmd; submit_cmd;
      siphons_cmd; table1_cmd; fig_cmd; dot_cmd; info_cmd; bench_diff_cmd;
    ]

let () =
  let code = Cmd.eval' main in
  (* Cmdliner reports its own parse errors with its default code; remap
     to the documented usage-error code. *)
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
