(* Benchmark harness: regenerates every table and figure of the paper
   and times the verification kernels with Bechamel.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # Table 1 reproduction only
     dune exec bench/main.exe fig1       # Figure 1 series
     dune exec bench/main.exe fig2       # Figure 2 series
     dune exec bench/main.exe ablation   # design-choice ablations
     dune exec bench/main.exe scaling    # multicore speedup + portfolio
     dune exec bench/main.exe guard      # resource-guard polling overhead
     dune exec bench/main.exe reduce     # structural reduction ratio/speedup
     dune exec bench/main.exe serve      # warm-state service latency
     dune exec bench/main.exe persist    # journal overhead + recovery
     dune exec bench/main.exe micro      # Bechamel micro-benchmarks *)

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* Every job also writes its numbers as BENCH_<job>.json — the
   machine-readable record future PRs diff their measurements against
   (julie bench-diff).  Each report carries a "meta" provenance block
   (cores, os, git sha, run id) so a committed baseline says where its
   numbers came from. *)
let write_report job json =
  let path = Printf.sprintf "BENCH_%s.json" job in
  Harness.Report.write_file path (Harness.Report.with_meta json);
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let table1 () =
  section "Table 1 — NSDP / ASAT / OVER / RW under the four engines";
  Format.printf
    "Engines: full = conventional exhaustive exploration; spin+po = stubborn-set@.\
     partial order; smv = from-scratch BDD reachability (metric: peak live@.\
     nodes); gpo = generalized partial order (metric: GPN states).@.\
     Cells are measured/seconds with the paper's value in parentheses;@.\
     'skip' = the engine's per-family time budget was exhausted — these@.\
     are the paper's \"> 24 hours\" cells.@.@.";
  let measurements = Harness.Experiment.table1 ~max_states:5_000_000 () in
  Format.printf "%a@." Harness.Experiment.pp_table1 measurements;
  write_report "table1" (Harness.Report.json_of_table1 measurements)

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let fig1 () =
  section "Figure 1 — three concurrent transitions";
  let series = Harness.Experiment.fig1_series () in
  List.iter (fun (label, count) -> Format.printf "%-45s %d@." label count) series;
  write_report "fig1" (Harness.Report.json_of_fig1 series)

let fig2 () =
  section "Figure 2 — N concurrently marked conflict pairs";
  let series = Harness.Experiment.fig2_series ~max_n:12 () in
  Format.printf "%a@." Harness.Experiment.pp_fig2 series;
  write_report "fig2" (Harness.Report.json_of_fig2 series)

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices called out in DESIGN.md             *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The tree-representation engine, for head-to-head ablation against the
   default hash-consed one (= [Gpn.Explorer]). *)
module Tree_explorer = Gpn.Core.Tree.Explorer

(* CI runs the ablation with BENCH_SMOKE=1: small instances, few
   repetitions — a smoke test that the job runs and the report schema
   holds, not a measurement. *)
let smoke = Sys.getenv_opt "BENCH_SMOKE" <> None

let ablation () =
  let module J = Gpo_obs.Json in
  section "Ablation — GPO world-set representation (tree vs hash-consed)";
  Format.printf "%-10s %8s %6s %12s %12s %8s@." "net" "states" "runs" "tree"
    "hashconsed" "speedup";
  let ws_rows = ref [] in
  let ws_nets =
    if smoke then
      [
        ("nsdp-6", Models.Nsdp.make 6);
        ("asat-4", Models.Asat.make 4);
        ("fig2-6", Models.Figures.fig2 6);
        ("rw-8", Models.Rw.make 8);
      ]
    else
      [
        ("nsdp-8", Models.Nsdp.make 8);
        ("nsdp-12", Models.Nsdp.make 12);
        ("asat-8", Models.Asat.make 8);
        ("fig2-12", Models.Figures.fig2 12);
        ("rw-15", Models.Rw.make 15);
      ]
  in
  let ws_reps = if smoke then 2 else 5 in
  List.iter
    (fun (name, net) ->
      (* Interleaved min-of-N: alternating the two representations within
         each repetition cancels slow drift (thermal, GC heap growth)
         that back-to-back loops would attribute to one side. *)
      let best_tree = ref infinity and best_hc = ref infinity in
      let states = ref 0 and runs = ref 0 in
      for _ = 1 to ws_reps do
        let rt, t_tree = time (fun () -> Tree_explorer.analyse net) in
        if t_tree < !best_tree then best_tree := t_tree;
        let rh, t_hc = time (fun () -> Gpn.Explorer.analyse net) in
        if t_hc < !best_hc then best_hc := t_hc;
        states := rh.Gpn.Explorer.states;
        runs := List.length rh.Gpn.Explorer.runs;
        assert (rt.Tree_explorer.states = rh.Gpn.Explorer.states)
      done;
      Format.printf "%-10s %8d %6d %11.3fs %11.3fs %7.2fx@." name !states !runs
        !best_tree !best_hc (!best_tree /. !best_hc);
      List.iter
        (fun (rep, t) ->
          ws_rows :=
            J.Obj
              [
                ("net", J.String name);
                ("representation", J.String rep);
                ("states", J.Int !states);
                ("runs", J.Int !runs);
                ("time_s", J.Float t);
              ]
            :: !ws_rows)
        [ ("tree", !best_tree); ("hashconsed", !best_hc) ])
    ws_nets;
  section "Ablation — GPO explorer variants";
  Format.printf "%-10s %-26s %8s %6s %9s@." "net" "variant" "states" "runs" "time";
  let gpo_rows = ref [] in
  let smv_rows = ref [] in
  let stubborn_rows = ref [] in
  let nets =
    if smoke then
      [
        ("nsdp-6", Models.Nsdp.make 6);
        ("asat-4", Models.Asat.make 4);
        ("fig2-6", Models.Figures.fig2 6);
      ]
    else
      [
        ("nsdp-8", Models.Nsdp.make 8);
        ("nsdp-12", Models.Nsdp.make 12);
        ("asat-8", Models.Asat.make 8);
        ("over-5", Models.Over.make 5);
        ("rw-15", Models.Rw.make 15);
        ("fig2-10", Models.Figures.fig2 10);
      ]
  in
  let variants =
    [
      ("batched+scan (default)", fun net -> Gpn.Explorer.analyse net);
      ("batched, no scan (paper)", fun net -> Gpn.Explorer.analyse ~scan:false net);
      ( "batched, aggressive",
        fun net -> Gpn.Explorer.analyse ~thorough:false net );
      ( "stepwise, no scan (paper)",
        fun net ->
          Gpn.Explorer.analyse ~reduction:Gpn.Explorer.Stepwise ~scan:false net );
    ]
  in
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (vname, run) ->
          (* The per-cluster serialization is quadratic in the number of
             clusters; keep it off the largest instance. *)
          if not (String.equal name "nsdp-12" && String.equal vname "stepwise, no scan (paper)")
          then begin
            let r, t = time (fun () -> run net) in
            Format.printf "%-10s %-26s %8d %6d %8.3fs@." name vname
              r.Gpn.Explorer.states
              (List.length r.Gpn.Explorer.runs)
              t;
            gpo_rows :=
              J.Obj
                [
                  ("net", J.String name);
                  ("variant", J.String vname);
                  ("states", J.Int r.Gpn.Explorer.states);
                  ("runs", J.Int (List.length r.Gpn.Explorer.runs));
                  ("time_s", J.Float t);
                ]
              :: !gpo_rows
          end)
        variants;
      Format.printf "@.")
    nets;
  Format.printf
    "(stepwise with the deviation scan is exercised by the test suite on@.    \ small instances only: the per-cluster serialization multiplies the@.    \ number of deviation restarts.)@.";
  section "Ablation — symbolic engine: partitioned vs monolithic relation";
  Format.printf "%-10s %-14s %10s %12s %9s@." "net" "relation" "states" "peak-nodes"
    "time";
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (vname, partitioned) ->
          let r, t = time (fun () -> Bddkit.Symbolic.analyse ~partitioned net) in
          Format.printf "%-10s %-14s %10.0f %12d %8.3fs@." name vname
            r.Bddkit.Symbolic.states r.Bddkit.Symbolic.peak_live_nodes t;
          smv_rows :=
            J.Obj
              [
                ("net", J.String name);
                ("relation", J.String vname);
                ("states", J.Float r.Bddkit.Symbolic.states);
                ("peak_nodes", J.Int r.Bddkit.Symbolic.peak_live_nodes);
                ("time_s", J.Float t);
              ]
            :: !smv_rows)
        [ ("partitioned", true); ("monolithic", false) ])
    [
      ("nsdp-6", Models.Nsdp.make 6);
      ("over-4", Models.Over.make 4);
      ("rw-9", Models.Rw.make 9);
    ];
  section "Ablation — stubborn-set seed heuristic";
  Format.printf "%-10s %-12s %8s %9s@." "net" "heuristic" "states" "time";
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (hname, heuristic) ->
          let r, t = time (fun () -> Petri.Stubborn.explore ~heuristic net) in
          Format.printf "%-10s %-12s %8d %8.3fs@." name hname
            r.Petri.Reachability.states t;
          stubborn_rows :=
            J.Obj
              [
                ("net", J.String name);
                ("heuristic", J.String hname);
                ("states", J.Int r.Petri.Reachability.states);
                ("time_s", J.Float t);
              ]
            :: !stubborn_rows)
        [ ("first-seed", Petri.Stubborn.First_seed); ("smallest", Petri.Stubborn.Smallest) ])
    [
      ("nsdp-6", Models.Nsdp.make 6);
      ("asat-4", Models.Asat.make 4);
      ("over-4", Models.Over.make 4);
    ];
  write_report "ablation"
    (J.Obj
       [
         ("table", J.String "ablation");
         ("worldset_representation", J.List (List.rev !ws_rows));
         ("gpo_variants", J.List (List.rev !gpo_rows));
         ("symbolic_relation", J.List (List.rev !smv_rows));
         ("stubborn_heuristic", J.List (List.rev !stubborn_rows));
       ])

(* ------------------------------------------------------------------ *)
(* Scaling: domain-parallel exploration at 1/2/4 workers, the parallel
   GPN explorer on restart-heavy nets, and the racing portfolio against
   each single engine.  The report records the host's recommended
   domain count: on a single-core host the speedup columns measure
   sharding/wave overhead, not parallelism, and read near (or below)
   1x by design.                                                       *)

let scaling () =
  let module J = Gpo_obs.Json in
  section "Scaling — domain-parallel explicit exploration (1/2/4 workers)";
  let cores = Domain.recommended_domain_count () in
  Format.printf
    "host: %d recommended domain(s); speedup is vs the same binary at jobs=1@.@."
    cores;
  let nets =
    if smoke then
      [ ("nsdp-6", Models.Nsdp.make 6); ("rw-8", Models.Rw.make 8) ]
    else
      [
        ("nsdp-7", Models.Nsdp.make 7);
        ("rw-11", Models.Rw.make 11);
        ("fig2-9", Models.Figures.fig2 9);
        ("asat-4", Models.Asat.make 4);
      ]
  in
  let reps = if smoke then 2 else 3 in
  let job_counts = [ 1; 2; 4 ] in
  Format.printf "%-10s %10s %6s %10s %9s@." "net" "states" "jobs" "time"
    "speedup";
  let rows = ref [] in
  List.iter
    (fun (name, net) ->
      let base = ref nan in
      List.iter
        (fun jobs ->
          let best = ref infinity and states = ref 0 in
          for _ = 1 to reps do
            let r, t =
              time (fun () -> Petri.Reachability.explore_par ~jobs net)
            in
            if t < !best then best := t;
            states := r.Petri.Reachability.states
          done;
          if jobs = 1 then base := !best;
          let speedup = !base /. !best in
          Format.printf "%-10s %10d %6d %9.3fs %8.2fx@." name !states jobs
            !best speedup;
          rows :=
            J.Obj
              [
                ("net", J.String name);
                ("jobs", J.Int jobs);
                ("states", J.Int !states);
                ("time_s", J.Float !best);
                ("speedup", J.Float speedup);
              ]
            :: !rows)
        job_counts;
      Format.printf "@.")
    nets;
  section "Scaling — parallel GPN exploration (1/2/4 domains)";
  Format.printf
    "workload: over(k) with the deviation scan — many restart runs per@.\
     wave, the unit the GPO explorer parallelizes over.@.@.";
  let gpn_nets =
    if smoke then [ ("over-4", Models.Over.make 4) ]
    else [ ("over-5", Models.Over.make 5); ("over-6", Models.Over.make 6) ]
  in
  let gpn_rows = ref [] in
  Format.printf "%-10s %10s %6s %6s %10s %9s@." "net" "states" "runs" "jobs"
    "time" "speedup";
  List.iter
    (fun (name, net) ->
      let base = ref nan in
      List.iter
        (fun jobs ->
          let best = ref infinity and states = ref 0 and runs = ref 0 in
          for _ = 1 to reps do
            let r, t =
              time (fun () -> Gpn.Explorer.analyse ~scan:true ~jobs net)
            in
            if t < !best then best := t;
            states := r.Gpn.Explorer.states;
            runs := List.length r.Gpn.Explorer.runs
          done;
          if jobs = 1 then base := !best;
          let speedup = !base /. !best in
          Format.printf "%-10s %10d %6d %6d %9.3fs %8.2fx@." name !states !runs
            jobs !best speedup;
          gpn_rows :=
            J.Obj
              [
                ("net", J.String name);
                ("jobs", J.Int jobs);
                ("states", J.Int !states);
                ("runs", J.Int !runs);
                ("time_s", J.Float !best);
                ("speedup", J.Float speedup);
              ]
            :: !gpn_rows)
        job_counts;
      Format.printf "@.")
    gpn_nets;
  section "Scaling — racing portfolio vs the single engines";
  let pf_rows = ref [] in
  let pf_nets =
    if smoke then [ ("nsdp-4", Models.Nsdp.make 4) ]
    else [ ("nsdp-6", Models.Nsdp.make 6); ("over-4", Models.Over.make 4) ]
  in
  List.iter
    (fun (name, net) ->
      let singles =
        List.map
          (fun kind ->
            let o = Harness.Engine.run ~gpo_scan:true kind net in
            (Harness.Engine.name kind, o.Harness.Engine.time_s))
          Harness.Engine.all
      in
      let r, t = time (fun () -> Harness.Portfolio.run ~gpo_scan:true net) in
      let winner =
        Harness.Engine.name r.Harness.Portfolio.outcome.Harness.Engine.kind
      in
      let best_name, best_t =
        List.fold_left
          (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
          ("", infinity) singles
      in
      Format.printf
        "%-10s portfolio %.3fs (winner: %s) — best single: %s %.3fs@." name t
        winner best_name best_t;
      pf_rows :=
        J.Obj
          [
            ("net", J.String name);
            ("portfolio_time_s", J.Float t);
            ("winner", J.String winner);
            ("cancelled_losers", J.Int r.Harness.Portfolio.cancelled_losers);
            ("best_single", J.String best_name);
            ("best_single_time_s", J.Float best_t);
            ("singles", J.Obj (List.map (fun (n, t) -> (n, J.Float t)) singles));
          ]
        :: !pf_rows)
    pf_nets;
  write_report "scaling"
    (J.Obj
       [
         ("table", J.String "scaling");
         ("cores", J.Int cores);
         ("smoke", J.Bool smoke);
         ("exploration", J.List (List.rev !rows));
         ("gpn", J.List (List.rev !gpn_rows));
         ("portfolio", J.List (List.rev !pf_rows));
       ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one grouped test per Table 1 family and
   one per figure, timing the verification kernels.                    *)

let rec bechamel_tests () =
  let open Bechamel in
  let gpo name net =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Gpn.Explorer.analyse ~scan:false net)))
  in
  let po name net =
    Test.make ~name (Staged.stage (fun () -> ignore (Petri.Stubborn.explore net)))
  in
  let smv name net =
    Test.make ~name (Staged.stage (fun () -> ignore (Bddkit.Symbolic.analyse net)))
  in
  let full name net =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Petri.Reachability.explore net)))
  in
  [
    Test.make_grouped ~name:"table1-nsdp"
      [
        full "full-4" (Models.Nsdp.make 4);
        po "po-6" (Models.Nsdp.make 6);
        smv "smv-4" (Models.Nsdp.make 4);
        gpo "gpo-6" (Models.Nsdp.make 6);
        gpo "gpo-10" (Models.Nsdp.make 10);
      ];
    Test.make_grouped ~name:"table1-asat"
      [
        full "full-4" (Models.Asat.make 4);
        po "po-8" (Models.Asat.make 8);
        gpo "gpo-8" (Models.Asat.make 8);
      ];
    Test.make_grouped ~name:"table1-over"
      [
        full "full-4" (Models.Over.make 4);
        po "po-5" (Models.Over.make 5);
        gpo "gpo-5" (Models.Over.make 5);
      ];
    Test.make_grouped ~name:"table1-rw"
      [
        full "full-9" (Models.Rw.make 9);
        po "po-9" (Models.Rw.make 9);
        smv "smv-9" (Models.Rw.make 9);
        gpo "gpo-15" (Models.Rw.make 15);
      ];
    Test.make_grouped ~name:"fig2"
      [
        full "full-8" (Models.Figures.fig2 8);
        po "po-10" (Models.Figures.fig2 10);
        gpo "gpo-12" (Models.Figures.fig2 12);
      ];
    worldset_tests ();
  ]

(* World-set algebra on both representations, over a shared pool of
   random worlds.  The hash-consed numbers are steady-state: after the
   first iteration the memo caches hit, which is exactly the regime the
   explorer runs in (the same unions/intersections recur across
   states). *)
and worldset_tests () =
  let open Bechamel in
  let module B = Petri.Bitset in
  let module H = Gpn.World_set in
  let module T = Gpn.World_set_tree in
  let width = 24 in
  let st = Random.State.make [| 0x5eed |] in
  let random_world () =
    let w = ref (B.empty width) in
    for _ = 1 to 1 + Random.State.int st width do
      w := B.add (Random.State.int st width) !w
    done;
    !w
  in
  let pool_a = List.init 160 (fun _ -> random_world ()) in
  let pool_b = List.init 160 (fun _ -> random_world ()) in
  let ha = H.of_list pool_a and hb = H.of_list pool_b in
  let ta = T.of_list pool_a and tb = T.of_list pool_b in
  let w0 = List.hd pool_a in
  (* The memoized operations finish in tens of nanoseconds — below the
     per-sample noise floor of the harness — so every job batches 1000
     calls per run (the reported ns/run is for the batch, comparable
     across jobs). *)
  let batched f =
    Staged.stage (fun () ->
        for _ = 1 to 1000 do
          ignore (Sys.opaque_identity (f ()))
        done)
  in
  Test.make_grouped ~name:"worldset-x1000"
    [
      Test.make ~name:"union-tree" (batched (fun () -> T.union ta tb));
      Test.make ~name:"union-hashconsed" (batched (fun () -> H.union ha hb));
      Test.make ~name:"inter-tree" (batched (fun () -> T.inter ta tb));
      Test.make ~name:"inter-hashconsed" (batched (fun () -> H.inter ha hb));
      Test.make ~name:"filter-member-tree" (batched (fun () -> T.filter_member 3 ta));
      Test.make ~name:"filter-member-hashconsed"
        (batched (fun () -> H.filter_member 3 ha));
      (* [add]/[remove] build a fresh, structurally-equal bit set each
         call, so this times the digest + weak-table lookup that every
         intern of an already-known world pays. *)
      Test.make ~name:"bitset-intern"
        (batched (fun () -> B.intern (B.remove 0 (B.add 0 w0))));
    ]

let micro () =
  section "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let rows =
    List.concat_map
      (fun test ->
        let results =
          Benchmark.all cfg instances test
          |> Analyze.all ols Toolkit.Instance.monotonic_clock
        in
        (* Hashtbl.iter order is hash order — sort by name so successive
           runs (and the JSON report) diff cleanly. *)
        Hashtbl.fold
          (fun name ols_result acc ->
            let est =
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Some est
              | _ -> None
            in
            (name, est) :: acc)
          results []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))
      (bechamel_tests ())
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "%-28s %12.0f ns/run@." name est
      | None -> Format.printf "%-28s (no estimate)@." name)
    rows;
  Format.printf "@.";
  let module J = Gpo_obs.Json in
  write_report "micro"
    (J.Obj
       [
         ("table", J.String "micro");
         ( "results",
           J.List
             (List.map
                (fun (name, est) ->
                  J.Obj
                    [
                      ("name", J.String name);
                      ( "ns_per_run",
                        match est with Some e -> J.Float e | None -> J.Null );
                    ])
                rows) );
       ])

(* ------------------------------------------------------------------ *)
(* Guard overhead: the deadline/memory poll sits in the hottest loop of
   the explicit engines, so its cost must stay in the noise.  Plain and
   guarded runs are interleaved (same rep sees the same cache/GC
   climate) and the best of each side is compared.                     *)

let guard_overhead () =
  let module J = Gpo_obs.Json in
  section "Guard — budget polling overhead in the explicit hot loop";
  let nets =
    if smoke then
      [ ("nsdp-8", Models.Nsdp.make 8); ("asat-4", Models.Asat.make 4) ]
    else [ ("nsdp-12", Models.Nsdp.make 12); ("asat-8", Models.Asat.make 8) ]
  in
  let reps = if smoke then 2 else 5 in
  (* The big instances overflow any exhaustive budget; a fixed state
     budget gives both sides the exact same amount of work. *)
  let max_states = if smoke then 50_000 else 500_000 in
  let rows = ref [] in
  Format.printf "%-10s %10s %10s %10s@." "net" "plain" "guarded" "overhead";
  List.iter
    (fun (name, net) ->
      let plain = ref infinity and guarded = ref infinity in
      for _ = 1 to reps do
        let r, t = time (fun () -> Petri.Reachability.explore ~max_states net) in
        let states = r.Petri.Reachability.states in
        plain := Float.min !plain t;
        let r, t =
          time (fun () ->
              (* Generous budgets: armed, polled, never tripping. *)
              Guard.with_guard ~deadline_s:3600. ~mem_mb:65536 (fun g ->
                  Petri.Reachability.explore ~max_states ~guard:g net))
        in
        assert (r.Petri.Reachability.states = states);
        guarded := Float.min !guarded t
      done;
      let overhead_pct = (!guarded -. !plain) /. !plain *. 100. in
      Format.printf "%-10s %9.3fs %9.3fs %9.2f%%@." name !plain !guarded
        overhead_pct;
      rows :=
        J.Obj
          [
            ("net", J.String name);
            ("plain_s", J.Float !plain);
            ("guarded_s", J.Float !guarded);
            ("overhead_pct", J.Float overhead_pct);
          ]
        :: !rows)
    nets;
  write_report "guard"
    (J.Obj
       [
         ("table", J.String "guard");
         ("smoke", J.Bool smoke);
         ("rows", J.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------ *)
(* Structural reduction: how much the pipeline shrinks each family and
   what that buys end to end.  [reduced_s] times [Engine.run
   ~reduce:true] — reduction included, so the speedup column is the
   honest end-to-end gain, not the gain on a pre-shrunk net.  The
   deadlock columns of both sides are recorded (and asserted equal in
   CI): a reduction bug shows up as a verdict flip, not a time blip.  *)

let reduce_bench () =
  let module J = Gpo_obs.Json in
  section "Reduce — structural reduction ratio and end-to-end speedup";
  let nets =
    if smoke then
      [
        ("rw-6", Models.Rw.make 6);
        ("over-3", Models.Over.make 3);
        ("nsdp-4", Models.Nsdp.make 4);
      ]
    else
      [
        ("rw-8", Models.Rw.make 8);
        ("rw-10", Models.Rw.make 10);
        ("over-4", Models.Over.make 4);
        ("over-5", Models.Over.make 5);
        ("nsdp-6", Models.Nsdp.make 6);
        ("asat-4", Models.Asat.make 4);
      ]
  in
  let reps = if smoke then 1 else 3 in
  let rows = ref [] in
  Format.printf "%-10s %-8s %6s %10s %10s %8s@." "net" "engine" "ratio"
    "plain" "reduced" "speedup";
  List.iter
    (fun (name, net) ->
      let red = Reduce.run net in
      let ratio = Reduce.ratio red in
      List.iter
        (fun kind ->
          let plain = ref infinity and reduced = ref infinity in
          let dl_plain = ref false and dl_red = ref false in
          for _ = 1 to reps do
            let o, t =
              time (fun () -> Harness.Engine.run ~gpo_scan:true kind net)
            in
            dl_plain := o.Harness.Engine.deadlock;
            plain := Float.min !plain t;
            let o, t =
              time (fun () ->
                  Harness.Engine.run ~gpo_scan:true ~reduce:true kind net)
            in
            dl_red := o.Harness.Engine.deadlock;
            reduced := Float.min !reduced t
          done;
          let speedup = !plain /. !reduced in
          Format.printf "%-10s %-8s %5.2fx %9.3fs %9.3fs %7.2fx@." name
            (Harness.Engine.name kind) ratio !plain !reduced speedup;
          rows :=
            J.Obj
              [
                ("net", J.String name);
                ("engine", J.String (Harness.Engine.name kind));
                ("ratio", J.Float ratio);
                ("places", J.Int net.Petri.Net.n_places);
                ("transitions", J.Int net.Petri.Net.n_transitions);
                ("reduced_places", J.Int red.Reduce.net.Petri.Net.n_places);
                ( "reduced_transitions",
                  J.Int red.Reduce.net.Petri.Net.n_transitions );
                ("deadlock_plain", J.Bool !dl_plain);
                ("deadlock_reduced", J.Bool !dl_red);
                ("plain_s", J.Float !plain);
                ("reduced_s", J.Float !reduced);
                ("speedup", J.Float speedup);
              ]
            :: !rows)
        Harness.Engine.all)
    nets;
  write_report "reduce"
    (J.Obj
       [
         ("table", J.String "reduce");
         ("smoke", J.Bool smoke);
         ("rows", J.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------ *)
(* Verification service: what warm state buys.  For each family the
   same question is asked three times through the in-process scheduler
   (the daemon minus the socket):

     cold — empty result cache, cleared engine memo caches;
     warm — result cache invalidated, engine/interning tables warm;
     hit  — answered from the content-addressed result cache (the
            witness still replays through certification on every hit).

   The throughput series submits one batch of distinct jobs at pool
   sizes 1/2/4.  On a single-core host the jobs_per_s column measures
   scheduling overhead, not parallelism.                               *)

let serve_bench () =
  let module J = Gpo_obs.Json in
  let module P = Serve.Protocol in
  section "Serve — cold vs warm vs cache-hit latency, batch throughput";
  let own_sink = not (Gpo_obs.enabled ()) in
  if own_sink then Gpo_obs.install Gpo_obs.null_sink;
  Fun.protect ~finally:(fun () -> if own_sink then Gpo_obs.uninstall ())
  @@ fun () ->
  let families =
    if smoke then
      [ ("nsdp-4", "nsdp", 4); ("rw-6", "rw", 6); ("fig2-6", "fig2", 6) ]
    else
      [ ("nsdp-6", "nsdp", 6); ("rw-10", "rw", 10); ("fig2-10", "fig2", 10) ]
  in
  let reps = if smoke then 2 else 3 in
  let sched = Serve.Scheduler.create ~jobs:1 () in
  let submit_one id size =
    let job = P.job (P.Model { id; size }) in
    match Serve.Scheduler.submit sched [ job ] with
    | P.Results [ r ] -> r
    | _ -> failwith "serve bench: unexpected scheduler reply"
  in
  let timed_submit id size =
    let r, t = time (fun () -> submit_one id size) in
    (match r.P.status with
    | P.Ok -> ()
    | P.Failed msg -> failwith ("serve bench: " ^ msg));
    (r, t)
  in
  Format.printf "%-10s %10s %10s %10s %9s@." "net" "cold" "warm" "hit"
    "cold/hit";
  let rows = ref [] in
  List.iter
    (fun (name, id, size) ->
      (* Cold: nothing cached, engine memo tables dropped. *)
      Harness.Result_cache.invalidate ();
      Gpn.World_set.clear_caches ();
      let r, cold = timed_submit id size in
      assert (not r.P.cached);
      (* Warm: the result cache is emptied but the interned universe and
         memo caches keep everything the cold run built. *)
      let warm = ref infinity in
      for _ = 1 to reps do
        Harness.Result_cache.invalidate ();
        let r, t = timed_submit id size in
        assert (not r.P.cached);
        warm := Float.min !warm t
      done;
      (* Hit: same question again — answered from the result cache after
         its witness re-certifies by replay. *)
      let hit = ref infinity in
      for _ = 1 to reps do
        let r, t = timed_submit id size in
        assert r.P.cached;
        hit := Float.min !hit t
      done;
      Format.printf "%-10s %9.4fs %9.4fs %9.4fs %8.0fx@." name cold !warm !hit
        (cold /. !hit);
      rows :=
        J.Obj
          [
            ("net", J.String name);
            ("engine", J.String "gpo");
            ("cold_s", J.Float cold);
            ("warm_s", J.Float !warm);
            ("hit_s", J.Float !hit);
          ]
        :: !rows)
    families;
  Serve.Scheduler.shutdown sched;
  (* Throughput: one batch of distinct questions per pool size.  The
     result cache is emptied before every submission so each batch does
     real verification work. *)
  section "Serve — batch throughput at pool sizes 1/2/4";
  let batch =
    let sizes = if smoke then [ 4; 5; 6; 7 ] else [ 6; 7; 8; 9; 10; 11 ] in
    List.map (fun n -> P.job (P.Model { id = "fig2"; size = n })) sizes
  in
  let batch_n = List.length batch in
  Format.printf "%-8s %6s %10s %10s@." "batch" "pool" "time" "jobs/s";
  let tp_rows = ref [] in
  List.iter
    (fun pool_jobs ->
      let sched = Serve.Scheduler.create ~jobs:pool_jobs () in
      (* Warm-up round so every pool size starts from the same warm
         interned universe. *)
      Harness.Result_cache.invalidate ();
      (match Serve.Scheduler.submit sched batch with
      | P.Results _ -> ()
      | _ -> failwith "serve bench: warm-up rejected");
      let best = ref infinity in
      for _ = 1 to reps do
        Harness.Result_cache.invalidate ();
        let resp, t = time (fun () -> Serve.Scheduler.submit sched batch) in
        (match resp with
        | P.Results _ -> ()
        | _ -> failwith "serve bench: batch rejected");
        best := Float.min !best t
      done;
      Serve.Scheduler.shutdown sched;
      let jobs_per_s = float_of_int batch_n /. !best in
      Format.printf "%-8d %6d %9.3fs %9.1f@." batch_n pool_jobs !best
        jobs_per_s;
      tp_rows :=
        J.Obj
          [
            ("batch", J.Int batch_n);
            ("jobs", J.Int pool_jobs);
            ("time_s", J.Float !best);
            ("jobs_per_s", J.Float jobs_per_s);
          ]
        :: !tp_rows)
    [ 1; 2; 4 ];
  write_report "serve"
    (J.Obj
       [
         ("table", J.String "serve");
         ("cores", J.Int (Domain.recommended_domain_count ()));
         ("smoke", J.Bool smoke);
         ("latency", J.List (List.rev !rows));
         ("throughput", J.List (List.rev !tp_rows));
       ])

(* ------------------------------------------------------------------ *)
(* Persistence: what the crash-safe journal costs.  [mem_store_s] is
   the per-store cost of the in-memory cache alone; [journal_store_s]
   adds the checksummed append (with a channel flush) that makes the
   entry survive kill -9; [recovery_s] is the cold-start price — read
   a dup-heavy journal, re-certify every admitted witness by replay,
   and compact the file down to the live set.                          *)

let persist_bench () =
  let module J = Gpo_obs.Json in
  section "Persist — journal append overhead per store, cold-start recovery";
  let own_sink = not (Gpo_obs.enabled ()) in
  if own_sink then Gpo_obs.install Gpo_obs.null_sink;
  Fun.protect ~finally:(fun () -> if own_sink then Gpo_obs.uninstall ())
  @@ fun () ->
  let sizes = if smoke then [ 3; 4; 5; 6 ] else [ 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let rounds = if smoke then 3 else 8 in
  let entries =
    List.map
      (fun n ->
        let net = Models.Figures.fig2 n in
        let text = Petri.Parser.to_string net in
        let o =
          Harness.Engine.run ~witness:true ~gpo_scan:true Harness.Engine.Gpo net
        in
        assert (o.Harness.Engine.stop = Guard.Completed);
        let k =
          Harness.Result_cache.key
            ~digest:(Petri.Net.digest net)
            ~engine:"gpo" ~max_states:1_000_000 ~witness:true ~gpo_scan:true
            ~reduce:false ()
        in
        (k, text, o))
      sizes
  in
  let n = List.length entries in
  (* A single store is sub-microsecond in memory — batch [inner]
     passes per timed round so the clock resolves both sides. *)
  let inner = if smoke then 20 else 50 in
  let store_all () =
    for _ = 1 to inner do
      (* Invalidate first so every store is a real store, not a no-op
         on an already-filled table. *)
      Harness.Result_cache.invalidate ();
      List.iter
        (fun (k, text, o) ->
          ignore (Harness.Result_cache.store ~net_text:text k o : bool))
        entries
    done
  in
  Harness.Result_cache.detach ();
  let mem = ref infinity in
  for _ = 1 to rounds do
    let (), t = time store_all in
    mem := Float.min !mem t
  done;
  (* Journaled: the same stores with the append on the hot path.  The
     rounds leave a dup-heavy journal behind — the file shape a
     long-lived daemon accumulates — which then feeds the recovery
     measurement. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "julie-bench-persist-%d" (Unix.getpid ()))
  in
  (match Harness.Result_cache.attach dir with
  | Ok _ -> ()
  | Error msg -> failwith ("persist bench: " ^ msg));
  let jn = ref infinity in
  for _ = 1 to rounds do
    let (), t = time store_all in
    jn := Float.min !jn t
  done;
  Harness.Result_cache.flush_journal ();
  let journal_path = Filename.concat dir "results.journal" in
  let journal_bytes = (Unix.stat journal_path).Unix.st_size in
  Harness.Result_cache.detach ();
  (* Cold start: recover the dup-heavy journal into an empty cache.
     Every admitted record re-parses its net, checks its digest and
     replays its witness through certification; duplicates resolve
     last-writer-wins and trigger the compaction rewrite. *)
  Harness.Result_cache.invalidate ();
  let recovery, recovery_s =
    time (fun () ->
        match Harness.Result_cache.attach dir with
        | Ok r -> r
        | Error msg -> failwith ("persist bench: " ^ msg))
  in
  Harness.Result_cache.detach ();
  Harness.Result_cache.invalidate ();
  (try Sys.remove journal_path with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let mem_store_s = !mem /. float_of_int (inner * n) in
  let journal_store_s = !jn /. float_of_int (inner * n) in
  let overhead_pct = (journal_store_s -. mem_store_s) /. mem_store_s *. 100. in
  Format.printf "%-8s %13s %15s %10s@." "entries" "mem-store" "journal-store"
    "overhead";
  Format.printf "%-8d %11.2fus %13.2fus %9.0f%%@.@." n (mem_store_s *. 1e6)
    (journal_store_s *. 1e6) overhead_pct;
  Format.printf
    "cold-start recovery: %d entr%s admitted (%d rejected) from a %d-byte@.\
     journal of %d records in %.4fs%s@."
    recovery.Harness.Result_cache.recovered
    (if recovery.Harness.Result_cache.recovered = 1 then "y" else "ies")
    recovery.Harness.Result_cache.rejected journal_bytes
    ((rounds * inner * n) + 1)
    recovery_s
    (if recovery.Harness.Result_cache.compacted then " (compacted)" else "");
  write_report "persist"
    (J.Obj
       [
         ("table", J.String "persist");
         ("smoke", J.Bool smoke);
         ("journal_bytes", J.Int journal_bytes);
         ("recovered", J.Int recovery.Harness.Result_cache.recovered);
         ("rejected", J.Int recovery.Harness.Result_cache.rejected);
         ( "rows",
           J.List
             [
               J.Obj
                 [
                   ("entries", J.Int n);
                   ("rounds", J.Int rounds);
                   ("mem_store_s", J.Float mem_store_s);
                   ("journal_store_s", J.Float journal_store_s);
                   ("recovery_s", J.Float recovery_s);
                 ];
             ] );
       ])

(* ------------------------------------------------------------------ *)

let () =
  let jobs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ ->
        [
          "table1"; "fig1"; "fig2"; "ablation"; "scaling"; "guard"; "reduce";
          "serve"; "persist"; "micro";
        ]
  in
  List.iter
    (function
      | "table1" -> table1 ()
      | "fig1" -> fig1 ()
      | "fig2" -> fig2 ()
      | "ablation" -> ablation ()
      | "scaling" -> scaling ()
      | "guard" -> guard_overhead ()
      | "reduce" -> reduce_bench ()
      | "serve" -> serve_bench ()
      | "persist" -> persist_bench ()
      | "micro" -> micro ()
      | other ->
          Format.eprintf
            "unknown job %S (expected table1, fig1, fig2, ablation, scaling, \
             guard, reduce, serve, persist, micro)@."
            other;
          exit 2)
    jobs
