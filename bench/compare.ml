(* Bench regression gate: diff two BENCH_*.json reports.

   A report is a JSON object whose list-of-object fields ("rows",
   "exploration", "portfolio", "series", …) hold the measurements.
   Within a row, a known set of metric fields carries the numbers to
   compare; every other scalar field (net name, size, jobs, state
   counts, …) is identity — rows are matched across the two reports by
   section plus identity, so reordering is harmless and a row that
   appears or disappears is reported as unmatched rather than silently
   ignored.

   Each metric class has its own noise model, because raw wall-clock
   comparisons at machine-scheduling granularity are mostly noise:

   - time-like metrics (time_s, plain_s, …; lower is better) regress
     when the fresh value exceeds base * (1 + threshold) AND the
     absolute growth clears a small floor (tiny denominators otherwise
     turn scheduler jitter into 2x "regressions");
   - speedup (higher is better) regresses on the mirrored ratio test;
   - overhead_pct (an already-relative percentage) regresses on
     absolute growth in percentage points.

   Improvements are detected with the same tests mirrored, so a diff
   can also celebrate. *)

module J = Gpo_obs.Json

type direction = Lower_better | Higher_better

type metric_class = {
  dir : direction;
  abs_floor : float;
      (* minimum absolute change before the ratio test applies *)
  absolute : bool;
      (* compare by absolute delta (percentage-point metrics) instead
         of by ratio *)
}

let time_like = { dir = Lower_better; abs_floor = 5e-3; absolute = false }

let metric_table =
  [
    ("time_s", time_like);
    ("ns_per_run", { time_like with abs_floor = 5.0 });
    ("plain_s", time_like);
    ("reduced_s", time_like);
    ("guarded_s", time_like);
    ("portfolio_time_s", time_like);
    ("best_single_time_s", time_like);
    ("gpo_time", time_like);
    ("spin_time", time_like);
    ("smv_time", time_like);
    ("cold_s", time_like);
    ("warm_s", time_like);
    ("hit_s", time_like);
    (* Per-store journal costs are microseconds; the default 5 ms floor
       would never let them regress.  The in-memory store is tens of
       nanoseconds — below any stable floor — so its wider floor keeps
       it advisory while the journaled store stays enforceable. *)
    ("mem_store_s", { time_like with abs_floor = 2e-6 });
    ("journal_store_s", { time_like with abs_floor = 5e-6 });
    ("recovery_s", time_like);
    ("overhead_pct", { dir = Lower_better; abs_floor = 0.0; absolute = true });
    ("speedup", { dir = Higher_better; abs_floor = 0.05; absolute = false });
    ("jobs_per_s", { dir = Higher_better; abs_floor = 0.5; absolute = false });
  ]

let metric_class name = List.assoc_opt name metric_table

type verdict = {
  row : string;  (** section + rendered identity, e.g.
                     ["exploration net=nsdp-7 jobs=2"] *)
  metric : string;
  base : float;
  fresh : float;
  delta_pct : float;  (** signed percentage change, fresh vs base *)
}

type outcome = {
  compared : int;  (** metric values matched and checked *)
  regressions : verdict list;
  improvements : verdict list;
  unmatched_base : string list;  (** rows only in the baseline *)
  unmatched_fresh : string list;  (** rows only in the fresh run *)
}

let ok outcome = outcome.regressions = []

(* ------------------------------------------------------------------ *)
(* Row extraction                                                      *)

let float_of = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let identity_part (k, v) =
  match v with
  | _ when metric_class k <> None -> None
  | J.String s -> Some (Printf.sprintf "%s=%s" k s)
  | J.Bool b -> Some (Printf.sprintf "%s=%b" k b)
  | J.Int i -> Some (Printf.sprintf "%s=%d" k i)
  | J.Float f -> Some (Printf.sprintf "%s=%g" k f)
  | J.Null | J.List _ | J.Obj _ -> None

type row = {
  key : string;  (** section + identity fields *)
  metrics : (string * float) list;
}

let row_of_obj section fields =
  let identity = List.filter_map identity_part fields in
  let metrics =
    List.filter_map
      (fun (k, v) ->
        match (metric_class k, float_of v) with
        | Some _, Some f when Float.is_finite f -> Some (k, f)
        | _ -> None)
      fields
  in
  { key = String.concat " " (section :: identity); metrics }

(* All measurement rows of a report: every top-level field holding a
   list of objects is a section ("meta" and scalar header fields fall
   through naturally). *)
let rows_of_report json =
  match json with
  | J.Obj top ->
      List.concat_map
        (fun (section, v) ->
          match v with
          | J.List items ->
              List.filter_map
                (function
                  | J.Obj fields -> Some (row_of_obj section fields)
                  | _ -> None)
                items
          | _ -> [])
        top
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let delta_pct ~base ~fresh =
  if base = 0.0 then if fresh = 0.0 then 0.0 else Float.infinity
  else (fresh -. base) /. Float.abs base *. 100.0

(* [judge] returns [Some true] for a regression, [Some false] for an
   improvement, [None] for noise-level change. *)
let judge cls ~threshold ~base ~fresh =
  let worse, better =
    match cls.dir with
    | Lower_better -> (fresh -. base, base -. fresh)
    | Higher_better -> (base -. fresh, fresh -. base)
  in
  if cls.absolute then
    (* Percentage-point metrics: threshold is read as points * 10, so
       the default 0.3 tolerates a 3-point swing. *)
    let slack = threshold *. 10.0 in
    if worse > slack then Some true
    else if better > slack then Some false
    else None
  else
    let magnitude = Float.min (Float.abs base) (Float.abs fresh) in
    let significant d = d > cls.abs_floor && d > magnitude *. threshold in
    if significant worse then Some true
    else if significant better then Some false
    else None

let default_threshold = 0.30

let compare_reports ?(threshold = default_threshold) ~base ~fresh () =
  let base_rows = rows_of_report base and fresh_rows = rows_of_report fresh in
  let fresh_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace fresh_tbl r.key r) fresh_rows;
  let matched_fresh = Hashtbl.create 64 in
  let compared = ref 0 in
  let regressions = ref [] and improvements = ref [] in
  let unmatched_base = ref [] in
  List.iter
    (fun b ->
      match Hashtbl.find_opt fresh_tbl b.key with
      | None -> unmatched_base := b.key :: !unmatched_base
      | Some f ->
          Hashtbl.replace matched_fresh b.key ();
          List.iter
            (fun (metric, bv) ->
              match List.assoc_opt metric f.metrics with
              | None -> ()
              | Some fv -> (
                  incr compared;
                  let cls = Option.get (metric_class metric) in
                  let v =
                    {
                      row = b.key;
                      metric;
                      base = bv;
                      fresh = fv;
                      delta_pct = delta_pct ~base:bv ~fresh:fv;
                    }
                  in
                  match judge cls ~threshold ~base:bv ~fresh:fv with
                  | Some true -> regressions := v :: !regressions
                  | Some false -> improvements := v :: !improvements
                  | None -> ()))
            b.metrics)
    base_rows;
  let unmatched_fresh =
    List.filter_map
      (fun r ->
        if Hashtbl.mem matched_fresh r.key then None else Some r.key)
      fresh_rows
  in
  {
    compared = !compared;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    unmatched_base = List.rev !unmatched_base;
    unmatched_fresh;
  }

(* ------------------------------------------------------------------ *)
(* Files and rendering                                                 *)

let read_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match J.of_string (String.trim text) with
      | Ok j -> Ok j
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let compare_files ?threshold ~base ~fresh () =
  match (read_json base, read_json fresh) with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok b, Ok f -> Ok (compare_reports ?threshold ~base:b ~fresh:f ())

let pp_verdict ppf v =
  Format.fprintf ppf "%s: %s %g -> %g (%+.1f%%)" v.row v.metric v.base v.fresh
    v.delta_pct

let pp_outcome ppf o =
  Format.fprintf ppf "compared %d metric value%s@," o.compared
    (if o.compared = 1 then "" else "s");
  List.iter (fun v -> Format.fprintf ppf "REGRESSION  %a@," pp_verdict v)
    o.regressions;
  List.iter (fun v -> Format.fprintf ppf "improvement %a@," pp_verdict v)
    o.improvements;
  List.iter
    (fun k -> Format.fprintf ppf "baseline-only row: %s@," k)
    o.unmatched_base;
  List.iter
    (fun k -> Format.fprintf ppf "fresh-only row: %s@," k)
    o.unmatched_fresh;
  if o.regressions = [] then Format.fprintf ppf "no regressions@,"
  else
    Format.fprintf ppf "%d regression%s@,"
      (List.length o.regressions)
      (if List.length o.regressions = 1 then "" else "s")
