(* Immutable bit sets backed by an int array.  Bit [i] lives in word
   [i / bits_per_word] at position [i mod bits_per_word].  Unused high bits
   of the last word are kept at zero so that [equal]/[compare]/[hash] can
   work word-wise without masking.

   Every set carries a structural digest computed at construction (the
   words were just touched anyway, so the extra pass is cheap) and a
   mutable interning tag.  [intern] canonicalizes a set through a weak
   unique table: interned sets are physically unique, so [equal] gets a
   pointer fast path, [hash] is the stored digest, and [id] yields a
   dense integer usable as a hash-cons key by client structures
   (notably the GPN world sets). *)

let bits_per_word = Sys.int_size

type t = { width : int; words : int array; digest : int; mutable tag : int }

let width s = s.width

let compute_digest width words =
  (* Word-wise polynomial hash; cheap and well distributed for the sizes
     encountered in net analysis (a few words).  Masked non-negative so
     it can index weak-table buckets directly. *)
  Array.fold_left (fun h w -> (h * 486187739) + (w lxor (w lsr 31))) width words
  land max_int

let make width words = { width; words; digest = compute_digest width words; tag = -1 }

let n_words width =
  if width = 0 then 0 else ((width - 1) / bits_per_word) + 1

let empty width =
  if width < 0 then invalid_arg "Bitset.empty: negative width";
  make width (Array.make (n_words width) 0)

let check_elt fname width i =
  if i < 0 || i >= width then
    invalid_arg (Printf.sprintf "Bitset.%s: element %d outside [0,%d)" fname i width)

let full width =
  let s = empty width in
  let words = Array.copy s.words in
  for w = 0 to Array.length words - 1 do
    let lo = w * bits_per_word in
    let hi = min width (lo + bits_per_word) in
    let bits = hi - lo in
    words.(w) <- (if bits = bits_per_word then -1 else (1 lsl bits) - 1)
  done;
  make width words

let mem i s =
  check_elt "mem" s.width i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add i s =
  check_elt "add" s.width i;
  let w = i / bits_per_word and b = 1 lsl (i mod bits_per_word) in
  if s.words.(w) land b <> 0 then s
  else begin
    let words = Array.copy s.words in
    words.(w) <- words.(w) lor b;
    make s.width words
  end

let remove i s =
  check_elt "remove" s.width i;
  let w = i / bits_per_word and b = 1 lsl (i mod bits_per_word) in
  if s.words.(w) land b = 0 then s
  else begin
    let words = Array.copy s.words in
    words.(w) <- words.(w) land lnot b;
    make s.width words
  end

let singleton width i = add i (empty width)

let of_list width elements = List.fold_left (fun s i -> add i s) (empty width) elements

let of_array width elements = Array.fold_left (fun s i -> add i s) (empty width) elements

let check_widths fname a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bitset.%s: width mismatch (%d vs %d)" fname a.width b.width)

let binop fname op a b =
  check_widths fname a b;
  make a.width (Array.map2 op a.words b.words)

let union a b = if a == b then a else binop "union" ( lor ) a b
let inter a b = if a == b then a else binop "inter" ( land ) a b
let diff a b = binop "diff" (fun x y -> x land lnot y) a b

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let equal a b =
  a == b
  || (a.tag < 0 || b.tag < 0)
     (* Two distinct interned sets are never equal; otherwise fall back
        to the digest filter and the word-wise comparison. *)
     && a.digest = b.digest && a.width = b.width && a.words = b.words

let compare a b =
  if a == b then 0
  else begin
    let c = Int.compare a.width b.width in
    if c <> 0 then c else Stdlib.compare a.words b.words
  end

let hash s = s.digest

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)

module Interned = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.width = b.width && a.words = b.words
  let hash s = s.digest
end)

(* The unique table is striped: 64 independent weak buckets keyed by
   digest, each behind its own short-held mutex.  Equal sets always
   hash to the same stripe, so canonicalization still serialises per
   content — but concurrent interning from N domains (the parallel GPN
   explorer, the portfolio racer) only contends on digest collisions
   instead of funnelling through one process-wide lock.  Every stripe
   lock probes under the same site name, so their wait times merge into
   the single obs.lock.wait.bitset.intern histogram (Dist.make dedupes
   by name; Lock.make does not, so the mutexes stay independent). *)
let n_stripes = 64

let stripe_tables = Array.init n_stripes (fun _ -> Interned.create 256)

let stripe_locks =
  Array.init n_stripes (fun _ -> Gpo_obs.Lock.make "bitset.intern")

let next_tag = Atomic.make 0
let c_interned = Gpo_obs.Counter.make "bitset.interned"

let intern s =
  if s.tag >= 0 then s
  else begin
    (* Fault probe sits before the lock: an injected failure must not
       leave a stripe lock held. *)
    Guard.Fault.probe "bitset.intern";
    let i = s.digest land (n_stripes - 1) in
    Gpo_obs.Lock.with_lock stripe_locks.(i) (fun () ->
        let r = Interned.merge stripe_tables.(i) s in
        if r == s && s.tag < 0 then begin
          (* Fresh canonical representative: assign its identity.  The
             tag write happens under the stripe lock, and any equal set
             lands on this same stripe, so a tag is assigned exactly
             once per canonical content. *)
          s.tag <- Atomic.fetch_and_add next_tag 1;
          Gpo_obs.Counter.incr c_interned
        end;
        r)
  end

let interned s = s.tag >= 0

let id s =
  if s.tag < 0 then invalid_arg "Bitset.id: set is not interned";
  s.tag

let interned_count () =
  Array.fold_left (fun acc t -> acc + Interned.count t) 0 stripe_tables

(* ------------------------------------------------------------------ *)

let rec subset_words wa wb i =
  i < 0 || (wa.(i) land lnot wb.(i) = 0 && subset_words wa wb (i - 1))

let subset a b =
  check_widths "subset" a b;
  a == b || subset_words a.words b.words (Array.length a.words - 1)

let rec disjoint_words wa wb i =
  i < 0 || (wa.(i) land wb.(i) = 0 && disjoint_words wa wb (i - 1))

let disjoint a b =
  check_widths "disjoint" a b;
  disjoint_words a.words b.words (Array.length a.words - 1)

let intersects a b = not (disjoint a b)

let popcount word =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop word 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    while !word <> 0 do
      let lsb = !word land - !word in
      let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1) in
      f ((w * bits_per_word) + bit_index lsb 0);
      word := !word land (!word - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    raise Not_found
  with Found i -> i

let for_all p s =
  let exception Fail in
  try
    iter (fun i -> if not (p i) then raise Fail) s;
    true
  with Fail -> false

let exists p s = not (for_all (fun i -> not (p i)) s)

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let pp ?(name = string_of_int) () ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf i -> Format.pp_print_string ppf (name i)))
    (elements s)

let to_string ?name s = Format.asprintf "%a" (pp ?name ()) s
