(** Explicit-state reachability analysis (Section 2.2 of the paper).

    The explorer is generic in the {e expansion strategy}: at each
    visited marking a strategy selects which enabled transitions to
    fire.  {!full} fires all of them (conventional analysis, the
    "States" column of Table 1); {!Stubborn.strategy} fires a stubborn
    subset (partial-order analysis, the "SPIN+PO" column).

    Deadlocks are detected at every visited marking regardless of the
    strategy, so any deadlock-preserving strategy reports the same
    verdict as conventional analysis. *)

module Marking_table : Hashtbl.S with type key = Bitset.t
(** Hash tables keyed by markings. *)

type strategy = Net.t -> Bitset.t -> Net.transition list
(** [strategy net m] returns the transitions to fire from marking [m];
    each returned transition must be enabled in [m]. *)

type result = {
  net : Net.t;
  states : int;  (** Number of distinct visited markings. *)
  edges : int;  (** Number of explored firings. *)
  deadlocks : Bitset.t list;  (** Up to [max_deadlocks] deadlocked markings. *)
  deadlock_count : int;  (** Total number of deadlocked markings found. *)
  unsafe : (Net.transition * Bitset.t) list;
      (** Firings that violated 1-safeness, up to [max_deadlocks] of them. *)
  stop : Guard.stop_reason;
      (** Why the exploration ended: [Completed] iff the whole
          (strategy-reduced) state space was covered. *)
  predecessor : (Net.transition * Bitset.t) Marking_table.t option;
      (** When traces were requested: for each non-initial visited
          marking, the transition and marking it was first reached
          from. *)
  visited : unit Marking_table.t;  (** The set of visited markings. *)
}

val truncated : result -> bool
(** [true] iff the exploration did not cover its whole state space
    ([stop <> Completed]). *)

val full : strategy
(** Fire every enabled transition: conventional exhaustive analysis. *)

val explore :
  ?strategy:strategy ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  ?traces:bool ->
  ?cancel:Par.Cancel.t ->
  ?guard:Guard.t ->
  Net.t ->
  result
(** [explore net] runs a breadth-first exploration from the initial
    marking.  [strategy] defaults to {!full}; [max_states] (default
    [10_000_000]) bounds the number of visited states, recording
    [State_budget] when exceeded; [max_deadlocks] (default [16]) bounds
    the retained deadlock witnesses; [traces] (default [false]) records
    predecessors for counterexample extraction.  [cancel] is polled
    once per expanded marking; a set token unwinds with
    [Par.Cancel.Cancelled].  [guard] is polled at the same points; a
    tripped deadline or memory budget ends the run early with the
    partial counts and [stop] carrying the reason. *)

val explore_par :
  ?pool:Par.Pool.t ->
  ?jobs:int ->
  ?strategy:strategy ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  ?traces:bool ->
  ?cancel:Par.Cancel.t ->
  ?guard:Guard.t ->
  Net.t ->
  result
(** Domain-parallel {!explore}: the visited set is sharded by marking
    digest (each shard with its own lock and, with [traces], its own
    predecessor map), workers expand markings from per-worker queues
    and steal when dry.  Runs on [pool] when given, else on a fresh
    pool of [jobs] workers (default [Domain.recommended_domain_count]).
    With one worker this {e is} {!explore} — the sequential engine is
    the fallback, and the differential test suite holds the two to the
    same states/edges/deadlock counts and verdicts on every net.  The
    retained [deadlocks]/[unsafe] witness lists are sorted by content
    so worker interleaving cannot leak into the result; the
    predecessor map records each marking's first-reach parent, which
    may differ from the sequential one, but any reconstructed witness
    still certifies. *)

val trace_to : ?cancel:Par.Cancel.t -> result -> Bitset.t -> Net.transition list
(** [trace_to result m] reconstructs a firing sequence from the initial
    marking to [m].  Requires [explore ~traces:true]; raises
    [Invalid_argument] otherwise and [Not_found] if [m] was not
    visited.  [cancel] is polled at every walk-back step so a race
    loser cannot linger in witness reconstruction; a set token unwinds
    with [Par.Cancel.Cancelled] before any partial trace escapes. *)

val deadlock_free : result -> bool
(** [true] iff no deadlocked marking was visited (meaningful only when
    [stop = Completed]). *)

val pp_summary : Format.formatter -> result -> unit
(** One-line summary: states, edges, deadlocks, stop reason. *)
