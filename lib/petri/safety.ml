type property = {
  name : string;
  never_all : Net.place list;
}

let monitor (net : Net.t) property =
  if property.never_all = [] then invalid_arg "Safety.monitor: empty cover";
  List.iter
    (fun p ->
      if p < 0 || p >= net.n_places then
        invalid_arg "Safety.monitor: unknown place in cover")
    property.never_all;
  let b = Builder.create (net.name ^ "+" ^ property.name) in
  let places =
    Array.init net.n_places (fun p ->
        Builder.place b
          ~marked:(Bitset.mem p net.initial)
          net.place_names.(p))
  in
  let run = Builder.place b ~marked:true (property.name ^ ".run") in
  for t = 0 to net.n_transitions - 1 do
    let map ps = Array.to_list (Array.map (fun p -> places.(p)) ps) in
    ignore
      (Builder.transition b net.transition_names.(t)
         ~pre:(run :: map net.pre_list.(t))
         ~post:(run :: map net.post_list.(t)))
  done;
  (* [tick] masks genuine deadlocks of the original net. *)
  ignore (Builder.transition b (property.name ^ ".tick") ~pre:[ run ] ~post:[ run ]);
  (* [violate] halts everything exactly when the cover is reached. *)
  let cover = List.map (fun p -> places.(p)) property.never_all in
  ignore
    (Builder.transition b (property.name ^ ".violate") ~pre:(run :: cover)
       ~post:cover);
  Builder.build b

let covers property m = List.for_all (fun p -> Bitset.mem p m) property.never_all

(* The monitor keeps the original transitions at their original indices
   (the builder adds them first), then appends [tick] and [violate].
   Inverting a monitored firing sequence therefore cuts it at the first
   [violate] — the cover is reached exactly when it becomes enabled —
   and erases the [tick] self-loops; what remains is, index for index, a
   firing sequence of the original net. *)
let project_monitor_witness (net : Net.t) trace =
  let tick = net.n_transitions in
  let violate = net.n_transitions + 1 in
  let rec go acc = function
    | [] -> List.rev acc
    | t :: _ when t = violate -> List.rev acc
    | t :: rest when t = tick -> go acc rest
    | t :: rest -> go (t :: acc) rest
  in
  go [] trace

let covering_marking ?(max_states = 1_000_000) net property =
  let result = Reachability.explore ~max_states ~traces:true net in
  if Reachability.truncated result then
    failwith
      (Printf.sprintf "Safety: exploration stopped (%s)"
         (Guard.describe_stop result.stop));
  let found = ref None in
  Reachability.Marking_table.iter
    (fun m () -> if !found = None && covers property m then found := Some m)
    result.visited;
  Option.map (Reachability.trace_to result) !found

let violated_explicit ?max_states net property =
  covering_marking ?max_states net property <> None
