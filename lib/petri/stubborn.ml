type heuristic = First_seed | Smallest

(* Telemetry: size of the stubborn set actually fired at each marking
   (the quality measure of the reduction — smaller is better), and how
   many closure computations the Smallest heuristic pays for it. *)
let d_set_size = Gpo_obs.Dist.make "stubborn.set_size"
let c_closures = Gpo_obs.Counter.make "stubborn.closures"

(* Closure of the stubborn-set conditions from a seed transition.
   Returns the enabled members of the resulting stubborn set. *)
let closure conflict m seed =
  let net = Conflict.net conflict in
  let n = net.Net.n_transitions in
  let in_set = Array.make n false in
  let enabled_members = ref [] in
  let n_enabled = ref 0 in
  let queue = Queue.create () in
  let push t =
    if not in_set.(t) then begin
      in_set.(t) <- true;
      Queue.add t queue
    end
  in
  push seed;
  while not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    if Semantics.enabled net t m then begin
      enabled_members := t :: !enabled_members;
      incr n_enabled;
      Bitset.iter push (Conflict.conflicting conflict t)
    end
    else begin
      (* Pick the unmarked input place with the fewest producers: all of
         them must join the set, so fewer producers keeps the set small. *)
      let best = ref (-1) in
      let best_cost = ref max_int in
      Array.iter
        (fun p ->
          if not (Bitset.mem p m) then begin
            let cost = Array.length net.Net.producers.(p) in
            if cost < !best_cost then begin
              best := p;
              best_cost := cost
            end
          end)
        net.Net.pre_list.(t);
      (* [t] is disabled so some input place is unmarked, unless its preset
         is empty — an always-enabled source transition cannot be disabled,
         but then it would have been classified enabled above. *)
      assert (!best >= 0);
      Array.iter push net.Net.producers.(!best)
    end
  done;
  (List.rev !enabled_members, !n_enabled)

let compute conflict heuristic m =
  let net = Conflict.net conflict in
  let enabled = Semantics.enabled_set net m in
  let chosen =
    if Bitset.is_empty enabled then []
    else
      match heuristic with
      | First_seed ->
          Gpo_obs.Counter.incr c_closures;
          fst (closure conflict m (Bitset.choose enabled))
      | Smallest ->
          let best = ref [] in
          let best_size = ref max_int in
          Bitset.iter
            (fun seed ->
              if !best_size > 1 then begin
                Gpo_obs.Counter.incr c_closures;
                let members, size = closure conflict m seed in
                if size < !best_size then begin
                  best := members;
                  best_size := size
                end
              end)
            enabled;
          !best
  in
  if chosen <> [] then Gpo_obs.Dist.observe_int d_set_size (List.length chosen);
  chosen

let strategy ?(heuristic = Smallest) conflict : Reachability.strategy =
 fun _net m -> compute conflict heuristic m

let explore ?heuristic ?max_states ?max_deadlocks ?traces ?cancel ?guard net =
  let conflict = Conflict.analyse net in
  Reachability.explore ~strategy:(strategy ?heuristic conflict) ?max_states
    ?max_deadlocks ?traces ?cancel ?guard net

(* The stubborn strategy is a pure function of the marking (the
   conflict relation is immutable after [Conflict.analyse], and
   [compute] only reads it), so it can be evaluated from any domain and
   the parallel explorer visits exactly the sequential reduced state
   space. *)
let explore_par ?pool ?jobs ?heuristic ?max_states ?max_deadlocks ?traces
    ?cancel ?guard net =
  let conflict = Conflict.analyse net in
  Reachability.explore_par ?pool ?jobs
    ~strategy:(strategy ?heuristic conflict)
    ?max_states ?max_deadlocks ?traces ?cancel ?guard net
