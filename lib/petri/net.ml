type place = int
type transition = int

type t = {
  name : string;
  n_places : int;
  n_transitions : int;
  place_names : string array;
  transition_names : string array;
  pre : Bitset.t array;
  post : Bitset.t array;
  pre_list : place array array;
  post_list : place array array;
  consumers : transition array array;
  producers : transition array array;
  initial : Bitset.t;
}

let check_unique_names kind names =
  let table = Hashtbl.create (Array.length names) in
  Array.iter
    (fun n ->
      if Hashtbl.mem table n then
        invalid_arg (Printf.sprintf "Net.make: duplicate %s name %S" kind n);
      Hashtbl.add table n ())
    names

let make ~name ~place_names ~transition_names ~arcs ~initial =
  let n_places = Array.length place_names in
  let n_transitions = Array.length transition_names in
  check_unique_names "place" place_names;
  check_unique_names "transition" transition_names;
  let pre = Array.make n_transitions (Bitset.empty n_places) in
  let post = Array.make n_transitions (Bitset.empty n_places) in
  let seen = Array.make n_transitions false in
  let check_place p =
    if p < 0 || p >= n_places then
      invalid_arg (Printf.sprintf "Net.make: place index %d out of range" p)
  in
  Array.iter
    (fun (t, inputs, outputs) ->
      if t < 0 || t >= n_transitions then
        invalid_arg (Printf.sprintf "Net.make: transition index %d out of range" t);
      if seen.(t) then
        invalid_arg
          (Printf.sprintf "Net.make: transition %S declared twice" transition_names.(t));
      seen.(t) <- true;
      Array.iter check_place inputs;
      Array.iter check_place outputs;
      pre.(t) <- Bitset.of_array n_places inputs;
      post.(t) <- Bitset.of_array n_places outputs)
    arcs;
  Array.iteri
    (fun t found ->
      if not found then
        invalid_arg
          (Printf.sprintf "Net.make: transition %S has no arcs entry" transition_names.(t)))
    seen;
  List.iter check_place initial;
  let pre_list = Array.map (fun s -> Array.of_list (Bitset.elements s)) pre in
  let post_list = Array.map (fun s -> Array.of_list (Bitset.elements s)) post in
  let consumers_acc = Array.make n_places [] in
  let producers_acc = Array.make n_places [] in
  for t = n_transitions - 1 downto 0 do
    Array.iter (fun p -> consumers_acc.(p) <- t :: consumers_acc.(p)) pre_list.(t);
    Array.iter (fun p -> producers_acc.(p) <- t :: producers_acc.(p)) post_list.(t)
  done;
  {
    name;
    n_places;
    n_transitions;
    place_names;
    transition_names;
    pre;
    post;
    pre_list;
    post_list;
    consumers = Array.map Array.of_list consumers_acc;
    producers = Array.map Array.of_list producers_acc;
    initial = Bitset.of_list n_places initial;
  }

let place_name net p = net.place_names.(p)
let transition_name net t = net.transition_names.(t)

let index_of kind names n =
  let rec search i =
    if i >= Array.length names then
      raise Not_found
    else if String.equal names.(i) n then i
    else search (i + 1)
  in
  ignore kind;
  search 0

let place_index net n = index_of "place" net.place_names n
let transition_index net n = index_of "transition" net.transition_names n
let pre net t = net.pre.(t)
let post net t = net.post.(t)

let pp_marking net ppf m = Bitset.pp ~name:(place_name net) () ppf m
let pp_transition_set net ppf s = Bitset.pp ~name:(transition_name net) () ppf s

let pp_summary ppf net =
  let arcs =
    Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 net.pre
    + Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 net.post
  in
  Format.fprintf ppf "net %s: %d places, %d transitions, %d arcs" net.name
    net.n_places net.n_transitions arcs

(* ------------------------------------------------------------------ *)
(* Content digest                                                      *)

(* The canonical rendering walks every field that defines the net's
   behaviour (and its reports): sizes, names in index order, the flow
   relation as sorted index lists, and the initial marking.  Fields are
   separated by characters that cannot appear inside identifiers, so
   distinct structures cannot collide by concatenation. *)
let digest net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "gpo-net-v1\n";
  Buffer.add_string buf (string_of_int net.n_places);
  Buffer.add_char buf '/';
  Buffer.add_string buf (string_of_int net.n_transitions);
  Buffer.add_char buf '\n';
  Array.iter
    (fun n -> Buffer.add_string buf n; Buffer.add_char buf '\n')
    net.place_names;
  Array.iter
    (fun n -> Buffer.add_string buf n; Buffer.add_char buf '\n')
    net.transition_names;
  let add_places set =
    Bitset.iter
      (fun p -> Buffer.add_string buf (string_of_int p); Buffer.add_char buf ',')
      set
  in
  for t = 0 to net.n_transitions - 1 do
    Buffer.add_string buf (string_of_int t);
    Buffer.add_char buf ':';
    add_places net.pre.(t);
    Buffer.add_string buf "->";
    add_places net.post.(t);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "m0:";
  add_places net.initial;
  Digest.to_hex (Digest.string (Buffer.contents buf))
