(** Safety checking by reduction to deadlock detection.

    Section 4 of the paper: "obtained results are also valid for safety
    checks, since the verification of a safety property can always be
    reduced to a check for deadlock".  This module implements that
    reduction for {e coverability} properties — "the places of [bad]
    can never be marked simultaneously" — so any of the library's
    deadlock engines (conventional, stubborn, symbolic, GPO) can decide
    them.

    The {!monitor} construction adds a [run] lock that every original
    transition borrows as a self-loop, an always-enabled [tick] on the
    lock (masking genuine deadlocks of the original net), and a
    [violate] transition that steals the lock when the bad places are
    covered.  The transformed net deadlocks iff the original net can
    cover the bad places:

    - if the cover is reachable, [violate] fires there, the lock is
      gone, and nothing — not even [tick] — can fire;
    - otherwise [tick] is enabled forever and no marking is dead. *)

type property = {
  name : string;  (** Used in the monitor's place/transition names. *)
  never_all : Net.place list;
      (** The property holds iff these places are never all marked
          simultaneously.  A singleton expresses "this place is never
          marked". *)
}

val monitor : Net.t -> property -> Net.t
(** [monitor net property] builds the transformed net described above.
    Raises [Invalid_argument] if [never_all] is empty or mentions an
    unknown place. *)

val covers : property -> Bitset.t -> bool
(** [covers property m]: all places of [never_all] are marked in [m]. *)

val project_monitor_witness : Net.t -> Net.transition list -> Net.transition list
(** [project_monitor_witness net trace] maps a firing sequence of
    [monitor net property] back to the {e original} [net]: the sequence
    is cut at the first [violate] firing and the [tick] self-loops are
    erased (the monitor keeps original transitions at their original
    indices, so the rest maps unchanged).  Applied to a deadlock
    witness of the monitored net, the result replays on [net] to a
    marking covering [never_all]. *)

val violated_explicit : ?max_states:int -> Net.t -> property -> bool
(** Ground truth by direct exhaustive search on the {e original} net:
    [true] iff some reachable marking covers [never_all].  Raises
    [Failure] if the exploration is truncated. *)

val covering_marking :
  ?max_states:int -> Net.t -> property -> Net.transition list option
(** A firing sequence of the original net reaching a covering marking,
    or [None] when the property holds (within the budget). *)
