type report = {
  deadlock_free : bool;
  safe : bool;
  dead_transitions : Bitset.t;
  quasi_live : bool;
  reversible : bool;
  states : int;
  complete : bool;
}

module Table = Reachability.Marking_table

let check ?max_states (net : Net.t) =
  let result = Reachability.explore ?max_states net in
  let fired = ref (Bitset.empty net.n_transitions) in
  (* In a full exploration every transition enabled at a visited marking
     was fired there, so "dead" = enabled nowhere. *)
  Table.iter
    (fun m () -> fired := Bitset.union !fired (Semantics.enabled_set net m))
    result.visited;
  let dead_transitions = Bitset.diff (Bitset.full net.n_transitions) !fired in
  (* Reversibility: backward BFS from m0 over the reversed explored graph
     must reach every visited marking. *)
  let reversible =
    if Reachability.truncated result then false
    else begin
      let reverse = Table.create (Table.length result.visited) in
      Table.iter
        (fun m () ->
          List.iter
            (fun (_, m') ->
              let preds = try Table.find reverse m' with Not_found -> [] in
              Table.replace reverse m' (m :: preds))
            (Semantics.successors net m))
        result.visited;
      let reached = Table.create (Table.length result.visited) in
      let queue = Queue.create () in
      Table.add reached net.initial ();
      Queue.add net.initial queue;
      while not (Queue.is_empty queue) do
        let m = Queue.pop queue in
        List.iter
          (fun m_pred ->
            if not (Table.mem reached m_pred) then begin
              Table.add reached m_pred ();
              Queue.add m_pred queue
            end)
          (try Table.find reverse m with Not_found -> [])
      done;
      Table.length reached = Table.length result.visited
    end
  in
  {
    deadlock_free = result.deadlock_count = 0;
    safe = result.unsafe = [];
    dead_transitions;
    quasi_live = Bitset.is_empty dead_transitions;
    reversible;
    states = result.states;
    complete = not (Reachability.truncated result);
  }

let find_deadlock ?max_states net =
  let result = Reachability.explore ?max_states ~traces:true net in
  match result.deadlocks with
  | [] -> None
  | m :: _ -> Some (Reachability.trace_to result m)

let pp_report net ppf r =
  Format.fprintf ppf
    "@[<v>states explored: %d%s@ deadlock free:   %b@ safe:            %b@ \
     quasi-live:      %b%s@ reversible:      %b@]"
    r.states
    (if r.complete then "" else " (truncated)")
    r.deadlock_free r.safe r.quasi_live
    (if r.quasi_live then ""
     else
       Format.asprintf " (dead: %a)" (Net.pp_transition_set net) r.dead_transitions)
    r.reversible
