(** Textual net format, read and write.

    The format is line-oriented, in the spirit of Tina's [.net] files:

    {v
    # comment
    net mutex
    pl idle1 (1)          # place, (1) marks it initially
    pl idle2 (1)
    pl lock (1)
    pl crit1
    pl crit2
    tr enter1 : idle1 lock -> crit1
    tr leave1 : crit1 -> idle1 lock
    v}

    Identifiers match [\[A-Za-z0-9_.'\[\]-\]+].  Places may be declared
    implicitly by appearing in a [tr] line; an explicit [pl] line is
    only needed to mark a place or fix its declaration order. *)

type error = { line : int; col : int; message : string }
(** A located parse error.  [line]/[col] are 1-based; structural
    errors reported by the net builder after the last line carry
    [line = 0]. *)

exception Syntax_error of error
(** Raised on malformed input by the exception-based entry points
    {!of_string}/{!of_file}. *)

val pp_error : Format.formatter -> error -> unit
(** ["line L, column C: message"]. *)

val parse : ?name:string -> string -> (Net.t, error) result
(** Parse a net from a string.  The [net] line is optional; [name]
    (default ["net"]) is used when absent.  Total: malformed input —
    including structural errors such as duplicate transitions — yields
    [Error]; no exception escapes. *)

val parse_file : string -> (Net.t, error) result
(** Parse a net from a file; the default name is the file's basename.
    An unreadable file yields [Error] with [line = 0] and the system
    message. *)

val of_string : ?name:string -> string -> Net.t
(** {!parse}, raising {!Syntax_error} on malformed input. *)

val of_file : string -> Net.t
(** {!parse_file}, raising {!Syntax_error} on malformed input or an
    unreadable file. *)

val to_string : Net.t -> string
(** Serialize a net; [of_string (to_string net)] is structurally equal
    to [net]. *)

val to_file : string -> Net.t -> unit
(** Write the serialization of a net to a file. *)
