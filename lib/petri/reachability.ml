module Marking_table = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

type strategy = Net.t -> Bitset.t -> Net.transition list

(* Telemetry: shared by the conventional and stubborn-set engines (the
   strategy is the only difference between them). *)
let c_states = Gpo_obs.Counter.make "reach.states"
let c_edges = Gpo_obs.Counter.make "reach.edges"
let c_dedup_hits = Gpo_obs.Counter.make "reach.dedup_hits"
let c_deadlocks = Gpo_obs.Counter.make "reach.deadlocks"

type result = {
  net : Net.t;
  states : int;
  edges : int;
  deadlocks : Bitset.t list;
  deadlock_count : int;
  unsafe : (Net.transition * Bitset.t) list;
  truncated : bool;
  predecessor : (Net.transition * Bitset.t) Marking_table.t option;
  visited : unit Marking_table.t;
}

let full (net : Net.t) m = Bitset.elements (Semantics.enabled_set net m)

let explore ?(strategy = full) ?(max_states = 10_000_000) ?(max_deadlocks = 16)
    ?(traces = false) (net : Net.t) =
  let visited = Marking_table.create 4096 in
  let predecessor = if traces then Some (Marking_table.create 4096) else None in
  let queue = Queue.create () in
  let edges = ref 0 in
  let deadlocks = ref [] in
  let deadlock_count = ref 0 in
  let unsafe = ref [] in
  let unsafe_count = ref 0 in
  let truncated = ref false in
  Gpo_obs.Counter.touch c_states;
  Gpo_obs.Counter.touch c_edges;
  Gpo_obs.Counter.touch c_dedup_hits;
  let enqueue m =
    Marking_table.add visited m ();
    Gpo_obs.Counter.incr c_states;
    Queue.add m queue
  in
  enqueue net.initial;
  while not (Queue.is_empty queue) do
    let m = Queue.pop queue in
    Gpo_obs.Progress.sample "reach" (fun () ->
        let stats = Marking_table.stats visited in
        [
          ("states", Gpo_obs.I (Marking_table.length visited));
          ("frontier", Gpo_obs.I (Queue.length queue));
          ("edges", Gpo_obs.I !edges);
          ( "table_load",
            Gpo_obs.F
              (float_of_int stats.Hashtbl.num_bindings
              /. float_of_int (max 1 stats.Hashtbl.num_buckets)) );
        ]);
    let to_fire = strategy net m in
    if Semantics.is_deadlock net m then begin
      incr deadlock_count;
      Gpo_obs.Counter.incr c_deadlocks;
      if !deadlock_count <= max_deadlocks then deadlocks := m :: !deadlocks
    end;
    let fire t =
      let m', safe = Semantics.fire net t m in
      incr edges;
      Gpo_obs.Counter.incr c_edges;
      if not safe then begin
        incr unsafe_count;
        if !unsafe_count <= max_deadlocks then unsafe := (t, m) :: !unsafe
      end;
      if Marking_table.mem visited m' then Gpo_obs.Counter.incr c_dedup_hits
      else
        if Marking_table.length visited >= max_states then truncated := true
        else begin
          enqueue m';
          match predecessor with
          | Some table -> Marking_table.add table m' (t, m)
          | None -> ()
        end
    in
    List.iter fire to_fire
  done;
  {
    net;
    states = Marking_table.length visited;
    edges = !edges;
    deadlocks = List.rev !deadlocks;
    deadlock_count = !deadlock_count;
    unsafe = List.rev !unsafe;
    truncated = !truncated;
    predecessor;
    visited;
  }

let trace_to result m =
  match result.predecessor with
  | None -> invalid_arg "Reachability.trace_to: explore was run without ~traces:true"
  | Some table ->
      if not (Marking_table.mem result.visited m) then raise Not_found;
      let rec walk m acc =
        match Marking_table.find_opt table m with
        | None -> acc
        | Some (t, m_pred) -> walk m_pred (t :: acc)
      in
      walk m []

let deadlock_free result = result.deadlock_count = 0

let pp_summary ppf result =
  Format.fprintf ppf "%s: %d states, %d edges, %d deadlock(s)%s%s" result.net.Net.name
    result.states result.edges result.deadlock_count
    (if result.unsafe = [] then "" else ", UNSAFE")
    (if result.truncated then " (truncated)" else "")
