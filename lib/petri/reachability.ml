module Marking_table = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

type strategy = Net.t -> Bitset.t -> Net.transition list

(* Telemetry: shared by the conventional and stubborn-set engines (the
   strategy is the only difference between them). *)
let c_states = Gpo_obs.Counter.make "reach.states"
let c_edges = Gpo_obs.Counter.make "reach.edges"
let c_dedup_hits = Gpo_obs.Counter.make "reach.dedup_hits"
let c_deadlocks = Gpo_obs.Counter.make "reach.deadlocks"
let g_load_factor = Gpo_obs.Gauge.make "reach.table.load_factor"
let g_workers = Gpo_obs.Gauge.make "reach.workers"

type result = {
  net : Net.t;
  states : int;
  edges : int;
  deadlocks : Bitset.t list;
  deadlock_count : int;
  unsafe : (Net.transition * Bitset.t) list;
  stop : Guard.stop_reason;
  predecessor : (Net.transition * Bitset.t) Marking_table.t option;
  visited : unit Marking_table.t;
}

let truncated result = result.stop <> Guard.Completed
let full (net : Net.t) m = Bitset.elements (Semantics.enabled_set net m)

(* Visited-table size hint from a cheap structural bound: a safe net
   has at most 2^places reachable markings, and the state budget caps
   the table anyway.  Pre-sizing to the (capped) bound avoids the
   rehash cascade on nets that blow past the default 4096 buckets. *)
let table_size_hint (net : Net.t) max_states =
  let structural =
    if net.Net.n_places < 20 then 1 lsl net.Net.n_places else max_int
  in
  max 4096 (min 1_048_576 (min structural max_states))

let report_load_factor table =
  let stats = Marking_table.stats table in
  Gpo_obs.Gauge.set g_load_factor
    (float_of_int stats.Hashtbl.num_bindings
    /. float_of_int (max 1 stats.Hashtbl.num_buckets))

let explore_seq ?(strategy = full) ?(max_states = 10_000_000) ?(max_deadlocks = 16)
    ?(traces = false) ?cancel ?guard (net : Net.t) =
  let size_hint = table_size_hint net max_states in
  let visited = Marking_table.create size_hint in
  let predecessor = if traces then Some (Marking_table.create size_hint) else None in
  let queue = Queue.create () in
  let edges = ref 0 in
  let deadlocks = ref [] in
  let deadlock_count = ref 0 in
  let unsafe = ref [] in
  let unsafe_count = ref 0 in
  let truncated = ref false in
  let interrupt = ref Guard.Completed in
  Gpo_obs.Counter.touch c_states;
  Gpo_obs.Counter.touch c_edges;
  Gpo_obs.Counter.touch c_dedup_hits;
  let enqueue m =
    Marking_table.add visited m ();
    Gpo_obs.Counter.incr c_states;
    Queue.add m queue
  in
  enqueue net.initial;
  (try
     while not (Queue.is_empty queue) do
       Guard.check ?cancel ?guard ();
       Guard.Fault.probe "reach.step";
       let m = Queue.pop queue in
       Gpo_obs.Progress.sample "reach" (fun () ->
           [
             ("states", Gpo_obs.I (Marking_table.length visited));
             ("frontier", Gpo_obs.I (Queue.length queue));
             ("edges", Gpo_obs.I !edges);
           ]);
       let to_fire = strategy net m in
       if Semantics.is_deadlock net m then begin
         incr deadlock_count;
         Gpo_obs.Counter.incr c_deadlocks;
         if !deadlock_count <= max_deadlocks then deadlocks := m :: !deadlocks
       end;
       let fire t =
         let m', safe = Semantics.fire net t m in
         incr edges;
         Gpo_obs.Counter.incr c_edges;
         if not safe then begin
           incr unsafe_count;
           if !unsafe_count <= max_deadlocks then unsafe := (t, m) :: !unsafe
         end;
         if Marking_table.mem visited m' then Gpo_obs.Counter.incr c_dedup_hits
         else
           if Marking_table.length visited >= max_states then truncated := true
           else begin
             enqueue m';
             match predecessor with
             | Some table -> Marking_table.add table m' (t, m)
             | None -> ()
           end
       in
       List.iter fire to_fire
     done
   with Guard.Interrupted reason -> interrupt := reason);
  report_load_factor visited;
  let stop =
    (* A budget interrupt ended the run; a mere state-budget overflow
       only stopped it from growing. *)
    if !interrupt <> Guard.Completed then !interrupt
    else if !truncated then Guard.State_budget
    else Guard.Completed
  in
  {
    net;
    states = Marking_table.length visited;
    edges = !edges;
    deadlocks = List.rev !deadlocks;
    deadlock_count = !deadlock_count;
    unsafe = List.rev !unsafe;
    stop;
    predecessor;
    visited;
  }

(* ------------------------------------------------------------------ *)
(* Domain-parallel exploration                                         *)

(* The visited set is split into shards owned by marking digest
   ([Bitset.hash] is the stored digest, so sharding is free).  Each
   shard carries its own mutex, hash table, and — when traces are
   requested — its own predecessor map, so first-reach parents live
   next to the marking they explain and [--witness] reconstruction
   works after a merge.  Workers keep discovered markings in their own
   work queue and steal when they run dry; termination is an atomic
   count of enqueued-but-unfinished markings. *)
type shard = {
  lock : Mutex.t;
  table : unit Marking_table.t;
  pred : (Net.transition * Bitset.t) Marking_table.t option;
}

(* Per-worker accumulation, merged after the join: no shared cell is
   touched on the hot path except the visited shards and the three
   coordination atomics. *)
type worker_acc = {
  mutable w_edges : int;
  mutable w_dedup : int;
  mutable w_deadlock_count : int;
  mutable w_deadlocks : Bitset.t list;
  mutable w_unsafe_count : int;
  mutable w_unsafe : (Net.transition * Bitset.t) list;
}

(* How a worker crew stopped early.  One cell shared by every worker:
   the first budget trip or crash wins, the others drain out at the
   next loop head instead of spinning on [in_flight] forever (a worker
   that died would otherwise leave its claimed markings unfinished and
   wedge the crew). *)
type crew_stop =
  | Crew_interrupted of Guard.stop_reason
  | Crew_exn of exn * Printexc.raw_backtrace

let explore_par_inner ~pool ~strategy ~max_states ~max_deadlocks ~traces ~cancel
    ~guard (net : Net.t) =
  let n_workers = Par.Pool.size pool in
  Gpo_obs.Gauge.set_int g_workers n_workers;
  let n_shards =
    let rec pow2 n = if n >= 4 * n_workers || n >= 256 then n else pow2 (2 * n) in
    pow2 16
  in
  let shard_hint = max 64 (table_size_hint net max_states / n_shards) in
  let shards =
    Array.init n_shards (fun _ ->
        {
          lock = Mutex.create ();
          table = Marking_table.create shard_hint;
          pred = (if traces then Some (Marking_table.create shard_hint) else None);
        })
  in
  let shard_of m = shards.(Bitset.hash m land (n_shards - 1)) in
  let queues = Array.init n_workers (fun _ -> Par.Wsq.create ()) in
  let states = Atomic.make 0 in
  let in_flight = Atomic.make 0 in
  let truncated = Atomic.make false in
  let stopper : crew_stop option Atomic.t = Atomic.make None in
  let abort s = ignore (Atomic.compare_and_set stopper None (Some s)) in
  let accs =
    Array.init n_workers (fun _ ->
        {
          w_edges = 0;
          w_dedup = 0;
          w_deadlock_count = 0;
          w_deadlocks = [];
          w_unsafe_count = 0;
          w_unsafe = [];
        })
  in
  Gpo_obs.Counter.touch c_states;
  Gpo_obs.Counter.touch c_edges;
  Gpo_obs.Counter.touch c_dedup_hits;
  (* Try to claim [m'] (reached from [m] by [t]) as fresh: insert into
     its shard and charge the state budget.  Returns [true] iff the
     caller should enqueue it. *)
  let claim m' ~from:(t, m) =
    let sh = shard_of m' in
    Mutex.lock sh.lock;
    if Marking_table.mem sh.table m' then begin
      Mutex.unlock sh.lock;
      false
    end
    else begin
      let n = Atomic.fetch_and_add states 1 in
      if n >= max_states then begin
        (* Over budget: give the ticket back and truncate.  The count
           never exceeds [max_states], matching the sequential
           engine's contract. *)
        Atomic.decr states;
        Mutex.unlock sh.lock;
        Atomic.set truncated true;
        false
      end
      else begin
        Marking_table.add sh.table m' ();
        (match sh.pred with
        | Some table -> Marking_table.add table m' (t, m)
        | None -> ());
        Mutex.unlock sh.lock;
        Gpo_obs.Counter.incr c_states;
        true
      end
    end
  in
  (* Seed: the initial marking is visited by definition, not claimed
     through the budget (the sequential engine counts it the same way). *)
  let seed () =
    let sh = shard_of net.initial in
    Marking_table.add sh.table net.initial ();
    ignore (Atomic.fetch_and_add states 1);
    Gpo_obs.Counter.incr c_states;
    Atomic.incr in_flight;
    Par.Wsq.push queues.(0) net.initial
  in
  seed ();
  let process w m =
    let acc = accs.(w) in
    if w = 0 then
      Gpo_obs.Progress.sample "reach" (fun () ->
          [
            ("states", Gpo_obs.I (Atomic.get states));
            ("frontier", Gpo_obs.I (Atomic.get in_flight));
            ("workers", Gpo_obs.I n_workers);
          ]);
    let to_fire = strategy net m in
    if Semantics.is_deadlock net m then begin
      acc.w_deadlock_count <- acc.w_deadlock_count + 1;
      Gpo_obs.Counter.incr c_deadlocks;
      if acc.w_deadlock_count <= max_deadlocks then
        acc.w_deadlocks <- m :: acc.w_deadlocks
    end;
    List.iter
      (fun t ->
        let m', safe = Semantics.fire net t m in
        acc.w_edges <- acc.w_edges + 1;
        Gpo_obs.Counter.incr c_edges;
        if not safe then begin
          acc.w_unsafe_count <- acc.w_unsafe_count + 1;
          if acc.w_unsafe_count <= max_deadlocks then
            acc.w_unsafe <- (t, m) :: acc.w_unsafe
        end;
        if claim m' ~from:(t, m) then begin
          Atomic.incr in_flight;
          Par.Wsq.push queues.(w) m'
        end
        else begin
          acc.w_dedup <- acc.w_dedup + 1;
          Gpo_obs.Counter.incr c_dedup_hits
        end)
      to_fire
  in
  let worker w () =
    (* [step] returns [false] only on clean termination (no work left
       anywhere).  Any exception — a budget trip, a cancellation, a
       crash inside [process] — is recorded in [stopper] so the other
       workers drain out at their next loop head instead of spinning
       on [in_flight] forever. *)
    let step () =
      Guard.check ?cancel ?guard ();
      Guard.Fault.probe "reach.par.step";
      match Par.Wsq.take_any queues w with
      | Some m ->
          process w m;
          Atomic.decr in_flight;
          true
      | None ->
          if Atomic.get in_flight > 0 then begin
            Domain.cpu_relax ();
            true
          end
          else false
    in
    let rec loop () =
      if Atomic.get stopper = None then
        match step () with
        | true -> loop ()
        | false -> ()
        | exception Guard.Interrupted reason -> abort (Crew_interrupted reason)
        | exception e -> abort (Crew_exn (e, Printexc.get_raw_backtrace ()))
    in
    (* The span puts one "reach.worker" duration event on each worker
       domain's trace track, so a --trace-out timeline shows worker
       lifetimes alongside the lock-wait spans. *)
    Gpo_obs.Span.time "reach.worker" loop
  in
  Par.Pool.run pool (List.init n_workers worker);
  (match Atomic.get stopper with
  | Some (Crew_exn (e, bt)) -> Printexc.raise_with_backtrace e bt
  | Some (Crew_interrupted _) | None -> ());
  (* Merge the shards into the single tables of the sequential result
     shape, so [trace_to] and the callers see one uniform view. *)
  let total = Atomic.get states in
  let visited = Marking_table.create (max 4096 total) in
  Array.iter
    (fun sh -> Marking_table.iter (fun m () -> Marking_table.replace visited m ()) sh.table)
    shards;
  let predecessor =
    if not traces then None
    else begin
      let merged = Marking_table.create (max 4096 total) in
      Array.iter
        (fun sh ->
          match sh.pred with
          | Some table ->
              Marking_table.iter (fun m v -> Marking_table.replace merged m v) table
          | None -> ())
        shards;
      Some merged
    end
  in
  report_load_factor visited;
  let merge f = Array.fold_left (fun acc w -> acc + f w) 0 accs in
  (* Retained deadlock/unsafe witnesses are sorted by content: worker
     interleaving must not leak into the result. *)
  let deadlocks =
    Array.fold_left (fun l w -> List.rev_append w.w_deadlocks l) [] accs
    |> List.sort Bitset.compare
  in
  let deadlocks =
    List.filteri (fun i _ -> i < max_deadlocks) deadlocks
  in
  let unsafe =
    Array.fold_left (fun l w -> List.rev_append w.w_unsafe l) [] accs
    |> List.sort (fun (t1, m1) (t2, m2) ->
           let c = Int.compare t1 t2 in
           if c <> 0 then c else Bitset.compare m1 m2)
  in
  let unsafe = List.filteri (fun i _ -> i < max_deadlocks) unsafe in
  let stop =
    match Atomic.get stopper with
    | Some (Crew_interrupted reason) -> reason
    | Some (Crew_exn _) -> assert false
    | None -> if Atomic.get truncated then Guard.State_budget else Guard.Completed
  in
  {
    net;
    states = Marking_table.length visited;
    edges = merge (fun w -> w.w_edges);
    deadlocks;
    deadlock_count = merge (fun w -> w.w_deadlock_count);
    unsafe;
    stop;
    predecessor;
    visited;
  }

let explore_par ?pool ?jobs ?(strategy = full) ?(max_states = 10_000_000)
    ?(max_deadlocks = 16) ?(traces = false) ?cancel ?guard (net : Net.t) =
  match pool with
  | Some pool when Par.Pool.size pool > 1 ->
      explore_par_inner ~pool ~strategy ~max_states ~max_deadlocks ~traces ~cancel
        ~guard net
  | Some _ ->
      explore_seq ~strategy ~max_states ~max_deadlocks ~traces ?cancel ?guard net
  | None -> (
      let jobs = match jobs with Some j -> j | None -> Par.Pool.default_jobs () in
      if jobs <= 1 then
        (* Sequential fallback: one worker needs no shards, no locks. *)
        explore_seq ~strategy ~max_states ~max_deadlocks ~traces ?cancel ?guard net
      else
        Par.Pool.with_pool ~jobs (fun pool ->
            explore_par_inner ~pool ~strategy ~max_states ~max_deadlocks ~traces
              ~cancel ~guard net))

let explore ?strategy ?max_states ?max_deadlocks ?traces ?cancel ?guard net =
  explore_seq ?strategy ?max_states ?max_deadlocks ?traces ?cancel ?guard net

let trace_to ?cancel result m =
  match result.predecessor with
  | None -> invalid_arg "Reachability.trace_to: explore was run without ~traces:true"
  | Some table ->
      if not (Marking_table.mem result.visited m) then raise Not_found;
      let rec walk m acc =
        Par.Cancel.check_opt cancel;
        Guard.Fault.probe "reach.witness";
        match Marking_table.find_opt table m with
        | None -> acc
        | Some (t, m_pred) -> walk m_pred (t :: acc)
      in
      walk m []

let deadlock_free result = result.deadlock_count = 0

let pp_summary ppf result =
  Format.fprintf ppf "%s: %d states, %d edges, %d deadlock(s)%s%s" result.net.Net.name
    result.states result.edges result.deadlock_count
    (if result.unsafe = [] then "" else ", UNSAFE")
    (if truncated result then
       Printf.sprintf " (stopped: %s)" (Guard.describe_stop result.stop)
     else "")
