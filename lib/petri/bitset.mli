(** Immutable fixed-width bit sets.

    A value of type {!t} represents a subset of [{0, ..., width - 1}].
    All operations are purely functional; the underlying words are never
    mutated after construction.  Bit sets are the canonical representation
    for safe Petri-net markings (sets of marked places) and for transition
    sets (the "colors" of Generalized Petri Nets). *)

type t

val width : t -> int
(** [width s] is the universe size the set was created with. *)

val empty : int -> t
(** [empty width] is the empty subset of [{0, ..., width - 1}]. *)

val full : int -> t
(** [full width] is the complete subset [{0, ..., width - 1}]. *)

val singleton : int -> int -> t
(** [singleton width i] is [{i}].  Raises [Invalid_argument] if [i] is
    outside [\[0, width)]. *)

val of_list : int -> int list -> t
(** [of_list width elements] builds the set containing [elements]. *)

val of_array : int -> int array -> t
(** Like {!of_list} for arrays. *)

val mem : int -> t -> bool
(** [mem i s] tests membership of [i] in [s]. *)

val add : int -> t -> t
(** [add i s] is [s ∪ {i}]. *)

val remove : int -> t -> t
(** [remove i s] is [s \ {i}]. *)

val union : t -> t -> t
(** Set union.  Both arguments must have the same width. *)

val inter : t -> t -> t
(** Set intersection.  Both arguments must have the same width. *)

val diff : t -> t -> t
(** [diff a b] is [a \ b].  Both arguments must have the same width. *)

val is_empty : t -> bool
(** [is_empty s] is [true] iff [s] has no element. *)

val equal : t -> t -> bool
(** Structural equality of sets (same width and same elements). *)

val compare : t -> t -> int
(** A total order compatible with {!equal}, suitable for [Map]/[Set]. *)

val hash : t -> int
(** A hash compatible with {!equal}.  O(1): every set stores its digest,
    computed once at construction. *)

val intern : t -> t
(** [intern s] is the canonical physical representative of [s], looked
    up (or installed) in a global weak unique table.  Two interned sets
    are equal iff they are physically equal, so hash-table probes on
    interned sets degenerate to pointer comparisons.  The table holds
    its entries weakly: representatives unreachable from client data
    are reclaimed by the GC, so long-running analyses do not leak.
    Idempotent; [intern s == intern s'] whenever [equal s s']. *)

val interned : t -> bool
(** [interned s] is [true] iff [s] is a canonical representative
    returned by {!intern}. *)

val id : t -> int
(** A dense non-negative integer identifying an interned set — the key
    clients use to hash-cons structures over sets (GPN world sets key
    their trie nodes on it).  Ids are assigned in interning order and
    never reused.  Raises [Invalid_argument] if [s] is not interned. *)

val interned_count : unit -> int
(** Number of live entries in the unique table (weak: collected
    representatives are not counted). *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] belongs to [b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] is [true] iff [a ∩ b = ∅]. *)

val intersects : t -> t -> bool
(** [intersects a b] is [not (disjoint a b)]. *)

val cardinal : t -> int
(** Number of elements. *)

val choose : t -> int
(** The smallest element.  Raises [Not_found] on the empty set. *)

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to every element of [s] in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f s init] folds [f] over the elements in increasing order. *)

val for_all : (int -> bool) -> t -> bool
(** [for_all p s] tests whether every element satisfies [p]. *)

val exists : (int -> bool) -> t -> bool
(** [exists p s] tests whether some element satisfies [p]. *)

val elements : t -> int list
(** Elements in increasing order. *)

val pp : ?name:(int -> string) -> unit -> Format.formatter -> t -> unit
(** [pp ~name ()] pretty-prints a set as [{a, b, c}], rendering each
    element through [name] (default: decimal index). *)

val to_string : ?name:(int -> string) -> t -> string
(** String version of {!pp}. *)
