(** Stubborn-set partial-order reduction (Section 2.3 of the paper).

    Implements the classical deadlock-preserving stubborn-set method of
    Valmari for 1-safe Petri nets, the technique behind the "SPIN+PO"
    column of Table 1.  A set [S] of transitions is {e stubborn} at a
    marking [m] when:

    - for every disabled [t ∈ S] there is an unmarked input place [p]
      of [t] whose producers are all in [S] (no sequence of outside
      transitions can enable [t] before some [S]-transition fires);
    - for every enabled [t ∈ S] all transitions in structural conflict
      with [t] are in [S] (no outside transition can disable [t]);
    - [S] contains at least one enabled transition.

    Firing only the enabled members of a stubborn set at every marking
    preserves all deadlocks and the deadlock-freedom verdict.  No cycle
    proviso is needed for deadlock detection. *)

type heuristic =
  | First_seed  (** Use the first enabled transition as seed. *)
  | Smallest  (** Try every enabled seed, keep the set with the fewest
                  enabled members (better reduction, more work per state). *)

val compute : Conflict.t -> heuristic -> Bitset.t -> Net.transition list
(** [compute conflict heuristic m] returns the enabled transitions of a
    stubborn set at marking [m] (all enabled transitions if [m] has
    none, i.e. the empty list exactly on deadlocked markings). *)

val strategy : ?heuristic:heuristic -> Conflict.t -> Reachability.strategy
(** Expansion strategy for {!Reachability.explore} firing a stubborn set
    at every marking.  [heuristic] defaults to {!Smallest}. *)

val explore :
  ?heuristic:heuristic ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  ?traces:bool ->
  ?cancel:Par.Cancel.t ->
  ?guard:Guard.t ->
  Net.t ->
  Reachability.result
(** Convenience wrapper: {!Reachability.explore} with {!strategy}. *)

val explore_par :
  ?pool:Par.Pool.t ->
  ?jobs:int ->
  ?heuristic:heuristic ->
  ?max_states:int ->
  ?max_deadlocks:int ->
  ?traces:bool ->
  ?cancel:Par.Cancel.t ->
  ?guard:Guard.t ->
  Net.t ->
  Reachability.result
(** {!Reachability.explore_par} with {!strategy}.  The stubborn set
    computation is a pure function of the marking, so the parallel
    exploration visits exactly the reduced state space of the
    sequential one. *)
