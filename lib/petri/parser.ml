type error = { line : int; col : int; message : string }

exception Syntax_error of error

let pp_error ppf e = Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

let () =
  Printexc.register_printer (function
    | Syntax_error e -> Some (Format.asprintf "Parser.Syntax_error(%a)" pp_error e)
    | _ -> None)

let fail line col fmt =
  Printf.ksprintf (fun message -> raise (Syntax_error { line; col; message })) fmt

let is_ident_char c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '\'' | '[' | ']' | '-' -> true
  | _ -> false

(* Tokens carry their 1-based starting column so every later error can
   point at the offending token, not just its line. *)
let tokenize line_no line =
  (* Split on whitespace, treating "->" and ":" as standalone tokens. *)
  let tokens = ref [] in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    let col = !i + 1 in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n
    else if c = ':' then begin
      tokens := (":", col) :: !tokens;
      incr i
    end
    else if c = '-' && !i + 1 < n && line.[!i + 1] = '>' then begin
      tokens := ("->", col) :: !tokens;
      i := !i + 2
    end
    else if c = '(' then begin
      let close =
        try String.index_from line !i ')'
        with Not_found -> fail line_no col "unclosed '('"
      in
      tokens := (String.sub line !i (close - !i + 1), col) :: !tokens;
      i := close + 1
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      tokens := (String.sub line start (!i - start), col) :: !tokens
    end
    else fail line_no col "unexpected character %C" c
  done;
  List.rev !tokens

type accumulator = {
  builder : Builder.t;
  mutable known_places : (string * Net.place) list;
}

let get_place acc name =
  match List.assoc_opt name acc.known_places with
  | Some p -> p
  | None ->
      let p = Builder.place acc.builder name in
      acc.known_places <- (name, p) :: acc.known_places;
      p

let parse_line acc line_no tokens =
  let line_col = match tokens with (_, c) :: _ -> c | [] -> 1 in
  match List.map fst tokens with
  | [] -> ()
  | "net" :: _ -> () (* handled in a first pass *)
  | [ "pl"; name ] -> ignore (get_place acc name)
  | [ "pl"; name; "(1)" ] -> Builder.mark acc.builder (get_place acc name)
  | [ "pl"; name; "(0)" ] -> ignore (get_place acc name)
  | "pl" :: _ ->
      fail line_no line_col "malformed place line (expected: pl <name> [(0|1)])"
  | "tr" :: name :: ":" :: rest | "tr" :: name :: rest -> begin
      let rec split_arrow before = function
        | [] -> fail line_no line_col "transition %s: missing '->'" name
        | ("->", _) :: after -> (List.rev before, after)
        | (tok, _) :: rest -> split_arrow (tok :: before) rest
      in
      let dropped = List.length tokens - List.length rest in
      let inputs, outputs = split_arrow [] (List.filteri (fun i _ -> i >= dropped) tokens) in
      (match List.find_opt (fun (tok, _) -> tok = "->") outputs with
      | Some (_, col) -> fail line_no col "transition %s: duplicate '->'" name
      | None -> ());
      let pre = List.map (get_place acc) inputs in
      let post = List.map (get_place acc) (List.map fst outputs) in
      ignore (Builder.transition acc.builder name ~pre ~post)
    end
  | tok :: _ -> fail line_no line_col "unknown directive %S" tok

let parse ?(name = "net") text =
  match
    let lines = String.split_on_char '\n' text in
    (* First pass: find an optional net name. *)
    let net_name = ref name in
    List.iteri
      (fun i line ->
        match tokenize (i + 1) line with
        | [ ("net", _); (n, _) ] -> net_name := n
        | ("net", _) :: _ :: (_, col) :: _ -> fail (i + 1) col "malformed net line"
        | _ -> ())
      lines;
    let acc = { builder = Builder.create !net_name; known_places = [] } in
    List.iteri
      (fun i line ->
        let line_no = i + 1 in
        let tokens = tokenize line_no line in
        try parse_line acc line_no tokens with
        | Invalid_argument msg | Failure msg ->
            (* Structural errors from the net builder (duplicate
               transitions, ...) located at the offending line. *)
            let col = match tokens with (_, c) :: _ -> c | [] -> 1 in
            fail line_no col "%s" msg)
      lines;
    try Builder.build acc.builder
    with Invalid_argument msg | Failure msg -> fail 0 0 "%s" msg
  with
  | net -> Ok net
  | exception Syntax_error e -> Error e

let parse_file path =
  match
    let ic = open_in path in
    match really_input_string ic (in_channel_length ic) with
    | text ->
        close_in ic;
        text
    | exception e ->
        close_in_noerr ic;
        raise e
  with
  | text -> parse ~name:(Filename.remove_extension (Filename.basename path)) text
  | exception Sys_error msg -> Error { line = 0; col = 0; message = msg }

let of_string ?name text =
  match parse ?name text with Ok net -> net | Error e -> raise (Syntax_error e)

let of_file path =
  match parse_file path with
  | Ok net -> net
  | Error e -> raise (Syntax_error e)

let to_string (net : Net.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "net %s\n" net.name);
  for p = 0 to net.n_places - 1 do
    Buffer.add_string buf
      (Printf.sprintf "pl %s%s\n" net.place_names.(p)
         (if Bitset.mem p net.initial then " (1)" else ""))
  done;
  for t = 0 to net.n_transitions - 1 do
    let names ps =
      Array.to_list ps |> List.map (fun p -> net.place_names.(p)) |> String.concat " "
    in
    Buffer.add_string buf
      (Printf.sprintf "tr %s : %s -> %s\n" net.transition_names.(t)
         (names net.pre_list.(t)) (names net.post_list.(t)))
  done;
  Buffer.contents buf

let to_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
