(** Safe Petri nets: structure.

    A net is a tuple [⟨P, T, F, m0⟩] (Definition 2.1 of the paper).  Places
    and transitions are identified by dense integer indices; the flow
    relation [F] is stored as preset/postset arrays in both directions.
    Only {e safe} nets (at most one token per place) are supported by the
    analyses in this library; markings are therefore place sets
    ({!Bitset.t} over places).

    Construction goes through {!Builder}; a [Net.t] is immutable. *)

type place = int
(** Index of a place, in [\[0, n_places)]. *)

type transition = int
(** Index of a transition, in [\[0, n_transitions)]. *)

type t = private {
  name : string;  (** Net name, used in reports. *)
  n_places : int;
  n_transitions : int;
  place_names : string array;
  transition_names : string array;
  pre : Bitset.t array;  (** [pre.(t)] is [•t], as a set of places. *)
  post : Bitset.t array;  (** [post.(t)] is [t•], as a set of places. *)
  pre_list : place array array;  (** [pre_list.(t)] is [•t], sorted. *)
  post_list : place array array;  (** [post_list.(t)] is [t•], sorted. *)
  consumers : transition array array;
      (** [consumers.(p)] are the transitions with [p ∈ •t], sorted. *)
  producers : transition array array;
      (** [producers.(p)] are the transitions with [p ∈ t•], sorted. *)
  initial : Bitset.t;  (** Initial marking [m0], as a set of places. *)
}

val make :
  name:string ->
  place_names:string array ->
  transition_names:string array ->
  arcs:(transition * place array * place array) array ->
  initial:place list ->
  t
(** [make ~name ~place_names ~transition_names ~arcs ~initial] builds a net.
    [arcs] gives, for every transition, its preset and postset (duplicates
    are ignored).  Every transition index in [\[0, |transition_names|)] must
    appear exactly once in [arcs].  Raises [Invalid_argument] on
    malformed input (out-of-range indices, duplicate names, missing
    transitions).  Most users should prefer {!Builder}. *)

val place_name : t -> place -> string
(** Name of a place. *)

val transition_name : t -> transition -> string
(** Name of a transition. *)

val place_index : t -> string -> place
(** Index of the place with the given name.  Raises [Not_found]. *)

val transition_index : t -> string -> transition
(** Index of the transition with the given name.  Raises [Not_found]. *)

val pre : t -> transition -> Bitset.t
(** [pre net t] is the preset [•t]. *)

val post : t -> transition -> Bitset.t
(** [post net t] is the postset [t•]. *)

val pp_marking : t -> Format.formatter -> Bitset.t -> unit
(** Pretty-print a marking with place names. *)

val pp_transition_set : t -> Format.formatter -> Bitset.t -> unit
(** Pretty-print a set of transitions with transition names. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, |P|, |T|, |F|. *)

val digest : t -> string
(** Stable content hash of the net: a hex digest over the places,
    transitions (names, in index order), the full flow relation and the
    initial marking.  Two structurally equal nets always have the same
    digest, across processes and library versions of the same digest
    schema; any change to a name, an arc or the initial marking changes
    it.  This is the content address of the net — the result cache keys
    verification verdicts on it, and the batch scheduler uses it to
    dedupe identical jobs. *)
