module Bitset = Petri.Bitset
module Table = Petri.Reachability.Marking_table

type report = {
  verdict_agrees : bool;
  witnesses_sound : bool;
  witnesses_complete : bool;
  denotations_reachable : bool;
  traces_valid : bool;
  classical_states : int;
  gpo_states : int;
  classical_deadlocks : int;
  detail : string option;
}

exception Incomplete of Guard.stop_reason

let validate ?reduction ?thorough ?(max_states = 200_000) (net : Petri.Net.t) =
  match
    let classical =
      Petri.Reachability.explore ~max_states ~max_deadlocks:max_int net
    in
    if Petri.Reachability.truncated classical then
      raise (Incomplete classical.stop);
    let gpo = Explorer.analyse ?reduction ?thorough ~max_states net in
    if Explorer.truncated gpo then raise (Incomplete gpo.stop);
    (classical, gpo)
  with
  | exception Incomplete reason -> Error reason
  | classical, gpo ->
  let detail = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !detail = None then detail := Some s) fmt in
  let classical_dead = classical.deadlocks in
  let classical_has_deadlock = classical.deadlock_count > 0 in
  let gpo_has_deadlock = not (Explorer.deadlock_free gpo) in
  let verdict_agrees = Bool.equal classical_has_deadlock gpo_has_deadlock in
  if not verdict_agrees then
    note "verdict mismatch: classical=%b gpo=%b" classical_has_deadlock gpo_has_deadlock;
  let witness_markings =
    List.concat_map (fun w -> w.Explorer.markings) gpo.deadlocks
  in
  let witnesses_sound =
    List.for_all
      (fun m ->
        let sound =
          Table.mem classical.visited m && Petri.Semantics.is_deadlock net m
        in
        if not sound then
          note "unsound witness marking %a"
            (fun () m -> Format.asprintf "%a" (Petri.Net.pp_marking net) m)
            m;
        sound)
      witness_markings
  in
  let witnesses_complete =
    List.for_all
      (fun m ->
        let found = List.exists (Bitset.equal m) witness_markings in
        if not found then
          note "classical deadlock %s not witnessed by GPO"
            (Format.asprintf "%a" (Petri.Net.pp_marking net) m);
        found)
      classical_dead
  in
  let denotations_reachable =
    let ok = ref true in
    List.iter
      (fun run ->
        State.Table.iter
          (fun s () ->
            List.iter
              (fun m ->
                if not (Table.mem classical.visited m) then begin
                  ok := false;
                  note "denoted marking %s not classically reachable"
                    (Format.asprintf "%a" (Petri.Net.pp_marking net) m)
                end)
              (State.mapping s))
          run.Explorer.visited)
      gpo.runs;
    !ok
  in
  let traces_valid =
    List.for_all
      (fun w ->
        let trace = Explorer.deadlock_trace gpo w in
        match Petri.Trace.replay net trace with
        | markings -> begin
            match List.rev markings with
            | final :: _ ->
                let dead = Petri.Semantics.is_deadlock net final in
                if not dead then note "witness trace ends in a live marking";
                dead
            | [] -> false
          end
        | exception Invalid_argument msg ->
            note "witness trace does not replay: %s" msg;
            false)
      gpo.deadlocks
  in
  Ok
    {
      verdict_agrees;
      witnesses_sound;
      witnesses_complete;
      denotations_reachable;
      traces_valid;
      classical_states = classical.states;
      gpo_states = gpo.states;
      classical_deadlocks = classical.deadlock_count;
      detail = !detail;
    }

let ok r =
  r.verdict_agrees && r.witnesses_sound && r.witnesses_complete
  && r.denotations_reachable && r.traces_valid

let pp ppf r =
  let flag b = if b then "ok" else "FAILED" in
  Format.fprintf ppf
    "@[<v>verdict agreement:      %s@ witness soundness:      %s@ witness \
     completeness:   %s@ denotation reachability: %s@ trace validity:         \
     %s@ classical: %d states (%d deadlocks), gpo: %d states%a@]"
    (flag r.verdict_agrees) (flag r.witnesses_sound) (flag r.witnesses_complete)
    (flag r.denotations_reachable) (flag r.traces_valid) r.classical_states
    r.classical_deadlocks r.gpo_states
    (fun ppf -> function
      | None -> ()
      | Some d -> Format.fprintf ppf "@ detail: %s" d)
    r.detail
