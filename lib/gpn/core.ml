(* The GPN engine, functorized over the world-set representation.

   Everything that used to live in [state.ml]/[dynamics.ml]/[explorer.ml]
   now lives in [Make] below, parameterized by a [World_set_intf.S]
   implementation.  The two instantiations at the bottom of this file —
   [Hashconsed] over the hash-consed {!World_set} and [Tree] over the
   retained {!World_set_tree} — are what the ablation bench and the
   representation-equivalence test suite run head-to-head.  The
   top-level [State]/[Dynamics]/[Explorer] modules of this library are
   [include]s of the [Hashconsed] instance, so every existing consumer
   keeps compiling against the default representation.

   To make the two instances bit-identical in their results (states,
   edges, deadlock witnesses), the explorer must not depend on the
   iteration order of world sets, which differs between representations
   (Patricia tries iterate in interning order, balanced trees in
   [Bitset.compare] order).  The only order-sensitive construct was the
   deviation restart queue; deviations are therefore collected per
   state and sorted by (normal-form key, root marking, transition)
   before being scheduled, and witness marking lists are sorted.  This
   also makes any single representation deterministic run-to-run. *)

(* The engine is domain-safe end to end: the world-set layers shard
   their hash-consing tables and keep their memo caches domain-local
   (see world_set.ml), [Bitset.intern] is striped, and the explorer's
   own per-analysis state is either walk-local or touched only by the
   coordinating domain between waves.  The process-wide gpn.core lock
   that used to serialise [analyse]/[deadlock_trace] is gone — analyses
   run concurrently (the portfolio races engines at full --jobs width)
   and a single analysis fans its runs out over a domain pool
   ([analyse ~jobs]). *)

module Make (W : World_set_intf.S) = struct
  module Bitset = Petri.Bitset

  (* ---------------------------------------------------------------- *)
  (* States (Definition 3.1): the pair ⟨m, r⟩ of per-place world sets
     and the valid-world set.  Invariant: m(p) ⊆ r for every place.    *)

  module State = struct
    type t = { m : W.t array; r : W.t }

    let make m r = { m = Array.map (fun ws -> W.inter ws r) m; r }

    let marking s p = s.m.(p)
    let valid s = s.r

    (* With the hash-consed representation both of these degenerate to
       pointer comparisons / stored-id reads per component. *)
    let equal a b =
      W.equal a.r b.r
      && Array.length a.m = Array.length b.m
      && Array.for_all2 W.equal a.m b.m

    let compare a b =
      let c = W.compare a.r b.r in
      if c <> 0 then c
      else begin
        let n = Array.length a.m and n' = Array.length b.m in
        let c = Int.compare n n' in
        if c <> 0 then c
        else begin
          let rec loop i =
            if i >= n then 0
            else begin
              let c = W.compare a.m.(i) b.m.(i) in
              if c <> 0 then c else loop (i + 1)
            end
          in
          loop 0
        end
      end

    let hash s =
      Array.fold_left (fun acc ws -> (acc * 486187739) + W.hash ws) (W.hash s.r) s.m

    let denoted_marking s v =
      let n_places = Array.length s.m in
      let rec loop p acc =
        if p < 0 then acc
        else loop (p - 1) (if W.mem v s.m.(p) then Bitset.add p acc else acc)
      in
      loop (n_places - 1) (Bitset.empty n_places)

    let mapping s =
      W.fold
        (fun v acc ->
          let m = denoted_marking s v in
          if List.exists (Bitset.equal m) acc then acc else m :: acc)
        s.r []
      |> List.sort Bitset.compare

    let pp (net : Petri.Net.t) ppf s =
      let name = Petri.Net.transition_name net in
      Format.fprintf ppf "@[<v>";
      Array.iteri
        (fun p ws ->
          if not (W.is_empty ws) then
            Format.fprintf ppf "%s: %a@ " (Petri.Net.place_name net p)
              (W.pp ~name ()) ws)
        s.m;
      Format.fprintf ppf "r: %a@]" (W.pp ~name ()) s.r

    module Table = Hashtbl.Make (struct
      type nonrec t = t

      let equal = equal
      let hash = hash
    end)
  end

  (* ---------------------------------------------------------------- *)
  (* Dynamics (Section 3.2): enabling and firing rules.                *)

  module Dynamics = struct
    (* Bounded memo for [s_enabled], keyed on the transition and the
       markings of its input places.  Only worth probing when the
       representation makes whole world sets cheap to hash and compare
       (hash-consed: a few stored-id reads); the tree baseline computes
       directly so the ablation measures it unpolluted. *)
    module Senab_tbl = Hashtbl.Make (struct
      type t = int * W.t list

      let equal (t1, l1) (t2, l2) = t1 = t2 && List.equal W.equal l1 l2

      let hash (t, l) =
        List.fold_left (fun h w -> (h * 486187739) + W.hash w) t l land max_int
    end)

    let senab_bound = 1 lsl 16
    let c_senab_hit = Gpo_obs.Counter.make "gpn.senab.cache_hit"
    let c_senab_miss = Gpo_obs.Counter.make "gpn.senab.cache_miss"

    type ctx = {
      net : Petri.Net.t;
      conflict : Petri.Conflict.t;
      choice : Bitset.t;
      alternatives : Bitset.t list list;
          (* per choice cluster: its maximal independent sets *)
      initial : State.t;
      senab_id : int;
          (* key into the per-domain memo stores: the s_enabled cache
             is plain mutable state, so sharing one table across the
             wave workers would race — each domain keeps its own,
             keyed by the analysis context that owns it *)
    }

    let next_senab_id = Atomic.make 0

    let senab_store : (int, W.t Senab_tbl.t) Hashtbl.t Domain.DLS.key =
      Domain.DLS.new_key (fun () -> Hashtbl.create 4)

    (* A domain outlives many analyses (pool workers are reused), so
       the per-domain store is bounded: it keeps the tables of the few
       live contexts and drops stale ones wholesale. *)
    let senab_for ctx =
      let store = Domain.DLS.get senab_store in
      match Hashtbl.find_opt store ctx.senab_id with
      | Some tbl -> tbl
      | None ->
          if Hashtbl.length store >= 8 then Hashtbl.reset store;
          let tbl = Senab_tbl.create 1024 in
          Hashtbl.add store ctx.senab_id tbl;
          tbl

    let net ctx = ctx.net
    let conflict ctx = ctx.conflict
    let choice_transitions ctx = ctx.choice
    let cluster_alternatives ctx = ctx.alternatives
    let initial ctx = ctx.initial

    (* Maximal independent sets of the conflict relation restricted to a
       cluster, by Bron-Kerbosch on the independence ("non-conflict")
       adjacency.  Clusters are small in practice (a handful of
       transitions competing for shared places), and cliques — the worst
       case for state count — are the best case here (each MIS is a
       singleton). *)
    let maximal_independent_sets conflict members =
      let width = Bitset.width members in
      let independent v =
        Bitset.diff (Bitset.remove v members) (Petri.Conflict.conflicting conflict v)
      in
      let results = ref [] in
      let rec bron_kerbosch r p x =
        if Bitset.is_empty p && Bitset.is_empty x then results := r :: !results
        else begin
          let p = ref p and x = ref x in
          Bitset.iter
            (fun v ->
              if Bitset.mem v !p then begin
                let n = independent v in
                bron_kerbosch (Bitset.add v r) (Bitset.inter !p n) (Bitset.inter !x n);
                p := Bitset.remove v !p;
                x := Bitset.add v !x
              end)
            members
        end
      in
      bron_kerbosch (Bitset.empty width) members (Bitset.empty width);
      !results

    let make ?conflict (net : Petri.Net.t) =
      let conflict =
        match conflict with Some c -> c | None -> Petri.Conflict.analyse net
      in
      let n = net.n_transitions in
      let choice = ref (Bitset.empty n) in
      let alternatives = ref [] in
      Array.iter
        (fun members ->
          if Bitset.cardinal members >= 2 then begin
            choice := Bitset.union !choice members;
            alternatives := maximal_independent_sets conflict members :: !alternatives
          end)
        (Petri.Conflict.clusters conflict);
      let alternatives = List.rev !alternatives in
      let r0 = W.product n (List.map W.of_list alternatives) in
      let m0 =
        Array.init net.n_places (fun p ->
            if Bitset.mem p net.initial then r0 else W.empty)
      in
      {
        net;
        conflict;
        choice = !choice;
        alternatives;
        initial = State.make m0 r0;
        senab_id = Atomic.fetch_and_add next_senab_id 1;
      }

    let initial_of_marking ctx marking =
      let r0 = State.valid ctx.initial in
      let m =
        Array.init ctx.net.n_places (fun p ->
            if Bitset.mem p marking then r0 else W.empty)
      in
      State.make m r0

    let s_enabled_direct pre (s : State.t) =
      let acc = ref (State.marking s pre.(0)) in
      for i = 1 to Array.length pre - 1 do
        acc := W.inter !acc (State.marking s pre.(i))
      done;
      !acc

    let s_enabled ctx t (s : State.t) =
      let pre = ctx.net.pre_list.(t) in
      match Array.length pre with
      | 0 -> State.valid s
      | 1 -> State.marking s pre.(0)
      | _ when not W.fast_identity -> s_enabled_direct pre s
      | _ -> begin
          let senab = senab_for ctx in
          let key = (t, Array.fold_right (fun p acc -> State.marking s p :: acc) pre []) in
          match Senab_tbl.find_opt senab key with
          | Some r ->
              Gpo_obs.Counter.incr c_senab_hit;
              r
          | None ->
              Gpo_obs.Counter.incr c_senab_miss;
              let r = s_enabled_direct pre s in
              if Senab_tbl.length senab >= senab_bound then
                Senab_tbl.reset senab;
              Senab_tbl.add senab key r;
              r
        end

    let enabled_transitions ctx s =
      let rec loop t acc =
        if t < 0 then acc
        else begin
          let acc =
            if W.is_empty (s_enabled ctx t s) then acc else Bitset.add t acc
          in
          loop (t - 1) acc
        end
      in
      loop (ctx.net.n_transitions - 1) (Bitset.empty ctx.net.n_transitions)

    let m_enabled ctx t s =
      if Bitset.mem t ctx.choice then W.filter_member t (s_enabled ctx t s)
      else W.empty

    let single_fire ctx t (s : State.t) =
      let history = s_enabled ctx t s in
      assert (not (W.is_empty history));
      let pre = ctx.net.pre.(t) and post = ctx.net.post.(t) in
      let m =
        Array.mapi
          (fun p ws ->
            let in_pre = Bitset.mem p pre and in_post = Bitset.mem p post in
            if in_pre && not in_post then W.diff ws history
            else if in_post && not in_pre then W.union ws history
            else ws)
          (Array.init (Array.length ctx.net.place_names) (State.marking s))
      in
      State.make m (State.valid s)

    let batch_single_fire ctx ts (s : State.t) =
      let histories =
        List.map
          (fun t ->
            let h = s_enabled ctx t s in
            assert (not (W.is_empty h));
            (t, h))
          ts
      in
      let n_places = ctx.net.n_places in
      let removed = Array.make n_places W.empty in
      let added = Array.make n_places W.empty in
      List.iter
        (fun (t, h) ->
          let pre = ctx.net.pre.(t) and post = ctx.net.post.(t) in
          Array.iter
            (fun p ->
              if not (Bitset.mem p post) then removed.(p) <- W.union removed.(p) h)
            ctx.net.pre_list.(t);
          Array.iter
            (fun p ->
              if not (Bitset.mem p pre) then added.(p) <- W.union added.(p) h)
            ctx.net.post_list.(t))
        histories;
      let m =
        Array.init n_places (fun p ->
            W.union (W.diff (State.marking s p) removed.(p)) added.(p))
      in
      State.make m (State.valid s)

    let multiple_fire ctx fired (s : State.t) =
      let n_places = ctx.net.n_places in
      let histories =
        (* m_enabled per fired transition, computed once. *)
        let table = Hashtbl.create 16 in
        Bitset.iter
          (fun t ->
            let h = m_enabled ctx t s in
            assert (not (W.is_empty h));
            Hashtbl.add table t h)
          fired;
        table
      in
      (* r' keeps the worlds that chose a fired transition, plus the
         worlds still single-enabling some unfired transition
         (Definition 3.6). *)
      let r' = ref W.empty in
      for t = 0 to ctx.net.n_transitions - 1 do
        if Bitset.mem t fired then r' := W.union !r' (Hashtbl.find histories t)
        else r' := W.union !r' (s_enabled ctx t s)
      done;
      let r' = !r' in
      let removed = Array.make n_places W.empty in
      let added = Array.make n_places W.empty in
      Bitset.iter
        (fun t ->
          let h = Hashtbl.find histories t in
          Array.iter
            (fun p -> removed.(p) <- W.union removed.(p) h)
            ctx.net.pre_list.(t);
          Array.iter
            (fun p -> added.(p) <- W.union added.(p) h)
            ctx.net.post_list.(t))
        fired;
      let m =
        Array.init n_places (fun p ->
            W.union (W.diff (State.marking s p) removed.(p)) added.(p))
      in
      (* State.make intersects every place with r'. *)
      State.make m r'

    let step_fire ctx ~multiples ~singles (s : State.t) =
      let n_places = ctx.net.n_places in
      let histories = Hashtbl.create 16 in
      Bitset.iter
        (fun t ->
          let h = m_enabled ctx t s in
          assert (not (W.is_empty h));
          Hashtbl.add histories t h)
        multiples;
      List.iter
        (fun t ->
          let h = s_enabled ctx t s in
          assert (not (W.is_empty h));
          Hashtbl.add histories t h)
        singles;
      (* Definition 3.6 with T' = multiples: worlds that chose and fired
         a multiple, or that still single-enable any transition outside
         T' (including the fired singles). *)
      let r' = ref W.empty in
      for t = 0 to ctx.net.n_transitions - 1 do
        if Bitset.mem t multiples then r' := W.union !r' (Hashtbl.find histories t)
        else r' := W.union !r' (s_enabled ctx t s)
      done;
      let removed = Array.make n_places W.empty in
      let added = Array.make n_places W.empty in
      let move t h =
        Array.iter (fun p -> removed.(p) <- W.union removed.(p) h) ctx.net.pre_list.(t);
        Array.iter (fun p -> added.(p) <- W.union added.(p) h) ctx.net.post_list.(t)
      in
      Hashtbl.iter move histories;
      let m =
        Array.init n_places (fun p ->
            W.union (W.diff (State.marking s p) removed.(p)) added.(p))
      in
      State.make m !r'

    let deadlock_worlds ctx (s : State.t) =
      let live = ref W.empty in
      for t = 0 to ctx.net.n_transitions - 1 do
        live := W.union !live (s_enabled ctx t s)
      done;
      W.diff (State.valid s) !live

    let check_invariant _ctx (s : State.t) =
      Array.iteri
        (fun p ws ->
          if not (W.subset ws (State.valid s)) then
            failwith (Printf.sprintf "GPN invariant violated: m(%d) ⊄ r" p))
        s.State.m
  end

  (* ---------------------------------------------------------------- *)
  (* The generalized partial-order explorer.                           *)

  module Explorer = struct
    module Marking_table = Petri.Reachability.Marking_table
    module Net' = Petri.Net

    (* Worlds are interned bit sets under the default representation,
       so this table's probes are digest reads + (near-)pointer
       comparisons. *)
    module World_tbl = Hashtbl.Make (Petri.Bitset)

    type label = {
      multiples : Bitset.t;
      singles : Petri.Net.transition list;
      singles_set : Bitset.t;  (* same content as [singles], O(1) mem *)
    }

    type reduction = Batched | Stepwise

    type run = {
      root : Bitset.t;
      origin : origin;
      initial : State.t;
      predecessor : (label * State.t) State.Table.t;
      visited : unit State.Table.t;
    }

    and origin =
      | Init
      | Deviation of {
          parent : run;
          state : State.t;
          world : W.world;
          transition : Petri.Net.transition;
        }

    type witness = {
      run : run;
      state : State.t;
      worlds : W.t;
      markings : Bitset.t list;
    }

    type result = {
      ctx : Dynamics.ctx;
      states : int;
      edges : int;
      runs : run list;
      deadlocks : witness list;
      stop : Guard.stop_reason;
    }

    let truncated result = result.stop <> Guard.Completed

    (* Per-state enabling information, computed once. *)
    type enabling = {
      s_enab : W.t array;  (* per transition *)
      m_enab : W.t array;  (* per transition; empty for non-choice *)
    }

    let enabling ctx s =
      let net = Dynamics.net ctx in
      let n = net.Petri.Net.n_transitions in
      let s_enab = Array.init n (fun t -> Dynamics.s_enabled ctx t s) in
      let choice = Dynamics.choice_transitions ctx in
      let m_enab =
        Array.init n (fun t ->
            if Bitset.mem t choice then W.filter_member t s_enab.(t) else W.empty)
      in
      { s_enab; m_enab }

    (* Union of the presets of a choice transition's cluster partners:
       places whose marking decides whether a {e competitor} of [t] is
       enabled. *)
    let partner_presets ctx =
      let net = Dynamics.net ctx in
      let conflict = Dynamics.conflict ctx in
      Array.init net.Petri.Net.n_transitions (fun t ->
          let cluster =
            Petri.Conflict.cluster_members conflict
              (Petri.Conflict.cluster_of conflict t)
          in
          Bitset.fold
            (fun t' acc ->
              if t' = t then acc else Bitset.union acc net.Petri.Net.pre.(t'))
            cluster
            (Bitset.empty net.Petri.Net.n_places))

    (* Firing several transitions in one step is only deviation-safe when
       no batch member's output feeds the preset of another member's
       conflict partner: otherwise the step jumps over the intermediate
       marking in which that partner becomes enabled, and the deviation
       scan never sees the choice.  Deferred transitions stay
       multiple-enabled and fire in a later step; the fixpoint can only
       shrink, and a singleton batch can never skip a marking, so firing
       the lowest multiple alone is always a safe last resort. *)
    let defer_unsafe_multiples ctx partner_pre en ~thorough multiples singles =
      let net = Dynamics.net ctx in
      let conflict = Dynamics.conflict ctx in
      let batch_post tbatch =
        List.fold_left
          (fun acc u -> Bitset.union acc net.Petri.Net.post.(u))
          (Bitset.fold
             (fun u acc -> Bitset.union acc net.Petri.Net.post.(u))
             tbatch
             (Bitset.empty net.Petri.Net.n_places))
          singles
      in
      let rec fixpoint multiples =
        let keep =
          Bitset.fold
            (fun t acc ->
              let others = batch_post (Bitset.remove t multiples) in
              if Bitset.intersects others partner_pre.(t) then acc
              else Bitset.add t acc)
            multiples
            (Bitset.empty (Bitset.width multiples))
        in
        if Bitset.equal keep multiples then multiples else fixpoint keep
      in
      (* Thorough mode: a world firing two transitions of the same
         cluster in one step skips the serialization in which the first
         firing re-enables a competitor of the second through a chain of
         other transitions, and the deviation scan cannot see it.  Keep
         at most one member per (cluster, overlapping worlds) group,
         firing first the transitions whose outputs feed some choice
         preset (they "open" re-entries whose conflicts must become
         visible). *)
      let serialize_same_cluster multiples =
        let choice_presets =
          Bitset.fold
            (fun t acc -> Bitset.union acc net.Petri.Net.pre.(t))
            (Dynamics.choice_transitions ctx)
            (Bitset.empty net.Petri.Net.n_places)
        in
        let opens t = Bitset.intersects net.Petri.Net.post.(t) choice_presets in
        let members = Bitset.elements multiples in
        let by_priority =
          List.sort
            (fun a b ->
              match Bool.compare (opens b) (opens a) with
              | 0 -> Int.compare a b
              | c -> c)
            members
        in
        List.fold_left
          (fun kept t ->
            let clashes u =
              u <> t
              && Petri.Conflict.cluster_of conflict u
                 = Petri.Conflict.cluster_of conflict t
              && (not (Petri.Conflict.in_conflict conflict u t))
              && W.exists (fun v -> W.mem v en.m_enab.(u)) en.m_enab.(t)
            in
            if Bitset.exists clashes kept then kept else Bitset.add t kept)
          (Bitset.empty (Bitset.width multiples))
          by_priority
      in
      let kept = fixpoint multiples in
      let kept =
        if thorough && not (Bitset.is_empty kept) then serialize_same_cluster kept
        else kept
      in
      if Bitset.is_empty kept && not (Bitset.is_empty multiples) && singles = []
      then
        (* Precedence cycle with nothing else to fire: serialize by
           firing one transition alone.  The caller schedules restarts
           for the skipped "other transition first" interleavings. *)
        (Bitset.singleton (Bitset.width multiples) (Bitset.choose multiples), true)
      else (kept, false)

    (* The transitions to fire from a state: all multiple-enabled choice
       transitions with the multiple rule, plus all single-enabled
       conflict-free transitions with the single rule, in one combined
       step (candidate MCSs first, matching the order of the paper's
       algorithm). *)
    let successor_labels reduction ctx partner_pre ~thorough ~step en =
      let net = Dynamics.net ctx in
      let choice = Dynamics.choice_transitions ctx in
      let n = net.Petri.Net.n_transitions in
      let multiples = ref (Bitset.empty n) in
      let singles = ref [] in
      let singles_set = ref (Bitset.empty n) in
      for t = n - 1 downto 0 do
        if Bitset.mem t choice then begin
          if not (W.is_empty en.m_enab.(t)) then multiples := Bitset.add t !multiples
        end
        else if not (W.is_empty en.s_enab.(t)) then begin
          singles := t :: !singles;
          singles_set := Bitset.add t !singles_set
        end
      done;
      match reduction with
      | Batched ->
          if Bitset.is_empty !multiples && !singles = [] then ([], Bitset.empty n)
          else begin
            let fired, forced =
              defer_unsafe_multiples ctx partner_pre en ~thorough !multiples !singles
            in
            let skipped =
              if forced then Bitset.diff !multiples fired else Bitset.empty n
            in
            ( [ { multiples = fired; singles = !singles; singles_set = !singles_set } ],
              skipped )
          end
      | Stepwise ->
          (* One conflict cluster per step (singles stay batched: they
             are the uncontroversial part).  The cluster is picked by
             rotation on the step counter, not lowest-first: a cyclic
             component must not starve the others ("not postponed
             forever"). *)
          if Bitset.is_empty !multiples && !singles = [] then ([], Bitset.empty n)
          else if Bitset.is_empty !multiples then
            ( [
                {
                  multiples = Bitset.empty n;
                  singles = !singles;
                  singles_set = !singles_set;
                };
              ],
              Bitset.empty n )
          else begin
            let conflict = Dynamics.conflict ctx in
            (* Clusters represented by the fired multiples, as a bit set
               over cluster indices: deduplication and ascending order
               in one pass (the former [List.mem] scan was quadratic). *)
            let n_clusters = Array.length (Petri.Conflict.clusters conflict) in
            let cluster_ids =
              Bitset.elements
                (Bitset.fold
                   (fun t acc ->
                     Bitset.add (Petri.Conflict.cluster_of conflict t) acc)
                   !multiples (Bitset.empty n_clusters))
            in
            let picked = List.nth cluster_ids (step mod List.length cluster_ids) in
            let fired =
              Bitset.inter !multiples (Petri.Conflict.cluster_members conflict picked)
            in
            (* Rotation guarantees the other clusters fire in later
               steps; the cycle-closure safety net covers the rest, so
               they are not reported as skipped. *)
            ( [ { multiples = fired; singles = !singles; singles_set = !singles_set } ],
              Bitset.empty n )
          end

    let apply ctx s { multiples; singles; _ } =
      Dynamics.step_fire ctx ~multiples ~singles s

    let debug = match Sys.getenv_opt "GPO_DEBUG" with Some _ -> true | None -> false

    (* Telemetry.  Counters mirror the result record exactly (asserted by
       the test suite): [gpo.states] = [result.states], [gpo.restarts] =
       [List.length result.runs - 1].  The worlds-per-state distribution
       and the scan/fire spans only run with a sink installed — cardinal
       and clock calls are not free, and the uninstrumented hot path must
       stay within noise of the seed. *)
    let c_states = Gpo_obs.Counter.make "gpo.states"
    let c_edges = Gpo_obs.Counter.make "gpo.edges"
    let c_restarts = Gpo_obs.Counter.make "gpo.restarts"
    let c_witnesses = Gpo_obs.Counter.make "gpo.deadlock_witnesses"
    let c_deviations = Gpo_obs.Counter.make "gpo.deviations_scheduled"
    let d_worlds = Gpo_obs.Dist.make "gpo.worlds_per_state"

    let classical_successor (net : Petri.Net.t) marking t =
      Bitset.union (Bitset.diff marking net.pre.(t)) net.post.(t)

    (* Deadlock-equivalence normal form: fire the lowest-index enabled
       conflict-free transition until quiescence.  A conflict-free
       transition owns its preset exclusively, so it can never be
       disabled: no deadlock can be reached before it fires, and it
       commutes with every other firing — markings equal up to such
       firings reach exactly the same deadlocks.  The walk is
       deterministic; if it enters a cycle of conflict-free firings, the
       smallest marking of the cycle is the canonical representative. *)
    let normal_form ctx marking =
      let net = Dynamics.net ctx in
      let choice = Dynamics.choice_transitions ctx in
      let next m =
        let rec search t =
          if t >= net.Petri.Net.n_transitions then None
          else if (not (Bitset.mem t choice)) && Petri.Semantics.enabled net t m
          then Some t
          else search (t + 1)
        in
        search 0
      in
      let seen = Marking_table.create 8 in
      let rec walk m =
        match next m with
        | None -> m
        | Some t ->
            if Marking_table.mem seen m then begin
              (* Cycle: walk it once more, collecting its markings. *)
              let rec collect m' acc =
                match next m' with
                | None -> assert false
                | Some t' ->
                    let m'' = classical_successor net m' t' in
                    if Bitset.equal m'' m then acc
                    else collect m'' (if Bitset.compare m'' acc < 0 then m'' else acc)
              in
              collect m m
            end
            else begin
              Marking_table.add seen m ();
              walk (classical_successor net m t)
            end
      in
      walk marking

    (* A deviation restart discovered inside a walk, reported to the
       coordinator instead of being scheduled directly.  [dc_conditional]
       distinguishes the scan-born candidates — suppressed when the
       deviating marking is already denoted — from the cycle-closure
       restarts, which must never be suppressed (the denotation table's
       premise is exactly what the closing cycle violated). *)
    type dev_candidate = {
      dc_key : Bitset.t;  (* normal form of the deviating marking *)
      dc_root : Bitset.t;
      dc_state : State.t;
      dc_world : W.world;
      dc_transition : Petri.Net.transition;
      dc_conditional : bool;
    }

    (* Everything a walk produces, merged single-threaded between
       waves. *)
    type walk_output = {
      wk_run : run;
      wk_devs : dev_candidate list;  (* state order; sorted within a state *)
      wk_wits : (State.t * W.t * Bitset.t list) list;  (* state order *)
      wk_denos : Bitset.t list;  (* normal forms new to this walk *)
    }

    let explore ?(reduction = Batched) ?(thorough = true) ?(scan = true)
        ?(max_states = 1_000_000) ?(max_deadlocks = 64) ?(jobs = 1) ?cancel
        ?guard ctx =
      let net = Dynamics.net ctx in
      let choice = Dynamics.choice_transitions ctx in
      let partner_pre = partner_presets ctx in
      let n_transitions = net.Petri.Net.n_transitions in
      let roots_done = Marking_table.create 16 in
      let pending = Queue.create () in
      (* Coordinator-owned tables.  Wave workers read them concurrently
         but never write: the coordinator is the only writer, and it
         only writes between waves, so walks see a frozen snapshot and
         the reads need no lock. *)
      let seen_dead_markings = Marking_table.create 16 in
      (* Every classical marking denoted by some world of some visited
         state: that world's continued exploration (plus further
         deviation scans) covers the marking's future, so deviations into
         these markings need no restart. *)
      let denoted_global = Marking_table.create 64 in
      let total_states = Atomic.make 0 in
      let total_edges = Atomic.make 0 in
      let truncated = Atomic.make false in
      let runs_count = Atomic.make 0 in
      let deadlocks = ref [] in
      let witness_count = ref 0 in
      let runs = ref [] in
      Gpo_obs.Counter.touch c_states;
      Gpo_obs.Counter.touch c_edges;
      Gpo_obs.Counter.touch c_restarts;
      Gpo_obs.Counter.touch c_witnesses;
      W.touch_stats ();
      (* One run, explored in isolation: [do_walk] reads the frozen
         global tables plus walk-local overlays and writes only its own
         output record, so its result is a function of (root, origin)
         and the between-waves snapshot alone — independent of worker
         scheduling.  That is the whole determinism argument: jobs=1
         and jobs=N execute the same walks over the same snapshots and
         merge them in the same (dequeue) order. *)
      let do_walk (root, origin) =
        let run =
          {
            root;
            origin;
            initial = Dynamics.initial_of_marking ctx root;
            predecessor = State.Table.create 64;
            visited = State.Table.create 64;
          }
        in
        let visited = run.visited in
        (* Walk-local overlays over the frozen tables, reported back to
           the coordinator for the post-wave merge. *)
        let local_denoted = Marking_table.create 16 in
        let denos = ref [] in
        let local_dead = Marking_table.create 4 in
        let wits = ref [] in
        let devs = ref [] in
        let steps = ref 0 in
        (* Both reductions produce at most one successor per state, so a
           run is a path (possibly closing a cycle); we walk it carrying
           the previous state's rejection sets to scan only deviations
           that are new — a world that fires nothing keeps its tokens,
           hence its pending rejections, and those were already covered
           or restarted when they first appeared. *)
        let current = ref (Some (run.initial, Array.make n_transitions W.empty)) in
        State.Table.add visited run.initial ();
        Atomic.incr total_states;
        Gpo_obs.Counter.incr c_states;
        while !current <> None do
          (* One state expansion recomputes the full enabling relation
             over world sets — far heavier than an unmasked poll. *)
          Guard.check_now ?cancel ?guard ();
          Guard.Fault.probe "gpo.step";
          let s, prev_rejections =
            match !current with Some v -> v | None -> assert false
          in
          current := None;
          let en = enabling ctx s in
          if Gpo_obs.enabled () then begin
            Gpo_obs.Dist.observe_int d_worlds (W.cardinal (State.valid s));
            Gpo_obs.Progress.sample "gpo" (fun () ->
                [
                  ("states", Gpo_obs.I (Atomic.get total_states));
                  ("edges", Gpo_obs.I (Atomic.get total_edges));
                  ("runs", Gpo_obs.I (Atomic.get runs_count));
                  ("worlds", Gpo_obs.I (W.cardinal (State.valid s)));
                ])
          end;
          if debug then Format.eprintf "@[<v>STATE@ %a@]@." (State.pp net) s;
          (* Deviation restarts discovered while processing this state.
             World-set iteration order differs between representations
             (and with it the interning order under parallel runs), so
             candidates are collected and sorted by content before being
             reported: the report order (hence everything downstream) is
             representation- and schedule-independent. *)
          let state_devs = ref [] in
          let defer ~conditional ~key root world transition =
            state_devs :=
              {
                dc_key = key;
                dc_root = root;
                dc_state = s;
                dc_world = world;
                dc_transition = transition;
                dc_conditional = conditional;
              }
              :: !state_devs
          in
          let flush_deviations () =
            let cmp a b =
              let c = Bitset.compare a.dc_key b.dc_key in
              if c <> 0 then c
              else begin
                let c = Bitset.compare a.dc_root b.dc_root in
                if c <> 0 then c
                else begin
                  let c = Int.compare a.dc_transition b.dc_transition in
                  if c <> 0 then c else Bitset.compare a.dc_world b.dc_world
                end
              end
            in
            devs := List.rev_append (List.sort cmp !state_devs) !devs
          in
          (* Deadlock worlds: valid worlds enabling nothing. *)
          let live = Array.fold_left W.union W.empty en.s_enab in
          let dead = W.diff (State.valid s) live in
          if not (W.is_empty dead) then begin
            (* Candidate witness markings, pre-filtered against the
               frozen global table plus this walk's overlay.  The
               coordinator re-filters against the merged table and
               applies the witness cap — worker scheduling must not
               decide which witness survives. *)
            let fresh_markings =
              W.fold
                (fun v acc ->
                  let m = State.denoted_marking s v in
                  if
                    Marking_table.mem seen_dead_markings m
                    || Marking_table.mem local_dead m
                  then acc
                  else begin
                    Marking_table.add local_dead m ();
                    m :: acc
                  end)
                dead []
              |> List.sort Bitset.compare
            in
            if fresh_markings <> [] then
              wits := (s, dead, fresh_markings) :: !wits
          end;
          (* Deviation scan: a world whose denoted marking enables a
             choice transition its label rejected must have that branch
             covered by a sibling world, or the analysis restarts from
             the deviating marking. *)
          let denotation_cache = World_tbl.create 32 in
          let denote v =
            match World_tbl.find_opt denotation_cache v with
            | Some m -> m
            | None ->
                let m = State.denoted_marking s v in
                World_tbl.add denotation_cache v m;
                m
          in
          let nf_cache = World_tbl.create 32 in
          let nf_denote v =
            match World_tbl.find_opt nf_cache v with
            | Some m -> m
            | None ->
                let m = normal_form ctx (denote v) in
                World_tbl.add nf_cache v m;
                m
          in
          let sp_scan = Gpo_obs.Span.enter "gpo.scan" in
          let denoted_mem key =
            Marking_table.mem denoted_global key
            || Marking_table.mem local_denoted key
          in
          if scan then
            W.iter
              (fun v ->
                let m = nf_denote v in
                if not (denoted_mem m) then begin
                  Marking_table.replace local_denoted m ();
                  denos := m :: !denos
                end)
              (State.valid s);
          let rejections = Array.make n_transitions W.empty in
          if scan then
            Bitset.iter
              (fun t ->
                rejections.(t) <- W.diff en.s_enab.(t) en.m_enab.(t);
                let rejecting = W.diff rejections.(t) prev_rejections.(t) in
                if not (W.is_empty rejecting) then begin
                  (* Denotations of the worlds about to fire [t] this
                     step: their post-firing markings are not yet in the
                     global table, so cover them by pre-firing
                     equality. *)
                  let firing_denotations =
                    lazy
                      begin
                        let table = Marking_table.create 8 in
                        W.iter
                          (fun u -> Marking_table.replace table (nf_denote u) ())
                          en.m_enab.(t);
                        table
                      end
                  in
                  W.iter
                    (fun v ->
                      if
                        not
                          (Marking_table.mem
                             (Lazy.force firing_denotations)
                             (nf_denote v))
                      then begin
                        let m_t = classical_successor net (denote v) t in
                        let key = normal_form ctx m_t in
                        if debug then
                          Format.eprintf "DEVIATION t=%s m_t=%a covered=%b@."
                            (Net'.transition_name net t) (Net'.pp_marking net) m_t
                            (denoted_mem key);
                        if not (denoted_mem key) then
                          defer ~conditional:true ~key m_t v t
                      end)
                    rejecting
                end)
              choice;
          Gpo_obs.Span.exit sp_scan;
          (* Fire: at most one label per state.  A rejection is carried
             to the next state only for worlds that did not fire in this
             step: a world that moved has a new denotation, so its
             pending rejections must be re-scanned there. *)
          let sp_fire = Gpo_obs.Span.enter "gpo.fire" in
          let labels, skipped =
            successor_labels reduction ctx partner_pre ~thorough ~step:!steps en
          in
          (* Firing order was forced against the safe precedence (or a
             cluster was fired ahead of others in Stepwise mode): cover
             the "skipped transition first" interleavings by restarting
             from their firing markings. *)
          if scan then
            Bitset.iter
              (fun w ->
                W.iter
                  (fun v ->
                    let m_w = classical_successor net (denote v) w in
                    let key = normal_form ctx m_w in
                    if not (denoted_mem key) then
                      defer ~conditional:true ~key m_w v w)
                  en.m_enab.(w))
              skipped;
          List.iter
            (fun label ->
              if debug then
                Format.eprintf "FIRE multiples=%a singles=%a@."
                  (Net'.pp_transition_set net) label.multiples
                  (Format.pp_print_list (fun ppf t ->
                       Format.pp_print_string ppf (Net'.transition_name net t)))
                  label.singles;
              let s' = apply ctx s label in
              incr steps;
              Atomic.incr total_edges;
              Gpo_obs.Counter.incr c_edges;
              if State.Table.mem visited s' then begin
                if scan then begin
                  (* Cycle closure: a transition postponed on every step
                     of the cycle would otherwise never fire — restart
                     from its firing markings (usually redundant and
                     deduplicated; sound either way).  Covers both
                     deferred multiples and, in Stepwise mode, the
                     unfired singles. *)
                  let fire_worlds t =
                    if Bitset.mem t choice then
                      if Bitset.mem t label.multiples then W.empty
                      else en.m_enab.(t)
                    else if Bitset.mem t label.singles_set then W.empty
                    else en.s_enab.(t)
                  in
                  (* Unlike the in-run deviation scan, these restarts
                     must not be suppressed by the global denotation
                     table: the table's premise — that a denoted
                     marking's future is explored by its world — is
                     exactly what the closing cycle violated.  The root
                     memoization still deduplicates. *)
                  for t = 0 to net.Petri.Net.n_transitions - 1 do
                    W.iter
                      (fun v ->
                        let m_t = classical_successor net (denote v) t in
                        defer ~conditional:false ~key:(normal_form ctx m_t) m_t v
                          t)
                      (fire_worlds t)
                  done
                end
              end
              else begin
                (* State-budget ticket: claim a slot, give it back when
                   over budget.  At jobs=1 this is exactly the old
                   sequential check; across domains the counter never
                   over-admits. *)
                let ticket = Atomic.fetch_and_add total_states 1 in
                if ticket >= max_states then begin
                  ignore (Atomic.fetch_and_add total_states (-1));
                  Atomic.set truncated true
                end
                else begin
                  let moved =
                    List.fold_left
                      (fun acc t -> W.union acc en.s_enab.(t))
                      (Bitset.fold
                         (fun t acc -> W.union acc en.m_enab.(t))
                         label.multiples W.empty)
                      label.singles
                  in
                  let carried = Array.map (fun ws -> W.diff ws moved) rejections in
                  State.Table.add visited s' ();
                  Gpo_obs.Counter.incr c_states;
                  State.Table.add run.predecessor s' (label, s);
                  current := Some (s', carried)
                end
              end)
            labels;
          flush_deviations ();
          Gpo_obs.Span.exit sp_fire
        done;
        {
          wk_run = run;
          wk_devs = List.rev !devs;
          wk_wits = List.rev !wits;
          wk_denos = List.rev !denos;
        }
      in
      let schedule ~key root origin =
        (match origin with
        | Init -> ()
        | Deviation _ -> Gpo_obs.Counter.incr c_deviations);
        if not (Marking_table.mem roots_done key) then begin
          Marking_table.add roots_done key ();
          Queue.add (root, origin) pending
        end
      in
      (* Post-wave merge, coordinator only, in dequeue order: replay a
         walk's denotations, witnesses and deviation candidates against
         the (now thawed) global tables.  Conditional candidates are
         re-checked against denotations merged from earlier walks;
         witness candidates are re-filtered and capped here so worker
         scheduling cannot decide which witness survives. *)
      let merge_walk w =
        (match w.wk_run.origin with
        | Init -> ()
        | Deviation _ -> Gpo_obs.Counter.incr c_restarts);
        runs := w.wk_run :: !runs;
        Atomic.incr runs_count;
        List.iter (fun m -> Marking_table.replace denoted_global m ()) w.wk_denos;
        List.iter
          (fun (state, worlds, candidates) ->
            let fresh =
              List.filter
                (fun m ->
                  if Marking_table.mem seen_dead_markings m then false
                  else begin
                    Marking_table.add seen_dead_markings m ();
                    true
                  end)
                candidates
            in
            if fresh <> [] && !witness_count < max_deadlocks then begin
              incr witness_count;
              Gpo_obs.Counter.incr c_witnesses;
              deadlocks :=
                { run = w.wk_run; state; worlds; markings = fresh } :: !deadlocks
            end)
          w.wk_wits;
        List.iter
          (fun dc ->
            if
              not (dc.dc_conditional && Marking_table.mem denoted_global dc.dc_key)
            then
              schedule ~key:dc.dc_key dc.dc_root
                (Deviation
                   {
                     parent = w.wk_run;
                     state = dc.dc_state;
                     world = dc.dc_world;
                     transition = dc.dc_transition;
                   }))
          w.wk_devs
      in
      (* Wave loop: drain the whole pending queue, fan the walks out
         over the pool (each worker claims walks off a shared index,
         its lifetime bracketed by a [gpn.worker] span), then merge in
         dequeue order.  A wave that raises — budget trip, cancellation,
         injected fault — is not merged: its states are already counted
         in the shared atomics, so the telemetry invariants hold, but no
         partial run leaks into [result.runs]. *)
      let drain_waves pool =
        while not (Queue.is_empty pending) do
          Guard.check_now ?cancel ?guard ();
          (* Explicit recursive drain: [Array.init] with a side-effecting
             body has unspecified evaluation order. *)
          let rec drain acc =
            if Queue.is_empty pending then List.rev acc
            else begin
              let item = Queue.pop pending in
              drain (item :: acc)
            end
          in
          let walks = Array.of_list (drain []) in
          let n = Array.length walks in
          let results = Array.make n None in
          let next_walk = Atomic.make 0 in
          let worker () =
            Gpo_obs.Span.time "gpn.worker" @@ fun () ->
            let rec claim () =
              let i = Atomic.fetch_and_add next_walk 1 in
              if i < n then begin
                results.(i) <- Some (do_walk walks.(i));
                claim ()
              end
            in
            claim ()
          in
          (match pool with
          | Some pool when n > 1 ->
              Par.Pool.run pool
                (List.init (min (Par.Pool.size pool) n) (fun _ -> worker))
          | _ -> worker ());
          Array.iter (function None -> () | Some w -> merge_walk w) results
        done
      in
      let interrupt = ref Guard.Completed in
      schedule ~key:net.Petri.Net.initial net.Petri.Net.initial Init;
      (try
         if jobs <= 1 then drain_waves None
         else Par.Pool.with_pool ~jobs (fun pool -> drain_waves (Some pool))
       with Guard.Interrupted reason -> interrupt := reason);
      {
        ctx;
        states = Atomic.get total_states;
        edges = Atomic.get total_edges;
        runs = List.rev !runs;
        deadlocks = List.rev !deadlocks;
        stop =
          (if !interrupt <> Guard.Completed then !interrupt
           else if Atomic.get truncated then Guard.State_budget
           else Guard.Completed);
      }

    let analyse ?reduction ?thorough ?scan ?max_states ?max_deadlocks ?jobs
        ?cancel ?guard net =
      explore ?reduction ?thorough ?scan ?max_states ?max_deadlocks ?jobs
        ?cancel ?guard (Dynamics.make net)

    let deadlock_free result = result.deadlocks = []

    (* Transitions fired by world [v] along the run's path from its
       initial state to [target]. *)
    let replay_in_world ?cancel ctx run v target =
      let rec path s acc =
        Par.Cancel.check_opt cancel;
        Guard.Fault.probe "gpo.witness";
        match State.Table.find_opt run.predecessor s with
        | None -> acc
        | Some (label, s_prev) -> path s_prev ((s_prev, label) :: acc)
      in
      let steps = path target [] in
      List.concat_map
        (fun (s, label) ->
          let fired_multiples =
            Bitset.fold
              (fun t acc ->
                if W.mem v (Dynamics.m_enabled ctx t s) then t :: acc else acc)
              label.multiples []
            |> List.rev
          in
          let fired_singles =
            List.filter (fun t -> W.mem v (Dynamics.s_enabled ctx t s)) label.singles
          in
          fired_multiples @ fired_singles)
        steps

    (* Classical trace from the net's initial marking to the run's
       root. *)
    let rec root_trace ?cancel ctx run =
      match run.origin with
      | Init -> []
      | Deviation { parent; state; world; transition } ->
          root_trace ?cancel ctx parent
          @ replay_in_world ?cancel ctx parent world state
          @ [ transition ]

    let d_witness_len = Gpo_obs.Dist.make "gpo.witness.length"

    let deadlock_trace ?cancel result witness =
      Gpo_obs.Span.time "gpo.witness" @@ fun () ->
      let ctx = result.ctx in
      let v = W.choose witness.worlds in
      let trace =
        root_trace ?cancel ctx witness.run
        @ replay_in_world ?cancel ctx witness.run v witness.state
      in
      Gpo_obs.Dist.observe_int d_witness_len (List.length trace);
      trace

    let pp_summary ppf result =
      Format.fprintf ppf "%s (GPO): %d states, %d edges, %d run(s), %s%s"
        (Dynamics.net result.ctx).Petri.Net.name result.states result.edges
        (List.length result.runs)
        (if result.deadlocks = [] then "deadlock free"
         else Printf.sprintf "%d deadlock witness(es)" (List.length result.deadlocks))
        (if truncated result then
           Printf.sprintf " (stopped: %s)" (Guard.describe_stop result.stop)
         else "")
  end
end

(* The default engine (hash-consed world sets) — the library's
   [State]/[Dynamics]/[Explorer] modules re-export this instance — and
   the tree-representation engine kept for the ablation bench and the
   equivalence suite. *)
module Hashconsed = Make (World_set)
module Tree = Make (World_set_tree)
