module Bitset = Petri.Bitset
module Marking_table = Petri.Reachability.Marking_table
module Net' = Petri.Net

type label = { multiples : Bitset.t; singles : Petri.Net.transition list }

type reduction = Batched | Stepwise

type run = {
  root : Bitset.t;
  origin : origin;
  initial : State.t;
  predecessor : (label * State.t) State.Table.t;
  visited : unit State.Table.t;
}

and origin =
  | Init
  | Deviation of {
      parent : run;
      state : State.t;
      world : World_set.world;
      transition : Petri.Net.transition;
    }

type witness = {
  run : run;
  state : State.t;
  worlds : World_set.t;
  markings : Bitset.t list;
}

type result = {
  ctx : Dynamics.ctx;
  states : int;
  edges : int;
  runs : run list;
  deadlocks : witness list;
  truncated : bool;
}

(* Per-state enabling information, computed once. *)
type enabling = {
  s_enab : World_set.t array;  (* per transition *)
  m_enab : World_set.t array;  (* per transition; empty for non-choice *)
}

let enabling ctx s =
  let net = Dynamics.net ctx in
  let n = net.Petri.Net.n_transitions in
  let s_enab = Array.init n (fun t -> Dynamics.s_enabled ctx t s) in
  let choice = Dynamics.choice_transitions ctx in
  let m_enab =
    Array.init n (fun t ->
        if Bitset.mem t choice then World_set.filter_member t s_enab.(t)
        else World_set.empty)
  in
  { s_enab; m_enab }

(* Union of the presets of a choice transition's cluster partners:
   places whose marking decides whether a {e competitor} of [t] is
   enabled. *)
let partner_presets ctx =
  let net = Dynamics.net ctx in
  let conflict = Dynamics.conflict ctx in
  Array.init net.Petri.Net.n_transitions (fun t ->
      let cluster =
        Petri.Conflict.cluster_members conflict (Petri.Conflict.cluster_of conflict t)
      in
      Bitset.fold
        (fun t' acc ->
          if t' = t then acc else Bitset.union acc net.Petri.Net.pre.(t'))
        cluster
        (Bitset.empty net.Petri.Net.n_places))

(* Firing several transitions in one step is only deviation-safe when no
   batch member's output feeds the preset of another member's conflict
   partner: otherwise the step jumps over the intermediate marking in
   which that partner becomes enabled, and the deviation scan never sees
   the choice.  Deferred transitions stay multiple-enabled and fire in a
   later step; the fixpoint can only shrink, and a singleton batch can
   never skip a marking, so firing the lowest multiple alone is always a
   safe last resort. *)
let defer_unsafe_multiples ctx partner_pre en ~thorough multiples singles =
  let net = Dynamics.net ctx in
  let conflict = Dynamics.conflict ctx in
  let batch_post tbatch =
    List.fold_left
      (fun acc u -> Bitset.union acc net.Petri.Net.post.(u))
      (Bitset.fold
         (fun u acc -> Bitset.union acc net.Petri.Net.post.(u))
         tbatch
         (Bitset.empty net.Petri.Net.n_places))
      singles
  in
  let rec fixpoint multiples =
    let keep =
      Bitset.fold
        (fun t acc ->
          let others = batch_post (Bitset.remove t multiples) in
          if Bitset.intersects others partner_pre.(t) then acc else Bitset.add t acc)
        multiples
        (Bitset.empty (Bitset.width multiples))
    in
    if Bitset.equal keep multiples then multiples else fixpoint keep
  in
  (* Thorough mode: a world firing two transitions of the same cluster
     in one step skips the serialization in which the first firing
     re-enables a competitor of the second through a chain of other
     transitions, and the deviation scan cannot see it.  Keep at most
     one member per (cluster, overlapping worlds) group, firing first
     the transitions whose outputs feed some choice preset (they "open"
     re-entries whose conflicts must become visible). *)
  let serialize_same_cluster multiples =
    let choice_presets =
      Bitset.fold
        (fun t acc -> Bitset.union acc net.Petri.Net.pre.(t))
        (Dynamics.choice_transitions ctx)
        (Bitset.empty net.Petri.Net.n_places)
    in
    let opens t = Bitset.intersects net.Petri.Net.post.(t) choice_presets in
    let members = Bitset.elements multiples in
    let by_priority =
      List.sort
        (fun a b ->
          match Bool.compare (opens b) (opens a) with 0 -> Int.compare a b | c -> c)
        members
    in
    List.fold_left
      (fun kept t ->
        let clashes u =
          u <> t
          && Petri.Conflict.cluster_of conflict u = Petri.Conflict.cluster_of conflict t
          && (not (Petri.Conflict.in_conflict conflict u t))
          && World_set.exists (fun v -> World_set.mem v en.m_enab.(u)) en.m_enab.(t)
        in
        if Bitset.exists clashes kept then kept else Bitset.add t kept)
      (Bitset.empty (Bitset.width multiples))
      by_priority
  in
  let kept = fixpoint multiples in
  let kept = if thorough && not (Bitset.is_empty kept) then serialize_same_cluster kept else kept in
  if Bitset.is_empty kept && not (Bitset.is_empty multiples) && singles = [] then
    (* Precedence cycle with nothing else to fire: serialize by firing
       one transition alone.  The caller schedules restarts for the
       skipped "other transition first" interleavings. *)
    (Bitset.singleton (Bitset.width multiples) (Bitset.choose multiples), true)
  else (kept, false)

(* The transitions to fire from a state: all multiple-enabled choice
   transitions with the multiple rule, plus all single-enabled
   conflict-free transitions with the single rule, in one combined step
   (candidate MCSs first, matching the order of the paper's algorithm). *)
let successor_labels reduction ctx partner_pre ~thorough ~step en =
  let net = Dynamics.net ctx in
  let choice = Dynamics.choice_transitions ctx in
  let n = net.Petri.Net.n_transitions in
  let multiples = ref (Bitset.empty n) in
  let singles = ref [] in
  for t = n - 1 downto 0 do
    if Bitset.mem t choice then begin
      if not (World_set.is_empty en.m_enab.(t)) then multiples := Bitset.add t !multiples
    end
    else if not (World_set.is_empty en.s_enab.(t)) then singles := t :: !singles
  done;
  match reduction with
  | Batched ->
      if Bitset.is_empty !multiples && !singles = [] then ([], Bitset.empty n)
      else begin
        let fired, forced =
          defer_unsafe_multiples ctx partner_pre en ~thorough !multiples !singles
        in
        let skipped = if forced then Bitset.diff !multiples fired else Bitset.empty n in
        ([ { multiples = fired; singles = !singles } ], skipped)
      end
  | Stepwise ->
      (* One conflict cluster per step (singles stay batched: they are
         the uncontroversial part).  The cluster is picked by rotation
         on the step counter, not lowest-first: a cyclic component must
         not starve the others ("not postponed forever"). *)
      if Bitset.is_empty !multiples && !singles = [] then ([], Bitset.empty n)
      else if Bitset.is_empty !multiples then
        ([ { multiples = Bitset.empty n; singles = !singles } ], Bitset.empty n)
      else begin
        let conflict = Dynamics.conflict ctx in
        let cluster_ids =
          Bitset.fold
            (fun t acc ->
              let c = Petri.Conflict.cluster_of conflict t in
              if List.mem c acc then acc else c :: acc)
            !multiples []
          |> List.sort Int.compare
        in
        let picked = List.nth cluster_ids (step mod List.length cluster_ids) in
        let fired =
          Bitset.inter !multiples (Petri.Conflict.cluster_members conflict picked)
        in
        (* Rotation guarantees the other clusters fire in later steps;
           the cycle-closure safety net covers the rest, so they are
           not reported as skipped. *)
        ([ { multiples = fired; singles = !singles } ], Bitset.empty n)
      end

let apply ctx s { multiples; singles } = Dynamics.step_fire ctx ~multiples ~singles s

let debug = match Sys.getenv_opt "GPO_DEBUG" with Some _ -> true | None -> false

(* Telemetry.  Counters mirror the result record exactly (asserted by
   the test suite): [gpo.states] = [result.states], [gpo.restarts] =
   [List.length result.runs - 1].  The worlds-per-state distribution
   and the scan/fire spans only run with a sink installed — cardinal
   and clock calls are not free, and the uninstrumented hot path must
   stay within noise of the seed. *)
let c_states = Gpo_obs.Counter.make "gpo.states"
let c_edges = Gpo_obs.Counter.make "gpo.edges"
let c_restarts = Gpo_obs.Counter.make "gpo.restarts"
let c_witnesses = Gpo_obs.Counter.make "gpo.deadlock_witnesses"
let c_deviations = Gpo_obs.Counter.make "gpo.deviations_scheduled"
let d_worlds = Gpo_obs.Dist.make "gpo.worlds_per_state"

let classical_successor (net : Petri.Net.t) marking t =
  Bitset.union (Bitset.diff marking net.pre.(t)) net.post.(t)

(* Deadlock-equivalence normal form: fire the lowest-index enabled
   conflict-free transition until quiescence.  A conflict-free transition
   owns its preset exclusively, so it can never be disabled: no deadlock
   can be reached before it fires, and it commutes with every other
   firing — markings equal up to such firings reach exactly the same
   deadlocks.  The walk is deterministic; if it enters a cycle of
   conflict-free firings, the smallest marking of the cycle is the
   canonical representative. *)
let normal_form ctx marking =
  let net = Dynamics.net ctx in
  let choice = Dynamics.choice_transitions ctx in
  let next m =
    let rec search t =
      if t >= net.Petri.Net.n_transitions then None
      else if (not (Bitset.mem t choice)) && Petri.Semantics.enabled net t m then Some t
      else search (t + 1)
    in
    search 0
  in
  let seen = Marking_table.create 8 in
  let rec walk m =
    match next m with
    | None -> m
    | Some t ->
        if Marking_table.mem seen m then begin
          (* Cycle: walk it once more, collecting its markings. *)
          let rec collect m' acc =
            match next m' with
            | None -> assert false
            | Some t' ->
                let m'' = classical_successor net m' t' in
                if Bitset.equal m'' m then acc
                else collect m'' (if Bitset.compare m'' acc < 0 then m'' else acc)
          in
          collect m m
        end
        else begin
          Marking_table.add seen m ();
          walk (classical_successor net m t)
        end
  in
  walk marking

let explore ?(reduction = Batched) ?(thorough = true) ?(scan = true)
    ?(max_states = 1_000_000) ?(max_deadlocks = 64) ctx =
  let net = Dynamics.net ctx in
  let choice = Dynamics.choice_transitions ctx in
  let partner_pre = partner_presets ctx in
  let roots_done = Marking_table.create 16 in
  let pending = Queue.create () in
  let seen_dead_markings = Marking_table.create 16 in
  (* Every classical marking denoted by some world of some visited state:
     that world's continued exploration (plus further deviation scans)
     covers the marking's future, so deviations into these markings need
     no restart. *)
  let denoted_global = Marking_table.create 64 in
  let edges = ref 0 in
  let total_states = ref 0 in
  let deadlocks = ref [] in
  let witness_count = ref 0 in
  let truncated = ref false in
  let runs = ref [] in
  Gpo_obs.Counter.touch c_states;
  Gpo_obs.Counter.touch c_edges;
  Gpo_obs.Counter.touch c_restarts;
  Gpo_obs.Counter.touch c_witnesses;
  let schedule ~key root origin =
    (match origin with
    | Init -> ()
    | Deviation _ -> Gpo_obs.Counter.incr c_deviations);
    if not (Marking_table.mem roots_done key) then begin
      Marking_table.add roots_done key ();
      Queue.add (root, origin) pending
    end
  in
  schedule ~key:net.Petri.Net.initial net.Petri.Net.initial Init;
  while not (Queue.is_empty pending) do
    let root, origin = Queue.pop pending in
    (match origin with
    | Init -> ()
    | Deviation _ -> Gpo_obs.Counter.incr c_restarts);
    let run =
      {
        root;
        origin;
        initial = Dynamics.initial_of_marking ctx root;
        predecessor = State.Table.create 64;
        visited = State.Table.create 64;
      }
    in
    runs := run :: !runs;
    let visited = run.visited in
    (* Both reductions produce at most one successor per state, so a run
       is a path (possibly closing a cycle); we walk it carrying the
       previous state's rejection sets to scan only deviations that are
       new — a world that fires nothing keeps its tokens, hence its
       pending rejections, and those were already covered or restarted
       when they first appeared. *)
    let n_transitions = net.Petri.Net.n_transitions in
    let current = ref (Some (run.initial, Array.make n_transitions World_set.empty)) in
    State.Table.add visited run.initial ();
    incr total_states;
    Gpo_obs.Counter.incr c_states;
    while !current <> None do
      let s, prev_rejections =
        match !current with Some v -> v | None -> assert false
      in
      current := None;
      let en = enabling ctx s in
      if Gpo_obs.enabled () then begin
        Gpo_obs.Dist.observe_int d_worlds (World_set.cardinal (State.valid s));
        Gpo_obs.Progress.sample "gpo" (fun () ->
            [
              ("states", Gpo_obs.I !total_states);
              ("edges", Gpo_obs.I !edges);
              ("runs", Gpo_obs.I (List.length !runs));
              ("queue_depth", Gpo_obs.I (Queue.length pending));
              ("worlds", Gpo_obs.I (World_set.cardinal (State.valid s)));
            ])
      end;
      if debug then
        Format.eprintf "@[<v>STATE@ %a@]@." (State.pp net) s;
      (* Deadlock worlds: valid worlds enabling nothing. *)
      let live =
        Array.fold_left World_set.union World_set.empty en.s_enab
      in
      let dead = World_set.diff (State.valid s) live in
      if not (World_set.is_empty dead) then begin
        let fresh_markings =
          World_set.fold
            (fun v acc ->
              let m = State.denoted_marking s v in
              if Marking_table.mem seen_dead_markings m then acc
              else begin
                Marking_table.add seen_dead_markings m ();
                m :: acc
              end)
            dead []
        in
        if fresh_markings <> [] && !witness_count < max_deadlocks then begin
          incr witness_count;
          Gpo_obs.Counter.incr c_witnesses;
          deadlocks := { run; state = s; worlds = dead; markings = fresh_markings } :: !deadlocks
        end
      end;
      (* Deviation scan: a world whose denoted marking enables a choice
         transition its label rejected must have that branch covered by
         a sibling world, or the analysis restarts from the deviating
         marking. *)
      let denotation_cache = Hashtbl.create 32 in
      let denote v =
        match Hashtbl.find_opt denotation_cache v with
        | Some m -> m
        | None ->
            let m = State.denoted_marking s v in
            Hashtbl.add denotation_cache v m;
            m
      in
      let nf_cache = Hashtbl.create 32 in
      let nf_denote v =
        match Hashtbl.find_opt nf_cache v with
        | Some m -> m
        | None ->
            let m = normal_form ctx (denote v) in
            Hashtbl.add nf_cache v m;
            m
      in
      let sp_scan = Gpo_obs.Span.enter "gpo.scan" in
      if scan then
        World_set.iter
          (fun v -> Marking_table.replace denoted_global (nf_denote v) ())
          (State.valid s);
      let rejections = Array.make n_transitions World_set.empty in
      if scan then
      Bitset.iter
        (fun t ->
          rejections.(t) <- World_set.diff en.s_enab.(t) en.m_enab.(t);
          let rejecting = World_set.diff rejections.(t) prev_rejections.(t) in
          if not (World_set.is_empty rejecting) then begin
            (* Denotations of the worlds about to fire [t] this step:
               their post-firing markings are not yet in the global
               table, so cover them by pre-firing equality. *)
            let firing_denotations = lazy begin
              let table = Marking_table.create 8 in
              World_set.iter
                (fun u -> Marking_table.replace table (nf_denote u) ())
                en.m_enab.(t);
              table
            end in
            World_set.iter
              (fun v ->
                if not (Marking_table.mem (Lazy.force firing_denotations) (nf_denote v))
                then begin
                  let m_t = classical_successor net (denote v) t in
                  let key = normal_form ctx m_t in
                  if debug then
                    Format.eprintf "DEVIATION t=%s m_t=%a covered=%b@."
                      (Net'.transition_name net t) (Net'.pp_marking net) m_t
                      (Marking_table.mem denoted_global key);
                  if not (Marking_table.mem denoted_global key) then
                    schedule ~key m_t
                      (Deviation { parent = run; state = s; world = v; transition = t })
                end)
              rejecting
          end)
        choice;
      Gpo_obs.Span.exit sp_scan;
      (* Fire: at most one label per state.  A rejection is carried to
         the next state only for worlds that did not fire in this step:
         a world that moved has a new denotation, so its pending
         rejections must be re-scanned there. *)
      let sp_fire = Gpo_obs.Span.enter "gpo.fire" in
      let labels, skipped =
        successor_labels reduction ctx partner_pre ~thorough ~step:!edges en
      in
      (* Firing order was forced against the safe precedence (or a
         cluster was fired ahead of others in Stepwise mode): cover the
         "skipped transition first" interleavings by restarting from
         their firing markings. *)
      if scan then
        Bitset.iter
          (fun w ->
            World_set.iter
              (fun v ->
                let m_w = classical_successor net (denote v) w in
                let key = normal_form ctx m_w in
                if not (Marking_table.mem denoted_global key) then
                  schedule ~key m_w
                    (Deviation { parent = run; state = s; world = v; transition = w }))
              en.m_enab.(w))
          skipped;
      List.iter
        (fun label ->
          if debug then
            Format.eprintf "FIRE multiples=%a singles=%a@."
              (Net'.pp_transition_set net) label.multiples
              (Format.pp_print_list (fun ppf t ->
                 Format.pp_print_string ppf (Net'.transition_name net t))) label.singles;
          let s' = apply ctx s label in
          incr edges;
          Gpo_obs.Counter.incr c_edges;
          if State.Table.mem visited s' then begin
            if scan then begin
            (* Cycle closure: a transition postponed on every step of
               the cycle would otherwise never fire — restart from its
               firing markings (usually redundant and deduplicated;
               sound either way).  Covers both deferred multiples and,
               in Stepwise mode, the unfired singles. *)
            let fire_worlds t =
              if Bitset.mem t choice then
                if Bitset.mem t label.multiples then World_set.empty
                else en.m_enab.(t)
              else if List.mem t label.singles then World_set.empty
              else en.s_enab.(t)
            in
            (* Unlike the in-run deviation scan, these restarts must not
               be suppressed by the global denotation table: the table's
               premise — that a denoted marking's future is explored by
               its world — is exactly what the closing cycle violated.
               The root memoization still deduplicates. *)
            for t = 0 to net.Petri.Net.n_transitions - 1 do
              World_set.iter
                (fun v ->
                  let m_t = classical_successor net (denote v) t in
                  schedule ~key:(normal_form ctx m_t) m_t
                    (Deviation { parent = run; state = s; world = v; transition = t }))
                (fire_worlds t)
            done
            end
          end
          else begin
            if !total_states >= max_states then truncated := true
            else begin
              let moved =
                List.fold_left
                  (fun acc t -> World_set.union acc en.s_enab.(t))
                  (Bitset.fold
                     (fun t acc -> World_set.union acc en.m_enab.(t))
                     label.multiples World_set.empty)
                  label.singles
              in
              let carried = Array.map (fun ws -> World_set.diff ws moved) rejections in
              State.Table.add visited s' ();
              incr total_states;
              Gpo_obs.Counter.incr c_states;
              State.Table.add run.predecessor s' (label, s);
              current := Some (s', carried)
            end
          end)
        labels;
      Gpo_obs.Span.exit sp_fire
    done
  done;
  {
    ctx;
    states = !total_states;
    edges = !edges;
    runs = List.rev !runs;
    deadlocks = List.rev !deadlocks;
    truncated = !truncated;
  }

let analyse ?reduction ?thorough ?scan ?max_states ?max_deadlocks net =
  explore ?reduction ?thorough ?scan ?max_states ?max_deadlocks (Dynamics.make net)

let deadlock_free result = result.deadlocks = []

(* Transitions fired by world [v] along the run's path from its initial
   state to [target]. *)
let replay_in_world ctx run v target =
  let rec path s acc =
    match State.Table.find_opt run.predecessor s with
    | None -> acc
    | Some (label, s_prev) -> path s_prev ((s_prev, label) :: acc)
  in
  let steps = path target [] in
  List.concat_map
    (fun (s, label) ->
      let fired_multiples =
        Bitset.fold
          (fun t acc ->
            if World_set.mem v (Dynamics.m_enabled ctx t s) then t :: acc else acc)
          label.multiples []
        |> List.rev
      in
      let fired_singles =
        List.filter (fun t -> World_set.mem v (Dynamics.s_enabled ctx t s)) label.singles
      in
      fired_multiples @ fired_singles)
    steps

(* Classical trace from the net's initial marking to the run's root. *)
let rec root_trace ctx run =
  match run.origin with
  | Init -> []
  | Deviation { parent; state; world; transition } ->
      root_trace ctx parent @ replay_in_world ctx parent world state @ [ transition ]

let deadlock_trace result witness =
  let ctx = result.ctx in
  let v = World_set.choose witness.worlds in
  root_trace ctx witness.run @ replay_in_world ctx witness.run v witness.state

let pp_summary ppf result =
  Format.fprintf ppf "%s (GPO): %d states, %d edges, %d run(s), %s%s"
    (Dynamics.net result.ctx).Petri.Net.name result.states result.edges
    (List.length result.runs)
    (if result.deadlocks = [] then "deadlock free"
     else Printf.sprintf "%d deadlock witness(es)" (List.length result.deadlocks))
    (if result.truncated then " (truncated)" else "")
