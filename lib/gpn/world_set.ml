(* Hash-consed world sets.

   A world set is a big-endian Patricia trie over the interning ids of
   its member worlds (every inserted world is canonicalized through
   [Petri.Bitset.intern] first).  Trie nodes are themselves hash-consed
   through a weak unique table, so:

   - structurally equal sets are physically equal ([equal] is [==]);
   - [hash] and [compare] read a stored per-node id (O(1));
   - [cardinal] is stored in every branch (O(1));
   - the set algebra ([union]/[inter]/[diff]/[filter_member]) is
     memoized in bounded caches keyed on node-id pairs, with
     pointer-equality short-circuits ([union x x = x], and rebuilds
     that reproduce an operand — the subset cases — return the operand
     itself without allocating).

   The unique table is weak: nodes unreachable from any live state are
   reclaimed by the GC, so long exploration runs do not accumulate
   garbage canonical forms.  Memo caches are strong but bounded — when
   a cache reaches its bound it is dropped wholesale (the next misses
   rebuild the useful entries).  Node ids are never reused, so stale
   cache entries keyed on collected nodes can only miss, never alias.

   The previous balanced-tree representation is kept verbatim in
   {!World_set_tree}; both satisfy {!World_set_intf.S} and are compared
   head-to-head by the ablation bench and the equivalence suite. *)

module B = Petri.Bitset

type world = B.t

type t =
  | Empty
  | Leaf of { w : world; key : int; uid : int }
  | Branch of { prefix : int; bit : int; l : t; r : t; uid : int; card : int }

let uid = function Empty -> 0 | Leaf l -> l.uid | Branch b -> b.uid
let cardinal = function Empty -> 0 | Leaf _ -> 1 | Branch b -> b.card

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)

module Node_hash = struct
  type nonrec t = t

  (* Children are already canonical when a candidate is built, so
     physical equality on them decides structural equality. *)
  let equal a b =
    match (a, b) with
    | Leaf x, Leaf y -> x.key = y.key
    | Branch x, Branch y ->
        x.prefix = y.prefix && x.bit = y.bit && x.l == y.l && x.r == y.r
    | _ -> false

  let hash = function
    | Empty -> 0
    | Leaf x -> (x.key * 2654435761) land max_int
    | Branch x ->
        ((((x.prefix * 486187739) + x.bit) * 486187739 + uid x.l) * 486187739
        + uid x.r)
        land max_int
end

module Unique = Weak.Make (Node_hash)

(* Striped hashcons table: equal candidate nodes hash to the same
   stripe (children are already canonical, so [Node_hash.hash] is a
   function of content), which keeps the canonical-survivor guarantee
   while letting domains cons concurrently.  Each stripe lock is
   independent; they all probe under one obs.lock.wait.worldset.unique
   histogram. *)
let n_stripes = 64

let unique_stripes = Array.init n_stripes (fun _ -> Unique.create 256)

let unique_locks =
  Array.init n_stripes (fun _ -> Gpo_obs.Lock.make "worldset.unique")

let next_uid = Atomic.make 1

let fresh_uid () = Atomic.fetch_and_add next_uid 1

let c_nodes = Gpo_obs.Counter.make "worldset.unique_nodes"

let hashcons node =
  let i = Node_hash.hash node land (n_stripes - 1) in
  Gpo_obs.Lock.with_lock unique_locks.(i) (fun () ->
      let r = Unique.merge unique_stripes.(i) node in
      if r == node then Gpo_obs.Counter.incr c_nodes;
      r)

let leaf w =
  let w = B.intern w in
  hashcons (Leaf { w; key = B.id w; uid = fresh_uid () })

let branch prefix bit l r =
  hashcons
    (Branch { prefix; bit; l; r; uid = fresh_uid (); card = cardinal l + cardinal r })

(* Like [branch] but tolerates children emptied by [diff]/[filter]. *)
let branch0 prefix bit l r =
  match (l, r) with Empty, t | t, Empty -> t | _ -> branch prefix bit l r

(* ------------------------------------------------------------------ *)
(* Memo caches                                                         *)

let cache_bound = 1 lsl 17

(* Memoization is two-tiered and never takes a lock on the probe path.

   Tier 1 — per-domain caches: each domain owns its four memo tables in
   domain-local storage, so the recursive set algebra only ever touches
   tables no other domain can see.  The old design guarded one global
   table set with a probed mutex (obs.lock.wait.worldset.memo); that
   lock — and its contention — are gone entirely.

   Tier 2 — a read-mostly shared tier: small direct-mapped arrays of
   atomic slots publishing hot union/inter/diff results across domains.
   A slot holds [Some (key, result)]; readers [Atomic.get] and compare
   the key, writers [Atomic.set] unconditionally.  Races lose nothing
   but a memo entry; results are canonical either way.

   Cross-domain invalidation (Guard.on_memory_pressure must drop every
   domain's cache, not just the caller's) works by generation: a global
   counter is bumped by [clear_caches]; each domain lazily resets its
   tables when it next observes a stale generation.  Node ids are never
   reused, so a stale entry that survives until then can only miss,
   never alias. *)

type caches = {
  mutable gen : int;
  union_c : (int, t) Hashtbl.t;
  inter_c : (int, t) Hashtbl.t;
  diff_c : (int, t) Hashtbl.t;
  filter_c : (int, t) Hashtbl.t;
}

let cache_gen = Atomic.make 0

let caches_key =
  Domain.DLS.new_key (fun () ->
      {
        gen = Atomic.get cache_gen;
        union_c = Hashtbl.create 4096;
        inter_c = Hashtbl.create 4096;
        diff_c = Hashtbl.create 4096;
        filter_c = Hashtbl.create 4096;
      })

let reset_caches c =
  Hashtbl.reset c.union_c;
  Hashtbl.reset c.inter_c;
  Hashtbl.reset c.diff_c;
  Hashtbl.reset c.filter_c

let local_caches () =
  let c = Domain.DLS.get caches_key in
  let g = Atomic.get cache_gen in
  if c.gen <> g then begin
    c.gen <- g;
    reset_caches c
  end;
  c

let cache_store tbl key v =
  if Hashtbl.length tbl >= cache_bound then Hashtbl.reset tbl;
  Hashtbl.add tbl key v

(* Node ids fit in 31 bits for any realistic run (2^31 allocations);
   two of them pack into one 62-bit key, eliminating tuple allocation
   on the probe path. *)
let pack a b = (a lsl 31) lor b
let pack_comm a b = if a <= b then (a lsl 31) lor b else (b lsl 31) lor a

(* Shared tier. *)
let shared_bits = 14
let shared_size = 1 lsl shared_bits

let shared_slot key =
  let h = key lxor (key lsr 29) in
  (h * 0x9E3779B9) land (shared_size - 1)

let make_shared () : (int * t) option Atomic.t array =
  Array.init shared_size (fun _ -> Atomic.make None)

let shared_union = make_shared ()
let shared_inter = make_shared ()
let shared_diff = make_shared ()

let shared_find shared key =
  match Atomic.get shared.(shared_slot key) with
  | Some (k, r) when k = key -> Some r
  | _ -> None

let shared_publish shared key r = Atomic.set shared.(shared_slot key) (Some (key, r))

let c_union_hit = Gpo_obs.Counter.make "worldset.union.cache_hit"
let c_union_miss = Gpo_obs.Counter.make "worldset.union.cache_miss"
let c_inter_hit = Gpo_obs.Counter.make "worldset.inter.cache_hit"
let c_inter_miss = Gpo_obs.Counter.make "worldset.inter.cache_miss"
let c_diff_hit = Gpo_obs.Counter.make "worldset.diff.cache_hit"
let c_diff_miss = Gpo_obs.Counter.make "worldset.diff.cache_miss"
let c_filter_hit = Gpo_obs.Counter.make "worldset.filter.cache_hit"
let c_filter_miss = Gpo_obs.Counter.make "worldset.filter.cache_miss"

let touch_stats () =
  Gpo_obs.Counter.touch c_nodes;
  Gpo_obs.Counter.touch c_union_hit;
  Gpo_obs.Counter.touch c_union_miss;
  Gpo_obs.Counter.touch c_inter_hit;
  Gpo_obs.Counter.touch c_inter_miss;
  Gpo_obs.Counter.touch c_diff_hit;
  Gpo_obs.Counter.touch c_diff_miss;
  Gpo_obs.Counter.touch c_filter_hit;
  Gpo_obs.Counter.touch c_filter_miss

(* ------------------------------------------------------------------ *)
(* Big-endian Patricia plumbing (Okasaki & Gill; Filliâtre's Ptset).
   Keys are the non-negative interning ids of the member worlds.       *)

let zero_bit k m = k land m = 0

(* Bits strictly above [m]. *)
let mask k m = k land lnot ((m lsl 1) - 1)
let match_prefix k p m = mask k m = p

let highest_bit x =
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let x = x lor (x lsr 32) in
  x - (x lsr 1)

let branching_bit p0 p1 = highest_bit (p0 lxor p1)

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if zero_bit p0 m then branch (mask p0 m) m t0 t1 else branch (mask p0 m) m t1 t0

let rec mem_key k = function
  | Empty -> false
  | Leaf { key; _ } -> key = k
  | Branch { prefix; bit; l; r; _ } ->
      match_prefix k prefix bit && mem_key k (if zero_bit k bit then l else r)

(* [lf] is an already-consed leaf, reused physically. *)
let rec insert lf t =
  let k = match lf with Leaf { key; _ } -> key | _ -> assert false in
  match t with
  | Empty -> lf
  | Leaf { key = j; _ } -> if j = k then t else join k lf j t
  | Branch { prefix = p; bit = m; l; r; _ } ->
      if match_prefix k p m then
        if zero_bit k m then begin
          let l' = insert lf l in
          if l' == l then t else branch p m l' r
        end
        else begin
          let r' = insert lf r in
          if r' == r then t else branch p m l r'
        end
      else join k lf p t

let rec remove_key k t =
  match t with
  | Empty -> Empty
  | Leaf { key; _ } -> if key = k then Empty else t
  | Branch { prefix; bit; l; r; _ } ->
      if match_prefix k prefix bit then
        if zero_bit k bit then begin
          let l' = remove_key k l in
          if l' == l then t else branch0 prefix bit l' r
        end
        else begin
          let r' = remove_key k r in
          if r' == r then t else branch0 prefix bit l r'
        end
      else t

(* ------------------------------------------------------------------ *)
(* Set algebra                                                         *)

let rec union_in c s t =
  if s == t then s
  else
    match (s, t) with
    | Empty, x | x, Empty -> x
    | (Leaf _ as lf), t -> insert lf t
    | s, (Leaf _ as lf) -> insert lf s
    | Branch sb, Branch tb -> begin
        (* Fault probe on the memoized slow path only: the cheap
           structural cases above stay probe-free. *)
        Guard.Fault.probe "worldset.op";
        let key = pack_comm sb.uid tb.uid in
        match Hashtbl.find_opt c.union_c key with
        | Some r ->
            Gpo_obs.Counter.incr c_union_hit;
            r
        | None ->
        match shared_find shared_union key with
        | Some r ->
            Gpo_obs.Counter.incr c_union_hit;
            cache_store c.union_c key r;
            r
        | None ->
            Gpo_obs.Counter.incr c_union_miss;
            let union = union_in c in
            let r =
              if sb.bit = tb.bit && sb.prefix = tb.prefix then begin
                let l = union sb.l tb.l and r' = union sb.r tb.r in
                if l == sb.l && r' == sb.r then s
                else if l == tb.l && r' == tb.r then t
                else branch sb.prefix sb.bit l r'
              end
              else if sb.bit > tb.bit && match_prefix tb.prefix sb.prefix sb.bit
              then
                if zero_bit tb.prefix sb.bit then begin
                  let l = union sb.l t in
                  if l == sb.l then s else branch sb.prefix sb.bit l sb.r
                end
                else begin
                  let r' = union sb.r t in
                  if r' == sb.r then s else branch sb.prefix sb.bit sb.l r'
                end
              else if tb.bit > sb.bit && match_prefix sb.prefix tb.prefix tb.bit
              then
                if zero_bit sb.prefix tb.bit then begin
                  let l = union s tb.l in
                  if l == tb.l then t else branch tb.prefix tb.bit l tb.r
                end
                else begin
                  let r' = union s tb.r in
                  if r' == tb.r then t else branch tb.prefix tb.bit tb.l r'
                end
              else join sb.prefix s tb.prefix t
            in
            cache_store c.union_c key r;
            shared_publish shared_union key r;
            r
      end

let rec inter_in c s t =
  if s == t then s
  else
    match (s, t) with
    | Empty, _ | _, Empty -> Empty
    | (Leaf { key; _ } as lf), t -> if mem_key key t then lf else Empty
    | s, (Leaf { key; _ } as lf) -> if mem_key key s then lf else Empty
    | Branch sb, Branch tb -> begin
        let key = pack_comm sb.uid tb.uid in
        match Hashtbl.find_opt c.inter_c key with
        | Some r ->
            Gpo_obs.Counter.incr c_inter_hit;
            r
        | None ->
        match shared_find shared_inter key with
        | Some r ->
            Gpo_obs.Counter.incr c_inter_hit;
            cache_store c.inter_c key r;
            r
        | None ->
            Gpo_obs.Counter.incr c_inter_miss;
            let inter = inter_in c in
            let r =
              if sb.bit = tb.bit && sb.prefix = tb.prefix then begin
                let l = inter sb.l tb.l and r' = inter sb.r tb.r in
                (* Subset detection: a rebuild that reproduces an operand
                   returns it physically. *)
                if l == sb.l && r' == sb.r then s
                else if l == tb.l && r' == tb.r then t
                else branch0 sb.prefix sb.bit l r'
              end
              else if sb.bit > tb.bit && match_prefix tb.prefix sb.prefix sb.bit
              then inter (if zero_bit tb.prefix sb.bit then sb.l else sb.r) t
              else if tb.bit > sb.bit && match_prefix sb.prefix tb.prefix tb.bit
              then inter s (if zero_bit sb.prefix tb.bit then tb.l else tb.r)
              else Empty
            in
            cache_store c.inter_c key r;
            shared_publish shared_inter key r;
            r
      end

let rec diff_in c s t =
  if s == t then Empty
  else
    match (s, t) with
    | Empty, _ -> Empty
    | s, Empty -> s
    | (Leaf { key; _ } as lf), t -> if mem_key key t then Empty else lf
    | s, Leaf { key; _ } -> remove_key key s
    | Branch sb, Branch tb -> begin
        let key = pack sb.uid tb.uid in
        match Hashtbl.find_opt c.diff_c key with
        | Some r ->
            Gpo_obs.Counter.incr c_diff_hit;
            r
        | None ->
        match shared_find shared_diff key with
        | Some r ->
            Gpo_obs.Counter.incr c_diff_hit;
            cache_store c.diff_c key r;
            r
        | None ->
            Gpo_obs.Counter.incr c_diff_miss;
            let diff = diff_in c in
            let r =
              if sb.bit = tb.bit && sb.prefix = tb.prefix then begin
                let l = diff sb.l tb.l and r' = diff sb.r tb.r in
                if l == sb.l && r' == sb.r then s else branch0 sb.prefix sb.bit l r'
              end
              else if sb.bit > tb.bit && match_prefix tb.prefix sb.prefix sb.bit
              then
                if zero_bit tb.prefix sb.bit then begin
                  let l = diff sb.l t in
                  if l == sb.l then s else branch0 sb.prefix sb.bit l sb.r
                end
                else begin
                  let r' = diff sb.r t in
                  if r' == sb.r then s else branch0 sb.prefix sb.bit sb.l r'
                end
              else if tb.bit > sb.bit && match_prefix sb.prefix tb.prefix tb.bit
              then diff s (if zero_bit sb.prefix tb.bit then tb.l else tb.r)
              else s
            in
            cache_store c.diff_c key r;
            shared_publish shared_diff key r;
            r
      end

let union s t = union_in (local_caches ()) s t
let inter s t = inter_in (local_caches ()) s t
let diff s t = diff_in (local_caches ()) s t

let rec subset s t =
  s == t
  ||
  match (s, t) with
  | Empty, _ -> true
  | _, Empty -> false
  | Leaf { key; _ }, t -> mem_key key t
  | Branch _, Leaf _ -> false
  | Branch sb, Branch tb ->
      if sb.bit = tb.bit && sb.prefix = tb.prefix then
        subset sb.l tb.l && subset sb.r tb.r
      else if sb.bit < tb.bit && match_prefix sb.prefix tb.prefix tb.bit then
        subset s (if zero_bit sb.prefix tb.bit then tb.l else tb.r)
      else false

let filter_member tr s =
  let c = local_caches () in
  let rec go s =
    match s with
    | Empty -> Empty
    | Leaf { w; _ } -> if B.mem tr w then s else Empty
    | Branch b -> begin
        let key = pack tr b.uid in
        match Hashtbl.find_opt c.filter_c key with
        | Some r ->
            Gpo_obs.Counter.incr c_filter_hit;
            r
        | None ->
            Gpo_obs.Counter.incr c_filter_miss;
            let l = go b.l and r' = go b.r in
            let r = if l == b.l && r' == b.r then s else branch0 b.prefix b.bit l r' in
            cache_store c.filter_c key r;
            r
      end
  in
  go s

(* ------------------------------------------------------------------ *)
(* The rest of the signature                                           *)

let empty = Empty
let is_empty = function Empty -> true | _ -> false
let singleton w = leaf w
let add w t = insert (leaf w) t

let mem w t =
  match t with Empty -> false | _ -> mem_key (B.id (B.intern w)) t

let equal a b = a == b
let compare a b = Int.compare (uid a) (uid b)
let hash t = (uid t * 2654435761) land max_int

(* Content-minimal element, matching {!World_set_tree.choose}
   ([Set.min_elt]): trie order is interning order, which depends on the
   global interleaving of [Bitset.intern] calls, so the leftmost leaf
   would differ run-to-run under parallel interning.  The minimum by
   [Bitset.compare] is a pure function of the set's contents. *)
let rec choose = function
  | Empty -> raise Not_found
  | Leaf { w; _ } -> w
  | Branch { l; r; _ } ->
      let a = choose l and b = choose r in
      if B.compare a b <= 0 then a else b

let filter p t =
  let rec go t =
    match t with
    | Empty -> Empty
    | Leaf { w; _ } -> if p w then t else Empty
    | Branch b ->
        let l = go b.l and r = go b.r in
        if l == b.l && r == b.r then t else branch0 b.prefix b.bit l r
  in
  go t

let rec iter f = function
  | Empty -> ()
  | Leaf { w; _ } -> f w
  | Branch { l; r; _ } ->
      iter f l;
      iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf { w; _ } -> f w acc
  | Branch { l; r; _ } -> fold f r (fold f l acc)

let rec for_all p = function
  | Empty -> true
  | Leaf { w; _ } -> p w
  | Branch { l; r; _ } -> for_all p l && for_all p r

let rec exists p = function
  | Empty -> false
  | Leaf { w; _ } -> p w
  | Branch { l; r; _ } -> exists p l || exists p r

let elements t =
  (* Trie order is interning order; sort so both representations list
     elements identically (and [pp] stays deterministic). *)
  List.sort B.compare (fold (fun w acc -> w :: acc) t [])

let of_list worlds = List.fold_left (fun acc w -> add w acc) Empty worlds

let inter_all = function
  | [] -> invalid_arg "World_set.inter_all: empty list"
  | first :: rest -> List.fold_left inter first rest

let product width factors =
  let seed = singleton (B.empty width) in
  let extend acc factor =
    fold
      (fun prefix out -> fold (fun w out -> add (B.union prefix w) out) factor out)
      acc Empty
  in
  List.fold_left extend seed factors

let fast_identity = true

let pp ?name () ppf ws =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (B.pp ?name ()))
    (elements ws)

(* Exposed for the micro-bench and tests. *)
let unique_nodes () =
  Array.fold_left (fun acc s -> acc + Unique.count s) 0 unique_stripes

let clear_shared shared =
  Array.iter (fun slot -> Atomic.set slot None) shared

let clear_caches () =
  (* Bump the generation so every other domain resets its local tables
     the next time it touches them; the caller's tables and the shared
     tier are dropped immediately. *)
  Atomic.incr cache_gen;
  let c = Domain.DLS.get caches_key in
  c.gen <- Atomic.get cache_gen;
  reset_caches c;
  clear_shared shared_union;
  clear_shared shared_inter;
  clear_shared shared_diff

(* Under memory pressure the memo tables are the recoverable ballast:
   dropping them costs recomputation, not correctness. *)
let () = Guard.on_memory_pressure clear_caches
