(** Sets of transition sets — the markings of Generalized Petri Nets.

    This is the default, hash-consed representation: a big-endian
    Patricia trie over the interning ids ({!Petri.Bitset.id}) of its
    member worlds, with trie nodes canonicalized through a weak unique
    table.  Structurally equal sets are physically equal, [hash] and
    [cardinal] are O(1), and the set algebra is memoized in bounded
    caches keyed on node ids.  See DESIGN.md, "The interning layer".

    The previous balanced-tree representation survives as
    {!World_set_tree}; both implement {!World_set_intf.S} and the GPN
    engine ({!Core.Make}) is a functor over that signature, so the
    ablation bench and the equivalence suite can run the two
    head-to-head. *)

include World_set_intf.S

val unique_nodes : unit -> int
(** Live nodes in the weak unique table (collected nodes excluded). *)

val clear_caches : unit -> unit
(** Drop the memo caches (union/inter/diff/filter_member): the calling
    domain's tables and the shared publication tier immediately, every
    other domain's tables lazily via a generation bump the next time
    that domain performs a set operation.  Canonical forms are
    unaffected; used by {!Guard.on_memory_pressure} and by benchmarks
    to measure cold starts. *)
