(** Cross-validation of GPO analysis against conventional analysis.

    The paper argues (Section 3.3) that the generalized partial-order
    algorithm computes enough of the reachable states of the GPN to
    decide the behaviour of the safe classical net with the same
    structure.  This module checks exactly that, exhaustively, on a
    given net:

    - the deadlock verdicts of both engines agree;
    - every deadlock witness marking reported by GPO is a real
      deadlocked classical marking (soundness);
    - every classical deadlocked marking is reported by some GPO
      witness (completeness);
    - every classical marking denoted by any visited GPN state is
      classically reachable (the [mapping] consistency of
      Definitions 3.3/3.6);
    - every extracted witness trace replays on the classical net and
      ends in a dead marking.

    It is meant for small nets (both engines run exhaustively) and is
    the backbone of the property-based test suite. *)

type report = {
  verdict_agrees : bool;
  witnesses_sound : bool;
  witnesses_complete : bool;
  denotations_reachable : bool;
  traces_valid : bool;
  classical_states : int;
  gpo_states : int;
  classical_deadlocks : int;
  detail : string option;  (** Description of the first discrepancy, if any. *)
}

val validate :
  ?reduction:Explorer.reduction ->
  ?thorough:bool ->
  ?max_states:int ->
  Petri.Net.t ->
  (report, Guard.stop_reason) result
(** Run both engines exhaustively ([max_states] defaults to [200_000])
    and compare.  [Error reason] if either exploration stopped before
    covering its state space (typically [State_budget] — use small
    nets); the comparison would be meaningless on partial spaces. *)

val ok : report -> bool
(** All five checks passed. *)

val pp : Format.formatter -> report -> unit
(** Render the report, flagging failed checks. *)
