(** The signature of world-set representations.

    A {e world} is a transition set ([Petri.Bitset.t] over transitions):
    a complete pre-resolution of every conflict cluster of the net (a
    "color" in the intuition of Section 3.1 of the paper, a {e valid
    transition set} in Definition 3.1).  A world set is a set of worlds:
    both the content [m(p)] of a GPN place and the valid-set component
    [r] of a GPN state are world sets.

    The GPN engine ({!Core.Make}) is a functor over this signature so
    that representations can be compared head-to-head by the ablation
    bench and the equivalence test suite.  Two implementations exist:

    - {!World_set} — hash-consed Patricia tries over interned world
      ids, with memoized set algebra (the default);
    - {!World_set_tree} — the original balanced tree of bit sets kept
      as the ablation baseline. *)

module type S = sig
  type t

  type world = Petri.Bitset.t

  val empty : t
  val is_empty : t -> bool
  val singleton : world -> t
  val add : world -> t -> t
  val mem : world -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int

  val hash : t -> int
  (** Compatible with {!equal}. *)

  val cardinal : t -> int

  val choose : t -> world
  (** The minimum element by {!Petri.Bitset.compare}; raises
      [Not_found] on the empty set.  Content-determined so witness
      traces are reproducible across representations and across
      parallel runs (interning order is not). *)

  val filter : (world -> bool) -> t -> t

  val filter_member : int -> t -> t
  (** [filter_member t ws] keeps the worlds containing transition [t] —
      the core of the multiple enabling rule (Definition 3.5). *)

  val iter : (world -> unit) -> t -> unit
  val fold : (world -> 'a -> 'a) -> t -> 'a -> 'a
  val for_all : (world -> bool) -> t -> bool
  val exists : (world -> bool) -> t -> bool

  val elements : t -> world list
  (** Elements in increasing {!Petri.Bitset.compare} order (both
      representations agree, which the equivalence suite relies on). *)

  val of_list : world list -> t

  val inter_all : t list -> t
  (** Intersection of a non-empty list of world sets; raises
      [Invalid_argument] on the empty list. *)

  val product : int -> t list -> t
  (** [product width factors] is the set of unions [w1 ∪ ... ∪ wk] for
      every choice of [wi] in the [i]-th factor — used to build the
      initial valid sets [r0] as the product of per-cluster
      alternatives.  [width] is the bit-set width used when [factors]
      is empty (the result is then the singleton of the empty world). *)

  val fast_identity : bool
  (** [true] when {!equal} and {!hash} are (near-)constant-time — i.e.
      the representation is canonical enough that keying caches on
      whole world sets is cheap.  The engine gates its own memo layers
      on this so the tree baseline is measured unpolluted. *)

  val touch_stats : unit -> unit
  (** Mark the representation's telemetry counters active so they
      appear in snapshots even at zero (no-op for representations
      without counters). *)

  val pp : ?name:(int -> string) -> unit -> Format.formatter -> t -> unit
  (** Pretty-print as [{{a,b},{c}}] with element names. *)
end
