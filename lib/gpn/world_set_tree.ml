(* The original world-set representation: a balanced tree of bit sets
   ([Set.Make] over [Petri.Bitset]).  Kept as the ablation baseline for
   the hash-consed default ({!World_set}); the bench suite runs the GPN
   engine over both and records the head-to-head times in
   [BENCH_ablation.json]. *)

module S = Set.Make (Petri.Bitset)

type t = S.t
type world = Petri.Bitset.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let add = S.add
let mem = S.mem
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let compare = S.compare

let hash ws =
  (* Set iteration is in increasing element order, so this is a
     deterministic function of the set's contents. *)
  S.fold (fun w acc -> (acc * 486187739) + Petri.Bitset.hash w) ws 0x9e3779b9

let cardinal = S.cardinal

let choose ws = try S.min_elt ws with Not_found -> raise Not_found

let filter = S.filter
let filter_member t ws = S.filter (fun w -> Petri.Bitset.mem t w) ws
let iter = S.iter
let fold = S.fold
let for_all = S.for_all
let exists = S.exists
let elements = S.elements
let of_list worlds = List.fold_left (fun acc w -> S.add w acc) S.empty worlds

let inter_all = function
  | [] -> invalid_arg "World_set.inter_all: empty list"
  | first :: rest -> List.fold_left inter first rest

let product width factors =
  let seed = singleton (Petri.Bitset.empty width) in
  let extend acc factor =
    fold
      (fun prefix out ->
        fold (fun w out -> add (Petri.Bitset.union prefix w) out) factor out)
      acc empty
  in
  List.fold_left extend seed factors

let fast_identity = false
let touch_stats () = ()

let pp ?name () ppf ws =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (Petri.Bitset.pp ?name ()))
    (elements ws)
