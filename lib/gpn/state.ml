(* Re-export of the default engine's states (hash-consed world sets).
   The implementation lives in [Core.Make]; see core.ml. *)
include Core.Hashconsed.State
