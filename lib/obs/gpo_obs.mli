(** Unified telemetry for the verification engines.

    Every engine reports to the same global registry of named
    {e counters} (monotonic), {e gauges} (last value wins),
    {e distributions} (log-bucketed histograms with p50/p90/p99) and
    {e spans} (timed, nested scopes).  Telemetry has two halves:

    - {b Aggregates} (counters, gauges, distributions, span totals)
      accumulate in the registry whenever instrumented code runs; they
      cost an unconditional integer update per hit.  {!reset} zeroes
      them, {!snapshot} reads them out, {!pp_summary} renders the
      human [--stats] block.
    - {b Events} (span begin/end, periodic progress samples, metadata,
      final totals) stream to the installed {!type-sink}.  With no sink
      installed ({!enabled}[ () = false]) the event half is off: spans
      cost one branch, samples cost one branch, nothing allocates —
      the overhead budget checked by the micro-bench.

    Sinks are pluggable: {!null_sink} drops every event (for overhead
    measurements with the event half on), {!jsonl_sink} writes one
    JSON object per line for offline analysis, {!memory_sink} retains
    events for tests.  The registry is global and domain-safe: counters
    and gauges are atomic, distributions and span totals are
    mutex-guarded, the span scope stack is domain-local, and events can
    be captured per domain with {!Scoped} and merged at report time.
    Callers delimit a measurement with {!reset}/{!snapshot} (or
    {!with_sink}); install/uninstall/reset themselves belong to the
    coordinating domain. *)

(** Minimal JSON values: the wire format of the JSONL sink and of the
    machine-readable bench reports ([BENCH_*.json]).  Self-contained so
    the toolkit needs no external JSON dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering.  Non-finite floats render as
      [null] (JSON has no representation for them). *)

  val to_channel : out_channel -> t -> unit
  (** [to_string] followed by a newline — one JSONL record. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON value; [Error msg] names the first offence. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

type value = I of int | F of float | S of string | B of bool
(** Telemetry field values. *)

val json_of_value : value -> Json.t

type kind =
  | Counter_v
  | Gauge_v
  | Dist_v
  | Span_v
  | Sample_v
  | Meta_v
  | Instant_v  (** Point-in-time markers: guard trips, faults, cancels. *)
(** Event kinds, one per record type of the JSONL schema. *)

type event = {
  time : float;  (** Seconds since the sink was installed. *)
  kind : kind;
  dom : int;  (** Id of the domain that emitted the event. *)
  name : string;  (** Metric name, or span path like ["a/b"]. *)
  fields : (string * value) list;
}

val json_of_event : event -> Json.t
(** The JSONL schema:
    [{"t":…,"ev":"counter"|…,"dom":…,"name":…,"fields":{…}}]. *)

val event_of_json : Json.t -> (event, string) result
(** Inverse of {!json_of_event} (used by the round-trip tests and the
    CI smoke check). *)

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
}

val null_sink : sink
(** Accepts and drops every event. *)

val jsonl_sink : (string -> unit) -> sink
(** [jsonl_sink write] renders each event with {!json_of_event} and
    passes the line (no trailing newline) to [write]. *)

val jsonl_channel_sink : out_channel -> sink
(** {!jsonl_sink} writing newline-terminated lines to a channel;
    [flush] flushes the channel. *)

val memory_sink : unit -> sink * (unit -> event list)
(** A sink retaining events in memory, with a reader returning them in
    emission order. *)

val tee_sink : sink -> sink -> sink
(** Duplicate every event (and flush) to both sinks, in order — e.g. a
    JSONL stream and an in-memory trace collector at once. *)

val install : sink -> unit
(** Make [sink] the destination of the event half (replacing any
    previous sink) and restart the event clock. *)

val uninstall : unit -> unit
(** Flush and remove the installed sink, if any. *)

val enabled : unit -> bool
(** [true] iff a sink is installed. *)

val emit : kind -> string -> (string * value) list -> unit
(** Emit one event to the installed sink; no-op when disabled. *)

val meta : string -> (string * value) list -> unit
(** [emit Meta_v]: tag the trace with run metadata (net, engine, …). *)

val instant : string -> (string * value) list -> unit
(** [emit Instant_v]: mark a point-in-time occurrence (guard trip,
    injected fault, cancellation) on the emitting domain's timeline. *)

(** Per-domain event capture, for code that runs engines on several
    domains at once (the portfolio racer, the parallel test drivers).
    While a capture is active on a domain, events emitted from that
    domain are buffered locally instead of being written to the shared
    sink; the coordinator replays the buffers it wants to keep once the
    race is decided — the JSONL trace stays a single coherent stream.
    Aggregates (counters, gauges, distributions, span totals) are
    unaffected: they accumulate globally, atomically, from every
    domain. *)
module Scoped : sig
  val capture : (unit -> 'a) -> 'a * event list
  (** Run the thunk with this domain's events buffered; return its
      result and the buffered events in emission order.  Nesting is
      allowed (the inner capture wins); captures on other domains are
      independent. *)

  val replay : event list -> unit
  (** Emit previously captured events to the installed sink (no-op when
      disabled).  Event timestamps are preserved from capture time. *)
end

(** Named monotonic counters. *)
module Counter : sig
  type t

  val make : string -> t
  (** Intern the counter named [name] (idempotent: the same name yields
      the same cell).  Typically called once at module initialisation. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val touch : t -> unit
  (** Mark the counter active so it appears in the next {!snapshot}
      even at zero — engines touch their counters on entry so a stats
      block always shows the full set (e.g. [gpo.restarts 0]). *)

  val value : t -> int
  val name : t -> string
end

(** Named gauges: last value wins. *)
module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float
end

(** Named distributions: lock-free log-bucketed histograms (HDR-style,
    8 sub-buckets per power-of-two octave, ~6% worst-case relative
    quantile error) with exact count / sum / min / max on the side.
    Observation is wait-free in the common case — an atomic count
    increment, CAS loops for sum/min/max, and one atomic bucket
    increment — so domains can observe concurrently without locks and
    their histograms merge by construction (one shared cell per
    name). *)
module Dist : sig
  type t

  val make : string -> t
  val observe : t -> float -> unit
  val observe_int : t -> int -> unit
  val count : t -> int
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile d q] for [q] in [0,1]: approximate q-th quantile from
      the log buckets, clamped to the exact observed [min,max].
      Returns [nan] when the distribution is empty. *)

  val bucket_of_value : float -> int
  (** Index of the histogram bucket a value falls in (exposed for the
      bucketing tests). *)

  val bucket_mid : int -> float
  (** Representative (midpoint) value of a bucket index. *)

  val bucket_count : int
  (** Total number of buckets, including under/overflow. *)
end

(** Timed spans with nested scopes.  Nesting is tracked by a scope
    stack: a span entered while ["a"] is open aggregates under the path
    ["a/b"].  Aggregation and events only happen when {!enabled}; the
    disabled cost is one branch per [enter]/[exit]. *)
module Span : sig
  type t

  val enter : string -> t

  val exit : t -> unit
  (** [exit] should be called in LIFO order with [enter].  A violation
      (exiting a span that is not the innermost open one, or exiting
      twice) is detected, counted under [obs.span.misnested], and
      recovered from without corrupting the scope stack; the span's end
      event is tagged [misnested=true]. *)

  val time : string -> (unit -> 'a) -> 'a
  (** [time name f] = [enter]; [f ()]; [exit] (exception-safe). *)
end

(** Mutexes with contention probes.  [acquire] takes the uncontended
    fast path with [Mutex.try_lock]; only a contended acquisition pays
    for clock reads and a [lock.wait.<site>] span, and every
    acquisition records its wait time (zero when uncontended) in the
    [obs.lock.wait.<site>] distribution — so p99 exposes the contended
    fraction.  With telemetry disabled the cost is one branch over a
    plain [Mutex.lock]. *)
module Lock : sig
  type t

  val make : string -> t
  (** [make site] creates the mutex probing as
      [obs.lock.wait.<site>]. *)

  val acquire : t -> unit
  val release : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [acquire]; run; [release] (exception-safe). *)
end

(** Periodic progress sampling, rate-limited per metric name.  Samples
    go to the sink as [Sample_v] events and, when a heartbeat printer
    is set, to it as a rendered one-line string (the CLI's stderr
    progress line for long runs).  When a sampled field is named
    ["states"], a derived ["states_per_s"] rate field is appended. *)
module Progress : sig
  val sample : string -> (unit -> (string * value) list) -> unit
  (** No-op unless a sink is installed or a heartbeat printer is set;
      otherwise evaluates the thunk at most once per {!set_interval}
      seconds per name. *)

  val set_heartbeat : (string -> unit) option -> unit
  (** Install (or remove) the heartbeat line printer. *)

  val set_interval : float -> unit
  (** Minimum seconds between samples of the same name (default 0.5). *)
end

type dist_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;  (** Approximate median (log-bucket quantile). *)
  p90 : float;
  p99 : float;
}
type span_stats = { count : int; total_s : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  dists : (string * dist_stats) list;
  spans : (string * span_stats) list;
}
(** Aggregate totals since the last {!reset}, each section sorted by
    name.  Only metrics touched since the reset are included. *)

val snapshot : unit -> snapshot
val reset : unit -> unit

val pp_summary : Format.formatter -> snapshot -> unit
(** The human [--stats] block.  Ends with a "top contended locks" line
    ranking the [obs.lock.wait.*] sites by total wait time when any
    lock probe fired. *)

val json_of_snapshot : snapshot -> Json.t

val emit_snapshot : unit -> unit
(** Stream the current snapshot to the sink as one event per metric
    ([Counter_v]/[Gauge_v]/[Dist_v]/[Span_v] records with final
    totals); no-op when disabled. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f]: {!install}[ s]; {!reset}; run [f]; stream the
    final snapshot with {!emit_snapshot}; {!uninstall} (also on
    exceptions); return [f ()]'s result. *)

(** Chrome trace-event export: render a captured event stream as the
    JSON format Perfetto and [chrome://tracing] load.  Spans become
    duration ([B]/[E]) events on one thread track per domain, counters
    and progress samples become counter ([C]) tracks, instants become
    instant ([i]) events, and metadata names the tracks.  The renderer
    tolerates unbalanced spans: stray ends are dropped and dangling
    begins are closed at the last timestamp, so traces from crashed or
    cancelled runs still load. *)
module Trace : sig
  val json_of_events : event list -> Json.t
  (** The full trace object:
      [{"traceEvents":[…],"displayTimeUnit":"ms"}]. *)

  val collecting_sink : unit -> sink * (unit -> event list)
  (** A sink buffering events for later rendering (alias of
      {!memory_sink}). *)

  val write_file : string -> event list -> unit
  (** Render and write a trace file at [path]. *)
end

val summarize_events : event list -> Json.t
(** Fold a captured event stream (from {!Scoped.capture}) into a
    compact JSON object:
    [{"events":N,"spans":{"name":{"count":…,"total_s":…},…},
      "instants":{"name":N,…}}] — span totals are rebuilt from the
    [phase=end] events, instants counted by name.  The verification
    service attaches this summary to every response so a client sees
    where its request spent its time without needing the full trace. *)
