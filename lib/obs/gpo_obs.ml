(* Global telemetry registry + pluggable event sinks.

   Domain-safe: counters and gauges are atomic cells, distributions
   take a per-cell mutex, the registry tables and the installed sink
   are guarded by mutexes, and the span scope stack is domain-local.
   Events emitted while a [Scoped] buffer is active on the current
   domain are retained there instead of hitting the shared sink; the
   spawning code replays them at report time, so a JSONL trace stays
   one coherent stream even with engines racing in parallel. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then begin
          let s = Printf.sprintf "%.17g" f in
          (* Shorter representation when it round-trips. *)
          let short = Printf.sprintf "%g" f in
          Buffer.add_string buf (if float_of_string short = f then short else s)
        end
        else Buffer.add_string buf "null"
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  let to_channel oc t =
    output_string oc (to_string t);
    output_char oc '\n'

  (* Recursive-descent parser, sufficient for our own output. *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> begin
            advance ();
            (match peek () with
            | Some '"' -> Buffer.add_char buf '"'
            | Some '\\' -> Buffer.add_char buf '\\'
            | Some '/' -> Buffer.add_char buf '/'
            | Some 'n' -> Buffer.add_char buf '\n'
            | Some 'r' -> Buffer.add_char buf '\r'
            | Some 't' -> Buffer.add_char buf '\t'
            | Some 'b' -> Buffer.add_char buf '\b'
            | Some 'f' -> Buffer.add_char buf '\012'
            | Some 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* Only BMP code points below 0x80 are emitted verbatim;
                   others are kept as UTF-8 of the code point. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                pos := !pos + 4
            | _ -> fail "bad escape");
            advance ();
            go ()
          end
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elems [])
          end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

type value = I of int | F of float | S of string | B of bool

let json_of_value = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.String s
  | B b -> Json.Bool b

type kind = Counter_v | Gauge_v | Dist_v | Span_v | Sample_v | Meta_v | Instant_v

let kind_label = function
  | Counter_v -> "counter"
  | Gauge_v -> "gauge"
  | Dist_v -> "dist"
  | Span_v -> "span"
  | Sample_v -> "sample"
  | Meta_v -> "meta"
  | Instant_v -> "instant"

let kind_of_label = function
  | "counter" -> Some Counter_v
  | "gauge" -> Some Gauge_v
  | "dist" -> Some Dist_v
  | "span" -> Some Span_v
  | "sample" -> Some Sample_v
  | "meta" -> Some Meta_v
  | "instant" -> Some Instant_v
  | _ -> None

type event = {
  time : float;
  kind : kind;
  dom : int;
  name : string;
  fields : (string * value) list;
}

let json_of_event e =
  Json.Obj
    [
      ("t", Json.Float e.time);
      ("ev", Json.String (kind_label e.kind));
      ("dom", Json.Int e.dom);
      ("name", Json.String e.name);
      ("fields", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) e.fields));
    ]

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* t = field "t" in
  let* time =
    match t with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error "\"t\" is not a number"
  in
  let* ev = field "ev" in
  let* kind =
    match ev with
    | Json.String s -> (
        match kind_of_label s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "unknown event kind %S" s))
    | _ -> Error "\"ev\" is not a string"
  in
  let* name_j = field "name" in
  let* name =
    match name_j with
    | Json.String s -> Ok s
    | _ -> Error "\"name\" is not a string"
  in
  (* [dom] is optional: traces from before domain tagging default to 0. *)
  let* dom =
    match Json.member "dom" j with
    | None -> Ok 0
    | Some (Json.Int d) -> Ok d
    | Some _ -> Error "\"dom\" is not an integer"
  in
  let* fields_j = field "fields" in
  let* fields =
    match fields_j with
    | Json.Obj kvs ->
        let rec convert acc = function
          | [] -> Ok (List.rev acc)
          | (k, v) :: rest -> (
              match v with
              | Json.Int i -> convert ((k, I i) :: acc) rest
              | Json.Float f -> convert ((k, F f) :: acc) rest
              | Json.String s -> convert ((k, S s) :: acc) rest
              | Json.Bool b -> convert ((k, B b) :: acc) rest
              | _ -> Error (Printf.sprintf "field %S has a non-scalar value" k))
        in
        convert [] kvs
    | _ -> Error "\"fields\" is not an object"
  in
  Ok { time; kind; dom; name; fields }

type sink = { emit : event -> unit; flush : unit -> unit }

let null_sink = { emit = ignore; flush = ignore }

let tee_sink a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let jsonl_sink write =
  {
    emit = (fun e -> write (Json.to_string (json_of_event e)));
    flush = ignore;
  }

let jsonl_channel_sink oc =
  {
    emit = (fun e -> Json.to_channel oc (json_of_event e));
    flush = (fun () -> flush oc);
  }

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

(* ------------------------------------------------------------------ *)
(* Global sink state                                                   *)

(* [sink_mutex] serializes emissions from concurrent domains so JSONL
   lines never interleave; [registry_mutex] guards the metric tables
   and the other shared aggregation state (span totals, progress rate
   limiter).  Both are leaf locks: no code calls out while holding
   them. *)
let sink_mutex = Mutex.create ()
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let current_sink : sink option ref = ref None
let epoch = ref 0.0

(* Per-domain capture buffer: when set, events emitted from this domain
   are retained locally instead of being pushed to the shared sink. *)
let scoped_buffer : event list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install sink =
  current_sink := Some sink;
  epoch := Unix.gettimeofday ()

let uninstall () =
  (match !current_sink with Some s -> s.flush () | None -> ());
  current_sink := None

let enabled () = !current_sink <> None

let emit kind name fields =
  match !current_sink with
  | None -> ()
  | Some sink -> (
      let e =
        {
          time = Unix.gettimeofday () -. !epoch;
          kind;
          dom = (Domain.self () :> int);
          name;
          fields;
        }
      in
      match Domain.DLS.get scoped_buffer with
      | Some buf -> buf := e :: !buf
      | None -> with_lock sink_mutex (fun () -> sink.emit e))

let meta name fields = emit Meta_v name fields
let instant name fields = emit Instant_v name fields

module Scoped = struct
  let capture f =
    let buf = ref [] in
    let previous = Domain.DLS.get scoped_buffer in
    Domain.DLS.set scoped_buffer (Some buf);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set scoped_buffer previous)
      (fun () ->
        let v = f () in
        (v, List.rev !buf))

  let replay events =
    match !current_sink with
    | None -> ()
    | Some sink -> with_lock sink_mutex (fun () -> List.iter sink.emit events)
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

(* Counters and gauges are single atomic cells (engines hammer them
   from worker domains); distributions are log-bucketed histograms made
   entirely of atomic cells, so concurrent domains merge their
   observations lock-free into the shared buckets.  [touched] flags are
   plain atomic stores — the extra write is skipped once set to keep
   the cache line quiet on hot counters. *)
type counter_cell = { c_name : string; c_value : int Atomic.t; c_touched : bool Atomic.t }
type gauge_cell = { g_name : string; g_value : float Atomic.t; g_touched : bool Atomic.t }

(* HDR-style histogram geometry: each power-of-two octave is split into
   [hist_sub] linear sub-buckets, giving a worst-case relative
   quantile error of 1/(2*hist_sub) ≈ 6%.  Bucket 0 collects
   non-positive values and underflow (below 2^hist_min_exp ≈ 1ns when
   observing seconds); the last bucket collects overflow. *)
let hist_sub = 8
let hist_min_exp = -30
let hist_max_exp = 34
let hist_buckets = ((hist_max_exp - hist_min_exp) * hist_sub) + 2

let hist_index v =
  if not (v > 0.) then 0
  else begin
    let m, e = Float.frexp v in
    if e <= hist_min_exp then 0
    else if e > hist_max_exp then hist_buckets - 1
    else begin
      let sub = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int hist_sub) in
      let sub = if sub >= hist_sub then hist_sub - 1 else sub in
      1 + ((e - hist_min_exp - 1) * hist_sub) + sub
    end
  end

(* Representative value (sub-bucket midpoint) of a bucket index. *)
let hist_value i =
  if i <= 0 then 0.
  else if i >= hist_buckets - 1 then Float.ldexp 1.0 hist_max_exp
  else begin
    let i = i - 1 in
    let e = hist_min_exp + 1 + (i / hist_sub) and sub = i mod hist_sub in
    Float.ldexp
      (0.5 +. ((float_of_int sub +. 0.5) /. (2.0 *. float_of_int hist_sub)))
      e
  end

type dist_cell = {
  d_name : string;
  d_count : int Atomic.t;
  d_sum : float Atomic.t;
  d_min : float Atomic.t;
  d_max : float Atomic.t;
  d_buckets : int Atomic.t array;
}

type span_cell = { mutable sp_count : int; mutable sp_total : float }

let counters : (string, counter_cell) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge_cell) Hashtbl.t = Hashtbl.create 16
let dists : (string, dist_cell) Hashtbl.t = Hashtbl.create 16
let span_totals : (string, span_cell) Hashtbl.t = Hashtbl.create 16

module Counter = struct
  type t = counter_cell

  let make name =
    with_lock registry_mutex (fun () ->
        match Hashtbl.find_opt counters name with
        | Some c -> c
        | None ->
            let c =
              { c_name = name; c_value = Atomic.make 0; c_touched = Atomic.make false }
            in
            Hashtbl.add counters name c;
            c)

  let touch c = if not (Atomic.get c.c_touched) then Atomic.set c.c_touched true

  let incr c =
    Atomic.incr c.c_value;
    touch c

  let add c n =
    ignore (Atomic.fetch_and_add c.c_value n);
    touch c

  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge_cell

  let make name =
    with_lock registry_mutex (fun () ->
        match Hashtbl.find_opt gauges name with
        | Some g -> g
        | None ->
            let g =
              { g_name = name; g_value = Atomic.make 0.0; g_touched = Atomic.make false }
            in
            Hashtbl.add gauges name g;
            g)

  let set g v =
    Atomic.set g.g_value v;
    if not (Atomic.get g.g_touched) then Atomic.set g.g_touched true

  let set_int g v = set g (float_of_int v)
  let value g = Atomic.get g.g_value
end

module Dist = struct
  type t = dist_cell

  let make name =
    with_lock registry_mutex (fun () ->
        match Hashtbl.find_opt dists name with
        | Some d -> d
        | None ->
            let d =
              {
                d_name = name;
                d_count = Atomic.make 0;
                d_sum = Atomic.make 0.0;
                d_min = Atomic.make infinity;
                d_max = Atomic.make neg_infinity;
                d_buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
              }
            in
            Hashtbl.add dists name d;
            d)

  (* CAS loops: [Atomic.compare_and_set] on boxed floats compares the
     box we just read, so a lost race simply retries with the fresh
     value — no lock anywhere on the observe path. *)
  let rec add_float cell v =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then add_float cell v

  let rec update_min cell v =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then update_min cell v

  let rec update_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then update_max cell v

  let observe d v =
    Atomic.incr d.d_count;
    add_float d.d_sum v;
    update_min d.d_min v;
    update_max d.d_max v;
    Atomic.incr d.d_buckets.(hist_index v)

  let observe_int d v = observe d (float_of_int v)
  let count d = Atomic.get d.d_count

  let mean d =
    let n = Atomic.get d.d_count in
    if n = 0 then Float.nan else Atomic.get d.d_sum /. float_of_int n

  (* Quantile estimate from the buckets, clamped to the observed
     [min,max] so single-valued distributions answer exactly. *)
  let quantile_of ~count ~min:mn ~max:mx buckets q =
    if count = 0 then Float.nan
    else begin
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
      (* The extreme ranks have exact answers on the side: snap to them
         instead of a bucket midpoint. *)
      if rank <= 1 then mn
      else if rank >= count then mx
      else
      let rec scan i cum =
        if i >= Array.length buckets then mx
        else begin
          let cum = cum + buckets.(i) in
          if cum >= rank then Float.min mx (Float.max mn (hist_value i))
          else scan (i + 1) cum
        end
      in
      scan 0 0
    end

  let quantile d q =
    quantile_of ~count:(Atomic.get d.d_count) ~min:(Atomic.get d.d_min)
      ~max:(Atomic.get d.d_max)
      (Array.map Atomic.get d.d_buckets)
      q

  (* Exposed for the bucketing tests. *)
  let bucket_of_value = hist_index
  let bucket_mid = hist_value
  let bucket_count = hist_buckets
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

(* The scope stack is domain-local: spans nested on one domain must not
   see scopes opened on another.  Each entry carries the unique token of
   its [Span.enter], so an out-of-order [exit] is detected instead of
   silently popping somebody else's scope. *)
let span_stack : (string * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span_path_over stack name =
  match stack with
  | [] -> name
  | stack -> String.concat "/" (List.rev (name :: List.map fst stack))

let c_span_misnested = Counter.make "obs.span.misnested"

module Span = struct
  (* A span token: [id = 0] means "entered while disabled", exit is a
     no-op (the shared [disabled] token keeps that path allocation
     free).  The scope stack is only touched when enabled, so a span
     entered while disabled nests transparently. *)
  type t = { sp_t0 : float; sp_id : int; sp_name : string }

  let disabled = { sp_t0 = Float.nan; sp_id = 0; sp_name = "" }
  let next_span_id = Atomic.make 1
  let misnested () = Counter.incr c_span_misnested

  let enter name : t =
    if !current_sink = None then disabled
    else begin
      let stack = Domain.DLS.get span_stack in
      let path = span_path_over !stack name in
      let id = Atomic.fetch_and_add next_span_id 1 in
      stack := (name, id) :: !stack;
      emit Span_v path [ ("phase", S "begin") ];
      { sp_t0 = Unix.gettimeofday (); sp_id = id; sp_name = name }
    end

  let record path dur =
    with_lock registry_mutex (fun () ->
        let cell =
          match Hashtbl.find_opt span_totals path with
          | Some c -> c
          | None ->
              let c = { sp_count = 0; sp_total = 0.0 } in
              Hashtbl.add span_totals path c;
              c
        in
        cell.sp_count <- cell.sp_count + 1;
        cell.sp_total <- cell.sp_total +. dur)

  let exit (t : t) =
    if t.sp_id <> 0 then begin
      let stack = Domain.DLS.get span_stack in
      let dur = Unix.gettimeofday () -. t.sp_t0 in
      let path, clean =
        match !stack with
        | (_, id) :: rest when id = t.sp_id ->
            (* The LIFO case: pop our own entry. *)
            stack := rest;
            (span_path_over rest t.sp_name, true)
        | entries when List.exists (fun (_, id) -> id = t.sp_id) entries ->
            (* Out of order: scopes entered after us were never exited.
               Drop them together with our entry — their own exits will
               find their tokens gone and leave the stack alone — so
               the scope stack recovers instead of corrupting every
               later path. *)
            misnested ();
            let rec drop = function
              | (_, id) :: rest when id = t.sp_id -> rest
              | _ :: rest -> drop rest
              | [] -> []
            in
            let rest = drop entries in
            stack := rest;
            (span_path_over rest t.sp_name, false)
        | _ ->
            (* Not on this domain's stack: a double exit, an exit after
               a parent already recovered past us, or an exit on a
               different domain.  Record under the bare name and leave
               the stack untouched. *)
            misnested ();
            (t.sp_name, false)
      in
      record path dur;
      emit Span_v path
        (("phase", S "end") :: ("dur_s", F dur)
        :: (if clean then [] else [ ("misnested", B true) ]))
    end

  let time name f =
    let t0 = enter name in
    match f () with
    | v ->
        exit t0;
        v
    | exception e ->
        exit t0;
        raise e
end

(* ------------------------------------------------------------------ *)
(* Contention-instrumented locks                                       *)

module Lock = struct
  (* A mutex with a lock-wait probe.  Disabled telemetry costs one
     branch on top of the plain [Mutex.lock].  Enabled, the uncontended
     path is a [try_lock] plus a zero observation into the wait
     distribution — no clock read; only a genuine wait pays two clock
     reads and shows up as a [lock.wait.<site>] span on this domain's
     timeline. *)
  type t = { l_mutex : Mutex.t; l_dist : Dist.t; l_span : string }

  let make site =
    {
      l_mutex = Mutex.create ();
      l_dist = Dist.make ("obs.lock.wait." ^ site);
      l_span = "lock.wait." ^ site;
    }

  let acquire l =
    if !current_sink = None then Mutex.lock l.l_mutex
    else if Mutex.try_lock l.l_mutex then Dist.observe l.l_dist 0.0
    else begin
      let sp = Span.enter l.l_span in
      let t0 = Unix.gettimeofday () in
      Mutex.lock l.l_mutex;
      let wait = Unix.gettimeofday () -. t0 in
      Span.exit sp;
      Dist.observe l.l_dist wait
    end

  let release l = Mutex.unlock l.l_mutex

  let with_lock l f =
    acquire l;
    Fun.protect ~finally:(fun () -> release l) f
end

(* ------------------------------------------------------------------ *)
(* Progress sampling / heartbeat                                       *)

module Progress = struct
  let heartbeat : (string -> unit) option ref = ref None
  let interval = ref 0.5

  (* Per-name rate limiter and states/sec derivation. *)
  let last : (string, float * int option) Hashtbl.t = Hashtbl.create 8

  let set_heartbeat h = heartbeat := h
  let set_interval s = interval := s

  let render name fields =
    let buf = Buffer.create 64 in
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf
          (match v with
          | I i -> string_of_int i
          | F f -> Printf.sprintf "%.4g" f
          | S s -> s
          | B b -> string_of_bool b))
      fields;
    Buffer.contents buf

  (* The rate limiter table is shared: take the registry mutex for the
     whole sample.  Lock order is registry → sink (emit); nothing takes
     them the other way around. *)
  let sample name thunk =
    if !current_sink <> None || !heartbeat <> None then
      with_lock registry_mutex @@ fun () ->
      let now = Unix.gettimeofday () in
      let prev = Hashtbl.find_opt last name in
      let due =
        match prev with
        | None -> true
        | Some (t_prev, _) -> now -. t_prev >= !interval
      in
      if due then begin
        let fields = thunk () in
        let states_now =
          match List.assoc_opt "states" fields with Some (I s) -> Some s | _ -> None
        in
        let fields =
          match (prev, states_now) with
          | Some (t_prev, Some s_prev), Some s_now when now > t_prev ->
              fields
              @ [ ("states_per_s", F (float_of_int (s_now - s_prev) /. (now -. t_prev))) ]
          | _ -> fields
        in
        Hashtbl.replace last name (now, states_now);
        emit Sample_v name fields;
        match !heartbeat with
        | Some print -> print (render name fields)
        | None -> ()
      end
end

(* ------------------------------------------------------------------ *)
(* Snapshot / reset / summary                                          *)

type dist_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type span_stats = { count : int; total_s : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  dists : (string * dist_stats) list;
  spans : (string * span_stats) list;
}

let by_name (a, _) (b, _) = String.compare a b

let dist_stats_of (d : dist_cell) =
  let count = Atomic.get d.d_count in
  if count = 0 then None
  else begin
    let min = Atomic.get d.d_min and max = Atomic.get d.d_max in
    let buckets = Array.map Atomic.get d.d_buckets in
    let q p = Dist.quantile_of ~count ~min ~max buckets p in
    Some
      {
        count;
        sum = Atomic.get d.d_sum;
        min;
        max;
        p50 = q 0.50;
        p90 = q 0.90;
        p99 = q 0.99;
      }
  end

let snapshot () =
  with_lock registry_mutex @@ fun () ->
  let counters =
    Hashtbl.fold
      (fun name c acc ->
        if Atomic.get c.c_touched then (name, Atomic.get c.c_value) :: acc else acc)
      counters []
    |> List.sort by_name
  in
  let gauges =
    Hashtbl.fold
      (fun name g acc ->
        if Atomic.get g.g_touched then (name, Atomic.get g.g_value) :: acc else acc)
      gauges []
    |> List.sort by_name
  in
  let dists =
    Hashtbl.fold
      (fun name d acc ->
        match dist_stats_of d with Some s -> (name, s) :: acc | None -> acc)
      dists []
    |> List.sort by_name
  in
  let spans =
    Hashtbl.fold
      (fun path c acc ->
        if c.sp_count > 0 then (path, { count = c.sp_count; total_s = c.sp_total }) :: acc
        else acc)
      span_totals []
    |> List.sort by_name
  in
  { counters; gauges; dists; spans }

let reset () =
  with_lock registry_mutex @@ fun () ->
  Hashtbl.iter
    (fun _ c ->
      Atomic.set c.c_value 0;
      Atomic.set c.c_touched false)
    counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_value 0.0;
      Atomic.set g.g_touched false)
    gauges;
  Hashtbl.iter
    (fun _ d ->
      Atomic.set d.d_count 0;
      Atomic.set d.d_sum 0.0;
      Atomic.set d.d_min infinity;
      Atomic.set d.d_max neg_infinity;
      Array.iter (fun b -> Atomic.set b 0) d.d_buckets)
    dists;
  Hashtbl.reset span_totals;
  Hashtbl.reset Progress.last;
  Domain.DLS.get span_stack := []

let pp_summary ppf snap =
  let open Format in
  fprintf ppf "@[<v>-- stats ----------------------------------------------------@ ";
  if snap.counters <> [] then begin
    fprintf ppf "counters:@ ";
    List.iter (fun (n, v) -> fprintf ppf "  %-36s %12d@ " n v) snap.counters
  end;
  if snap.gauges <> [] then begin
    fprintf ppf "gauges:@ ";
    List.iter (fun (n, v) -> fprintf ppf "  %-36s %12.4g@ " n v) snap.gauges
  end;
  if snap.dists <> [] then begin
    fprintf ppf "distributions:%31s%9s%9s%9s%9s%9s%9s@ " "count" "min" "mean"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (n, (d : dist_stats)) ->
        fprintf ppf "  %-36s %7d %8.4g %8.4g %8.4g %8.4g %8.4g %8.4g@ " n
          d.count d.min
          (d.sum /. float_of_int d.count)
          d.p50 d.p90 d.p99 d.max)
      snap.dists
  end;
  if snap.spans <> [] then begin
    fprintf ppf "spans:%39s%15s@ " "count" "total";
    List.iter
      (fun (n, s) -> fprintf ppf "  %-36s %7d %13.6fs@ " n s.count s.total_s)
      snap.spans
  end;
  (* Lock-wait distributions record seconds per acquire (zero for the
     uncontended fast path); their sums rank the process's lock hot
     spots. *)
  let lock_prefix = "obs.lock.wait." in
  let contended =
    List.filter_map
      (fun (n, (d : dist_stats)) ->
        if String.starts_with ~prefix:lock_prefix n && d.count > 0 then
          Some
            ( String.sub n (String.length lock_prefix)
                (String.length n - String.length lock_prefix),
              d )
        else None)
      snap.dists
    |> List.sort (fun (_, (a : dist_stats)) (_, b) -> Float.compare b.sum a.sum)
  in
  (match contended with
  | [] -> ()
  | _ :: _ ->
      let top = List.filteri (fun i _ -> i < 3) contended in
      fprintf ppf "top contended locks:%s@ "
        (String.concat ","
           (List.map
              (fun (site, (d : dist_stats)) ->
                Printf.sprintf " %s (%.6fs total, %d acquires)" site d.sum
                  d.count)
              top)));
  if snap.counters = [] && snap.gauges = [] && snap.dists = [] && snap.spans = []
  then fprintf ppf "(no metrics recorded)@ ";
  fprintf ppf "-------------------------------------------------------------@]"

let json_of_snapshot snap =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) snap.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) snap.gauges));
      ( "dists",
        Json.Obj
          (List.map
             (fun (n, (d : dist_stats)) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.Int d.count);
                     ("sum", Json.Float d.sum);
                     ("min", Json.Float d.min);
                     ("max", Json.Float d.max);
                     ("p50", Json.Float d.p50);
                     ("p90", Json.Float d.p90);
                     ("p99", Json.Float d.p99);
                   ] ))
             snap.dists) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (n, s) ->
               ( n,
                 Json.Obj
                   [ ("count", Json.Int s.count); ("total_s", Json.Float s.total_s) ] ))
             snap.spans) );
    ]

let emit_snapshot () =
  if enabled () then begin
    let snap = snapshot () in
    List.iter (fun (n, v) -> emit Counter_v n [ ("value", I v) ]) snap.counters;
    List.iter (fun (n, v) -> emit Gauge_v n [ ("value", F v) ]) snap.gauges;
    List.iter
      (fun (n, (d : dist_stats)) ->
        emit Dist_v n
          [
            ("count", I d.count);
            ("sum", F d.sum);
            ("min", F d.min);
            ("max", F d.max);
            ("mean", F (d.sum /. float_of_int d.count));
            ("p50", F d.p50);
            ("p90", F d.p90);
            ("p99", F d.p99);
          ])
      snap.dists;
    List.iter
      (fun (n, (s : span_stats)) ->
        emit Span_v n [ ("phase", S "total"); ("count", I s.count); ("total_s", F s.total_s) ])
      snap.spans
  end

let with_sink sink f =
  install sink;
  reset ();
  match f () with
  | v ->
      emit_snapshot ();
      uninstall ();
      v
  | exception e ->
      emit_snapshot ();
      uninstall ();
      raise e

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

module Trace = struct
  (* Renders an event stream as Chrome trace-event JSON (the format
     Perfetto and chrome://tracing load): one thread track per domain
     id, duration events for spans, counter tracks for progress samples
     and final totals, instant events for guard trips / faults /
     cancellations.  Timestamps are microseconds since sink install.

     The renderer is defensive about span pairing: an "end" with no
     open "begin" on its domain is dropped, and begins left open at the
     end of the stream are closed at the last timestamp — so a trace
     assembled from a crashed or misnested run still loads. *)

  let pid = 1

  let base name ph ts dom =
    [
      ("name", Json.String name);
      ("ph", Json.String ph);
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int dom);
    ]

  let numeric_args fields =
    List.filter_map
      (fun (k, v) ->
        match v with
        | I _ | F _ -> Some (k, json_of_value v)
        | S _ | B _ -> None)
      fields

  let all_args fields = List.map (fun (k, v) -> (k, json_of_value v)) fields

  let json_of_events events =
    let out = ref [] in
    let push fields = out := Json.Obj fields :: !out in
    (* Per-domain stack of open span names, for B/E balancing. *)
    let open_spans : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
    let stack_of dom =
      match Hashtbl.find_opt open_spans dom with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.add open_spans dom s;
          s
    in
    let doms = Hashtbl.create 8 in
    let last_ts = ref 0.0 in
    List.iter
      (fun e ->
        let ts = e.time *. 1e6 in
        if ts > !last_ts then last_ts := ts;
        Hashtbl.replace doms e.dom ();
        match e.kind with
        | Span_v -> (
            match List.assoc_opt "phase" e.fields with
            | Some (S "begin") ->
                let st = stack_of e.dom in
                st := e.name :: !st;
                push (base e.name "B" ts e.dom @ [ ("cat", Json.String "span") ])
            | Some (S "end") -> (
                let st = stack_of e.dom in
                match !st with
                | _ :: rest ->
                    st := rest;
                    push (base e.name "E" ts e.dom)
                | [] -> (* stray end: drop rather than unbalance *) ())
            | _ -> (* final span totals carry no timeline position *) ())
        | Sample_v -> (
            match numeric_args e.fields with
            | [] -> ()
            | args ->
                push
                  (base e.name "C" ts e.dom @ [ ("args", Json.Obj args) ]))
        | Counter_v | Gauge_v ->
            let v =
              match List.assoc_opt "value" e.fields with
              | Some v -> json_of_value v
              | None -> Json.Null
            in
            push
              (base e.name "C" ts e.dom
              @ [ ("args", Json.Obj [ ("value", v) ]) ])
        | Dist_v -> (* histograms have no Chrome representation *) ()
        | Instant_v ->
            push
              (base e.name "i" ts e.dom
              @ [
                  ("s", Json.String "t");
                  ("cat", Json.String "instant");
                  ("args", Json.Obj (all_args e.fields));
                ])
        | Meta_v ->
            push
              (base e.name "i" ts e.dom
              @ [
                  ("s", Json.String "p");
                  ("cat", Json.String "meta");
                  ("args", Json.Obj (all_args e.fields));
                ]))
      events;
    (* Close whatever is still open so every B has an E. *)
    Hashtbl.iter
      (fun dom st ->
        List.iter (fun name -> push (base name "E" !last_ts dom)) !st)
      open_spans;
    (* Track naming metadata, one thread per domain. *)
    let meta =
      Json.Obj
        (("name", Json.String "process_name")
         :: ("ph", Json.String "M")
         :: ("pid", Json.Int pid)
         :: [ ("args", Json.Obj [ ("name", Json.String "julie") ]) ])
      :: (Hashtbl.fold (fun dom () acc -> dom :: acc) doms []
         |> List.sort Int.compare
         |> List.map (fun dom ->
                Json.Obj
                  [
                    ("name", Json.String "thread_name");
                    ("ph", Json.String "M");
                    ("pid", Json.Int pid);
                    ("tid", Json.Int dom);
                    ( "args",
                      Json.Obj
                        [ ("name", Json.String (Printf.sprintf "domain %d" dom)) ]
                    );
                  ]))
    in
    Json.Obj
      [
        ("traceEvents", Json.List (meta @ List.rev !out));
        ("displayTimeUnit", Json.String "ms");
      ]

  let collecting_sink () = memory_sink ()

  let write_file path events =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Json.to_channel oc (json_of_events events))
end

(* ------------------------------------------------------------------ *)
(* Per-capture summaries                                               *)

let summarize_events events =
  let spans : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let instants : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let total = List.length events in
  List.iter
    (fun e ->
      match e.kind with
      | Span_v -> (
          match
            (List.assoc_opt "phase" e.fields, List.assoc_opt "dur_s" e.fields)
          with
          | Some (S "end"), Some (F dur) ->
              let count, sum =
                match Hashtbl.find_opt spans e.name with
                | Some cell -> cell
                | None ->
                    let cell = (ref 0, ref 0.0) in
                    Hashtbl.add spans e.name cell;
                    cell
              in
              incr count;
              sum := !sum +. dur
          | _ -> ())
      | Instant_v ->
          let c =
            match Hashtbl.find_opt instants e.name with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.add instants e.name c;
                c
          in
          incr c
      | _ -> ())
    events;
  let sorted_fields tbl render =
    Hashtbl.fold (fun name cell acc -> (name, render cell) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ("events", Json.Int total);
      ( "spans",
        Json.Obj
          (sorted_fields spans (fun (count, sum) ->
               Json.Obj
                 [ ("count", Json.Int !count); ("total_s", Json.Float !sum) ]))
      );
      ( "instants",
        Json.Obj (sorted_fields instants (fun c -> Json.Int !c)) );
    ]
