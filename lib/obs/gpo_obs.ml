(* Global telemetry registry + pluggable event sinks.

   Domain-safe: counters and gauges are atomic cells, distributions
   take a per-cell mutex, the registry tables and the installed sink
   are guarded by mutexes, and the span scope stack is domain-local.
   Events emitted while a [Scoped] buffer is active on the current
   domain are retained there instead of hitting the shared sink; the
   spawning code replays them at report time, so a JSONL trace stays
   one coherent stream even with engines racing in parallel. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then begin
          let s = Printf.sprintf "%.17g" f in
          (* Shorter representation when it round-trips. *)
          let short = Printf.sprintf "%g" f in
          Buffer.add_string buf (if float_of_string short = f then short else s)
        end
        else Buffer.add_string buf "null"
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  let to_channel oc t =
    output_string oc (to_string t);
    output_char oc '\n'

  (* Recursive-descent parser, sufficient for our own output. *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> begin
            advance ();
            (match peek () with
            | Some '"' -> Buffer.add_char buf '"'
            | Some '\\' -> Buffer.add_char buf '\\'
            | Some '/' -> Buffer.add_char buf '/'
            | Some 'n' -> Buffer.add_char buf '\n'
            | Some 'r' -> Buffer.add_char buf '\r'
            | Some 't' -> Buffer.add_char buf '\t'
            | Some 'b' -> Buffer.add_char buf '\b'
            | Some 'f' -> Buffer.add_char buf '\012'
            | Some 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* Only BMP code points below 0x80 are emitted verbatim;
                   others are kept as UTF-8 of the code point. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                pos := !pos + 4
            | _ -> fail "bad escape");
            advance ();
            go ()
          end
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elems [])
          end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

type value = I of int | F of float | S of string | B of bool

let json_of_value = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.String s
  | B b -> Json.Bool b

type kind = Counter_v | Gauge_v | Dist_v | Span_v | Sample_v | Meta_v

let kind_label = function
  | Counter_v -> "counter"
  | Gauge_v -> "gauge"
  | Dist_v -> "dist"
  | Span_v -> "span"
  | Sample_v -> "sample"
  | Meta_v -> "meta"

let kind_of_label = function
  | "counter" -> Some Counter_v
  | "gauge" -> Some Gauge_v
  | "dist" -> Some Dist_v
  | "span" -> Some Span_v
  | "sample" -> Some Sample_v
  | "meta" -> Some Meta_v
  | _ -> None

type event = {
  time : float;
  kind : kind;
  name : string;
  fields : (string * value) list;
}

let json_of_event e =
  Json.Obj
    [
      ("t", Json.Float e.time);
      ("ev", Json.String (kind_label e.kind));
      ("name", Json.String e.name);
      ("fields", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) e.fields));
    ]

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* t = field "t" in
  let* time =
    match t with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error "\"t\" is not a number"
  in
  let* ev = field "ev" in
  let* kind =
    match ev with
    | Json.String s -> (
        match kind_of_label s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "unknown event kind %S" s))
    | _ -> Error "\"ev\" is not a string"
  in
  let* name_j = field "name" in
  let* name =
    match name_j with
    | Json.String s -> Ok s
    | _ -> Error "\"name\" is not a string"
  in
  let* fields_j = field "fields" in
  let* fields =
    match fields_j with
    | Json.Obj kvs ->
        let rec convert acc = function
          | [] -> Ok (List.rev acc)
          | (k, v) :: rest -> (
              match v with
              | Json.Int i -> convert ((k, I i) :: acc) rest
              | Json.Float f -> convert ((k, F f) :: acc) rest
              | Json.String s -> convert ((k, S s) :: acc) rest
              | Json.Bool b -> convert ((k, B b) :: acc) rest
              | _ -> Error (Printf.sprintf "field %S has a non-scalar value" k))
        in
        convert [] kvs
    | _ -> Error "\"fields\" is not an object"
  in
  Ok { time; kind; name; fields }

type sink = { emit : event -> unit; flush : unit -> unit }

let null_sink = { emit = ignore; flush = ignore }

let jsonl_sink write =
  {
    emit = (fun e -> write (Json.to_string (json_of_event e)));
    flush = ignore;
  }

let jsonl_channel_sink oc =
  {
    emit = (fun e -> Json.to_channel oc (json_of_event e));
    flush = (fun () -> flush oc);
  }

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

(* ------------------------------------------------------------------ *)
(* Global sink state                                                   *)

(* [sink_mutex] serializes emissions from concurrent domains so JSONL
   lines never interleave; [registry_mutex] guards the metric tables
   and the other shared aggregation state (span totals, progress rate
   limiter).  Both are leaf locks: no code calls out while holding
   them. *)
let sink_mutex = Mutex.create ()
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let current_sink : sink option ref = ref None
let epoch = ref 0.0

(* Per-domain capture buffer: when set, events emitted from this domain
   are retained locally instead of being pushed to the shared sink. *)
let scoped_buffer : event list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install sink =
  current_sink := Some sink;
  epoch := Unix.gettimeofday ()

let uninstall () =
  (match !current_sink with Some s -> s.flush () | None -> ());
  current_sink := None

let enabled () = !current_sink <> None

let emit kind name fields =
  match !current_sink with
  | None -> ()
  | Some sink -> (
      let e = { time = Unix.gettimeofday () -. !epoch; kind; name; fields } in
      match Domain.DLS.get scoped_buffer with
      | Some buf -> buf := e :: !buf
      | None -> with_lock sink_mutex (fun () -> sink.emit e))

let meta name fields = emit Meta_v name fields

module Scoped = struct
  let capture f =
    let buf = ref [] in
    let previous = Domain.DLS.get scoped_buffer in
    Domain.DLS.set scoped_buffer (Some buf);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set scoped_buffer previous)
      (fun () ->
        let v = f () in
        (v, List.rev !buf))

  let replay events =
    match !current_sink with
    | None -> ()
    | Some sink -> with_lock sink_mutex (fun () -> List.iter sink.emit events)
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

(* Counters and gauges are single atomic cells (engines hammer them
   from worker domains); distributions update four fields together, so
   they carry their own small mutex.  [touched] flags are plain atomic
   stores — the extra write is skipped once set to keep the cache line
   quiet on hot counters. *)
type counter_cell = { c_name : string; c_value : int Atomic.t; c_touched : bool Atomic.t }
type gauge_cell = { g_name : string; g_value : float Atomic.t; g_touched : bool Atomic.t }

type dist_cell = {
  d_name : string;
  d_lock : Mutex.t;
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
}

type span_cell = { mutable sp_count : int; mutable sp_total : float }

let counters : (string, counter_cell) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge_cell) Hashtbl.t = Hashtbl.create 16
let dists : (string, dist_cell) Hashtbl.t = Hashtbl.create 16
let span_totals : (string, span_cell) Hashtbl.t = Hashtbl.create 16

module Counter = struct
  type t = counter_cell

  let make name =
    with_lock registry_mutex (fun () ->
        match Hashtbl.find_opt counters name with
        | Some c -> c
        | None ->
            let c =
              { c_name = name; c_value = Atomic.make 0; c_touched = Atomic.make false }
            in
            Hashtbl.add counters name c;
            c)

  let touch c = if not (Atomic.get c.c_touched) then Atomic.set c.c_touched true

  let incr c =
    Atomic.incr c.c_value;
    touch c

  let add c n =
    ignore (Atomic.fetch_and_add c.c_value n);
    touch c

  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge_cell

  let make name =
    with_lock registry_mutex (fun () ->
        match Hashtbl.find_opt gauges name with
        | Some g -> g
        | None ->
            let g =
              { g_name = name; g_value = Atomic.make 0.0; g_touched = Atomic.make false }
            in
            Hashtbl.add gauges name g;
            g)

  let set g v =
    Atomic.set g.g_value v;
    if not (Atomic.get g.g_touched) then Atomic.set g.g_touched true

  let set_int g v = set g (float_of_int v)
  let value g = Atomic.get g.g_value
end

module Dist = struct
  type t = dist_cell

  let make name =
    with_lock registry_mutex (fun () ->
        match Hashtbl.find_opt dists name with
        | Some d -> d
        | None ->
            let d =
              {
                d_name = name;
                d_lock = Mutex.create ();
                d_count = 0;
                d_sum = 0.0;
                d_min = infinity;
                d_max = neg_infinity;
              }
            in
            Hashtbl.add dists name d;
            d)

  let observe d v =
    Mutex.lock d.d_lock;
    d.d_count <- d.d_count + 1;
    d.d_sum <- d.d_sum +. v;
    if v < d.d_min then d.d_min <- v;
    if v > d.d_max then d.d_max <- v;
    Mutex.unlock d.d_lock

  let observe_int d v = observe d (float_of_int v)
  let count d = d.d_count
  let mean d = if d.d_count = 0 then Float.nan else d.d_sum /. float_of_int d.d_count
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

(* The scope stack is domain-local: spans nested on one domain must not
   see scopes opened on another. *)
let span_stack : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span_path name =
  match !(Domain.DLS.get span_stack) with
  | [] -> name
  | stack -> String.concat "/" (List.rev (name :: stack))

module Span = struct
  (* Start time; nan = entered while disabled, exit is a no-op.  The
     scope stack is only touched when enabled, so a span entered while
     disabled nests transparently. *)
  type t = float

  let enter name : t =
    if !current_sink = None then Float.nan
    else begin
      let path = span_path name in
      let stack = Domain.DLS.get span_stack in
      stack := name :: !stack;
      emit Span_v path [ ("phase", S "begin") ];
      Unix.gettimeofday ()
    end

  let exit (t0 : t) =
    if not (Float.is_nan t0) then begin
      let stack = Domain.DLS.get span_stack in
      let name = match !stack with n :: rest -> stack := rest; n | [] -> "?" in
      let path = span_path name in
      let dur = Unix.gettimeofday () -. t0 in
      with_lock registry_mutex (fun () ->
          let cell =
            match Hashtbl.find_opt span_totals path with
            | Some c -> c
            | None ->
                let c = { sp_count = 0; sp_total = 0.0 } in
                Hashtbl.add span_totals path c;
                c
          in
          cell.sp_count <- cell.sp_count + 1;
          cell.sp_total <- cell.sp_total +. dur);
      emit Span_v path [ ("phase", S "end"); ("dur_s", F dur) ]
    end

  let time name f =
    let t0 = enter name in
    match f () with
    | v ->
        exit t0;
        v
    | exception e ->
        exit t0;
        raise e
end

(* ------------------------------------------------------------------ *)
(* Progress sampling / heartbeat                                       *)

module Progress = struct
  let heartbeat : (string -> unit) option ref = ref None
  let interval = ref 0.5

  (* Per-name rate limiter and states/sec derivation. *)
  let last : (string, float * int option) Hashtbl.t = Hashtbl.create 8

  let set_heartbeat h = heartbeat := h
  let set_interval s = interval := s

  let render name fields =
    let buf = Buffer.create 64 in
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf
          (match v with
          | I i -> string_of_int i
          | F f -> Printf.sprintf "%.4g" f
          | S s -> s
          | B b -> string_of_bool b))
      fields;
    Buffer.contents buf

  (* The rate limiter table is shared: take the registry mutex for the
     whole sample.  Lock order is registry → sink (emit); nothing takes
     them the other way around. *)
  let sample name thunk =
    if !current_sink <> None || !heartbeat <> None then
      with_lock registry_mutex @@ fun () ->
      let now = Unix.gettimeofday () in
      let prev = Hashtbl.find_opt last name in
      let due =
        match prev with
        | None -> true
        | Some (t_prev, _) -> now -. t_prev >= !interval
      in
      if due then begin
        let fields = thunk () in
        let states_now =
          match List.assoc_opt "states" fields with Some (I s) -> Some s | _ -> None
        in
        let fields =
          match (prev, states_now) with
          | Some (t_prev, Some s_prev), Some s_now when now > t_prev ->
              fields
              @ [ ("states_per_s", F (float_of_int (s_now - s_prev) /. (now -. t_prev))) ]
          | _ -> fields
        in
        Hashtbl.replace last name (now, states_now);
        emit Sample_v name fields;
        match !heartbeat with
        | Some print -> print (render name fields)
        | None -> ()
      end
end

(* ------------------------------------------------------------------ *)
(* Snapshot / reset / summary                                          *)

type dist_stats = { count : int; sum : float; min : float; max : float }
type span_stats = { count : int; total_s : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  dists : (string * dist_stats) list;
  spans : (string * span_stats) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock registry_mutex @@ fun () ->
  let counters =
    Hashtbl.fold
      (fun name c acc ->
        if Atomic.get c.c_touched then (name, Atomic.get c.c_value) :: acc else acc)
      counters []
    |> List.sort by_name
  in
  let gauges =
    Hashtbl.fold
      (fun name g acc ->
        if Atomic.get g.g_touched then (name, Atomic.get g.g_value) :: acc else acc)
      gauges []
    |> List.sort by_name
  in
  let dists =
    Hashtbl.fold
      (fun name d acc ->
        Mutex.lock d.d_lock;
        let cell =
          if d.d_count > 0 then
            Some { count = d.d_count; sum = d.d_sum; min = d.d_min; max = d.d_max }
          else None
        in
        Mutex.unlock d.d_lock;
        match cell with Some s -> (name, s) :: acc | None -> acc)
      dists []
    |> List.sort by_name
  in
  let spans =
    Hashtbl.fold
      (fun path c acc ->
        if c.sp_count > 0 then (path, { count = c.sp_count; total_s = c.sp_total }) :: acc
        else acc)
      span_totals []
    |> List.sort by_name
  in
  { counters; gauges; dists; spans }

let reset () =
  with_lock registry_mutex @@ fun () ->
  Hashtbl.iter
    (fun _ c ->
      Atomic.set c.c_value 0;
      Atomic.set c.c_touched false)
    counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_value 0.0;
      Atomic.set g.g_touched false)
    gauges;
  Hashtbl.iter
    (fun _ d ->
      Mutex.lock d.d_lock;
      d.d_count <- 0;
      d.d_sum <- 0.0;
      d.d_min <- infinity;
      d.d_max <- neg_infinity;
      Mutex.unlock d.d_lock)
    dists;
  Hashtbl.reset span_totals;
  Hashtbl.reset Progress.last;
  Domain.DLS.get span_stack := []

let pp_summary ppf snap =
  let open Format in
  fprintf ppf "@[<v>-- stats ----------------------------------------------------@ ";
  if snap.counters <> [] then begin
    fprintf ppf "counters:@ ";
    List.iter (fun (n, v) -> fprintf ppf "  %-36s %12d@ " n v) snap.counters
  end;
  if snap.gauges <> [] then begin
    fprintf ppf "gauges:@ ";
    List.iter (fun (n, v) -> fprintf ppf "  %-36s %12.4g@ " n v) snap.gauges
  end;
  if snap.dists <> [] then begin
    fprintf ppf "distributions:%31s%9s%9s%9s@ " "count" "min" "mean" "max";
    List.iter
      (fun (n, (d : dist_stats)) ->
        fprintf ppf "  %-36s %7d %8.4g %8.4g %8.4g@ " n d.count d.min
          (d.sum /. float_of_int d.count)
          d.max)
      snap.dists
  end;
  if snap.spans <> [] then begin
    fprintf ppf "spans:%39s%15s@ " "count" "total";
    List.iter
      (fun (n, s) -> fprintf ppf "  %-36s %7d %13.6fs@ " n s.count s.total_s)
      snap.spans
  end;
  if snap.counters = [] && snap.gauges = [] && snap.dists = [] && snap.spans = []
  then fprintf ppf "(no metrics recorded)@ ";
  fprintf ppf "-------------------------------------------------------------@]"

let json_of_snapshot snap =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) snap.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) snap.gauges));
      ( "dists",
        Json.Obj
          (List.map
             (fun (n, (d : dist_stats)) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.Int d.count);
                     ("sum", Json.Float d.sum);
                     ("min", Json.Float d.min);
                     ("max", Json.Float d.max);
                   ] ))
             snap.dists) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (n, s) ->
               ( n,
                 Json.Obj
                   [ ("count", Json.Int s.count); ("total_s", Json.Float s.total_s) ] ))
             snap.spans) );
    ]

let emit_snapshot () =
  if enabled () then begin
    let snap = snapshot () in
    List.iter (fun (n, v) -> emit Counter_v n [ ("value", I v) ]) snap.counters;
    List.iter (fun (n, v) -> emit Gauge_v n [ ("value", F v) ]) snap.gauges;
    List.iter
      (fun (n, (d : dist_stats)) ->
        emit Dist_v n
          [
            ("count", I d.count);
            ("sum", F d.sum);
            ("min", F d.min);
            ("max", F d.max);
            ("mean", F (d.sum /. float_of_int d.count));
          ])
      snap.dists;
    List.iter
      (fun (n, (s : span_stats)) ->
        emit Span_v n [ ("phase", S "total"); ("count", I s.count); ("total_s", F s.total_s) ])
      snap.spans
  end

let with_sink sink f =
  install sink;
  reset ();
  match f () with
  | v ->
      emit_snapshot ();
      uninstall ();
      v
  | exception e ->
      emit_snapshot ();
      uninstall ();
      raise e
