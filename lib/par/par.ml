(* Multicore execution primitives for the verification engines: a
   cooperative cancellation token, a fixed pool of OCaml 5 domains, and
   per-worker work queues with stealing.

   The engines themselves stay written in direct style; parallel
   drivers (Reachability.explore_par, Harness.Portfolio) build on these
   three pieces.  Everything here is domain-safe; the only global state
   is the telemetry counters, which are atomic. *)

(* Telemetry: how often cancellation was requested and how often a
   running engine actually observed a request and stopped.  The
   portfolio tests assert on [par.cancel.observed] to prove the losers
   were cancelled rather than left to finish. *)
let c_cancel_requests = Gpo_obs.Counter.make "par.cancel.requests"
let c_cancel_observed = Gpo_obs.Counter.make "par.cancel.observed"
let c_steals = Gpo_obs.Counter.make "par.steals"
let c_tasks = Gpo_obs.Counter.make "par.pool.tasks"

module Cancel = struct
  type t = bool Atomic.t

  exception Cancelled

  let create () = Atomic.make false

  let cancel t =
    if not (Atomic.exchange t true) then begin
      Gpo_obs.Counter.incr c_cancel_requests;
      Gpo_obs.instant "cancel.requested" []
    end

  let is_set t = Atomic.get t

  let check t =
    if Atomic.get t then begin
      Gpo_obs.Counter.incr c_cancel_observed;
      Gpo_obs.instant "cancel.observed" [];
      raise Cancelled
    end

  let check_opt = function None -> () | Some t -> check t
  let is_set_opt = function None -> false | Some t -> Atomic.get t
end

module Pool = struct
  type t = {
    jobs : int;  (* total workers, including the calling domain *)
    mutex : Mutex.t;
    work : Condition.t;  (* tasks were queued, or shutdown was requested *)
    idle : Condition.t;  (* [pending] dropped to zero *)
    queue : (unit -> unit) Queue.t;
    mutable pending : int;  (* tasks queued or currently running *)
    mutable stop : bool;
    mutable domains : unit Domain.t list;
  }

  let default_jobs () = Domain.recommended_domain_count ()

  let size pool = pool.jobs

  (* Helper: execute one task and account for its completion.  Called
     with the pool mutex HELD; returns with it held again. *)
  let run_task pool task =
    Mutex.unlock pool.mutex;
    task ();
    Mutex.lock pool.mutex;
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.idle

  let worker pool =
    Mutex.lock pool.mutex;
    let rec loop () =
      if pool.stop then Mutex.unlock pool.mutex
      else
        match Queue.take_opt pool.queue with
        | Some task ->
            run_task pool task;
            loop ()
        | None ->
            Condition.wait pool.work pool.mutex;
            loop ()
    in
    loop ()

  let create ?jobs () =
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let pool =
      {
        jobs;
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        queue = Queue.create ();
        pending = 0;
        stop = false;
        domains = [];
      }
    in
    pool.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
    pool

  let shutdown pool =
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []

  (* Run every thunk to completion, the calling domain participating as
     a worker.  Exceptions do not tear the pool down: the first one (in
     completion order) is re-raised after all thunks have finished. *)
  let run pool thunks =
    let first_exn = Atomic.make None in
    let guarded f () =
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set first_exn None (Some (e, bt)))
    in
    Mutex.lock pool.mutex;
    List.iter
      (fun f ->
        Queue.add (guarded f) pool.queue;
        pool.pending <- pool.pending + 1;
        Gpo_obs.Counter.incr c_tasks)
      thunks;
    Condition.broadcast pool.work;
    let rec drain () =
      match Queue.take_opt pool.queue with
      | Some task ->
          run_task pool task;
          drain ()
      | None ->
          while pool.pending > 0 do
            Condition.wait pool.idle pool.mutex
          done;
          Mutex.unlock pool.mutex
    in
    drain ();
    match Atomic.get first_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

  let map pool f xs =
    let items = Array.of_list xs in
    let out = Array.make (Array.length items) None in
    run pool
      (List.init (Array.length items) (fun i () -> out.(i) <- Some (f items.(i))));
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None ->
               (* Only reachable when the thunk raised; [run] re-raised
                  already, so this is unreachable in practice. *)
               invalid_arg "Par.Pool.map: task did not complete")
         out)

  let iter pool f xs = run pool (List.map (fun x () -> f x) xs)

  let with_pool ?jobs f =
    let pool = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
end

module Wsq = struct
  (* Per-worker work queues with stealing.  Owners push and pop at the
     back (depth-first on their own work keeps the frontier compact);
     thieves steal from the front, taking the oldest — hence shallowest
     and usually largest — subtree.  A mutex per queue is plenty here:
     queue operations are tiny next to the per-state work of the
     engines, and stealing only happens when a worker has run dry. *)
  type 'a t = { mutex : Mutex.t; mutable front : 'a list; mutable back : 'a list }

  let create () = { mutex = Mutex.create (); front = []; back = [] }

  let push q x =
    Mutex.lock q.mutex;
    q.back <- x :: q.back;
    Mutex.unlock q.mutex

  let pop q =
    Mutex.lock q.mutex;
    let r =
      match q.back with
      | x :: rest ->
          q.back <- rest;
          Some x
      | [] -> (
          match q.front with
          | x :: rest ->
              q.front <- rest;
              Some x
          | [] -> None)
    in
    Mutex.unlock q.mutex;
    r

  let steal q =
    Mutex.lock q.mutex;
    (* Normalize so the oldest element sits at the head of [front]. *)
    if q.front = [] then begin
      q.front <- List.rev q.back;
      q.back <- []
    end;
    let r =
      match q.front with
      | x :: rest ->
          q.front <- rest;
          Some x
      | [] -> None
    in
    Mutex.unlock q.mutex;
    if r <> None then Gpo_obs.Counter.incr c_steals;
    r

  (* Grab work for worker [w]: its own queue first, then round-robin
     over the victims. *)
  let take_any queues w =
    let n = Array.length queues in
    match pop queues.(w) with
    | Some _ as r -> r
    | None ->
        let rec try_victim i =
          if i >= n then None
          else
            match steal queues.((w + i) mod n) with
            | Some _ as r -> r
            | None -> try_victim (i + 1)
        in
        try_victim 1
end
