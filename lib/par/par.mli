(** Multicore execution primitives (OCaml 5 domains).

    Three building blocks for the parallel drivers:

    - {!Cancel} — a cooperative cancellation token.  Engines poll it in
      their step loops ({!Cancel.check}) and unwind with
      {!Cancel.Cancelled} when some other domain has called
      {!Cancel.cancel}; the portfolio uses this to stop the losers the
      moment a winner produces a conclusive verdict.
    - {!Pool} — a fixed pool of worker domains, sized by
      [Domain.recommended_domain_count] unless told otherwise.  The
      calling domain participates in every {!Pool.run}, so a pool of
      size [n] really computes with [n] domains while only [n - 1] are
      spawned.
    - {!Wsq} — per-worker work queues with stealing, the frontier
      structure of the parallel explicit exploration.

    Telemetry: [par.cancel.requests] / [par.cancel.observed] count
    cancellation handshakes (the tests use the latter to prove losers
    actually stopped), [par.steals] counts successful steals and
    [par.pool.tasks] the tasks executed by pools. *)

(** Cooperative cancellation. *)
module Cancel : sig
  type t

  exception Cancelled

  val create : unit -> t

  val cancel : t -> unit
  (** Request cancellation (idempotent, domain-safe). *)

  val is_set : t -> bool

  val check : t -> unit
  (** Raise {!Cancelled} iff cancellation was requested.  Engines call
      this once per step — cheap enough for any hot loop (one atomic
      load). *)

  val check_opt : t option -> unit
  (** {!check} through an optional token; [None] never cancels. *)

  val is_set_opt : t option -> bool
end

(** A fixed pool of worker domains. *)
module Pool : sig
  type t

  val default_jobs : unit -> int
  (** [Domain.recommended_domain_count ()]. *)

  val create : ?jobs:int -> unit -> t
  (** Spawn a pool of [jobs] workers (default {!default_jobs}; clamped
      to at least 1).  [jobs - 1] domains are spawned — the caller is
      the remaining worker. *)

  val size : t -> int
  (** The worker count [jobs] the pool was created with. *)

  val run : t -> (unit -> unit) list -> unit
  (** Execute every thunk, the calling domain participating, and
      return when all are done.  If thunks raise, the first exception
      (in completion order) is re-raised after all have finished — the
      pool itself survives. *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Parallel map preserving input order.  Work is distributed over
      the pool; result order is independent of execution order. *)

  val iter : t -> ('a -> unit) -> 'a list -> unit

  val shutdown : t -> unit
  (** Join the worker domains.  The pool must be idle. *)

  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
  (** [create], run, [shutdown] (also on exceptions). *)
end

(** Per-worker work queues with stealing. *)
module Wsq : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Owner push (back of the queue). *)

  val pop : 'a t -> 'a option
  (** Owner pop, newest first (depth-first on local work).  After a
      steal has normalized the queue, the remaining pre-steal elements
      drain in FIFO order. *)

  val steal : 'a t -> 'a option
  (** Thief pop, oldest first. *)

  val take_any : 'a t array -> int -> 'a option
  (** [take_any queues w]: pop worker [w]'s own queue, else steal
      round-robin from the others; [None] only when every queue was
      observed empty. *)
end
