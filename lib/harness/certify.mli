(** Independent certification of engine verdicts.

    Every violation verdict of {!Engine.run} ships a witness firing
    sequence; this module is the {e checker} side: it replays the
    witness against the net semantics alone ({!Petri.Trace} validates
    the enabledness of every step) and confirms the final marking has
    the claimed defect — dead for deadlock verdicts, covering the bad
    places for safety verdicts (after inverting the
    {!Petri.Safety.monitor} construction).  A [Certified] verdict
    therefore does not depend on the correctness of the engine that
    produced it. *)

type rejection =
  | No_witness  (** Violation claimed but no witness attached. *)
  | Replay_failed of string  (** Some step of the witness is not enabled. *)
  | Not_dead of Petri.Bitset.t
      (** The witness replays, but ends in this live marking. *)
  | Not_covering of Petri.Bitset.t
      (** The projected witness replays, but its final marking misses
          the property's cover. *)

type verdict =
  | Certified of { trace : Petri.Trace.t; final : Petri.Bitset.t }
      (** The witness replays and the final marking has the claimed
          defect.  For safety verdicts, [trace] and [final] are on the
          {e original} net. *)
  | Rejected of rejection  (** The claimed violation did not check out. *)
  | Inconclusive
      (** The run stopped early ([stop <> Completed]: state budget,
          deadline, memory, cancellation) without a certifiable
          violation — either no violation was claimed, or one was
          claimed but the stop preempted witness reconstruction.
          Nothing was proven either way. *)
  | Clean  (** No violation claimed by an exhaustive run. *)

val deadlock : Petri.Net.t -> Engine.outcome -> verdict
(** Certify a deadlock verdict: replay the witness on [net] and check
    the final marking enables nothing. *)

val safety : Petri.Net.t -> Petri.Safety.property -> Engine.outcome -> verdict
(** Certify a safety verdict.  [outcome] must come from a run on
    [Petri.Safety.monitor net property]; its witness is projected back
    to the original [net] with
    {!Petri.Safety.project_monitor_witness}, replayed there, and the
    final marking checked to cover [property.never_all]. *)

val conclusion :
  Engine.outcome list -> [ `Violated | `Holds | `Inconclusive ]
(** Combine engine outcomes into one scriptable verdict: [`Violated]
    if any engine found a violation (trustworthy even when truncated),
    [`Inconclusive] if none did but some exploration was truncated
    (a clean verdict from a truncated run is not a verdict), [`Holds]
    otherwise. *)

val certified : verdict -> bool
(** [true] exactly on [Certified _]. *)

val pp : Petri.Net.t -> Format.formatter -> verdict -> unit
(** One-block rendering (the [julie certify] output). *)
