(* Content-addressed result cache: (net digest, property, engine
   config, semantics version) -> finished Engine.outcome.

   The table is small (one entry per distinct question asked of a
   server process) and shared across domains, so a single probed lock
   is enough; the heavy work — running engines — never happens under
   it.  Invalidation is generational: a memory-pressure event bumps
   [generation] and sweeps the table immediately (the hook runs under
   the lock), and [find] double-checks the stored generation so an
   entry surviving a racing sweep still misses.

   Persistence is an opt-in append-only journal (see Journal): one
   header record carrying the semantics version, then one record per
   store — rendered key, the canonical net text, the outcome JSON.
   Recovery re-admits only records that decode, whose net text hashes
   to the digest in their key, and whose witness still re-certifies by
   replay; everything else is rejected.  A torn tail (kill -9 mid
   append) is truncated at the first bad checksum.  Memory pressure
   sweeps only the in-memory table — the disk copy is not memory, and
   re-admitting it on the next restart is the point. *)

module J = Gpo_obs.Json

let semantics_version = "gpo-semantics-1"

type key = string

let key ?(semantics = semantics_version) ?property ~digest ~engine ~max_states
    ~witness ~gpo_scan ~reduce () =
  Printf.sprintf "%s|net=%s|prop=%s|engine=%s|max_states=%d|witness=%b|scan=%b|reduce=%b"
    semantics digest
    (match property with None -> "-" | Some p -> p)
    engine max_states witness gpo_scan reduce

let render k = k

let digest_of_key k =
  List.find_map
    (fun part ->
      if String.starts_with ~prefix:"net=" part then
        Some (String.sub part 4 (String.length part - 4))
      else None)
    (String.split_on_char '|' k)

type entry = {
  outcome : Engine.outcome;
  gen : int;
  net : string option;
      (* Canonical rendering of the net the outcome talks about — what
         the journal needs to re-certify the entry after a restart. *)
}

let table : (key, entry) Hashtbl.t = Hashtbl.create 64
let lock = Gpo_obs.Lock.make "serve.cache"
let generation_cell = Atomic.make 0

let c_hit = Gpo_obs.Counter.make "serve.cache.hit"
let c_miss = Gpo_obs.Counter.make "serve.cache.miss"
let c_store = Gpo_obs.Counter.make "serve.cache.store"
let c_evicted = Gpo_obs.Counter.make "serve.cache.evicted"
let g_size = Gpo_obs.Gauge.make "serve.cache.size"

let c_recovered = Gpo_obs.Counter.make "serve.recovered"
let c_recovery_rejected = Gpo_obs.Counter.make "serve.recovery.rejected"
let c_appends = Gpo_obs.Counter.make "serve.journal.appends"
let c_journal_errors = Gpo_obs.Counter.make "serve.journal.errors"
let c_compactions = Gpo_obs.Counter.make "serve.journal.compactions"
let g_journal_bytes = Gpo_obs.Gauge.make "serve.journal.bytes"

let generation () = Atomic.get generation_cell
let size () = Gpo_obs.Lock.with_lock lock (fun () -> Hashtbl.length table)

let entries () =
  Gpo_obs.Lock.with_lock lock (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e.outcome) :: acc) table [])

let invalidate () =
  Gpo_obs.Lock.with_lock lock (fun () ->
      Atomic.incr generation_cell;
      Gpo_obs.Counter.add c_evicted (Hashtbl.length table);
      Hashtbl.reset table;
      Gpo_obs.Gauge.set_int g_size 0)

(* The result cache is recoverable ballast exactly like the world-set
   memos: dropping it costs recomputation, never correctness. *)
let () = Guard.on_memory_pressure invalidate

let evict_locked k =
  if Hashtbl.mem table k then begin
    Hashtbl.remove table k;
    Gpo_obs.Counter.incr c_evicted;
    Gpo_obs.Gauge.set_int g_size (Hashtbl.length table)
  end

(* A cached violation must still certify when replayed today — the
   cache returns the stored report only after its witness passes the
   same independent check a fresh [julie certify] run applies. *)
let verifies net (o : Engine.outcome) =
  (not o.Engine.deadlock) || o.Engine.witness = None
  || Certify.certified (Certify.deadlock net o)

(* ------------------------------------------------------------------ *)
(* Journal persistence                                                 *)

type recovery = {
  recovered : int;
  rejected : int;
  invalidated : int;
  torn_bytes : int;
  compacted : bool;
}

type persist = {
  path : string;
  compact_bytes : int;
  mutable writer : Journal.writer option;
      (* [None] after an unrecoverable I/O failure: journaling degrades
         to in-memory-only instead of failing stores. *)
}

let persist : persist option ref = ref None
let last_recovery_ref : recovery option ref = ref None

let attached () = !persist <> None
let last_recovery () = !last_recovery_ref

let journal_magic = "julie-results"
let journal_format = 1

let header_payload () =
  J.to_string
    (J.Obj
       [
         ("magic", J.String journal_magic);
         ("format", J.Int journal_format);
         ("semantics", J.String semantics_version);
       ])

let header_matches payload =
  match J.of_string payload with
  | Error _ -> `Bad
  | Ok json -> (
      match
        (J.member "magic" json, J.member "format" json, J.member "semantics" json)
      with
      | Some (J.String m), Some (J.Int f), Some (J.String s)
        when m = journal_magic && f = journal_format ->
          if s = semantics_version then `Ok else `Semantics
      | _ -> `Bad)

let record_payload k net (o : Engine.outcome) =
  J.to_string
    (J.Obj
       [
         ("key", J.String k);
         ("net", J.String net);
         ("outcome", Report.json_of_outcome o);
       ])

let decode_record payload =
  let ( let* ) = Result.bind in
  let* json = J.of_string payload in
  let* k =
    match J.member "key" json with
    | Some (J.String k) -> Ok k
    | _ -> Error "record: missing key"
  in
  let* net =
    match J.member "net" json with
    | Some (J.String n) -> Ok n
    | _ -> Error "record: missing net"
  in
  let* outcome =
    match J.member "outcome" json with
    | Some oj -> Report.outcome_of_json oj
    | None -> Error "record: missing outcome"
  in
  Ok (k, net, outcome)

(* The recovery gate — the journal invariant is that nothing is ever
   served that would not re-certify from first principles today:
   only [Completed] outcomes, only records whose net text hashes to the
   digest their key claims, and only witnesses that replay. *)
let admit payload =
  match decode_record payload with
  | Error msg -> Error msg
  | Ok (k, net_text, outcome) ->
      if outcome.Engine.stop <> Guard.Completed then
        Error "record: non-completed outcome"
      else begin
        match Petri.Parser.parse ~name:"net" net_text with
        | Error e ->
            Error (Format.asprintf "record: net: %a" Petri.Parser.pp_error e)
        | Ok net ->
            if digest_of_key k <> Some (Petri.Net.digest net) then
              Error "record: net text does not match the key digest"
            else if not (verifies net outcome) then
              Error "record: witness no longer certifies"
            else Ok (k, net_text, outcome)
      end

let live_records_locked () =
  Hashtbl.fold
    (fun k e acc ->
      match e.net with
      | Some net -> record_payload k net e.outcome :: acc
      | None -> acc)
    table []

let compact_locked p =
  match p.writer with
  | None -> ()
  | Some w ->
      Guard.Fault.probe "journal.compact";
      Gpo_obs.Span.time "serve.journal.compact" (fun () ->
          Journal.close w;
          let w' =
            Journal.create p.path (header_payload () :: live_records_locked ())
          in
          p.writer <- Some w';
          Gpo_obs.Counter.incr c_compactions;
          Gpo_obs.Gauge.set_int g_journal_bytes (Journal.bytes w'))

(* Journaling is best-effort on top of a correct in-memory cache: any
   failure (injected fault, full disk) is counted and the store still
   succeeds.  After a failure the writer is reopened if possible, or
   dropped — a dropped journal only costs cold restarts. *)
let journal_guarded p f =
  try f () with
  | _ ->
      Gpo_obs.Counter.incr c_journal_errors;
      (match p.writer with
      | Some _ -> (
          try p.writer <- Some (Journal.open_append p.path)
          with _ -> p.writer <- None)
      | None -> ())

let journal_append_locked k (e : entry) =
  match (!persist, e.net) with
  | Some p, Some net ->
      journal_guarded p (fun () ->
          match p.writer with
          | None -> ()
          | Some w ->
              Guard.Fault.probe "journal.append";
              Journal.append w (record_payload k net e.outcome);
              Gpo_obs.Counter.incr c_appends;
              Gpo_obs.Gauge.set_int g_journal_bytes (Journal.bytes w);
              if Journal.bytes w > p.compact_bytes then compact_locked p)
  | _ -> ()

let flush_journal () =
  match !persist with
  | None -> ()
  | Some p ->
      Gpo_obs.Lock.with_lock lock (fun () ->
          journal_guarded p (fun () ->
              match p.writer with
              | None -> ()
              | Some w ->
                  Guard.Fault.probe "journal.flush";
                  Journal.sync w))

let detach () =
  match !persist with
  | None -> ()
  | Some p ->
      Gpo_obs.Lock.with_lock lock (fun () ->
          (match p.writer with
          | Some w -> ( try Journal.close w with _ -> ())
          | None -> ());
          persist := None)

let journal_stats () =
  match !persist with
  | None -> J.Obj [ ("attached", J.Bool false) ]
  | Some p ->
      let recovery =
        match !last_recovery_ref with
        | None -> J.Null
        | Some r ->
            J.Obj
              [
                ("recovered", J.Int r.recovered);
                ("rejected", J.Int r.rejected);
                ("invalidated", J.Int r.invalidated);
                ("torn_bytes", J.Int r.torn_bytes);
                ("compacted", J.Bool r.compacted);
              ]
      in
      J.Obj
        [
          ("attached", J.Bool true);
          ("path", J.String p.path);
          ( "bytes",
            match p.writer with
            | Some w -> J.Int (Journal.bytes w)
            | None -> J.Null );
          ("recovery", recovery);
        ]

let attach ?(compact_bytes = 8 lsl 20) dir =
  detach ();
  List.iter Gpo_obs.Counter.touch
    [ c_recovered; c_recovery_rejected; c_appends; c_journal_errors;
      c_compactions ];
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      failwith (dir ^ " exists and is not a directory");
    let path = Filename.concat dir "results.journal" in
    let recovery =
      Gpo_obs.Span.time "serve.journal.recover" (fun () ->
          Gpo_obs.Lock.with_lock lock (fun () ->
              let read = Journal.read path in
              match read.Journal.records with
              | [] ->
                  (* Empty or missing file: nothing to recover.  Any
                     trailing garbage (a header torn by a crash during
                     the very first write) is dropped wholesale. *)
                  { recovered = 0; rejected = 0; invalidated = 0;
                    torn_bytes =
                      (if read.Journal.torn then
                         let size =
                           try (Unix.stat path).Unix.st_size with _ -> 0
                         in
                         size - read.Journal.good_bytes
                       else 0);
                    compacted = false }
              | header :: records -> (
                  let file_size =
                    try (Unix.stat path).Unix.st_size with _ -> 0
                  in
                  let torn_bytes =
                    if read.Journal.torn then
                      file_size - read.Journal.good_bytes
                    else 0
                  in
                  match header_matches header with
                  | `Bad | `Semantics ->
                      (* Unrecognized file or a semantics bump: every
                         entry is incomparable with fresh runs — drop
                         them wholesale. *)
                      { recovered = 0; rejected = 0;
                        invalidated = List.length records;
                        torn_bytes; compacted = true }
                  | `Ok ->
                      let gen = Atomic.get generation_cell in
                      let staged : (key, string * Engine.outcome) Hashtbl.t =
                        Hashtbl.create 64
                      in
                      let rejected = ref 0 in
                      List.iter
                        (fun payload ->
                          match admit payload with
                          | Ok (k, net, outcome) ->
                              (* Last writer wins across duplicates. *)
                              Hashtbl.replace staged k (net, outcome)
                          | Error _ -> incr rejected)
                        records;
                      let recovered = ref 0 in
                      Hashtbl.iter
                        (fun k (net, outcome) ->
                          (* Entries stored by this process stay
                             authoritative over the disk copy. *)
                          if not (Hashtbl.mem table k) then begin
                            Hashtbl.replace table k
                              { outcome; gen; net = Some net };
                            incr recovered
                          end)
                        staged;
                      Gpo_obs.Gauge.set_int g_size (Hashtbl.length table);
                      { recovered = !recovered; rejected = !rejected;
                        invalidated = 0; torn_bytes;
                        compacted =
                          read.Journal.torn || !rejected > 0
                          || List.length records > Hashtbl.length staged
                          || file_size > compact_bytes })))
    in
    let p = { path; compact_bytes; writer = None } in
    (* Rewrite the file to exactly the admitted set whenever recovery
       dropped anything (torn tail, rejects, duplicates, semantics
       bump) — the journal never re-serves what recovery refused. *)
    Gpo_obs.Lock.with_lock lock (fun () ->
        let w =
          if recovery.compacted || not (Sys.file_exists path) then begin
            let w =
              Journal.create p.path
                (header_payload () :: live_records_locked ())
            in
            if recovery.compacted then Gpo_obs.Counter.incr c_compactions;
            w
          end
          else Journal.open_append path
        in
        p.writer <- Some w;
        Gpo_obs.Gauge.set_int g_journal_bytes (Journal.bytes w);
        persist := Some p);
    Gpo_obs.Counter.add c_recovered recovery.recovered;
    Gpo_obs.Counter.add c_recovery_rejected recovery.rejected;
    last_recovery_ref := Some recovery;
    Ok recovery
  with
  | Failure msg -> Error msg
  | Unix.Unix_error (err, fn, arg) ->
      Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message err))
  | Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Lookup and store                                                    *)

let find ?verify_net k =
  let found =
    Gpo_obs.Lock.with_lock lock (fun () ->
        match Hashtbl.find_opt table k with
        | Some e when e.gen = Atomic.get generation_cell -> Some e.outcome
        | Some _ ->
            evict_locked k;
            None
        | None -> None)
  in
  match found with
  | None ->
      Gpo_obs.Counter.incr c_miss;
      None
  | Some outcome -> (
      match verify_net with
      | Some net when not (verifies net outcome) ->
          Gpo_obs.Lock.with_lock lock (fun () -> evict_locked k);
          Gpo_obs.Counter.incr c_miss;
          None
      | _ ->
          Gpo_obs.Counter.incr c_hit;
          Some outcome)

let store ?net_text k (o : Engine.outcome) =
  if o.Engine.stop <> Guard.Completed then false
  else begin
    Gpo_obs.Lock.with_lock lock (fun () ->
        let e =
          { outcome = o; gen = Atomic.get generation_cell; net = net_text }
        in
        Hashtbl.replace table k e;
        Gpo_obs.Gauge.set_int g_size (Hashtbl.length table);
        journal_append_locked k e);
    Gpo_obs.Counter.incr c_store;
    true
  end
