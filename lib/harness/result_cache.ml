(* Content-addressed result cache: (net digest, property, engine
   config, semantics version) -> finished Engine.outcome.

   The table is small (one entry per distinct question asked of a
   server process) and shared across domains, so a single probed lock
   is enough; the heavy work — running engines — never happens under
   it.  Invalidation is generational: a memory-pressure event bumps
   [generation] and sweeps the table immediately (the hook runs under
   the lock), and [find] double-checks the stored generation so an
   entry surviving a racing sweep still misses. *)

let semantics_version = "gpo-semantics-1"

type key = string

let key ?(semantics = semantics_version) ?property ~digest ~engine ~max_states
    ~witness ~gpo_scan ~reduce () =
  Printf.sprintf "%s|net=%s|prop=%s|engine=%s|max_states=%d|witness=%b|scan=%b|reduce=%b"
    semantics digest
    (match property with None -> "-" | Some p -> p)
    engine max_states witness gpo_scan reduce

let render k = k

type entry = { outcome : Engine.outcome; gen : int }

let table : (key, entry) Hashtbl.t = Hashtbl.create 64
let lock = Gpo_obs.Lock.make "serve.cache"
let generation_cell = Atomic.make 0

let c_hit = Gpo_obs.Counter.make "serve.cache.hit"
let c_miss = Gpo_obs.Counter.make "serve.cache.miss"
let c_store = Gpo_obs.Counter.make "serve.cache.store"
let c_evicted = Gpo_obs.Counter.make "serve.cache.evicted"
let g_size = Gpo_obs.Gauge.make "serve.cache.size"

let generation () = Atomic.get generation_cell
let size () = Gpo_obs.Lock.with_lock lock (fun () -> Hashtbl.length table)

let entries () =
  Gpo_obs.Lock.with_lock lock (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e.outcome) :: acc) table [])

let invalidate () =
  Gpo_obs.Lock.with_lock lock (fun () ->
      Atomic.incr generation_cell;
      Gpo_obs.Counter.add c_evicted (Hashtbl.length table);
      Hashtbl.reset table;
      Gpo_obs.Gauge.set_int g_size 0)

(* The result cache is recoverable ballast exactly like the world-set
   memos: dropping it costs recomputation, never correctness. *)
let () = Guard.on_memory_pressure invalidate

let evict_locked k =
  if Hashtbl.mem table k then begin
    Hashtbl.remove table k;
    Gpo_obs.Counter.incr c_evicted;
    Gpo_obs.Gauge.set_int g_size (Hashtbl.length table)
  end

(* A cached violation must still certify when replayed today — the
   cache returns the stored report only after its witness passes the
   same independent check a fresh [julie certify] run applies. *)
let verifies net (o : Engine.outcome) =
  (not o.Engine.deadlock) || o.Engine.witness = None
  || Certify.certified (Certify.deadlock net o)

let find ?verify_net k =
  let found =
    Gpo_obs.Lock.with_lock lock (fun () ->
        match Hashtbl.find_opt table k with
        | Some e when e.gen = Atomic.get generation_cell -> Some e.outcome
        | Some _ ->
            evict_locked k;
            None
        | None -> None)
  in
  match found with
  | None ->
      Gpo_obs.Counter.incr c_miss;
      None
  | Some outcome -> (
      match verify_net with
      | Some net when not (verifies net outcome) ->
          Gpo_obs.Lock.with_lock lock (fun () -> evict_locked k);
          Gpo_obs.Counter.incr c_miss;
          None
      | _ ->
          Gpo_obs.Counter.incr c_hit;
          Some outcome)

let store k (o : Engine.outcome) =
  if o.Engine.stop <> Guard.Completed then false
  else begin
    Gpo_obs.Lock.with_lock lock (fun () ->
        Hashtbl.replace table k { outcome = o; gen = Atomic.get generation_cell };
        Gpo_obs.Gauge.set_int g_size (Hashtbl.length table));
    Gpo_obs.Counter.incr c_store;
    true
  end
