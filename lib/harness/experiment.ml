type paper_row = {
  full_states : float;
  spin_states : float;
  spin_time : float;
  smv_peak : float option;
  smv_time : float option;
  gpo_states : float;
  gpo_time : float;
}

type family = {
  id : string;
  description : string;
  make : int -> Petri.Net.t;
  expect_deadlock : bool;
  rows : (int * paper_row) list;
}

let row full_states spin_states spin_time smv gpo_states gpo_time =
  let smv_peak, smv_time =
    match smv with
    | Some (peak, time) -> (Some peak, Some time)
    | None -> (None, None)
  in
  { full_states; spin_states; spin_time; smv_peak; smv_time; gpo_states; gpo_time }

let families =
  [
    {
      id = "NSDP";
      description = "non-serialized dining philosophers";
      make = Models.Nsdp.make;
      expect_deadlock = true;
      rows =
        [
          (2, row 18. 12. 0.08 (Some (1068., 0.04)) 3. 0.01);
          (4, row 322. 110. 0.13 (Some (10018., 0.22)) 3. 0.03);
          (6, row 5778. 1422. 1.07 (Some (52320., 8.97)) 3. 0.04);
          (8, row 103682. 19270. 25.62 (Some (687263., 1169.30)) 3. 0.05);
          (10, row 1.86e6 239308. 453.16 None 3. 0.06);
        ];
    };
    {
      id = "ASAT";
      description = "asynchronous arbiter tree";
      make = Models.Asat.make;
      expect_deadlock = false;
      rows =
        [
          (2, row 88. 33. 0.08 (Some (1587., 0.05)) 8. 0.01);
          (4, row 7822. 192. 0.11 (Some (117667., 79.61)) 14. 0.06);
          (8, row 1.58e6 3598. 1.12 None 23. 0.35);
        ];
    };
    {
      id = "OVER";
      description = "overtake protocol";
      make = Models.Over.make;
      expect_deadlock = false;
      rows =
        [
          (2, row 65. 28. 0.09 (Some (3511., 0.08)) 6. 0.01);
          (3, row 519. 107. 0.13 (Some (10203., 0.19)) 7. 0.02);
          (4, row 4175. 467. 0.44 (Some (11759., 0.64)) 8. 0.04);
          (5, row 33460. 2059. 2.05 (Some (24860., 3.59)) 9. 0.06);
        ];
    };
    {
      id = "RW";
      description = "readers and writers";
      make = Models.Rw.make;
      expect_deadlock = false;
      rows =
        [
          (6, row 72. 72. 0.06 (Some (3689., 0.09)) 2. 0.05);
          (9, row 523. 523. 1.51 (Some (9886., 0.16)) 2. 0.20);
          (12, row 4110. 4110. 16.89 (Some (10037., 0.28)) 2. 0.61);
          (15, row 29642. 29642. 194.33 (Some (10267., 0.43)) 2. 1.50);
        ];
    };
  ]

let family id =
  let id = String.uppercase_ascii id in
  match List.find_opt (fun f -> String.equal f.id id) families with
  | Some f -> f
  | None -> raise Not_found

type measurement = {
  family_id : string;
  size : int;
  paper : paper_row;
  outcomes : Engine.outcome list;
}

let skipped kind =
  {
    Engine.kind;
    states = 0.;
    metric = 0.;
    deadlock = false;
    time_s = 0.;
    stop = Guard.Deadline;
    witness = None;
  }

(* Per-family wall-clock bookkeeping for the engines whose cost explodes
   with instance size (the paper's ">24 hours" cells): (total spent,
   time of the last completed instance).  An instance is skipped when
   the time already spent, plus a pessimistic extrapolation of the last
   run, exceeds the budget. *)
let budget_state : (string * string, float * float) Hashtbl.t = Hashtbl.create 16

let budgeted ~engine ~family ~budget ~growth run =
  let key = (engine, family) in
  let spent, last = try Hashtbl.find budget_state key with Not_found -> (0., 0.) in
  if spent +. (last *. growth) > budget then None
  else begin
    let outcome : Engine.outcome = run () in
    Hashtbl.replace budget_state key (spent +. outcome.time_s, outcome.time_s);
    Some outcome
  end

let measure ?(engines = Engine.all) ?max_states ?(full_budget = infinity) fam size =
  let net = fam.make size in
  let paper =
    match List.assoc_opt size fam.rows with
    | Some p -> p
    | None ->
        row nan nan nan None nan nan
  in
  let run kind =
    let go () = Engine.run ?max_states kind net in
    let budgeted_run ~budget ~growth =
      match
        budgeted ~engine:(Engine.name kind) ~family:fam.id ~budget ~growth go
      with
      | Some outcome -> outcome
      | None -> skipped kind
    in
    match kind with
    | Engine.Full -> budgeted_run ~budget:full_budget ~growth:25.
    | Engine.Symbolic -> budgeted_run ~budget:(full_budget /. 2.) ~growth:20.
    | Engine.Stubborn | Engine.Gpo -> go ()
  in
  { family_id = fam.id; size; paper; outcomes = List.map run engines }

let table1 ?engines ?max_states ?(full_budget = 60.) ?sizes () =
  Hashtbl.reset budget_state;
  List.concat_map
    (fun fam ->
      let instance_sizes =
        match Option.bind sizes (List.assoc_opt fam.id) with
        | Some s -> s
        | None -> List.map fst fam.rows
      in
      List.map
        (fun size -> measure ?engines ?max_states ~full_budget fam size)
        instance_sizes)
    families

let outcome_of kind m = List.find_opt (fun o -> o.Engine.kind = kind) m.outcomes

let pp_float ppf v =
  if Float.is_nan v then Format.fprintf ppf "-"
  else if v >= 1e6 then Format.fprintf ppf "%.2e" v
  else Format.fprintf ppf "%.0f" v

let pp_opt ppf = function
  | None -> Format.fprintf ppf ">24h"
  | Some v -> pp_float ppf v

let pp_table1 ppf measurements =
  Format.fprintf ppf
    "@[<v>Table 1 — deadlock analysis (paper values in parentheses)@ @ \
     %-10s| %-19s| %-22s| %-26s| %-22s@ %s@ "
    "Problem" "States" "SPIN+PO st (time s)" "SMV peak BDD (time s)"
    "GPO st (time s)"
    (String.make 105 '-');
  List.iter
    (fun m ->
      let cell kind metric_paper time_paper =
        match outcome_of kind m with
        | None -> Format.asprintf "%-22s" "-"
        | Some o ->
            let measured =
              if Engine.truncated o then "skip"
              else Format.asprintf "%a/%.2f" pp_float o.Engine.metric o.Engine.time_s
            in
            Format.asprintf "%s (%s)" measured
              (Format.asprintf "%a/%s" pp_opt metric_paper
                 (match time_paper with
                 | None -> "-"
                 | Some t -> Format.asprintf "%.2f" t))
      in
      let full_cell =
        match outcome_of Engine.Full m with
        | None -> "-"
        | Some o ->
            Format.asprintf "%s (%a)"
              (if Engine.truncated o then "skip" else Format.asprintf "%a" pp_float o.Engine.metric)
              pp_float m.paper.full_states
      in
      Format.fprintf ppf "%-10s| %-19s| %-22s| %-26s| %-22s@ "
        (Printf.sprintf "%s(%d)" m.family_id m.size)
        full_cell
        (cell Engine.Stubborn (Some m.paper.spin_states) (Some m.paper.spin_time))
        (cell Engine.Symbolic m.paper.smv_peak m.paper.smv_time)
        (cell Engine.Gpo (Some m.paper.gpo_states) (Some m.paper.gpo_time)))
    measurements;
  Format.fprintf ppf "@]"

let fig1_series () =
  let net = Models.Figures.fig1 in
  let full = Petri.Reachability.explore net in
  let po = Petri.Stubborn.explore net in
  let gpo = Gpn.Explorer.analyse net in
  (* Count the maximal interleavings (paths through the full graph). *)
  let interleavings =
    let module T = Petri.Reachability.Marking_table in
    let memo = T.create 16 in
    let rec paths m =
      match T.find_opt memo m with
      | Some n -> n
      | None ->
          let successors = Petri.Semantics.successors net m in
          let n =
            if successors = [] then 1
            else List.fold_left (fun acc (_, m') -> acc + paths m') 0 successors
          in
          T.add memo m n;
          n
    in
    paths net.Petri.Net.initial
  in
  [
    ("full reachability graph states (Fig 1b)", full.states);
    ("maximal interleavings (3!)", interleavings);
    ("partial-order path states", po.states);
    ("GPO states", gpo.Gpn.Explorer.states);
  ]

let fig2_series ?(max_n = 12) () =
  List.init max_n (fun i ->
      let n = i + 1 in
      let net = Models.Figures.fig2 n in
      let full =
        if n <= 12 then
          float_of_int (Petri.Reachability.explore ~max_states:2_000_000 net).states
        else Float.nan
      in
      let po = float_of_int (Petri.Stubborn.explore net).states in
      let gpo = float_of_int (Gpn.Explorer.analyse net).states in
      (n, full, po, gpo))

let pp_fig2 ppf series =
  Format.fprintf ppf
    "@[<v>Figure 2 — N concurrent conflict pairs@ %-4s %-12s %-14s %-6s@ %s@ "
    "N" "full (3^N)" "PO (2^(N+1)-1)" "GPO"
    (String.make 40 '-');
  List.iter
    (fun (n, full, po, gpo) ->
      let str v = Format.asprintf "%a" pp_float v in
      Format.fprintf ppf "%-4d %-12s %-14s %-6s@ " n (str full) (str po) (str gpo))
    series;
  Format.fprintf ppf "@]"
