(* Racing engine portfolio: run several engines on the same net in
   separate domains, return the first conclusive verdict, cancel the
   rest.

   "Conclusive" means the verdict cannot change with more budget: a
   deadlock was found (sound for every engine we race), or the engine
   completed its whole state space.  A partial deadlock-free outcome is
   a non-answer, so a racer that runs out of budget keeps losing to
   slower engines that finish.

   Cancellation is cooperative: all entrants share one {!Par.Cancel}
   token, checked in every engine's step loop, and the first entrant to
   post a conclusive outcome sets it.  Losers unwind with
   [Par.Cancel.Cancelled] inside their own domain; the coordinator
   joins every domain before reporting, so no engine outlives the race.

   Resource governance: [deadline_s]/[mem_mb] arm a per-entrant
   {!Guard.t}, created {e inside} each racing domain (Gc alarms are
   per-domain).  An entrant stopped by its guard reports the typed
   reason instead of hanging the race, and an all-stopped race reports
   why each entrant stopped.

   Telemetry: aggregate counters and gauges accumulate globally from
   every domain (they are atomic), so engine counters reflect all the
   work done by the race, winners and losers alike.  The event stream
   would interleave incoherently, so each entrant runs under
   [Gpo_obs.Scoped.capture] and only the winner's events are replayed
   into the sink, followed by a [portfolio] meta record naming the
   winner and the fate of each loser. *)

let c_races = Gpo_obs.Counter.make "portfolio.races"
let c_entrants = Gpo_obs.Counter.make "portfolio.entrants"
let c_cancelled = Gpo_obs.Counter.make "portfolio.cancelled_losers"

type entry =
  | Done of Engine.outcome * Gpo_obs.event list
  | Cancelled
  | Failed of exn * Printexc.raw_backtrace

type report = {
  outcome : Engine.outcome;
  raced : Engine.kind list;
  conclusive : bool;
  cancelled_losers : int;
  stops : (Engine.kind * Guard.stop_reason) list;
}

let conclusive (o : Engine.outcome) = o.deadlock || o.stop = Guard.Completed

let stop_of = function
  | Done (o, _) -> o.Engine.stop
  | Cancelled -> Guard.Cancelled
  | Failed (e, _) -> Guard.Crashed (Printexc.to_string e)

let fate entry =
  match entry with
  | Done (o, _) when conclusive o -> "conclusive"
  | Done _ | Cancelled | Failed _ -> Guard.string_of_stop (stop_of entry)

let run ?max_states ?witness ?gpo_scan ?(reduce = false) ?jobs ?deadline_s
    ?mem_mb ?(engines = [ Engine.Stubborn; Engine.Symbolic; Engine.Gpo ]) net =
  if engines = [] then invalid_arg "Portfolio.run: empty engine list";
  (* Reduce once, up front, on the coordinator domain: every entrant
     races the same reduced net (reducing per entrant would triple-count
     the reduce.rule.* counters and redo identical work), the reduction
     spans land in the main event stream rather than a loser's discarded
     capture, and the winner's witness is lifted back below. *)
  let reduction = if reduce then Some (Reduce.run net) else None in
  let net = match reduction with Some r -> r.Reduce.net | None -> net in
  Gpo_obs.Counter.incr c_races;
  Gpo_obs.Counter.add c_entrants (List.length engines);
  Gpo_obs.Counter.touch c_cancelled;
  let token = Par.Cancel.create () in
  let winner : (Engine.kind * entry) option Atomic.t = Atomic.make None in
  let race kind () =
    let entry =
      match
        Gpo_obs.Scoped.capture (fun () ->
            Guard.with_guard ?deadline_s ?mem_mb (fun guard ->
                Engine.run ?max_states ?witness ?gpo_scan ?jobs ~cancel:token
                  ~guard kind net))
      with
      | o, events -> Done (o, events)
      | exception Par.Cancel.Cancelled -> Cancelled
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    (match entry with
    | Done (o, _) when conclusive o ->
        if Atomic.compare_and_set winner None (Some (kind, entry)) then
          Par.Cancel.cancel token
    | _ -> ());
    (kind, entry)
  in
  let entries =
    match engines with
    | [ only ] -> [ race only () ]
    | _ ->
        (* One domain per engine; the coordinator joins them all, so
           every loser has fully unwound before we read the results. *)
        let domains = List.map (fun k -> Domain.spawn (race k)) engines in
        List.map Domain.join domains
  in
  let cancelled_losers =
    List.length (List.filter (fun (_, e) -> e = Cancelled) entries)
  in
  Gpo_obs.Counter.add c_cancelled cancelled_losers;
  let stops = List.map (fun (kind, entry) -> (kind, stop_of entry)) entries in
  (* The CAS winner is the first conclusive arrival.  With none (every
     entrant stopped short or failed), fall back to the completed
     outcome that got furthest, and failing that re-raise the first
     error. *)
  let chosen =
    match Atomic.get winner with
    | Some (kind, Done (o, events)) -> Some (kind, o, events)
    | Some _ -> assert false
    | None ->
        List.filter_map
          (function
            | kind, Done (o, events) -> Some (kind, o, events) | _ -> None)
          entries
        |> List.sort (fun (_, (a : Engine.outcome), _) (_, b, _) ->
               compare b.Engine.states a.Engine.states)
        |> function
        | best :: _ -> Some best
        | [] -> None
  in
  match chosen with
  | None -> (
      match
        List.find_map
          (function _, Failed (e, bt) -> Some (e, bt) | _ -> None)
          entries
      with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          (* Only reachable if an external token cancelled the whole
             race before any entrant concluded. *)
          raise Par.Cancel.Cancelled)
  | Some (winner_kind, outcome, events) ->
      let outcome =
        match reduction with
        | None -> outcome
        | Some red ->
            {
              outcome with
              Engine.witness =
                Option.map (Reduce.lift red) outcome.Engine.witness;
            }
      in
      Gpo_obs.Scoped.replay events;
      Gpo_obs.meta "portfolio"
        (("winner", Gpo_obs.S (Engine.name winner_kind))
        :: ("conclusive", Gpo_obs.B (conclusive outcome))
        :: List.map
             (fun (kind, entry) ->
               (Engine.name kind, Gpo_obs.S (fate entry)))
             entries);
      {
        outcome;
        raced = engines;
        conclusive = conclusive outcome;
        cancelled_losers;
        stops;
      }
