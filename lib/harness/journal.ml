(* Append-only file of checksummed, length-prefixed records.

   One record on disk is [u32 BE payload length][u64 BE FNV-1a 64 of
   the payload][payload bytes].  The format is crash-only by
   construction: a writer that dies mid-append (kill -9, power loss)
   leaves a torn tail, and [read] recovers everything up to the first
   record that fails its length or checksum test — nothing after a torn
   or corrupted record is trusted, because the stream may have lost
   frame synchronisation there.  What a record *means* is the caller's
   business (the result cache stores a header record followed by cache
   entries). *)

let max_record = 1 lsl 26 (* mirror of Protocol.max_frame *)
let header_bytes = 12

(* FNV-1a, 64-bit.  Int64 arithmetic keeps the full width on 63-bit
   OCaml ints. *)
let checksum (s : string) =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  !h

let frame payload =
  let len = String.length payload in
  if len > max_record then
    invalid_arg (Printf.sprintf "Journal.frame: record too large (%d bytes)" len);
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int64_be b 4 (checksum payload);
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Reading: recover the longest good prefix                            *)

type read_result = {
  records : string list;  (** Good records, in append order. *)
  good_bytes : int;  (** File offset just past the last good record. *)
  torn : bool;  (** Trailing bytes after [good_bytes] were dropped. *)
}

let read path =
  if not (Sys.file_exists path) then
    { records = []; good_bytes = 0; torn = false }
  else begin
    let data =
      In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
    in
    let size = String.length data in
    let rec go off acc =
      if off = size then (List.rev acc, off, false)
      else if size - off < header_bytes then (List.rev acc, off, true)
      else
        let len = Int32.to_int (String.get_int32_be data off) in
        if len < 0 || len > max_record then (List.rev acc, off, true)
        else if size - off - header_bytes < len then (List.rev acc, off, true)
        else
          let sum = String.get_int64_be data (off + 4) in
          let payload = String.sub data (off + header_bytes) len in
          if not (Int64.equal sum (checksum payload)) then
            (List.rev acc, off, true)
          else go (off + header_bytes + len) (payload :: acc)
    in
    let records, good_bytes, torn = go 0 [] in
    { records; good_bytes; torn }
  end

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

type writer = { path : string; oc : out_channel; mutable bytes : int }

let bytes w = w.bytes

let open_append path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  { path; oc; bytes = out_channel_length oc }

let append w payload =
  let framed = frame payload in
  output_string w.oc framed;
  (* Push every record to the OS as soon as it is complete: after a
     kill -9 the only possible damage is a torn *tail*, never a torn
     middle, and [read] truncates exactly there. *)
  flush w.oc;
  w.bytes <- w.bytes + String.length framed

let sync w =
  flush w.oc;
  try Unix.fsync (Unix.descr_of_out_channel w.oc) with Unix.Unix_error _ -> ()

let close w =
  sync w;
  close_out_noerr w.oc

(* Atomic whole-file replacement: write a sibling temp file, fsync it,
   rename over the target.  Readers (and a crash at any point) see
   either the old file or the new one, never a mix. *)
let create path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     List.iter (fun r -> output_string oc (frame r)) records;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  open_append path

let truncate path good_bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> Unix.ftruncate fd good_bytes)
