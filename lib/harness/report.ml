module J = Gpo_obs.Json

(* NaN/inf serialize as null via the Json printer; paper cells that the
   paper reports as "> 24 hours" arrive here as None and also become
   null. *)
let num f : J.t = J.Float f
let opt_num = function None -> J.Null | Some f -> J.Float f

let json_of_outcome (o : Engine.outcome) =
  J.Obj
    [
      ("engine", J.String (Engine.name o.kind));
      ("states", num o.states);
      ("metric", num o.metric);
      ("deadlock", J.Bool o.deadlock);
      ("time_s", num o.time_s);
      ("truncated", J.Bool (Engine.truncated o));
      ("stop_reason", J.String (Guard.string_of_stop o.stop));
      ( "witness",
        match o.witness with
        | None -> J.Null
        | Some trace -> J.List (List.map (fun t -> J.Int t) trace) );
    ]

let outcome_of_json json =
  let ( let* ) = Result.bind in
  let str name =
    match J.member name json with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "outcome: field %S: expected string" name)
  in
  let flt name =
    match J.member name json with
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | Some J.Null -> Ok Float.nan
    | _ -> Error (Printf.sprintf "outcome: field %S: expected number" name)
  in
  let bool_ name =
    match J.member name json with
    | Some (J.Bool b) -> Ok b
    | _ -> Error (Printf.sprintf "outcome: field %S: expected bool" name)
  in
  let* engine = str "engine" in
  let* kind =
    match
      List.find_opt (fun k -> Engine.name k = engine) Engine.all
    with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "outcome: unknown engine %S" engine)
  in
  let* states = flt "states" in
  let* metric = flt "metric" in
  let* deadlock = bool_ "deadlock" in
  let* time_s = flt "time_s" in
  let* stop_tag = str "stop_reason" in
  let* stop =
    match Guard.stop_of_string stop_tag with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "outcome: unknown stop reason %S" stop_tag)
  in
  let* witness =
    match J.member "witness" json with
    | None | Some J.Null -> Ok None
    | Some (J.List items) ->
        let* steps =
          List.fold_right
            (fun item acc ->
              let* acc = acc in
              match item with
              | J.Int t -> Ok (t :: acc)
              | _ -> Error "outcome: witness steps must be ints")
            items (Ok [])
        in
        Ok (Some steps)
    | Some _ -> Error "outcome: witness: expected a list of ints"
  in
  Ok { Engine.kind; states; metric; deadlock; time_s; stop; witness }

let json_of_paper_row (p : Experiment.paper_row) =
  J.Obj
    [
      ("full_states", num p.full_states);
      ("spin_states", num p.spin_states);
      ("spin_time", num p.spin_time);
      ("smv_peak", opt_num p.smv_peak);
      ("smv_time", opt_num p.smv_time);
      ("gpo_states", num p.gpo_states);
      ("gpo_time", num p.gpo_time);
    ]

let json_of_measurement (m : Experiment.measurement) =
  J.Obj
    [
      ("family", J.String m.family_id);
      ("size", J.Int m.size);
      ("paper", json_of_paper_row m.paper);
      ("outcomes", J.List (List.map json_of_outcome m.outcomes));
    ]

let json_of_table1 measurements =
  J.Obj
    [
      ("table", J.String "table1");
      ("rows", J.List (List.map json_of_measurement measurements));
    ]

let json_of_fig1 series =
  J.Obj
    [
      ("figure", J.String "fig1");
      ( "series",
        J.List
          (List.map
             (fun (label, count) ->
               J.Obj [ ("label", J.String label); ("count", J.Int count) ])
             series) );
    ]

let json_of_fig2 series =
  J.Obj
    [
      ("figure", J.String "fig2");
      ( "series",
        J.List
          (List.map
             (fun (n, full, po, gpo) ->
               J.Obj
                 [ ("n", J.Int n); ("full", num full); ("po", num po); ("gpo", num gpo) ])
             series) );
    ]

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)

let read_process_line cmd =
  (* Best-effort: provenance must never fail a bench run. *)
  match Unix.open_process_in cmd with
  | exception _ -> None
  | ic -> (
      let line = try Some (String.trim (input_line ic)) with _ -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some l when l <> "" -> Some l
      | _ -> None
      | exception _ -> None)

let git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
      match read_process_line "git rev-parse HEAD 2>/dev/null" with
      | Some sha -> sha
      | None -> "unknown")

let host_meta () =
  let os =
    match read_process_line "uname -srm 2>/dev/null" with
    | Some s -> s
    | None -> Sys.os_type
  in
  let run_id =
    Printf.sprintf "%08x-%04x"
      (Int64.to_int (Int64.rem (Int64.of_float (Unix.gettimeofday () *. 1e3))
                       0x100000000L))
      (Unix.getpid () land 0xFFFF)
  in
  J.Obj
    [
      ("cores", J.Int (Domain.recommended_domain_count ()));
      ("os", J.String os);
      ("git_sha", J.String (git_sha ()));
      ("run_id", J.String run_id);
    ]

let with_meta json =
  match json with
  | J.Obj fields -> J.Obj (("meta", host_meta ()) :: fields)
  | other -> J.Obj [ ("meta", host_meta ()); ("data", other) ]

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> J.to_channel oc json)
