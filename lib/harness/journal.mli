(** Append-only file of checksummed, length-prefixed records — the
    storage layer under the persistent {!Result_cache} journal.

    On disk one record is
    [[u32 BE payload length][u64 BE FNV-1a of payload][payload]].
    The format is {e crash-only}: every append is flushed whole, so a
    writer killed at any instant (kill -9, power loss) leaves at worst
    a torn {e tail}; {!read} recovers the longest prefix of records
    whose lengths and checksums verify and reports where the good
    prefix ends.  Nothing after the first bad record is trusted —
    frame synchronisation may be lost there.

    The journal stores bytes; interpreting them (header records,
    semantics versions, cache entries) belongs to the caller. *)

val max_record : int
(** Refuse records larger than this (64 MiB, mirroring the wire
    protocol's frame cap) — a corrupt length prefix must not turn into
    an unbounded allocation. *)

val checksum : string -> int64
(** FNV-1a (64-bit) of a payload — exposed for the format tests. *)

(** {1 Reading} *)

type read_result = {
  records : string list;  (** Good records, in append order. *)
  good_bytes : int;  (** File offset just past the last good record. *)
  torn : bool;  (** Trailing bytes after [good_bytes] were dropped. *)
}

val read : string -> read_result
(** Read every verifiable record.  A missing file reads as empty; a
    torn or corrupted record ends the good prefix (everything from its
    first byte on is dropped and [torn] is set). *)

(** {1 Writing} *)

type writer

val open_append : string -> writer
(** Open for appending (creating an empty file if absent). *)

val create : string -> string list -> writer
(** [create path records] atomically replaces [path] with a fresh file
    holding exactly [records] (temp file + fsync + rename), then opens
    it for append — the compaction primitive.  A crash during [create]
    leaves the old file intact. *)

val append : writer -> string -> unit
(** Append one record and flush it to the OS (so a later kill -9 can
    only tear the record currently being written, never a finished
    one).  Raises [Invalid_argument] beyond {!max_record}. *)

val sync : writer -> unit
(** Flush and [fsync] — the graceful-drain barrier. *)

val close : writer -> unit
(** {!sync} then close.  Idempotent-ish: never raises on a dead fd. *)

val bytes : writer -> int
(** Current file size in bytes (drives the compaction threshold). *)

val truncate : string -> int -> unit
(** Physically truncate the file at the given offset — applied after
    {!read} reports a torn tail so later appends extend a clean
    prefix. *)
