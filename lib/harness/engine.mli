(** Uniform interface over the four verification engines of Table 1.

    Each engine takes a safe net and answers the deadlock question,
    reporting the exploration size in its own metric: visited markings
    for the explicit engines, GPN states for GPO, peak BDD nodes for
    the symbolic engine. *)

type kind =
  | Full  (** Conventional exhaustive analysis ("States" column). *)
  | Stubborn  (** Stubborn-set partial order ("SPIN+PO" column). *)
  | Symbolic  (** BDD reachability ("SMV" column). *)
  | Gpo  (** Generalized partial order ("GPO" column). *)

type outcome = {
  kind : kind;
  states : float;
      (** Visited states (explicit/GPO) or reachable markings (symbolic). *)
  metric : float;
      (** The Table 1 size metric: states for explicit/GPO engines,
          peak live BDD nodes for the symbolic engine. *)
  deadlock : bool;
  time_s : float;  (** Wall-clock analysis time. *)
  stop : Guard.stop_reason;
      (** Why the run ended.  [Completed] iff the engine covered its
          whole state space; any other reason ([State_budget],
          [Deadline], [Memory], ...) makes a clean verdict
          inconclusive.  A [deadlock = true] verdict is sound under any
          stop reason — partial exploration only visits reachable
          states. *)
  witness : Petri.Trace.t option;
      (** When requested and [deadlock = true]: a firing sequence from
          the initial marking to a dead marking, reconstructed by the
          engine itself (predecessor maps for the explicit engines,
          layered preimages for the symbolic one, world linearization
          for GPO).  Check it independently with {!Certify}. *)
}

val truncated : outcome -> bool
(** [stop <> Completed]. *)

val all : kind list
(** The four engines in Table 1 column order. *)

val name : kind -> string
(** Display name ("full", "spin+po", "smv", "gpo"). *)

val run :
  ?max_states:int -> ?witness:bool -> ?gpo_scan:bool -> ?reduce:bool ->
  ?cancel:Par.Cancel.t -> ?guard:Guard.t -> ?jobs:int ->
  kind -> Petri.Net.t -> outcome
(** Run one engine.  [max_states] (default [5_000_000]) bounds the
    explicit engines and GPO; the symbolic engine ignores it.
    [witness] (default [false]) makes a [deadlock = true] verdict carry
    a counterexample firing sequence (costs predecessor recording /
    frontier-layer retention during the run).

    [cancel] is a cooperative cancellation token polled in every
    engine's step loop; a set token unwinds the run with
    [Par.Cancel.Cancelled] (used by {!Portfolio} to stop the losers).
    [guard] is a resource guard polled at the same points: a tripped
    deadline or memory budget ends the run early with a partial
    outcome whose [stop] carries the reason.  A genuine
    [Out_of_memory] — the allocator dying before any soft budget
    tripped — is caught here as well: the registered caches are
    dropped ({!Guard.relieve_memory}) and the run degrades to an
    outcome with [stop = Memory] instead of crashing.
    [jobs] (default [1]) selects domain-parallel exploration for the
    explicit engines ([Full]/[Stubborn] via
    {!Petri.Reachability.explore_par}) and for the GPO engine, whose
    explorer fans each wave of runs out over a domain pool
    ({!Gpn.Explorer.analyse} with [~jobs]); only the symbolic engine
    is single-domain by design and ignores it.

    [gpo_scan] (default [false]) selects the GPO configuration and is
    ignored by the other engines.  The default is the paper-faithful
    configuration ([Gpn.Explorer.analyse ~scan:false], Section 3.3 as
    published), which is what Table 1 reproduces; it is sound on any
    deadlock it {e finds} but can miss deadlocks on some nets.  Pass
    [~gpo_scan:true] to use the library's hardened default with the
    deviation scan whenever the verdict itself matters (certification,
    conformance, [julie safety]).

    [reduce] (default [false]) applies the deadlock-preserving
    structural reduction pipeline ({!Reduce.run}) to the net first and
    runs the engine on the reduced net; any witness is lifted back
    through the composed inverse mapping ({!Reduce.lift}) so it replays
    — and certifies — against the net the caller passed in.  The
    reduction runs inside the same recovery envelope as the engine: an
    allocation failure degrades it to the identity reduction and the
    engine sees the unreduced net. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line rendering: name, metric, deadlock verdict, time. *)
