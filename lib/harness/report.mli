(** Machine-readable experiment reports.

    Serializes the harness result types to {!Gpo_obs.Json} so the bench
    writes a [BENCH_<job>.json] next to every formatted table — the
    durable record later PRs diff their numbers against.  Non-finite
    floats (missing paper cells) serialize as [null]. *)

val json_of_outcome : Engine.outcome -> Gpo_obs.Json.t
(** [{"engine":…,"states":…,"metric":…,"deadlock":…,"time_s":…,
     "truncated":…}]. *)

val outcome_of_json : Gpo_obs.Json.t -> (Engine.outcome, string) result
(** Inverse of {!json_of_outcome} (the redundant ["truncated"] flag is
    ignored; [null] numbers come back as [nan]).  The persistent result
    cache decodes journal records through this — a record whose outcome
    does not decode is rejected, never guessed at. *)

val json_of_paper_row : Experiment.paper_row -> Gpo_obs.Json.t
(** The paper's reference numbers for one Table 1 row. *)

val json_of_measurement : Experiment.measurement -> Gpo_obs.Json.t
(** One Table 1 cell group: family, size, paper numbers and one
    outcome per engine that ran. *)

val json_of_table1 : Experiment.measurement list -> Gpo_obs.Json.t
(** [{"table":"table1","rows":[…]}] over the whole grid. *)

val json_of_fig1 : (string * int) list -> Gpo_obs.Json.t
(** [{"figure":"fig1","series":[{"label":…,"count":…}]}]. *)

val json_of_fig2 : (int * float * float * float) list -> Gpo_obs.Json.t
(** [{"figure":"fig2","series":[{"n":…,"full":…,"po":…,"gpo":…}]}]. *)

val host_meta : unit -> Gpo_obs.Json.t
(** Provenance for a bench run:
    [{"cores":…,"os":…,"git_sha":…,"run_id":…}].  [cores] is
    {!Domain.recommended_domain_count}, [os] comes from [uname -srm]
    (falling back to {!Sys.os_type}), [git_sha] prefers the
    [GITHUB_SHA] environment variable over [git rev-parse HEAD], and
    [run_id] is a time+pid tag unique per invocation.  Best-effort:
    never raises. *)

val with_meta : Gpo_obs.Json.t -> Gpo_obs.Json.t
(** Prepend a ["meta"] field holding {!host_meta} to an object (other
    values are wrapped as [{"meta":…,"data":…}]), so every
    [BENCH_*.json] records where its numbers came from. *)

val write_file : string -> Gpo_obs.Json.t -> unit
(** Write one JSON value (newline-terminated) to [path]. *)
