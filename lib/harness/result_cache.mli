(** Content-addressed verification result cache.

    The warm-state service answers repeated queries in O(1) by keying
    every finished {!Engine.outcome} on the {e content} of the question:
    the net digest ({!Petri.Net.digest}), the property, the engine
    configuration that produced the verdict, and a semantics version
    stamp.  Two jobs with the same key are the same question — the
    engines are deterministic (bit-identical across worker counts, see
    DESIGN.md "Parallel GPN"), so the cached report {e is} the report a
    fresh run would produce.

    Soundness rules:

    - only [stop = Completed] outcomes are ever stored — a partial
      result is an answer to a {e budget}, not to the net, and must
      never be served to a later query with different budgets of its
      own ({!store} refuses them);
    - a cached violation is re-certified on every hit when the caller
      provides the net: the witness is replayed through
      {!Certify.deadlock} and the entry is evicted if it no longer
      checks out — a cache hit never weakens the certification story;
    - {!semantics_version} is part of every key, so changing engine
      semantics (and bumping the stamp) orphans every stale entry
      instead of serving wrong answers.

    Memory governance: the cache registers with
    {!Guard.on_memory_pressure} like the world-set memo tables — a
    pressure event bumps the cache generation and sweeps every entry
    (counted by [serve.cache.evicted]), so [--mem-mb] trips and genuine
    [Out_of_memory] recovery reach the result cache too.

    Persistence ({!attach}): an opt-in append-only journal (one file,
    [results.journal], under the attach directory) built on {!Journal}.
    Every store of an entry that carries its net text appends one
    record; recovery on attach re-admits only records that decode,
    whose net text hashes to the digest embedded in their key, and
    whose witness still re-certifies by replay — "nothing is served
    that would not re-certify".  A torn tail (kill -9 mid-append) is
    dropped at the first bad checksum; a semantics-version mismatch in
    the journal header invalidates the file wholesale; duplicates
    resolve last-writer-wins.  Whenever recovery dropped anything the
    file is immediately compacted to exactly the admitted set.
    Journaling is best-effort: an I/O failure (or injected fault at
    the ["journal.append"] / ["journal.flush"] / ["journal.compact"]
    probe sites) counts [serve.journal.errors] and the in-memory store
    still succeeds.

    Telemetry: [serve.cache.hit] / [serve.cache.miss] /
    [serve.cache.store] / [serve.cache.evicted] counters and the
    [serve.cache.size] gauge; persistence adds [serve.recovered],
    [serve.recovery.rejected], [serve.journal.appends],
    [serve.journal.errors], [serve.journal.compactions] and the
    [serve.journal.bytes] gauge. *)

val semantics_version : string
(** The engine-semantics stamp baked into every key.  Bump it whenever
    a change makes old cached verdicts incomparable with fresh runs. *)

type key
(** A content-addressed cache key. *)

val key :
  ?semantics:string ->
  ?property:string ->
  digest:string ->
  engine:string ->
  max_states:int ->
  witness:bool ->
  gpo_scan:bool ->
  reduce:bool ->
  unit ->
  key
(** Build the key for one job.  [digest] is {!Petri.Net.digest} of the
    net the engine actually runs on (for safety queries: the monitored
    net); [property] is the canonical property rendering (absent for
    plain deadlock); [engine] is the engine (or ["portfolio"]) name;
    the remaining fields are the {!Engine.run} switches that change
    what a run computes.  [semantics] defaults to
    {!semantics_version} and is exposed for the differential tests
    only.  Worker count is deliberately {e not} part of the key: the
    engines are proven bit-identical across [jobs]. *)

val render : key -> string
(** Stable one-line rendering of a key (diagnostics, tests). *)

val find : ?verify_net:Petri.Net.t -> key -> Engine.outcome option
(** Look the key up.  A stale entry (generation behind the last
    memory-pressure sweep) is evicted and misses.  With [verify_net],
    a hit that claims a violation with a witness is re-certified by
    replay ({!Certify.deadlock} against [verify_net]); an entry whose
    witness no longer certifies is evicted and misses.  Counts
    [serve.cache.hit] / [serve.cache.miss]. *)

val store : ?net_text:string -> key -> Engine.outcome -> bool
(** Cache a finished outcome.  Returns [false] — and stores nothing —
    when [outcome.stop <> Completed]: partial results never poison the
    cache.  Counts [serve.cache.store].  [net_text] is the canonical
    rendering ({!Petri.Parser.to_string}) of the net the outcome talks
    about; when present and a journal is attached the entry is also
    appended to disk (entries without it stay memory-only — they could
    never be re-certified on recovery). *)

val invalidate : unit -> unit
(** Bump the generation and sweep every entry (each counted by
    [serve.cache.evicted]).  This is the {!Guard.on_memory_pressure}
    hook; exposed for tests and for an explicit [serve] flush. *)

val generation : unit -> int
(** The current cache generation (bumped by every {!invalidate}). *)

val size : unit -> int
(** Live entries. *)

val entries : unit -> (string * Engine.outcome) list
(** Rendered key and outcome of every live entry (test introspection:
    the chaos suite asserts no non-[Completed] entry ever appears). *)

(** {1 Persistence} *)

type recovery = {
  recovered : int;  (** Entries re-admitted after passing every gate. *)
  rejected : int;
      (** Records that decoded as frames but failed admission: partial
          outcomes, digest mismatches, witnesses that no longer
          certify, undecodable payloads. *)
  invalidated : int;
      (** Entries dropped wholesale on a header/semantics mismatch. *)
  torn_bytes : int;  (** Bytes discarded from a torn tail. *)
  compacted : bool;  (** The file was rewritten to the admitted set. *)
}

val attach : ?compact_bytes:int -> string -> (recovery, string) result
(** [attach dir] opens (creating if needed) [dir/results.journal],
    recovers it into the in-memory table (in-memory entries stored by
    this process win over the disk copy), and starts journaling every
    subsequent {!store} that carries a net text.  [compact_bytes]
    (default 8 MiB) is the file-size threshold that triggers an
    in-place compaction to the live entry set.  Errors (unwritable
    directory, ...) are returned, never raised. *)

val detach : unit -> unit
(** Close the journal and stop persisting.  Idempotent. *)

val attached : unit -> bool

val flush_journal : unit -> unit
(** {!Journal.sync} the journal (fsync barrier) — the graceful-drain
    hook.  No-op when detached or after a dropped writer. *)

val last_recovery : unit -> recovery option
(** The report of the most recent {!attach}, for [--stats] and the
    startup banner. *)

val journal_stats : unit -> Gpo_obs.Json.t
(** [{"attached":…,"path":…,"bytes":…,"recovery":…}] for the server's
    stats endpoint. *)
