(** Content-addressed verification result cache.

    The warm-state service answers repeated queries in O(1) by keying
    every finished {!Engine.outcome} on the {e content} of the question:
    the net digest ({!Petri.Net.digest}), the property, the engine
    configuration that produced the verdict, and a semantics version
    stamp.  Two jobs with the same key are the same question — the
    engines are deterministic (bit-identical across worker counts, see
    DESIGN.md "Parallel GPN"), so the cached report {e is} the report a
    fresh run would produce.

    Soundness rules:

    - only [stop = Completed] outcomes are ever stored — a partial
      result is an answer to a {e budget}, not to the net, and must
      never be served to a later query with different budgets of its
      own ({!store} refuses them);
    - a cached violation is re-certified on every hit when the caller
      provides the net: the witness is replayed through
      {!Certify.deadlock} and the entry is evicted if it no longer
      checks out — a cache hit never weakens the certification story;
    - {!semantics_version} is part of every key, so changing engine
      semantics (and bumping the stamp) orphans every stale entry
      instead of serving wrong answers.

    Memory governance: the cache registers with
    {!Guard.on_memory_pressure} like the world-set memo tables — a
    pressure event bumps the cache generation and sweeps every entry
    (counted by [serve.cache.evicted]), so [--mem-mb] trips and genuine
    [Out_of_memory] recovery reach the result cache too.

    Telemetry: [serve.cache.hit] / [serve.cache.miss] /
    [serve.cache.store] / [serve.cache.evicted] counters and the
    [serve.cache.size] gauge. *)

val semantics_version : string
(** The engine-semantics stamp baked into every key.  Bump it whenever
    a change makes old cached verdicts incomparable with fresh runs. *)

type key
(** A content-addressed cache key. *)

val key :
  ?semantics:string ->
  ?property:string ->
  digest:string ->
  engine:string ->
  max_states:int ->
  witness:bool ->
  gpo_scan:bool ->
  reduce:bool ->
  unit ->
  key
(** Build the key for one job.  [digest] is {!Petri.Net.digest} of the
    net the engine actually runs on (for safety queries: the monitored
    net); [property] is the canonical property rendering (absent for
    plain deadlock); [engine] is the engine (or ["portfolio"]) name;
    the remaining fields are the {!Engine.run} switches that change
    what a run computes.  [semantics] defaults to
    {!semantics_version} and is exposed for the differential tests
    only.  Worker count is deliberately {e not} part of the key: the
    engines are proven bit-identical across [jobs]. *)

val render : key -> string
(** Stable one-line rendering of a key (diagnostics, tests). *)

val find : ?verify_net:Petri.Net.t -> key -> Engine.outcome option
(** Look the key up.  A stale entry (generation behind the last
    memory-pressure sweep) is evicted and misses.  With [verify_net],
    a hit that claims a violation with a witness is re-certified by
    replay ({!Certify.deadlock} against [verify_net]); an entry whose
    witness no longer certifies is evicted and misses.  Counts
    [serve.cache.hit] / [serve.cache.miss]. *)

val store : key -> Engine.outcome -> bool
(** Cache a finished outcome.  Returns [false] — and stores nothing —
    when [outcome.stop <> Completed]: partial results never poison the
    cache.  Counts [serve.cache.store]. *)

val invalidate : unit -> unit
(** Bump the generation and sweep every entry (each counted by
    [serve.cache.evicted]).  This is the {!Guard.on_memory_pressure}
    hook; exposed for tests and for an explicit [serve] flush. *)

val generation : unit -> int
(** The current cache generation (bumped by every {!invalidate}). *)

val size : unit -> int
(** Live entries. *)

val entries : unit -> (string * Engine.outcome) list
(** Rendered key and outcome of every live entry (test introspection:
    the chaos suite asserts no non-[Completed] entry ever appears). *)
