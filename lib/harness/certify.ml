(* Independent certification of engine verdicts.

   An engine's "deadlock found / property violated" answer is only
   trustworthy if it can be checked without trusting the engine: the
   witness firing sequence is replayed step by step with [Petri.Trace]
   (which validates enabledness of every firing against the net
   semantics alone) and the final marking is checked to be dead — or,
   for safety verdicts, to cover the property's bad places on the
   original net after inverting the monitor construction. *)

type rejection =
  | No_witness
  | Replay_failed of string
  | Not_dead of Petri.Bitset.t
  | Not_covering of Petri.Bitset.t

type verdict =
  | Certified of { trace : Petri.Trace.t; final : Petri.Bitset.t }
  | Rejected of rejection
  | Inconclusive
  | Clean

let c_accepted = Gpo_obs.Counter.make "certify.accepted"
let c_rejected = Gpo_obs.Counter.make "certify.rejected"

let replay_check net trace ~accept ~reject =
  match Petri.Trace.final_marking net trace with
  | final ->
      if accept final then begin
        Gpo_obs.Counter.incr c_accepted;
        Certified { trace; final }
      end
      else begin
        Gpo_obs.Counter.incr c_rejected;
        Rejected (reject final)
      end
  | exception Invalid_argument msg ->
      Gpo_obs.Counter.incr c_rejected;
      Rejected (Replay_failed msg)

let of_outcome ~certify (outcome : Engine.outcome) =
  if not outcome.Engine.deadlock then
    if Engine.truncated outcome then Inconclusive else Clean
  else
    match outcome.Engine.witness with
    | None when Engine.truncated outcome ->
        (* The engine saw a violation but was stopped (deadline, memory,
           cancellation) before a witness could be reconstructed: there
           is nothing to certify and nothing to reject — the run is
           inconclusive, not untrustworthy. *)
        Inconclusive
    | None ->
        Gpo_obs.Counter.incr c_rejected;
        Rejected No_witness
    | Some trace -> Gpo_obs.Span.time "certify.replay" (fun () -> certify trace)

let deadlock net outcome =
  of_outcome outcome ~certify:(fun trace ->
      replay_check net trace
        ~accept:(fun final -> Petri.Semantics.is_deadlock net final)
        ~reject:(fun final -> Not_dead final))

let safety net property outcome =
  of_outcome outcome ~certify:(fun trace ->
      let projected = Petri.Safety.project_monitor_witness net trace in
      replay_check net projected
        ~accept:(Petri.Safety.covers property)
        ~reject:(fun final -> Not_covering final))

let conclusion outcomes =
  (* A found deadlock is trustworthy even on a truncated run; a clean
     verdict from a truncated run is not a verdict at all. *)
  if List.exists (fun (o : Engine.outcome) -> o.Engine.deadlock) outcomes then
    `Violated
  else if List.exists Engine.truncated outcomes then `Inconclusive
  else `Holds

let certified = function Certified _ -> true | _ -> false

let pp net ppf = function
  | Certified { trace; final } ->
      Format.fprintf ppf "@[<v>CERTIFIED: %d-step witness replays to %a@ %a@]"
        (List.length trace) (Petri.Net.pp_marking net) final
        (Petri.Trace.pp net) trace
  | Rejected No_witness ->
      Format.fprintf ppf "REJECTED: violation claimed without a witness"
  | Rejected (Replay_failed msg) ->
      Format.fprintf ppf "REJECTED: witness does not replay (%s)" msg
  | Rejected (Not_dead final) ->
      Format.fprintf ppf "REJECTED: witness ends in the live marking %a"
        (Petri.Net.pp_marking net) final
  | Rejected (Not_covering final) ->
      Format.fprintf ppf "REJECTED: witness ends in %a, which misses the cover"
        (Petri.Net.pp_marking net) final
  | Inconclusive ->
      Format.fprintf ppf "inconclusive: state budget exhausted before a verdict"
  | Clean -> Format.fprintf ppf "clean: no violation reported"
