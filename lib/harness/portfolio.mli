(** Racing engine portfolio.

    Runs several engines on the same net concurrently, one domain per
    engine, and returns the first {e conclusive} verdict: a found
    deadlock, or a completed (non-truncated) deadlock-free analysis.  A
    truncated deadlock-free outcome is inconclusive and keeps racing's
    losers alive; the winner's cancellation token stops every other
    entrant cooperatively (each engine polls it in its step loop).

    The winning outcome is exactly what {!Engine.run} would have
    produced — including the certified witness when [witness] was
    requested — so all downstream tooling (certification, exit codes)
    is unchanged.  Counters and gauges aggregate the work of all
    entrants; the event stream carries only the winner's events plus a
    [portfolio] meta record naming the winner and each loser's fate. *)

type report = {
  outcome : Engine.outcome;  (** The winning engine's outcome. *)
  raced : Engine.kind list;  (** The entrants, in the order given. *)
  conclusive : bool;
      (** [false] only when every entrant truncated: [outcome] is then
          the furthest-progressed truncated result (still exit 2). *)
  cancelled_losers : int;
      (** Entrants that unwound via [Par.Cancel.Cancelled] — the
          cancellation handshake observed, which the tests assert. *)
  stops : (Engine.kind * Guard.stop_reason) list;
      (** Why each entrant stopped, in join order: [Completed] for a
          finished analysis, [State_budget]/[Deadline]/[Memory] for a
          budget, [Cancelled] for a race loser, [Crashed _] for an
          entrant that died.  An all-failed race is explained here. *)
}

val run :
  ?max_states:int ->
  ?witness:bool ->
  ?gpo_scan:bool ->
  ?reduce:bool ->
  ?jobs:int ->
  ?deadline_s:float ->
  ?mem_mb:int ->
  ?engines:Engine.kind list ->
  Petri.Net.t ->
  report
(** Race [engines] (default [Stubborn; Symbolic; Gpo] — the three
    reduced engines; add [Full] explicitly if wanted) on [net].
    [max_states], [witness] and [gpo_scan] are forwarded to every
    {!Engine.run}; [jobs] additionally lets the explicit and GPO
    entrants use domain-parallel exploration inside their own race
    lane.  [reduce] applies the structural reduction pipeline
    ({!Reduce.run}) {e once}, before the race, so every entrant
    explores the same reduced net and the reduction counters count a
    single pipeline run; the winner's witness is lifted back to the
    original net.  With a
    single entrant the race degenerates to an inline {!Engine.run}.
    Raises the first entrant error if no entrant produced any outcome.

    Telemetry: [portfolio.races], [portfolio.entrants],
    [portfolio.cancelled_losers]. *)
