type kind = Full | Stubborn | Symbolic | Gpo

type outcome = {
  kind : kind;
  states : float;
  metric : float;
  deadlock : bool;
  time_s : float;
  truncated : bool;
}

let all = [ Full; Stubborn; Symbolic; Gpo ]

let name = function
  | Full -> "full"
  | Stubborn -> "spin+po"
  | Symbolic -> "smv"
  | Gpo -> "gpo"

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run ?(max_states = 5_000_000) kind net =
  Gpo_obs.Span.time ("engine." ^ name kind) @@ fun () ->
  match kind with
  | Full ->
      let r, time_s = timed (fun () -> Petri.Reachability.explore ~max_states net) in
      {
        kind;
        states = float_of_int r.states;
        metric = float_of_int r.states;
        deadlock = r.deadlock_count > 0;
        time_s;
        truncated = r.truncated;
      }
  | Stubborn ->
      let r, time_s = timed (fun () -> Petri.Stubborn.explore ~max_states net) in
      {
        kind;
        states = float_of_int r.states;
        metric = float_of_int r.states;
        deadlock = r.deadlock_count > 0;
        time_s;
        truncated = r.truncated;
      }
  | Symbolic ->
      let r, time_s = timed (fun () -> Bddkit.Symbolic.analyse net) in
      {
        kind;
        states = r.states;
        metric = float_of_int r.peak_live_nodes;
        deadlock = r.deadlock <> None;
        time_s;
        truncated = false;
      }
  | Gpo ->
      (* The paper-faithful configuration: no deviation scan (Section 3.3
         as published).  The library's hardened default (scan = true) is
         exercised by the ablation bench and the test suite. *)
      let r, time_s =
        timed (fun () -> Gpn.Explorer.analyse ~scan:false ~max_states net)
      in
      {
        kind;
        states = float_of_int r.states;
        metric = float_of_int r.states;
        deadlock = not (Gpn.Explorer.deadlock_free r);
        time_s;
        truncated = r.truncated;
      }

let pp_outcome ppf o =
  Format.fprintf ppf "%-8s %12.0f %s %8.3fs%s" (name o.kind) o.metric
    (if o.deadlock then "deadlock " else "dl-free  ")
    o.time_s
    (if o.truncated then " (truncated)" else "")
