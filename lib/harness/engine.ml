type kind = Full | Stubborn | Symbolic | Gpo

type outcome = {
  kind : kind;
  states : float;
  metric : float;
  deadlock : bool;
  time_s : float;
  stop : Guard.stop_reason;
  witness : Petri.Trace.t option;
}

let truncated o = o.stop <> Guard.Completed
let all = [ Full; Stubborn; Symbolic; Gpo ]

let name = function
  | Full -> "full"
  | Stubborn -> "spin+po"
  | Symbolic -> "smv"
  | Gpo -> "gpo"

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Witness reconstruction for the explicit engines: walk the predecessor
   map back from the first retained deadlocked marking. *)
let explicit_witness ?cancel (r : Petri.Reachability.result) =
  match r.deadlocks with
  | [] -> None
  | m :: _ ->
      Some
        (Gpo_obs.Span.time "reach.witness" (fun () ->
             Petri.Reachability.trace_to ?cancel r m))

let run ?(max_states = 5_000_000) ?(witness = false) ?(gpo_scan = false)
    ?(reduce = false) ?cancel ?guard ?(jobs = 1) kind net =
  Gpo_obs.Span.time ("engine." ^ name kind) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let attempt () =
    (* The structural reduction runs inside the recovery envelope below:
       an allocation failure while reducing degrades to the identity
       reduction inside [Reduce.run] itself, and a guard trip during
       reduction degrades the whole run like any engine-loop trip. *)
    let reduction =
      if reduce then Some (Reduce.run ~query:Reduce.Deadlock net) else None
    in
    let net = match reduction with Some r -> r.Reduce.net | None -> net in
    let outcome = match kind with
    | Full ->
        let r, time_s =
          timed (fun () ->
              if jobs > 1 then
                Petri.Reachability.explore_par ~jobs ~max_states ~traces:witness
                  ?cancel ?guard net
              else
                Petri.Reachability.explore ~max_states ~traces:witness ?cancel
                  ?guard net)
        in
        {
          kind;
          states = float_of_int r.states;
          metric = float_of_int r.states;
          deadlock = r.deadlock_count > 0;
          time_s;
          stop = r.stop;
          witness = (if witness then explicit_witness ?cancel r else None);
        }
    | Stubborn ->
        let r, time_s =
          timed (fun () ->
              if jobs > 1 then
                Petri.Stubborn.explore_par ~jobs ~max_states ~traces:witness
                  ?cancel ?guard net
              else
                Petri.Stubborn.explore ~max_states ~traces:witness ?cancel
                  ?guard net)
        in
        {
          kind;
          states = float_of_int r.states;
          metric = float_of_int r.states;
          deadlock = r.deadlock_count > 0;
          time_s;
          stop = r.stop;
          witness = (if witness then explicit_witness ?cancel r else None);
        }
    | Symbolic ->
        let r, time_s =
          timed (fun () -> Bddkit.Symbolic.analyse ~witness ?cancel ?guard net)
        in
        {
          kind;
          states = r.states;
          metric = float_of_int r.peak_live_nodes;
          deadlock = r.deadlock <> None;
          time_s;
          stop = r.stop;
          witness = r.witness;
        }
    | Gpo ->
        (* Default: the paper-faithful configuration, no deviation scan
           (Section 3.3 as published) — sound on found deadlocks but not
           complete on every net.  [gpo_scan] switches to the library's
           hardened default (scan = true), the configuration certification
           and conformance tooling must use. *)
        let r, time_s =
          timed (fun () ->
              Gpn.Explorer.analyse ~scan:gpo_scan ~max_states ~jobs ?cancel
                ?guard net)
        in
        let trace =
          match r.Gpn.Explorer.deadlocks with
          | w :: _ when witness -> Some (Gpn.Explorer.deadlock_trace ?cancel r w)
          | _ -> None
        in
        {
          kind;
          states = float_of_int r.states;
          metric = float_of_int r.states;
          deadlock = not (Gpn.Explorer.deadlock_free r);
          time_s;
          stop = r.stop;
          witness = trace;
        }
    in
    match reduction with
    | None -> outcome
    | Some red ->
        (* Witnesses were found on the reduced net; expand every fused
           transition so the trace replays against the original. *)
        { outcome with witness = Option.map (Reduce.lift red) outcome.witness }
  in
  let degraded stop =
    {
      kind;
      states = 0.;
      metric = 0.;
      deadlock = false;
      time_s = Unix.gettimeofday () -. t0;
      stop;
      witness = None;
    }
  in
  match attempt () with
  | o -> o
  | exception Out_of_memory ->
      (* Last-ditch recovery: the allocator failed before (or without)
         a soft budget tripping.  Drop the recoverable caches so the
         degraded outcome can be built, and report the run as stopped
         by memory — never as a verdict.  Cancellation, by contrast,
         keeps unwinding: the portfolio owns that contract. *)
      Guard.relieve_memory ();
      degraded Guard.Memory
  | exception Guard.Interrupted reason ->
      (* A guard trip that escaped an engine loop (e.g. during witness
         reconstruction): same degradation, with the recorded reason. *)
      degraded reason

let pp_outcome ppf o =
  Format.fprintf ppf "%-8s %12.0f %s %8.3fs%s" (name o.kind) o.metric
    (if o.deadlock then "deadlock " else "dl-free  ")
    o.time_s
    (if truncated o then
       Printf.sprintf " (stopped: %s)" (Guard.describe_stop o.stop)
     else "")
