module J = Gpo_obs.Json

type endpoint = Unix_path of string | Tcp of { host : string; port : int }

let pp_endpoint ppf = function
  | Unix_path path -> Format.fprintf ppf "unix:%s" path
  | Tcp { host; port } -> Format.fprintf ppf "tcp:%s:%d" host port

let c_connections = Gpo_obs.Counter.make "serve.connections"
let c_requests = Gpo_obs.Counter.make "serve.requests"
let c_conn_timeouts = Gpo_obs.Counter.make "serve.conn.timeouts"
let c_drain = Gpo_obs.Counter.make "serve.drain"

let listen_fd = function
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      (fd, Unix_path path)
  | Tcp { host; port } ->
      let addr =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 16;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp { host; port = bound })

let stats_json sched =
  J.Obj
    [
      ( "cache",
        J.Obj
          [
            ("size", J.Int (Harness.Result_cache.size ()));
            ("generation", J.Int (Harness.Result_cache.generation ()));
          ] );
      ( "queue",
        J.Obj
          [
            ("depth", J.Int (Scheduler.depth sched));
            ("limit", J.Int (Scheduler.queue_limit sched));
            ("pool_jobs", J.Int (Scheduler.pool_jobs sched));
          ] );
      ("journal", Harness.Result_cache.journal_stats ());
      ("metrics", Gpo_obs.json_of_snapshot (Gpo_obs.snapshot ()));
    ]

let serve ?(jobs = 1) ?(queue_limit = 64) ?max_requests ?cache_dir
    ?(io_timeout_s = 30.) ?(on_ready = fun (_ : endpoint) -> ()) endpoint =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* Scoped per-request capture only records when a sink is installed;
     give the process a sink of last resort so request metrics work
     even without --metrics-out/--trace-out. *)
  let own_sink = not (Gpo_obs.enabled ()) in
  if own_sink then Gpo_obs.install Gpo_obs.null_sink;
  List.iter Gpo_obs.Counter.touch [ c_conn_timeouts; c_drain ];
  (* Attach the journal before binding the socket: a client that can
     connect can already hit the recovered cache. *)
  (match cache_dir with
  | None -> ()
  | Some dir -> (
      match Harness.Result_cache.attach dir with
      | Ok _ -> ()
      | Error msg ->
          if own_sink then Gpo_obs.uninstall ();
          failwith (Printf.sprintf "cache-dir %s: %s" dir msg)));
  let sched = Scheduler.create ~jobs ~queue_limit () in
  let lfd, bound = listen_fd endpoint in
  let requests = ref 0 in
  let stop = ref false in
  (* Graceful drain: the first SIGTERM/SIGINT stops accepting (the
     blocking accept wakes with EINTR) and lets the in-flight batch
     finish under its own guards; a second signal cancels the in-flight
     engines too.  Either way the journal is flushed and the process
     leaves through the normal exit path — drain is exit 0. *)
  let draining = Atomic.make false in
  let on_signal (_ : int) =
    if Atomic.get draining then Scheduler.cancel_inflight sched
    else begin
      Atomic.set draining true;
      Gpo_obs.Counter.incr c_drain;
      Gpo_obs.instant "serve.drain" []
    end
  in
  let install sg =
    try Some (Sys.signal sg (Sys.Signal_handle on_signal))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore sg prev =
    match prev with
    | None -> ()
    | Some b -> ( try Sys.set_signal sg b with Invalid_argument _ -> ())
  in
  let prev_term = install Sys.sigterm in
  let prev_int = install Sys.sigint in
  let stopping () = !stop || Atomic.get draining in
  let handle fd =
    Gpo_obs.Counter.incr c_connections;
    if io_timeout_s > 0. then Protocol.set_timeouts fd io_timeout_s;
    let rec loop () =
      if stopping () then ()
      else
        match Protocol.recv fd with
        | Protocol.Eof -> ()
        | Protocol.Bad Protocol.Frame_timeout ->
            (* Slow-loris or stalled peer: one typed reply (itself under
               the send timeout), then the socket dies — the accept loop
               is free again. *)
            Gpo_obs.Counter.incr c_conn_timeouts;
            Protocol.send fd (Protocol.json_of_response Protocol.Timed_out)
        | Protocol.Bad e ->
            (* Framing is lost (truncated or oversized frame): answer
               once, then close — resynchronisation is impossible. *)
            Protocol.send fd
              (Protocol.json_of_response
                 (Protocol.Error (Protocol.describe_frame_error e)))
        | Protocol.Payload payload ->
            incr requests;
            Gpo_obs.Counter.incr c_requests;
            let response =
              match payload with
              | Error msg -> Protocol.Error ("bad json: " ^ msg)
              | Ok json -> (
                  match Protocol.request_of_json json with
                  | Error msg -> Protocol.Error msg
                  | Ok Protocol.Ping -> Protocol.Pong
                  | Ok Protocol.Stats -> Protocol.Stats_reply (stats_json sched)
                  | Ok Protocol.Shutdown ->
                      stop := true;
                      Protocol.Bye
                  | Ok (Protocol.Submit jobs) -> Scheduler.submit sched jobs)
            in
            Protocol.send fd (Protocol.json_of_response response);
            (match max_requests with
            | Some n when !requests >= n -> stop := true
            | _ -> ());
            loop ()
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* A torn frame or a peer that vanished mid-write kills this
           connection, not the server. *)
        try loop ()
        with Protocol.Frame _ | Unix.Unix_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      restore Sys.sigterm prev_term;
      restore Sys.sigint prev_int;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (match bound with
      | Unix_path path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      Scheduler.shutdown sched;
      (* The drain barrier: whatever the exit reason, every journaled
         store is fsynced before the process leaves. *)
      if cache_dir <> None then begin
        Harness.Result_cache.flush_journal ();
        Harness.Result_cache.detach ()
      end;
      if own_sink then Gpo_obs.uninstall ())
    (fun () ->
      on_ready bound;
      while not (stopping ()) do
        match Unix.accept lfd with
        | fd, _ -> handle fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
