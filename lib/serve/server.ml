module J = Gpo_obs.Json

type endpoint = Unix_path of string | Tcp of { host : string; port : int }

let pp_endpoint ppf = function
  | Unix_path path -> Format.fprintf ppf "unix:%s" path
  | Tcp { host; port } -> Format.fprintf ppf "tcp:%s:%d" host port

let c_connections = Gpo_obs.Counter.make "serve.connections"
let c_requests = Gpo_obs.Counter.make "serve.requests"

let listen_fd = function
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      (fd, Unix_path path)
  | Tcp { host; port } ->
      let addr =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 16;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp { host; port = bound })

let stats_json sched =
  J.Obj
    [
      ( "cache",
        J.Obj
          [
            ("size", J.Int (Harness.Result_cache.size ()));
            ("generation", J.Int (Harness.Result_cache.generation ()));
          ] );
      ( "queue",
        J.Obj
          [
            ("depth", J.Int (Scheduler.depth sched));
            ("limit", J.Int (Scheduler.queue_limit sched));
            ("pool_jobs", J.Int (Scheduler.pool_jobs sched));
          ] );
      ("metrics", Gpo_obs.json_of_snapshot (Gpo_obs.snapshot ()));
    ]

let serve ?(jobs = 1) ?(queue_limit = 64) ?max_requests
    ?(on_ready = fun (_ : endpoint) -> ()) endpoint =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* Scoped per-request capture only records when a sink is installed;
     give the process a sink of last resort so request metrics work
     even without --metrics-out/--trace-out. *)
  let own_sink = not (Gpo_obs.enabled ()) in
  if own_sink then Gpo_obs.install Gpo_obs.null_sink;
  let sched = Scheduler.create ~jobs ~queue_limit () in
  let lfd, bound = listen_fd endpoint in
  let requests = ref 0 in
  let stop = ref false in
  let handle fd =
    Gpo_obs.Counter.incr c_connections;
    let rec loop () =
      if !stop then ()
      else
        match Protocol.recv fd with
        | None -> ()
        | Some payload ->
            incr requests;
            Gpo_obs.Counter.incr c_requests;
            let response =
              match payload with
              | Error msg -> Protocol.Error ("bad json: " ^ msg)
              | Ok json -> (
                  match Protocol.request_of_json json with
                  | Error msg -> Protocol.Error msg
                  | Ok Protocol.Ping -> Protocol.Pong
                  | Ok Protocol.Stats -> Protocol.Stats_reply (stats_json sched)
                  | Ok Protocol.Shutdown ->
                      stop := true;
                      Protocol.Bye
                  | Ok (Protocol.Submit jobs) -> Scheduler.submit sched jobs)
            in
            Protocol.send fd (Protocol.json_of_response response);
            (match max_requests with
            | Some n when !requests >= n -> stop := true
            | _ -> ());
            loop ()
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* A torn frame or a peer that vanished mid-write kills this
           connection, not the server. *)
        try loop ()
        with Failure _ | Unix.Unix_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (match bound with
      | Unix_path path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      Scheduler.shutdown sched;
      if own_sink then Gpo_obs.uninstall ())
    (fun () ->
      on_ready bound;
      while not !stop do
        match Unix.accept lfd with
        | fd, _ -> handle fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
