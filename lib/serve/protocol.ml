module J = Gpo_obs.Json

type net_source = Inline of string | Model of { id : string; size : int }

type job = {
  id : string;
  net : net_source;
  cover : string list;
  engine : string;
  max_states : int;
  witness : bool;
  reduce : bool;
  jobs : int;
  timeout_s : float option;
  mem_mb : int option;
}

let job ?(id = "") ?(cover = []) ?(engine = "gpo") ?(max_states = 5_000_000)
    ?(witness = true) ?(reduce = false) ?(jobs = 1) ?timeout_s ?mem_mb net =
  { id; net; cover; engine; max_states; witness; reduce; jobs; timeout_s; mem_mb }

type status = Ok | Failed of string

type job_result = {
  id : string;
  status : status;
  cached : bool;
  deduped : bool;
  certified : bool option;
  report : J.t option;
  metrics : J.t;
}

type request = Submit of job list | Ping | Stats | Shutdown
type reject = { reason : string; limit : int; depth : int; batch : int }

type response =
  | Results of job_result list
  | Rejected of reject
  | Pong
  | Stats_reply of J.t
  | Bye
  | Timed_out
  | Error of string

type verdict = Holds | Violated | Inconclusive

let verdict_of_result r =
  match (r.status, r.report) with
  | Failed msg, _ -> Stdlib.Error msg
  | Ok, None -> Stdlib.Error "no report attached"
  | Ok, Some report -> (
      let flag name =
        match J.member name report with Some (J.Bool b) -> b | _ -> false
      in
      match (flag "deadlock", flag "truncated") with
      | true, _ -> Stdlib.Ok Violated
      | false, true -> Stdlib.Ok Inconclusive
      | false, false -> Stdlib.Ok Holds)

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)

let ( let* ) = Result.bind

let field name json =
  match J.member name json with
  | Some v -> Stdlib.Ok v
  | None -> Stdlib.Error (Printf.sprintf "missing field %S" name)

let string_field name json =
  match J.member name json with
  | Some (J.String s) -> Stdlib.Ok s
  | Some _ -> Stdlib.Error (Printf.sprintf "field %S: expected string" name)
  | None -> Stdlib.Error (Printf.sprintf "missing field %S" name)

let opt_default default = function Some v -> v | None -> default

let int_field ?default name json =
  match (J.member name json, default) with
  | Some (J.Int i), _ -> Stdlib.Ok i
  | (None | Some J.Null), Some d -> Stdlib.Ok d
  | _, _ -> Stdlib.Error (Printf.sprintf "field %S: expected int" name)

let bool_field ?default name json =
  match (J.member name json, default) with
  | Some (J.Bool b), _ -> Stdlib.Ok b
  | (None | Some J.Null), Some d -> Stdlib.Ok d
  | _, _ -> Stdlib.Error (Printf.sprintf "field %S: expected bool" name)

let json_of_net_source = function
  | Inline text -> J.Obj [ ("inline", J.String text) ]
  | Model { id; size } ->
      J.Obj [ ("model", J.String id); ("size", J.Int size) ]

let net_source_of_json json =
  match (J.member "inline" json, J.member "model" json) with
  | Some (J.String text), None -> Stdlib.Ok (Inline text)
  | None, Some (J.String id) ->
      let* size = int_field ~default:4 "size" json in
      Stdlib.Ok (Model { id; size })
  | _ -> Stdlib.Error "net: expected {\"inline\":…} or {\"model\":…,\"size\":…}"

let json_of_job (j : job) =
  J.Obj
    [
      ("id", J.String j.id);
      ("net", json_of_net_source j.net);
      ("cover", J.List (List.map (fun p -> J.String p) j.cover));
      ("engine", J.String j.engine);
      ("max_states", J.Int j.max_states);
      ("witness", J.Bool j.witness);
      ("reduce", J.Bool j.reduce);
      ("jobs", J.Int j.jobs);
      ("timeout_s", match j.timeout_s with None -> J.Null | Some s -> J.Float s);
      ("mem_mb", match j.mem_mb with None -> J.Null | Some m -> J.Int m);
    ]

let job_of_json json =
  let* net_json = field "net" json in
  let* net = net_source_of_json net_json in
  let* cover =
    match J.member "cover" json with
    | None | Some J.Null -> Stdlib.Ok []
    | Some (J.List items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | J.String s -> Stdlib.Ok (s :: acc)
            | _ -> Stdlib.Error "cover: expected a list of place names")
          items (Stdlib.Ok [])
    | Some _ -> Stdlib.Error "cover: expected a list of place names"
  in
  let id =
    match J.member "id" json with Some (J.String s) -> s | _ -> ""
  in
  let engine =
    match J.member "engine" json with Some (J.String s) -> s | _ -> "gpo"
  in
  let* max_states = int_field ~default:5_000_000 "max_states" json in
  let* witness = bool_field ~default:true "witness" json in
  let* reduce = bool_field ~default:false "reduce" json in
  let* jobs = int_field ~default:1 "jobs" json in
  let timeout_s =
    match J.member "timeout_s" json with
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let mem_mb =
    match J.member "mem_mb" json with Some (J.Int i) -> Some i | _ -> None
  in
  Stdlib.Ok
    { id; net; cover; engine; max_states; witness; reduce; jobs; timeout_s;
      mem_mb }

let json_of_status = function
  | Ok -> J.String "ok"
  | Failed msg -> J.Obj [ ("failed", J.String msg) ]

let status_of_json = function
  | J.String "ok" -> Stdlib.Ok Ok
  | J.Obj _ as o -> (
      match J.member "failed" o with
      | Some (J.String msg) -> Stdlib.Ok (Failed msg)
      | _ -> Stdlib.Error "status: expected \"ok\" or {\"failed\":…}")
  | _ -> Stdlib.Error "status: expected \"ok\" or {\"failed\":…}"

let json_of_result r =
  J.Obj
    [
      ("id", J.String r.id);
      ("status", json_of_status r.status);
      ("cached", J.Bool r.cached);
      ("deduped", J.Bool r.deduped);
      ( "certified",
        match r.certified with None -> J.Null | Some b -> J.Bool b );
      ("report", match r.report with None -> J.Null | Some j -> j);
      ("metrics", r.metrics);
    ]

let result_of_json json =
  let* id = string_field "id" json in
  let* status_json = field "status" json in
  let* status = status_of_json status_json in
  let* cached = bool_field ~default:false "cached" json in
  let* deduped = bool_field ~default:false "deduped" json in
  let certified =
    match J.member "certified" json with Some (J.Bool b) -> Some b | _ -> None
  in
  let report =
    match J.member "report" json with
    | None | Some J.Null -> None
    | Some j -> Some j
  in
  let metrics = opt_default J.Null (J.member "metrics" json) in
  Stdlib.Ok { id; status; cached; deduped; certified; report; metrics }

let json_of_request = function
  | Submit jobs ->
      J.Obj
        [ ("op", J.String "submit");
          ("jobs", J.List (List.map json_of_job jobs)) ]
  | Ping -> J.Obj [ ("op", J.String "ping") ]
  | Stats -> J.Obj [ ("op", J.String "stats") ]
  | Shutdown -> J.Obj [ ("op", J.String "shutdown") ]

let request_of_json json =
  let* op = string_field "op" json in
  match op with
  | "ping" -> Stdlib.Ok Ping
  | "stats" -> Stdlib.Ok Stats
  | "shutdown" -> Stdlib.Ok Shutdown
  | "submit" -> (
      match J.member "jobs" json with
      | Some (J.List items) ->
          let* jobs =
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                let* j = job_of_json item in
                Stdlib.Ok (j :: acc))
              items (Stdlib.Ok [])
          in
          Stdlib.Ok (Submit jobs)
      | _ -> Stdlib.Error "submit: expected a \"jobs\" list")
  | other -> Stdlib.Error (Printf.sprintf "unknown op %S" other)

let json_of_response = function
  | Results rs ->
      J.Obj
        [ ("ok", J.Bool true);
          ("results", J.List (List.map json_of_result rs)) ]
  | Rejected r ->
      J.Obj
        [
          ("ok", J.Bool false);
          ( "reject",
            J.Obj
              [
                ("reason", J.String r.reason);
                ("limit", J.Int r.limit);
                ("depth", J.Int r.depth);
                ("batch", J.Int r.batch);
              ] );
        ]
  | Pong -> J.Obj [ ("ok", J.Bool true); ("pong", J.Bool true) ]
  | Stats_reply stats -> J.Obj [ ("ok", J.Bool true); ("stats", stats) ]
  | Bye -> J.Obj [ ("ok", J.Bool true); ("bye", J.Bool true) ]
  | Timed_out -> J.Obj [ ("ok", J.Bool false); ("timed_out", J.Bool true) ]
  | Error msg -> J.Obj [ ("ok", J.Bool false); ("error", J.String msg) ]

let response_of_json json =
  let* ok = bool_field "ok" json in
  if ok then
    match (J.member "results" json, J.member "pong" json,
           J.member "stats" json, J.member "bye" json) with
    | Some (J.List items), _, _, _ ->
        let* rs =
          List.fold_right
            (fun item acc ->
              let* acc = acc in
              let* r = result_of_json item in
              Stdlib.Ok (r :: acc))
            items (Stdlib.Ok [])
        in
        Stdlib.Ok (Results rs)
    | None, Some (J.Bool true), _, _ -> Stdlib.Ok Pong
    | None, None, Some stats, _ -> Stdlib.Ok (Stats_reply stats)
    | None, None, None, Some (J.Bool true) -> Stdlib.Ok Bye
    | _ -> Stdlib.Error "ok response without results/pong/stats/bye"
  else
    match
      (J.member "reject" json, J.member "error" json,
       J.member "timed_out" json)
    with
    | Some rj, _, _ ->
        let* reason = string_field "reason" rj in
        let* limit = int_field "limit" rj in
        let* depth = int_field "depth" rj in
        let* batch = int_field "batch" rj in
        Stdlib.Ok (Rejected { reason; limit; depth; batch })
    | None, Some (J.String msg), _ -> Stdlib.Ok (Error msg)
    | None, None, Some (J.Bool true) -> Stdlib.Ok Timed_out
    | _ -> Stdlib.Error "error response without reject/error/timed_out"

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let max_frame = 1 lsl 26

type frame_error =
  | Frame_timeout
  | Frame_oversized of int
  | Frame_truncated of string

let describe_frame_error = function
  | Frame_timeout -> "i/o timeout"
  | Frame_oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Frame_truncated what -> "truncated " ^ what

exception Frame of frame_error

let () =
  Printexc.register_printer (function
    | Frame e -> Some ("Protocol.Frame(" ^ describe_frame_error e ^ ")")
    | _ -> None)

(* SO_RCVTIMEO/SO_SNDTIMEO expiry surfaces as EAGAIN (or EWOULDBLOCK /
   ETIMEDOUT depending on the OS) from the blocking call. *)
let timeout_errno = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> true
  | _ -> false

let set_timeouts fd seconds =
  (* Best-effort: some socket-like fds (socketpairs on exotic
     platforms) may refuse; a missing timeout degrades to the old
     blocking behaviour, never to an error. *)
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len
      with Unix.Unix_error (err, _, _) when timeout_errno err ->
        raise (Frame Frame_timeout)
    in
    write_all fd bytes (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then raise (Frame (Frame_oversized len));
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 (len lsr 24 land 0xFF);
  Bytes.set_uint8 header 1 (len lsr 16 land 0xFF);
  Bytes.set_uint8 header 2 (len lsr 8 land 0xFF);
  Bytes.set_uint8 header 3 (len land 0xFF);
  write_all fd header 0 4;
  write_all fd (Bytes.unsafe_of_string payload) 0 len

(* Read exactly [len] bytes; [`Eof n] reports how many arrived before
   the peer closed.  A receive-timeout expiry raises [Frame
   Frame_timeout] — a peer that stalls mid-frame is indistinguishable
   from one that never finishes, and the caller must not wait forever. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then `Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
      | exception Unix.Unix_error (err, _, _) when timeout_errno err ->
          raise (Frame Frame_timeout)
  in
  go 0

type 'a incoming = Payload of 'a | Eof | Bad of frame_error

let read_frame fd =
  match read_exact fd 4 with
  | `Eof 0 -> Eof
  | `Eof _ -> Bad (Frame_truncated "frame header")
  | `Ok header -> (
      let len =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if len > max_frame then Bad (Frame_oversized len)
      else
        match read_exact fd len with
        | `Eof _ -> Bad (Frame_truncated "frame payload")
        | `Ok payload -> Payload (Bytes.unsafe_to_string payload))
  | exception Frame e -> Bad e

let send fd json = write_frame fd (J.to_string json)

let recv fd =
  match read_frame fd with
  | Eof -> Eof
  | Bad e -> Bad e
  | Payload payload -> Payload (J.of_string payload)
