(** Client side of the verification service: connect to a
    {!Server.endpoint}, exchange {!Protocol} frames, fold transport and
    protocol failures into a {e typed} [result] — typed so the retry
    policy can distinguish what a retry can fix from what it cannot. *)

(** Everything that can go wrong below the response level. *)
type failure =
  | Refused of string  (** Could not connect (daemon down/restarting). *)
  | Timed_out of string
      (** An I/O deadline expired — ours ([io_timeout_s]) or the
          server's (a typed {!Protocol.Timed_out} reply). *)
  | Closed  (** The server closed the connection before replying. *)
  | Protocol_error of string
      (** Torn/oversized frame, broken JSON, undecodable response. *)
  | Io of string  (** Any other [Unix] error. *)

val describe_failure : failure -> string

val transient : failure -> bool
(** [true] for {!Refused} and {!Timed_out} — the failures a retry with
    backoff can plausibly fix, and the only ones [submit] auto-retries
    (every request is idempotent: a question over content-addressed
    state, never a mutation, so re-asking is always safe). *)

val connect : Server.endpoint -> Unix.file_descr
(** Open a connection.  Raises [Unix.Unix_error] when nobody listens. *)

val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, failure) result
(** One round trip on an open connection. *)

val with_connection :
  ?io_timeout_s:float ->
  Server.endpoint ->
  (Unix.file_descr -> (Protocol.response, failure) result) ->
  (Protocol.response, failure) result
(** Connect, arm the socket deadlines ([io_timeout_s], off by
    default), run, always close; connection failures become
    [Error (Refused _)]. *)

val submit :
  ?retries:int ->
  ?backoff_ms:int ->
  ?rng:Random.State.t ->
  ?io_timeout_s:float ->
  Server.endpoint ->
  Protocol.job list ->
  (Protocol.response, failure) result
(** Submit a batch.  With [retries > 0] (default 0), a transient
    failure — including the server's typed [queue_full] rejection — is
    retried up to [retries] times with exponential backoff and {e full
    jitter}: attempt [k] sleeps uniformly in
    [\[0, backoff_ms * 2^k\]] milliseconds (default base 50 ms, ceiling
    10 s), so a herd of restarting clients spreads out instead of
    stampeding the recovering daemon.  [rng] pins the jitter for
    deterministic tests.  Each retry is logged as a
    [serve.client.retry] instant. *)

val ping :
  ?io_timeout_s:float -> Server.endpoint -> (Protocol.response, failure) result

val stats :
  ?io_timeout_s:float -> Server.endpoint -> (Protocol.response, failure) result

val shutdown :
  ?io_timeout_s:float -> Server.endpoint -> (Protocol.response, failure) result

val wait_ready : ?attempts:int -> ?delay_s:float -> Server.endpoint -> bool
(** Poll [ping] until the server answers — for scripts that fork the
    daemon and race its bind (default 100 attempts, 50ms apart). *)
