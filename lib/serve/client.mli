(** Client side of the verification service: connect to a
    {!Server.endpoint}, exchange {!Protocol} frames, fold transport
    and protocol failures into [result]. *)

val connect : Server.endpoint -> Unix.file_descr
(** Open a connection.  Raises [Unix.Unix_error] when nobody listens. *)

val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, string) result
(** One round trip on an open connection. *)

val with_connection :
  Server.endpoint ->
  (Unix.file_descr -> (Protocol.response, string) result) ->
  (Protocol.response, string) result
(** Connect, run, always close; connection failures become [Error]. *)

val submit :
  Server.endpoint -> Protocol.job list -> (Protocol.response, string) result

val ping : Server.endpoint -> (Protocol.response, string) result
val stats : Server.endpoint -> (Protocol.response, string) result
val shutdown : Server.endpoint -> (Protocol.response, string) result

val wait_ready :
  ?attempts:int -> ?delay_s:float -> Server.endpoint -> bool
(** Poll [ping] until the server answers — for scripts that fork the
    daemon and race its bind (default 100 attempts, 50ms apart). *)
