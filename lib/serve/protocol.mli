(** Wire protocol of the verification service.

    One request/response round trip is a pair of {e length-prefixed
    JSON frames}: a 4-byte big-endian payload length followed by that
    many bytes of UTF-8 JSON.  Framing and codecs live here so the
    server, the client and the tests share one definition; the
    scheduler gives the types their meaning.

    A {e job} is one verification question — net, property, engine,
    budgets — and a {e request} carries a batch of jobs (or a control
    operation).  A {e job result} carries the full machine-readable
    {!Harness.Report} JSON of the verdict plus the service's own
    fields: cache/dedupe provenance, certification, and a per-request
    telemetry summary. *)

(** Where the net of a job comes from. *)
type net_source =
  | Inline of string
      (** The net itself, in the textual format of {!Petri.Parser} —
          content-addressed by the server, so two clients sending the
          same net text share cache entries. *)
  | Model of { id : string; size : int }
      (** A builtin model family (nsdp, asat, over, rw, scheduler,
          random, figN) instantiated at [size]. *)

type job = {
  id : string;  (** Client-chosen label echoed in the result. *)
  net : net_source;
  cover : string list;
      (** Safety property: these places are never all marked at once
          (by name, on the source net).  Empty = deadlock freedom. *)
  engine : string;
      (** full | po | smv | gpo | portfolio (aliases as in the CLI). *)
  max_states : int;
  witness : bool;
  reduce : bool;
  jobs : int;  (** Worker domains {e inside} this job's engine run. *)
  timeout_s : float option;  (** Per-job wall-clock budget. *)
  mem_mb : int option;  (** Per-job soft heap budget. *)
}

val job :
  ?id:string ->
  ?cover:string list ->
  ?engine:string ->
  ?max_states:int ->
  ?witness:bool ->
  ?reduce:bool ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?mem_mb:int ->
  net_source ->
  job
(** Job smart constructor with the server-side defaults: engine [gpo],
    [max_states] 5_000_000, witness on (certification is the point of
    the service), reduce off, jobs 1, no budgets. *)

type status =
  | Ok
  | Failed of string
      (** The job errored before or during its run (unparseable net,
          unknown engine or model, injected fault, out of memory) —
          the {e other} jobs of the batch are unaffected. *)

type job_result = {
  id : string;
  status : status;
  cached : bool;  (** Served from the content-addressed result cache. *)
  deduped : bool;
      (** Duplicate of an earlier job in the same batch; its result
          was computed once and shared. *)
  certified : bool option;
      (** [Some true] when the violation witness passed independent
          replay certification; [None] when there was nothing to
          certify (no violation, or no witness requested). *)
  report : Gpo_obs.Json.t option;
      (** {!Harness.Report.json_of_outcome} of the verdict —
          byte-identical between a cache hit and the run that
          populated the entry. *)
  metrics : Gpo_obs.Json.t;
      (** {!Gpo_obs.summarize_events} of this request's scoped event
          capture (serve.request span, engine spans, instants). *)
}

type request =
  | Submit of job list
  | Ping
  | Stats  (** Server-lifetime telemetry snapshot + cache stats. *)
  | Shutdown  (** Graceful stop: the server replies, then exits. *)

type reject = { reason : string; limit : int; depth : int; batch : int }
(** Typed admission rejection: accepting [batch] more jobs on top of
    the [depth] already admitted would exceed the bounded queue
    [limit].  [reason] is ["queue_full"]. *)

type response =
  | Results of job_result list  (** One per job, in request order. *)
  | Rejected of reject
  | Pong
  | Stats_reply of Gpo_obs.Json.t
  | Bye
  | Timed_out
      (** The connection blew its per-I/O deadline (slow-loris or
          stalled peer); the server sends this best-effort and closes
          the socket.  Typed so clients can classify it as transient. *)
  | Error of string  (** Malformed request (protocol-level). *)

type verdict = Holds | Violated | Inconclusive

val verdict_of_result : job_result -> (verdict, string) result
(** Fold one result to the CLI exit-code contract: a deadlock/violation
    report is [Violated] (sound even when truncated), a truncated clean
    report is [Inconclusive], a completed clean report [Holds];
    [Error] carries the failure message of a [Failed] job. *)

(** {1 JSON codecs} *)

val json_of_job : job -> Gpo_obs.Json.t
val job_of_json : Gpo_obs.Json.t -> (job, string) result
val json_of_result : job_result -> Gpo_obs.Json.t
val result_of_json : Gpo_obs.Json.t -> (job_result, string) result
val json_of_request : request -> Gpo_obs.Json.t
val request_of_json : Gpo_obs.Json.t -> (request, string) result
val json_of_response : response -> Gpo_obs.Json.t
val response_of_json : Gpo_obs.Json.t -> (response, string) result

(** {1 Framing} *)

val max_frame : int
(** Refuse frames larger than this (64 MiB) — a corrupt length prefix
    must not turn into an unbounded allocation. *)

(** Typed framing failures — every way a peer can misbehave on the
    wire, distinguished so the server can answer {!Timed_out} to a
    stalled client but a plain [Error] to a malformed one, and so the
    client retry policy can tell transient from fatal. *)
type frame_error =
  | Frame_timeout  (** SO_RCVTIMEO/SO_SNDTIMEO expired mid-I/O. *)
  | Frame_oversized of int  (** Length prefix beyond {!max_frame}. *)
  | Frame_truncated of string  (** EOF mid-header or mid-payload. *)

val describe_frame_error : frame_error -> string

exception Frame of frame_error
(** Raised by {!write_frame} (oversized payload, send timeout); read
    paths return {!Bad} instead of raising. *)

val set_timeouts : Unix.file_descr -> float -> unit
(** Arm [SO_RCVTIMEO]/[SO_SNDTIMEO] (seconds) on a socket.
    Best-effort: silently a no-op where unsupported. *)

type 'a incoming =
  | Payload of 'a
  | Eof  (** Clean close before the first length byte. *)
  | Bad of frame_error

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame, looping over partial writes.
    Raises {!Frame} on an oversized payload or a send timeout. *)

val read_frame : Unix.file_descr -> string incoming
(** Read one frame.  Timeouts, oversized prefixes and truncation come
    back as {!Bad} — after any of them frame synchronisation is lost
    and the connection must be closed. *)

val send : Unix.file_descr -> Gpo_obs.Json.t -> unit
(** Render and {!write_frame}. *)

val recv : Unix.file_descr -> (Gpo_obs.Json.t, string) result incoming
(** {!read_frame} and parse (a frame that arrives intact but holds
    broken JSON is [Payload (Error _)] — the connection survives). *)
