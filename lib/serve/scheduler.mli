(** Batch scheduling with warm state, admission control, and the
    content-addressed result cache.

    One scheduler owns one {!Par.Pool}; every submitted batch fans its
    jobs out over the pool's worker domains.  Because the scheduler
    lives as long as the server process, everything the engines warm up
    — the sharded {!Petri.Bitset.intern} tables, the world-set memo
    caches, the {!Harness.Result_cache} — stays warm across batches:
    the first request pays cold-start, later identical requests are
    O(1) cache hits and near-identical ones reuse the interned
    universe.

    {b Admission control.}  The queue of admitted-but-unfinished jobs
    is bounded by [queue_limit]: a batch that would push the depth past
    the limit is refused {e whole} with a typed
    {!Protocol.response.Rejected} carrying the limit, the current depth
    and the batch size — the service sheds load instead of queuing
    unboundedly.  The depth is tracked atomically so concurrent
    submitters see a consistent bound; the [serve.queue.depth] gauge
    follows it.

    {b Deduplication.}  Jobs inside one batch are deduped by cache key
    (net digest + property + engine config): the second occurrence
    waits for the first instead of recomputing, and its result is
    flagged [deduped] (counted by [serve.batch.deduped]).

    {b Isolation.}  Each job runs under its own {!Guard} (armed with
    the job's [timeout_s]/[mem_mb] in the worker domain that runs it),
    its telemetry is captured with {!Gpo_obs.Scoped} and attached to
    the result as a JSON summary, and a failure — parse error, injected
    fault ({!Guard.Fault} probes [serve.request]), allocator death — is
    contained to that job's [Failed] status.  Faulted or truncated runs
    are never stored in the result cache. *)

type t

val create : ?jobs:int -> ?queue_limit:int -> unit -> t
(** [create ~jobs ~queue_limit ()] spawns the worker pool ([jobs]
    domains, default 1; 0 = the machine's recommended count) with a
    bounded admission queue of [queue_limit] jobs (default 64,
    clamped to at least 1). *)

val pool_jobs : t -> int
val queue_limit : t -> int

val depth : t -> int
(** Jobs admitted and not yet finished. *)

val submit : t -> Protocol.job list -> Protocol.response
(** Run one batch: [Results] (one per job, in order) or [Rejected]
    when admission control refuses it.  Never raises on job-level
    failures — they come back as [Failed] results. *)

val cancel_inflight : t -> unit
(** Trip the scheduler-wide drain token: every in-flight single-engine
    run unwinds as [Cancelled] at its next step-loop poll, and the
    batch returns with those jobs [Failed] (never cached).  One-way —
    only for the hard phase of a graceful drain. *)

val shutdown : t -> unit
(** Join the worker pool.  The scheduler must be idle. *)
