(** The warm-state verification daemon.

    One server process owns one {!Scheduler} — one worker pool, one
    result cache, one set of interned-universe tables — and answers
    {!Protocol} requests over a listening socket, connection by
    connection.  Because the process outlives the requests, the second
    identical question costs a cache lookup plus a witness replay
    instead of a state-space exploration.

    The accept loop is sequential (one connection at a time); the
    parallelism lives {e inside} a batch, where jobs fan out over the
    scheduler's pool.  Clients that want concurrent batches open one
    connection each and the admission bound arbitrates. *)

type endpoint =
  | Unix_path of string  (** Unix-domain stream socket at this path. *)
  | Tcp of { host : string; port : int }
      (** TCP socket; [port] 0 lets the OS pick (the bound port is
          reported through [on_ready]). *)

val pp_endpoint : Format.formatter -> endpoint -> unit

val serve :
  ?jobs:int ->
  ?queue_limit:int ->
  ?max_requests:int ->
  ?cache_dir:string ->
  ?io_timeout_s:float ->
  ?on_ready:(endpoint -> unit) ->
  endpoint ->
  unit
(** Run the daemon until a [Shutdown] request, a drain signal, or
    [max_requests] processed frames (used by tests and the CI smoke to
    bound the run).  [jobs]/[queue_limit] configure the {!Scheduler}.
    [on_ready] fires once the socket is listening, with the {e actual}
    endpoint (TCP port resolved).

    [cache_dir] opts into the persistent result cache: the journal at
    [cache_dir/results.journal] is recovered ({!Harness.Result_cache.attach}
    — recovery details via {!Harness.Result_cache.last_recovery} and
    the [Stats] reply) {e before} the socket binds, every finished
    store is journaled, and the journal is fsynced and closed on every
    exit path.  Raises [Failure] when the directory is unusable.

    [io_timeout_s] (default 30, [<= 0] disables) arms per-connection
    [SO_RCVTIMEO]/[SO_SNDTIMEO] deadlines: a client that stalls
    mid-frame or stops reading gets one typed [Timed_out] reply
    (counted by [serve.conn.timeouts]) and its socket closed — it can
    never head-of-line-block the accept loop forever.

    Graceful drain: the first SIGTERM/SIGINT stops accepting and lets
    the in-flight batch finish under its own guards; a second signal
    also cancels in-flight engines ({!Scheduler.cancel_inflight}).
    Both paths flush the journal and return normally — a drained
    server exits 0.  Previous signal dispositions are restored on
    exit.

    Installs {!Gpo_obs.null_sink} for the process lifetime when no
    sink is active, so scoped per-request capture works without global
    observability flags; SIGPIPE is ignored so a client hangup
    surfaces as [EPIPE] on the write and closes that connection only.
    The Unix socket path is unlinked on exit. *)
