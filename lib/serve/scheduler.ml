module J = Gpo_obs.Json

type t = {
  pool : Par.Pool.t;
  pool_jobs : int;
  queue_limit : int;
  depth : int Atomic.t;
  (* Serializes pool use: admission control (above) decides *whether* a
     batch gets in; this lock only decides *when* it runs.  A rejected
     batch never reaches it, so saturation answers immediately. *)
  run_lock : Mutex.t;
  (* Tripped by a second drain signal: every in-flight single-engine
     run polls it from its step loop and unwinds as [Cancelled], so a
     hard drain returns within one poll interval instead of finishing
     the batch.  One-way — the scheduler is shutting down. *)
  drain : Par.Cancel.t;
}

let c_jobs = Gpo_obs.Counter.make "serve.jobs"
let c_batches = Gpo_obs.Counter.make "serve.batches"
let c_rejected = Gpo_obs.Counter.make "serve.rejected"
let c_deduped = Gpo_obs.Counter.make "serve.batch.deduped"
let c_failed = Gpo_obs.Counter.make "serve.jobs.failed"
let g_depth = Gpo_obs.Gauge.make "serve.queue.depth"

let create ?(jobs = 1) ?(queue_limit = 64) () =
  let jobs = if jobs <= 0 then Par.Pool.default_jobs () else jobs in
  let queue_limit = max 1 queue_limit in
  List.iter Gpo_obs.Counter.touch [ c_jobs; c_batches; c_rejected; c_deduped ];
  {
    pool = Par.Pool.create ~jobs ();
    pool_jobs = jobs;
    queue_limit;
    depth = Atomic.make 0;
    run_lock = Mutex.create ();
    drain = Par.Cancel.create ();
  }

let pool_jobs t = t.pool_jobs
let queue_limit t = t.queue_limit
let depth t = Atomic.get t.depth
let cancel_inflight t = Par.Cancel.cancel t.drain
let shutdown t = Par.Pool.shutdown t.pool

(* ------------------------------------------------------------------ *)
(* Job preparation: everything that can be decided before a worker
   domain touches the job — net resolution, property monitoring,
   engine selection, and the content-addressed cache key.              *)

type sel = Single of Harness.Engine.kind | Portfolio

let sel_name = function
  | Single k -> Harness.Engine.name k
  | Portfolio -> "portfolio"

let parse_sel = function
  | "full" -> Ok (Single Harness.Engine.Full)
  | "po" | "spin+po" | "stubborn" -> Ok (Single Harness.Engine.Stubborn)
  | "smv" | "bdd" | "symbolic" -> Ok (Single Harness.Engine.Symbolic)
  | "gpo" -> Ok (Single Harness.Engine.Gpo)
  | "portfolio" -> Ok Portfolio
  | s -> Error (Printf.sprintf "unknown engine %S" s)

let resolve_net = function
  | Protocol.Inline text -> (
      match Petri.Parser.parse ~name:"net" text with
      | Ok net -> Ok net
      | Error e ->
          Error (Format.asprintf "net: %a" Petri.Parser.pp_error e))
  | Protocol.Model { id; size } -> (
      match String.lowercase_ascii id with
      | "fig1" -> Ok Models.Figures.fig1
      | "fig2" -> Ok (Models.Figures.fig2 size)
      | "fig3" -> Ok Models.Figures.fig3
      | "fig5" -> Ok Models.Figures.fig5
      | "fig7" -> Ok Models.Figures.fig7
      | "scheduler" -> Ok (Models.Scheduler.make size)
      | "random" -> Ok (Models.Random_net.generate size)
      | id -> (
          match Harness.Experiment.family id with
          | fam -> Ok (fam.make size)
          | exception Not_found ->
              Error (Printf.sprintf "unknown model %S" id)))

type prepared = {
  job : Protocol.job;
  net : Petri.Net.t;  (** The net the client asked about. *)
  target : Petri.Net.t;  (** What the engine runs on (monitored for safety). *)
  property : Petri.Safety.property option;
  sel : sel;
  key : Harness.Result_cache.key;
}

let canonical_property cover = "cover:" ^ String.concat "," cover

let prepare (job : Protocol.job) =
  match resolve_net job.net with
  | Error msg -> Error msg
  | Ok net -> (
      match parse_sel job.engine with
      | Error msg -> Error msg
      | Ok sel -> (
          let covered =
            List.fold_right
              (fun name acc ->
                match acc with
                | Error _ -> acc
                | Ok places -> (
                    match Petri.Net.place_index net name with
                    | p -> Ok (p :: places)
                    | exception Not_found ->
                        Error (Printf.sprintf "unknown place %S" name)))
              job.cover (Ok [])
          in
          match covered with
          | Error msg -> Error msg
          | Ok [] ->
              let key =
                Harness.Result_cache.key ~digest:(Petri.Net.digest net)
                  ~engine:(sel_name sel) ~max_states:job.max_states
                  ~witness:job.witness ~gpo_scan:true ~reduce:job.reduce ()
              in
              Ok { job; net; target = net; property = None; sel; key }
          | Ok places ->
              let property =
                { Petri.Safety.name = "prop"; never_all = places }
              in
              let target = Petri.Safety.monitor net property in
              let key =
                Harness.Result_cache.key
                  ~property:(canonical_property job.cover)
                  ~digest:(Petri.Net.digest target) ~engine:(sel_name sel)
                  ~max_states:job.max_states ~witness:job.witness
                  ~gpo_scan:true ~reduce:job.reduce ()
              in
              Ok { job; net; target; property = Some property; sel; key }))

(* ------------------------------------------------------------------ *)
(* Execution of one (unique) job on a worker domain                    *)

(* The verdict service always runs GPO in its hardened configuration
   (scan on): the verdict is the product, and the paper configuration
   can miss deadlocks. *)
let run_engine ?cancel (p : prepared) =
  let job = p.job in
  let jobs = if job.jobs <= 0 then Par.Pool.default_jobs () else job.jobs in
  match p.sel with
  | Single kind ->
      let body guard =
        Harness.Engine.run ~max_states:job.max_states ~witness:job.witness
          ~gpo_scan:true ~reduce:job.reduce ~jobs ?cancel ?guard kind p.target
      in
      (match (job.timeout_s, job.mem_mb) with
      | None, None -> body None
      | _ ->
          Guard.with_guard ?deadline_s:job.timeout_s ?mem_mb:job.mem_mb
            (fun g -> body (Some g)))
  | Portfolio ->
      (* The portfolio owns its own cancel tokens (to stop the race
         losers) and exposes no external one; a hard drain lets an
         in-flight portfolio finish. *)
      (Harness.Portfolio.run ~max_states:job.max_states ~witness:job.witness
         ~gpo_scan:true ~reduce:job.reduce ~jobs ?deadline_s:job.timeout_s
         ?mem_mb:job.mem_mb p.target)
        .Harness.Portfolio.outcome

let certify (p : prepared) (o : Harness.Engine.outcome) =
  if o.Harness.Engine.deadlock && o.Harness.Engine.witness <> None then
    Some
      (Harness.Certify.certified
         (match p.property with
         | None -> Harness.Certify.deadlock p.net o
         | Some prop -> Harness.Certify.safety p.net prop o))
  else None

let ok_result (p : prepared) ~cached (o : Harness.Engine.outcome) =
  {
    Protocol.id = p.job.id;
    status = Protocol.Ok;
    cached;
    deduped = false;
    certified = certify p o;
    report = Some (Harness.Report.json_of_outcome o);
    metrics = J.Null;
  }

let failed_result id msg =
  Gpo_obs.Counter.incr c_failed;
  {
    Protocol.id;
    status = Protocol.Failed msg;
    cached = false;
    deduped = false;
    certified = None;
    report = None;
    metrics = J.Null;
  }

(* One request: probe the fault site, try the cache (hits re-certify
   their witness by replay before being served), run + store on a miss.
   Every event the job emits is captured on the worker domain and
   folded into the per-request metrics; failures stay inside this job's
   result.  Faulted runs store nothing — the cache only ever holds
   [Completed] outcomes. *)
let execute ?cancel (p : prepared) =
  let result, events =
    Gpo_obs.Scoped.capture (fun () ->
        Gpo_obs.Span.time "serve.request" (fun () ->
            try
              Guard.Fault.probe "serve.request";
              match
                Harness.Result_cache.find ~verify_net:p.target p.key
              with
              | Some outcome -> ok_result p ~cached:true outcome
              | None ->
                  let outcome = run_engine ?cancel p in
                  ignore
                    (Harness.Result_cache.store
                       ~net_text:(Petri.Parser.to_string p.target)
                       p.key outcome
                      : bool);
                  ok_result p ~cached:false outcome
            with
            | Out_of_memory ->
                Guard.relieve_memory ();
                failed_result p.job.id "out of memory"
            | Par.Cancel.Cancelled -> failed_result p.job.id "cancelled"
            | Guard.Interrupted reason ->
                failed_result p.job.id
                  ("interrupted: " ^ Guard.describe_stop reason)
            | Failure msg -> failed_result p.job.id msg))
  in
  ({ result with Protocol.metrics = Gpo_obs.summarize_events events }, events)

(* ------------------------------------------------------------------ *)
(* Batch submission                                                    *)

type slot =
  | Immediate of Protocol.job_result  (** Failed preparation. *)
  | Unique of prepared  (** First job with this cache key. *)
  | Dup of int  (** Same question as the slot at this index. *)

let submit t (batch : Protocol.job list) =
  let n = List.length batch in
  Gpo_obs.Counter.incr c_batches;
  (* Admission control: the whole batch gets in or none of it does. *)
  let rec admit () =
    let cur = Atomic.get t.depth in
    if cur + n > t.queue_limit then Error cur
    else if Atomic.compare_and_set t.depth cur (cur + n) then Ok ()
    else admit ()
  in
  match admit () with
  | Error cur ->
      Gpo_obs.Counter.incr c_rejected;
      Protocol.Rejected
        { reason = "queue_full"; limit = t.queue_limit; depth = cur; batch = n }
  | Ok () ->
      Gpo_obs.Gauge.set_int g_depth (Atomic.get t.depth);
      Fun.protect
        ~finally:(fun () ->
          ignore (Atomic.fetch_and_add t.depth (-n) : int);
          Gpo_obs.Gauge.set_int g_depth (Atomic.get t.depth))
        (fun () ->
          Gpo_obs.Counter.add c_jobs n;
          Mutex.lock t.run_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.run_lock)
            (fun () ->
              (* Name anonymous jobs, prepare, and dedupe by cache key:
                 only the first occurrence of a question is scheduled. *)
              let seen : (string, int) Hashtbl.t = Hashtbl.create 16 in
              let slots =
                List.mapi
                  (fun i (job : Protocol.job) ->
                    let job =
                      if job.id = "" then
                        { job with id = Printf.sprintf "job-%d" i }
                      else job
                    in
                    match prepare job with
                    | Error msg -> Immediate (failed_result job.id msg)
                    | Ok p -> (
                        let k = Harness.Result_cache.render p.key in
                        match Hashtbl.find_opt seen k with
                        | Some first ->
                            Gpo_obs.Counter.incr c_deduped;
                            Dup first
                        | None ->
                            Hashtbl.add seen k i;
                            Unique p))
                  batch
                |> Array.of_list
              in
              let uniques =
                Array.to_list slots
                |> List.filter_map (function Unique p -> Some p | _ -> None)
              in
              let executed =
                Par.Pool.map t.pool (execute ~cancel:t.drain) uniques
              in
              (* Replay the workers' captured events to the shared sink
                 in batch order, so --metrics-out/--trace-out streams
                 stay coherent. *)
              List.iter
                (fun (_, events) -> Gpo_obs.Scoped.replay events)
                executed;
              let by_index : (int, Protocol.job_result) Hashtbl.t =
                Hashtbl.create 16
              in
              List.iter2
                (fun (p : prepared) (result, _) ->
                  let i =
                    Hashtbl.find seen (Harness.Result_cache.render p.key)
                  in
                  Hashtbl.replace by_index i result)
                uniques executed;
              let results =
                Array.to_list
                  (Array.mapi
                     (fun i slot ->
                       match slot with
                       | Immediate r -> r
                       | Unique _ -> Hashtbl.find by_index i
                       | Dup first ->
                           let src = Hashtbl.find by_index first in
                           let id =
                             match slots.(i) with
                             | Dup _ -> (
                                 match List.nth_opt batch i with
                                 | Some j when j.Protocol.id <> "" ->
                                     j.Protocol.id
                                 | _ -> Printf.sprintf "job-%d" i)
                             | _ -> assert false
                           in
                           {
                             src with
                             Protocol.id;
                             deduped = true;
                             metrics = Gpo_obs.summarize_events [];
                           })
                     slots)
              in
              Protocol.Results results))
