let connect = function
  | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      fd
  | Server.Tcp { host; port } ->
      let addr =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> Unix.close fd; raise e);
      fd

let request fd req =
  match
    Protocol.send fd (Protocol.json_of_request req);
    Protocol.recv fd
  with
  | None -> Error "server closed the connection"
  | Some (Error msg) -> Error ("bad frame: " ^ msg)
  | Some (Ok json) -> Protocol.response_of_json json
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let with_connection endpoint f =
  match connect endpoint with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Format.asprintf "connect %a: %s" Server.pp_endpoint endpoint
           (Unix.error_message err))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f fd)

let submit endpoint jobs =
  with_connection endpoint (fun fd -> request fd (Protocol.Submit jobs))

let ping endpoint = with_connection endpoint (fun fd -> request fd Protocol.Ping)

let stats endpoint =
  with_connection endpoint (fun fd -> request fd Protocol.Stats)

let shutdown endpoint =
  with_connection endpoint (fun fd -> request fd Protocol.Shutdown)

let wait_ready ?(attempts = 100) ?(delay_s = 0.05) endpoint =
  let rec go n =
    if n <= 0 then false
    else
      match ping endpoint with
      | Ok Protocol.Pong -> true
      | _ ->
          Unix.sleepf delay_s;
          go (n - 1)
  in
  go attempts
