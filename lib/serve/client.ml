type failure =
  | Refused of string
  | Timed_out of string
  | Closed
  | Protocol_error of string
  | Io of string

let describe_failure = function
  | Refused msg -> msg
  | Timed_out msg -> msg
  | Closed -> "server closed the connection"
  | Protocol_error msg -> msg
  | Io msg -> msg

(* What a retry can fix: nobody listening yet (daemon still booting or
   restarting) and deadline expiry (server busy, network stall).  A
   closed connection, a protocol error or a generic I/O failure is not
   known to be idempotent-safe territory — the request may have been
   acted on — except that every [request] is a pure question over
   content-addressed state, so the {e caller} may widen this; the
   default stays conservative. *)
let transient = function
  | Refused _ | Timed_out _ -> true
  | Closed | Protocol_error _ | Io _ -> false

let connect = function
  | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      fd
  | Server.Tcp { host; port } ->
      let addr =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> Unix.close fd; raise e);
      fd

let request fd req =
  match
    Protocol.send fd (Protocol.json_of_request req);
    Protocol.recv fd
  with
  | Protocol.Eof -> Error Closed
  | Protocol.Bad Protocol.Frame_timeout ->
      Error (Timed_out "timed out waiting for the server's reply")
  | Protocol.Bad e -> Error (Protocol_error (Protocol.describe_frame_error e))
  | Protocol.Payload (Error msg) -> Error (Protocol_error ("bad frame: " ^ msg))
  | Protocol.Payload (Ok json) -> (
      match Protocol.response_of_json json with
      | Ok Protocol.Timed_out ->
          (* The server classified *us* as the stalled peer. *)
          Error (Timed_out "server timed out reading the request")
      | Ok response -> Ok response
      | Error msg -> Error (Protocol_error msg))
  | exception Protocol.Frame Protocol.Frame_timeout ->
      Error (Timed_out "timed out sending the request")
  | exception Protocol.Frame e ->
      Error (Protocol_error (Protocol.describe_frame_error e))
  | exception Unix.Unix_error (Unix.EPIPE, _, _) -> Error Closed
  | exception Unix.Unix_error (err, _, _) -> Error (Io (Unix.error_message err))

let with_connection ?io_timeout_s endpoint f =
  match connect endpoint with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Refused
           (Format.asprintf "connect %a: %s" Server.pp_endpoint endpoint
              (Unix.error_message err)))
  | fd ->
      (match io_timeout_s with
      | Some s when s > 0. -> Protocol.set_timeouts fd s
      | _ -> ());
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f fd)

(* ------------------------------------------------------------------ *)
(* Retry policy: exponential backoff with full jitter                  *)

(* Sleep uniformly in [0, backoff_ms * 2^attempt] (capped at 10 s) —
   full jitter spreads a thundering herd of restarting clients instead
   of synchronising it.  Only typed-transient failures are retried:
   the server's queue_full rejection (shed load, come back later), a
   refused connection (daemon restarting), and deadline expiry.  Safe
   because every request is idempotent — a question about
   content-addressed state, not a mutation. *)
let retryable = function
  | Ok (Protocol.Rejected { reason = "queue_full"; _ }) -> true
  | Ok _ -> false
  | Error f -> transient f

let with_retries ?(retries = 0) ?(backoff_ms = 50) ?rng attempt_fn =
  let rng = lazy (match rng with Some r -> r | None -> Random.State.make_self_init ()) in
  let rec go attempt =
    let outcome = attempt_fn () in
    if attempt >= retries || not (retryable outcome) then outcome
    else begin
      let ceiling_ms =
        min 10_000. (float_of_int backoff_ms *. (2. ** float_of_int attempt))
      in
      let sleep_ms = Random.State.float (Lazy.force rng) ceiling_ms in
      Gpo_obs.instant "serve.client.retry"
        [ ("attempt", Gpo_obs.I (attempt + 1)) ];
      Unix.sleepf (sleep_ms /. 1000.);
      go (attempt + 1)
    end
  in
  go 0

let submit ?retries ?backoff_ms ?rng ?io_timeout_s endpoint jobs =
  with_retries ?retries ?backoff_ms ?rng (fun () ->
      with_connection ?io_timeout_s endpoint (fun fd ->
          request fd (Protocol.Submit jobs)))

let ping ?io_timeout_s endpoint =
  with_connection ?io_timeout_s endpoint (fun fd -> request fd Protocol.Ping)

let stats ?io_timeout_s endpoint =
  with_connection ?io_timeout_s endpoint (fun fd -> request fd Protocol.Stats)

let shutdown ?io_timeout_s endpoint =
  with_connection ?io_timeout_s endpoint (fun fd ->
      request fd Protocol.Shutdown)

let wait_ready ?(attempts = 100) ?(delay_s = 0.05) endpoint =
  let rec go n =
    if n <= 0 then false
    else
      match ping endpoint with
      | Ok Protocol.Pong -> true
      | _ ->
          Unix.sleepf delay_s;
          go (n - 1)
  in
  go attempts
