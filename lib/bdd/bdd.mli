(** Reduced Ordered Binary Decision Diagrams, hash-consed.

    A from-scratch ROBDD package in the style of Bryant's original
    paper (reference [2] of the paper): shared, canonical node
    representation with a unique table and memoized boolean operations.
    It provides everything the symbolic reachability analysis of
    Section 2.4 needs — conjunction/disjunction/negation, if-then-else,
    existential quantification over variable sets, the fused
    relational product, monotone variable renaming and satisfying
    assignment counting — plus the node-count accounting used for the
    "Peak BDD size" column of Table 1.

    Nodes are ordered by increasing variable index from the root.
    All values belonging to one {!manager} are canonical: structural
    equality is physical equality. *)

type manager
(** Owns the unique table and the operation caches. *)

type t
(** A BDD node.  Only combine nodes created by the same manager. *)

val manager : unit -> manager
(** Create a fresh manager. *)

val zero : manager -> t
(** The constant false. *)

val one : manager -> t
(** The constant true. *)

val var : manager -> int -> t
(** [var m v] is the function of the single variable [v] (≥ 0). *)

val nvar : manager -> int -> t
(** [nvar m v] is [not_ m (var m v)]. *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor_ : manager -> t -> t -> t
val imp : manager -> t -> t -> t
(** [imp m a b] is [¬a ∨ b]. *)

val iff : manager -> t -> t -> t
(** [iff m a b] is [¬(a xor b)]. *)

val ite : manager -> t -> t -> t -> t
(** [ite m i t e] is if-then-else. *)

val conj : manager -> t list -> t
(** Conjunction of a list ([one] for the empty list). *)

val disj : manager -> t list -> t
(** Disjunction of a list ([zero] for the empty list). *)

val exists : manager -> int list -> t -> t
(** [exists m vars f] quantifies the listed variables existentially. *)

val and_exists : manager -> int list -> t -> t -> t
(** [and_exists m vars f g] computes [exists m vars (and_ m f g)]
    without building the conjunction first — the relational-product
    kernel of image computation. *)

val rename_monotone : manager -> (int -> int) -> t -> t
(** [rename_monotone m f t] substitutes variable [v] by [f v].  [f]
    must be strictly monotone on the support of [t] (it preserves the
    variable order), which makes the substitution a linear walk. *)

val restrict : manager -> int -> bool -> t -> t
(** [restrict m v b t] is the cofactor of [t] with [v = b]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
(** Constant-time (hash-consing makes structural equality physical). *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val sat_count : manager -> int -> t -> float
(** [sat_count m n_vars t] is the number of satisfying assignments of
    [t] over the variable universe [{0, ..., n_vars - 1}] (as a float:
    counts overflow 63 bits beyond ~63 variables). *)

val any_sat : t -> (int * bool) list
(** One satisfying assignment as (variable, value) pairs for the
    variables on the path; raises [Not_found] on [zero]. *)

val size : t -> int
(** Number of distinct nodes reachable from this node (incl. leaves). *)

val live_nodes : manager -> int
(** Total nodes currently in the unique table. *)

val peak_nodes : manager -> int
(** High-water mark of {!live_nodes} since the manager was created. *)

val unique_load_factor : manager -> float
(** Bindings per bucket of the unique table — reported by the symbolic
    engine's telemetry ([bdd.unique.load_factor]). *)

val clear_caches : manager -> unit
(** Drop the operation caches (the unique table is kept). *)
