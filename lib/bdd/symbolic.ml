module Internal = struct
  type encoding = {
    manager : Bdd.manager;
    n_places : int;
    current : int -> int;
    next : int -> int;
    initial : Bdd.t;
    enabled : Bdd.t array;
    relations : Bdd.t array;
  }

  let current p = 2 * p
  let next p = (2 * p) + 1

  let encode (net : Petri.Net.t) =
    let m = Bdd.manager () in
    let n_places = net.n_places in
    let initial =
      Bdd.conj m
        (List.init n_places (fun p ->
             if Petri.Bitset.mem p net.initial then Bdd.var m (current p)
             else Bdd.nvar m (current p)))
    in
    let enabled =
      Array.init net.n_transitions (fun t ->
          Bdd.conj m
            (Array.to_list net.pre_list.(t)
            |> List.map (fun p -> Bdd.var m (current p))))
    in
    let relations =
      Array.init net.n_transitions (fun t ->
          let pre = net.pre.(t) and post = net.post.(t) in
          let update =
            List.init n_places (fun p ->
                let in_pre = Petri.Bitset.mem p pre in
                let in_post = Petri.Bitset.mem p post in
                if in_post then Bdd.var m (next p)
                else if in_pre then Bdd.nvar m (next p)
                else Bdd.iff m (Bdd.var m (next p)) (Bdd.var m (current p)))
          in
          Bdd.and_ m enabled.(t) (Bdd.conj m update))
    in
    { manager = m; n_places; current; next; initial; enabled; relations }

  let marking_of_cube enc cube =
    List.fold_left
      (fun acc (v, b) ->
        if b && v land 1 = 0 then Petri.Bitset.add (v / 2) acc else acc)
      (Petri.Bitset.empty enc.n_places)
      cube

  let current_vars enc = List.init enc.n_places enc.current
  let next_vars enc = List.init enc.n_places enc.next

  let cube_of_marking enc m =
    Bdd.conj enc.manager
      (List.init enc.n_places (fun p ->
           if Petri.Bitset.mem p m then Bdd.var enc.manager (enc.current p)
           else Bdd.nvar enc.manager (enc.current p)))

  let preimage enc rel target =
    (* [target] ranges over current variables; shift it onto the next
       variables (v ↦ v + 1 is strictly monotone on the all-even
       support), conjoin with the relation and quantify the next
       variables away — what remains are the one-step predecessors,
       over current variables. *)
    let shifted = Bdd.rename_monotone enc.manager (fun v -> v + 1) target in
    Bdd.and_exists enc.manager (next_vars enc) shifted rel

  let shift_next_to_current enc t =
    (* next vars are odd = current + 1; the map v ↦ v - 1 on odd vars is
       strictly monotone on the support (all-next) of the quantified
       result. *)
    Bdd.rename_monotone enc.manager (fun v -> v - 1) t

  let image_one enc rel set =
    let quantified = Bdd.and_exists enc.manager (current_vars enc) set rel in
    shift_next_to_current enc quantified

  let image enc set =
    Array.fold_left
      (fun acc rel -> Bdd.or_ enc.manager acc (image_one enc rel set))
      (Bdd.zero enc.manager) enc.relations
end

type result = {
  states : float;
  iterations : int;
  peak_live_nodes : int;
  peak_set_nodes : int;
  deadlock : Petri.Bitset.t option;
  witness : Petri.Net.transition list option;
  stop : Guard.stop_reason;
  time_s : float;
}

let truncated result = result.stop <> Guard.Completed

(* Telemetry: fixpoint progress and unique-table health. *)
let c_iterations = Gpo_obs.Counter.make "smv.iterations"
let g_peak_live = Gpo_obs.Gauge.make "smv.peak_live_nodes"
let g_peak_set = Gpo_obs.Gauge.make "smv.peak_set_nodes"
let g_unique_size = Gpo_obs.Gauge.make "bdd.unique.size"
let g_unique_load = Gpo_obs.Gauge.make "bdd.unique.load_factor"
let d_witness_len = Gpo_obs.Dist.make "smv.witness.length"

(* Layered backward reconstruction.  The frontier BDDs of the forward
   fixpoint are BFS layers: a marking first reached in layer [i] has,
   by construction of [fresh], a one-step predecessor in layer [i - 1].
   Walking the layers backwards — at each step scanning the partitioned
   relations for a transition whose preimage of the current marking
   meets the previous layer — yields a shortest firing sequence from
   the initial marking to [target]. *)
let reconstruct ?cancel enc layers target =
  let m = enc.Internal.manager in
  let member marking layer =
    not (Bdd.is_zero (Bdd.and_ m layer (Internal.cube_of_marking enc marking)))
  in
  let depth =
    let rec find i =
      if i >= Array.length layers then
        invalid_arg "Symbolic.reconstruct: marking outside the layered frontier"
      else if member target layers.(i) then i
      else find (i + 1)
    in
    find 0
  in
  let rec walk i marking acc =
    Par.Cancel.check_opt cancel;
    Guard.Fault.probe "smv.witness";
    if i = 0 then acc
    else begin
      let cube = Internal.cube_of_marking enc marking in
      let rec try_transition t =
        if t >= Array.length enc.Internal.relations then
          invalid_arg "Symbolic.reconstruct: no predecessor in the previous layer"
        else begin
          let pred =
            Bdd.and_ m
              (Internal.preimage enc enc.Internal.relations.(t) cube)
              layers.(i - 1)
          in
          if Bdd.is_zero pred then try_transition (t + 1)
          else (t, Internal.marking_of_cube enc (Bdd.any_sat pred))
        end
      in
      let t, predecessor = try_transition 0 in
      walk (i - 1) predecessor (t :: acc)
    end
  in
  walk depth target []

let analyse ?(partitioned = true) ?(witness = false) ?cancel ?guard
    (net : Petri.Net.t) =
  let t0 = Unix.gettimeofday () in
  Gpo_obs.Counter.touch c_iterations;
  let enc = Gpo_obs.Span.time "smv.encode" (fun () -> Internal.encode net) in
  let m = enc.manager in
  let image =
    if partitioned then fun set -> Internal.image enc set
    else begin
      let monolithic = Bdd.disj m (Array.to_list enc.relations) in
      fun set -> Internal.image_one enc monolithic set
    end
  in
  let peak_set = ref (Bdd.size enc.initial) in
  (* BFS layers for witness reconstruction, newest first; only retained
     when a witness was requested (each layer pins its BDD live). *)
  let layers = ref [ enc.initial ] in
  let reached = ref enc.initial in
  let frontier = ref enc.initial in
  let iterations = ref 0 in
  let interrupt = ref Guard.Completed in
  (* One fixpoint iteration dwarfs a clock read, so the guard is polled
     unmasked here.  An interrupt keeps the layers accumulated so far:
     every marking in the partial [reached] really is reachable, so a
     deadlock found below is still a sound verdict — only a clean
     "no deadlock" becomes inconclusive. *)
  (try
     while not (Bdd.is_zero !frontier) do
       Guard.check_now ?cancel ?guard ();
       Guard.Fault.probe "smv.iter";
       let successors =
         Gpo_obs.Span.time "smv.image" (fun () -> image !frontier)
       in
       let fresh = Bdd.and_ m successors (Bdd.not_ m !reached) in
       if witness && not (Bdd.is_zero fresh) then layers := fresh :: !layers;
       reached := Bdd.or_ m !reached fresh;
       let set_size = Bdd.size !reached in
       if set_size > !peak_set then peak_set := set_size;
       Gpo_obs.Counter.incr c_iterations;
       incr iterations;
       Gpo_obs.Progress.sample "smv" (fun () ->
           [
             ("iterations", Gpo_obs.I !iterations);
             ("live_nodes", Gpo_obs.I (Bdd.live_nodes m));
             ("set_nodes", Gpo_obs.I set_size);
           ]);
       frontier := fresh
     done
   with Guard.Interrupted reason -> interrupt := reason);
  let reached = !reached and iterations = !iterations in
  Gpo_obs.Gauge.set_int g_peak_live (Bdd.peak_nodes m);
  Gpo_obs.Gauge.set_int g_peak_set !peak_set;
  Gpo_obs.Gauge.set_int g_unique_size (Bdd.live_nodes m);
  Gpo_obs.Gauge.set g_unique_load (Bdd.unique_load_factor m);
  let states = Bdd.sat_count m net.n_places
      (* reached ranges over current variables only; renumber them to a
         compact range for counting: current vars are exactly the even
         ones, so divide by two monotonically. *)
      (Bdd.rename_monotone m (fun v -> v / 2) reached)
  in
  let any_enabled = Bdd.disj m (Array.to_list enc.enabled) in
  let dead_set = Bdd.and_ m reached (Bdd.not_ m any_enabled) in
  let deadlock =
    if Bdd.is_zero dead_set then None
    else Some (Internal.marking_of_cube enc (Bdd.any_sat dead_set))
  in
  let witness =
    match deadlock with
    | Some dead when witness ->
        Some
          (Gpo_obs.Span.time "smv.witness" (fun () ->
               let trace =
                 reconstruct ?cancel enc (Array.of_list (List.rev !layers)) dead
               in
               Gpo_obs.Dist.observe_int d_witness_len (List.length trace);
               trace))
    | _ -> None
  in
  {
    states;
    iterations;
    peak_live_nodes = Bdd.peak_nodes m;
    peak_set_nodes = !peak_set;
    deadlock;
    witness;
    stop = !interrupt;
    time_s = Unix.gettimeofday () -. t0;
  }

let reachable_count net = (analyse net).states
