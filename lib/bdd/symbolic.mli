(** Symbolic reachability analysis of safe Petri nets (Section 2.4).

    The SMV-style baseline of Table 1: one boolean variable per place,
    with current-state and next-state variables interleaved
    ([place p ↦ vars 2p and 2p+1]).  Each transition contributes a
    relation [enabled ∧ updates ∧ frame]; the reachable set is the
    least fixpoint of the image under the (partitioned) relation.
    "Peak BDD size" is the high-water mark of live nodes in the
    manager, together with the largest reachable-set BDD encountered —
    both are reported, the former is the Table 1 column. *)

type result = {
  states : float;
      (** Number of reachable markings ([sat_count] of the fixpoint). *)
  iterations : int;  (** Number of image steps to the fixpoint. *)
  peak_live_nodes : int;
      (** High-water mark of unique-table nodes — the "Peak BDD size". *)
  peak_set_nodes : int;
      (** Largest node count of the reachable-set BDD during the fixpoint. *)
  deadlock : Petri.Bitset.t option;
      (** Some deadlocked reachable marking, if one exists. *)
  witness : Petri.Net.transition list option;
      (** When requested and [deadlock = Some m]: a shortest firing
          sequence from the initial marking to [m], reconstructed by
          walking the BFS frontier layers backwards with per-transition
          preimages. *)
  stop : Guard.stop_reason;
      (** Why the fixpoint ended; any reason but [Completed] means the
          reachable set is only partially covered.  A deadlock found in
          a partial run is still sound — every marking in the partial
          fixpoint is reachable — but a clean partial run proves
          nothing. *)
  time_s : float;  (** Wall-clock time of the analysis. *)
}

val truncated : result -> bool
(** [stop <> Completed]. *)

val analyse :
  ?partitioned:bool -> ?witness:bool -> ?cancel:Par.Cancel.t ->
  ?guard:Guard.t -> Petri.Net.t -> result
(** Run the symbolic reachability analysis.  [partitioned] (default
    [true]) keeps one relation per transition and accumulates the
    per-transition images; [false] builds the monolithic disjunction
    first (the ablation bench compares both).  [witness] (default
    [false]) retains the frontier layers during the fixpoint and, if a
    deadlock exists, reconstructs a concrete firing sequence to it
    (reported in the [witness] field; costs one live BDD per layer).
    [cancel] and [guard] are polled once per fixpoint iteration (and
    [cancel] again at every witness walk-back step); a tripped guard
    ends the fixpoint early with the partial reachable set and [stop]
    carrying the reason.  Each analysis owns a fresh BDD manager, so
    the engine is domain-safe and needs no further synchronisation. *)

val reachable_count : Petri.Net.t -> float
(** Convenience: just the number of reachable markings. *)

module Internal : sig
  (** Exposed for white-box tests. *)

  type encoding = {
    manager : Bdd.manager;
    n_places : int;
    current : int -> int;  (** Variable of place [p] in the current state. *)
    next : int -> int;  (** Variable of place [p] in the next state. *)
    initial : Bdd.t;
    enabled : Bdd.t array;  (** Per transition, over current variables. *)
    relations : Bdd.t array;  (** Per transition: enabled ∧ update ∧ frame. *)
  }

  val encode : Petri.Net.t -> encoding
  (** Build the boolean encoding of a net. *)

  val marking_of_cube : encoding -> (int * bool) list -> Petri.Bitset.t
  (** Decode a satisfying assignment over current variables. *)

  val cube_of_marking : encoding -> Petri.Bitset.t -> Bdd.t
  (** The characteristic function of one marking, over current
      variables (inverse of {!marking_of_cube}). *)

  val image : encoding -> Bdd.t -> Bdd.t
  (** One-step successors of a set of markings (partitioned relation). *)

  val preimage : encoding -> Bdd.t -> Bdd.t -> Bdd.t
  (** [preimage enc rel set] is the one-step predecessors of [set]
      (over current variables) under the single relation [rel] — the
      backward counterpart of {!image}, used by witness
      reconstruction. *)
end
