type t = Zero | One | Node of { var : int; low : t; high : t; id : int }

let id = function Zero -> 0 | One -> 1 | Node n -> n.id

module Unique_key = struct
  type t = int * int * int (* var, low id, high id *)

  let equal (a, b, c) (a', b', c') = a = a' && b = b' && c = c'
  let hash (a, b, c) = (((a * 486187739) + b) * 486187739) + c
end

module Unique = Hashtbl.Make (Unique_key)

module Cache_key = struct
  type t = int * int * int (* op tag, id1, id2 *)

  let equal (a, b, c) (a', b', c') = a = a' && b = b' && c = c'
  let hash (a, b, c) = (((a * 2654435761) + b) * 2654435761) + c
end

module Cache = Hashtbl.Make (Cache_key)

(* Telemetry: memoization effectiveness of the two operation caches and
   unique-table growth.  Bare counter increments — these sit on the
   hottest paths of the symbolic engine, and an increment is noise next
   to the hash-table probe it annotates. *)
let c_apply_hit = Gpo_obs.Counter.make "bdd.apply.cache_hit"
let c_apply_miss = Gpo_obs.Counter.make "bdd.apply.cache_miss"
let c_ite_hit = Gpo_obs.Counter.make "bdd.ite.cache_hit"
let c_ite_miss = Gpo_obs.Counter.make "bdd.ite.cache_miss"
let c_nodes_created = Gpo_obs.Counter.make "bdd.nodes.created"

type manager = {
  unique : t Unique.t;
  mutable next_id : int;
  mutable peak : int;
  cache : t Cache.t;  (* binary ops and not *)
  ite_cache : (int, t) Hashtbl.t;  (* key: three node ids packed into one int *)
}

(* The ite cache key packs (id i, id t, id e) into a single immediate
   int — 21 bits per id — so probing neither allocates a tuple nor
   chases three boxed fields per comparison.  Node ids are dense from 0,
   so the guard only trips past two million live-or-dead nodes; beyond
   that [ite] still computes correctly, just without memoization. *)
let ite_pack_bits = 21
let ite_pack_limit = 1 lsl ite_pack_bits

let ite_pack i t e =
  (((i lsl ite_pack_bits) lor t) lsl ite_pack_bits) lor e

let manager () =
  {
    unique = Unique.create 4096;
    next_id = 2;
    peak = 2;
    cache = Cache.create 4096;
    ite_cache = Hashtbl.create 1024;
  }

let zero _ = Zero
let one _ = One
let is_zero t = t == Zero
let is_one t = t == One
let equal a b = a == b

let mk m var low high =
  if low == high then low
  else begin
    let key = (var, id low, id high) in
    match Unique.find_opt m.unique key with
    | Some node -> node
    | None ->
        Gpo_obs.Counter.incr c_nodes_created;
        let node = Node { var; low; high; id = m.next_id } in
        m.next_id <- m.next_id + 1;
        Unique.add m.unique key node;
        let live = Unique.length m.unique + 2 in
        if live > m.peak then m.peak <- live;
        node
  end

let var m v =
  if v < 0 then invalid_arg "Bdd.var: negative variable";
  mk m v Zero One

let nvar m v =
  if v < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m v One Zero

(* Operation tags for the shared binary cache. *)
let tag_and = 0
let tag_or = 1
let tag_xor = 2
let tag_not = 3

let top_var a b =
  match (a, b) with
  | Node x, Node y -> min x.var y.var
  | Node x, _ | _, Node x -> x.var
  | _ -> invalid_arg "Bdd.top_var: two leaves"

let cofactors v = function
  | Node n when n.var = v -> (n.low, n.high)
  | t -> (t, t)

let rec not_ m t =
  match t with
  | Zero -> One
  | One -> Zero
  | Node n -> begin
      let key = (tag_not, n.id, 0) in
      match Cache.find_opt m.cache key with
      | Some r ->
          Gpo_obs.Counter.incr c_apply_hit;
          r
      | None ->
          Gpo_obs.Counter.incr c_apply_miss;
          let r = mk m n.var (not_ m n.low) (not_ m n.high) in
          Cache.add m.cache key r;
          r
    end

let rec apply m tag f_leaf a b =
  match f_leaf a b with
  | Some r -> r
  | None -> begin
      let ia = id a and ib = id b in
      (* and/or/xor are commutative: canonicalize the key. *)
      let key = if ia <= ib then (tag, ia, ib) else (tag, ib, ia) in
      match Cache.find_opt m.cache key with
      | Some r ->
          Gpo_obs.Counter.incr c_apply_hit;
          r
      | None ->
          Gpo_obs.Counter.incr c_apply_miss;
          let v = top_var a b in
          let a0, a1 = cofactors v a and b0, b1 = cofactors v b in
          let r = mk m v (apply m tag f_leaf a0 b0) (apply m tag f_leaf a1 b1) in
          Cache.add m.cache key r;
          r
    end

let and_leaf a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Some Zero
  | One, x | x, One -> Some x
  | x, y when x == y -> Some x
  | _ -> None

let or_leaf a b =
  match (a, b) with
  | One, _ | _, One -> Some One
  | Zero, x | x, Zero -> Some x
  | x, y when x == y -> Some x
  | _ -> None

let xor_leaf a b =
  match (a, b) with
  | Zero, x | x, Zero -> Some x
  | x, y when x == y -> Some Zero
  | _ -> None

let and_ m a b = apply m tag_and and_leaf a b
let or_ m a b = apply m tag_or or_leaf a b

let xor_ m a b =
  match (a, b) with
  | One, x | x, One -> not_ m x
  | _ -> apply m tag_xor xor_leaf a b

let imp m a b = or_ m (not_ m a) b
let iff m a b = not_ m (xor_ m a b)

let ite m i t e =
  let rec go i t e =
    match i with
    | One -> t
    | Zero -> e
    | _ when t == e -> t
    | _ when is_one t && is_zero e -> i
    | _ -> begin
        let cacheable = m.next_id < ite_pack_limit in
        let key = if cacheable then ite_pack (id i) (id t) (id e) else 0 in
        match if cacheable then Hashtbl.find_opt m.ite_cache key else None with
        | Some r ->
            Gpo_obs.Counter.incr c_ite_hit;
            r
        | None ->
            Gpo_obs.Counter.incr c_ite_miss;
            let v =
              List.fold_left
                (fun acc n -> match n with Node x -> min acc x.var | _ -> acc)
                max_int [ i; t; e ]
            in
            let i0, i1 = cofactors v i in
            let t0, t1 = cofactors v t in
            let e0, e1 = cofactors v e in
            let r = mk m v (go i0 t0 e0) (go i1 t1 e1) in
            if cacheable then Hashtbl.add m.ite_cache key r;
            r
      end
  in
  go i t e

let conj m ts = List.fold_left (and_ m) One ts
let disj m ts = List.fold_left (or_ m) Zero ts

(* Quantification uses per-call memo tables: the quantified variable set
   changes between calls, so the global cache cannot be reused. *)
let exists m vars t =
  let in_vars = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_vars v ()) vars;
  let memo = Hashtbl.create 256 in
  let rec go t =
    match t with
    | Zero | One -> t
    | Node n -> begin
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
            let r =
              if Hashtbl.mem in_vars n.var then or_ m (go n.low) (go n.high)
              else mk m n.var (go n.low) (go n.high)
            in
            Hashtbl.add memo n.id r;
            r
      end
  in
  go t

let and_exists m vars f g =
  let in_vars = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_vars v ()) vars;
  let memo = Hashtbl.create 256 in
  let rec go f g =
    match and_leaf f g with
    | Some r -> if r == Zero || r == One then r else quantify_rest r
    | None -> begin
        let ia = id f and ib = id g in
        let key = if ia <= ib then (ia, ib) else (ib, ia) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
            let v = top_var f g in
            let f0, f1 = cofactors v f and g0, g1 = cofactors v g in
            let r0 = go f0 g0 and r1 = go f1 g1 in
            let r = if Hashtbl.mem in_vars v then or_ m r0 r1 else mk m v r0 r1 in
            Hashtbl.add memo key r;
            r
      end
  and quantify_rest t =
    (* [and_leaf] short-circuited to a single operand that may still
       contain quantified variables. *)
    exists m (Hashtbl.fold (fun v () acc -> v :: acc) in_vars []) t
  in
  go f g

let rename_monotone m f t =
  let memo = Hashtbl.create 256 in
  let rec go t =
    match t with
    | Zero | One -> t
    | Node n -> begin
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
            let r = mk m (f n.var) (go n.low) (go n.high) in
            Hashtbl.add memo n.id r;
            r
      end
  in
  go t

let restrict m v b t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match t with
    | Zero | One -> t
    | Node n when n.var > v -> t
    | Node n when n.var = v -> if b then n.high else n.low
    | Node n -> begin
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
            let r = mk m n.var (go n.low) (go n.high) in
            Hashtbl.add memo n.id r;
            r
      end
  in
  go t

let rec eval t assignment =
  match t with
  | Zero -> false
  | One -> true
  | Node n -> eval (if assignment n.var then n.high else n.low) assignment

let sat_count _m n_vars t =
  let memo = Hashtbl.create 256 in
  (* count t = #assignments of variables in [var(t), n_vars) satisfying t,
     scaled afterwards for the variables above the root. *)
  let rec count t =
    match t with
    | Zero -> 0.0
    | One -> 1.0
    | Node n -> begin
        match Hashtbl.find_opt memo n.id with
        | Some c -> c
        | None ->
            let scale child =
              let gap =
                match child with
                | Node c -> c.var - n.var - 1
                | Zero | One -> n_vars - n.var - 1
              in
              ldexp (count child) gap
            in
            let c = scale n.low +. scale n.high in
            Hashtbl.add memo n.id c;
            c
      end
  in
  match t with
  | Zero -> 0.0
  | One -> ldexp 1.0 n_vars
  | Node n -> ldexp (count t) n.var

let any_sat t =
  let rec go t acc =
    match t with
    | Zero -> raise Not_found
    | One -> List.rev acc
    | Node n ->
        if n.low == Zero then go n.high ((n.var, true) :: acc)
        else go n.low ((n.var, false) :: acc)
  in
  go t []

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t with
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.add seen n.id ();
          go n.low;
          go n.high
        end
  in
  go t;
  let leaves = match t with Zero | One -> 1 | Node _ -> 2 in
  Hashtbl.length seen + leaves

let live_nodes m = Unique.length m.unique + 2
let peak_nodes m = m.peak

let unique_load_factor m =
  let stats = Unique.stats m.unique in
  float_of_int stats.Hashtbl.num_bindings
  /. float_of_int (max 1 stats.Hashtbl.num_buckets)

let clear_caches m =
  Cache.reset m.cache;
  Hashtbl.reset m.ite_cache
