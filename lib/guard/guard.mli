(** Resource governance: deadlines, memory budgets, typed stop
    reasons, and deterministic fault injection.

    Every engine run ends for exactly one {!stop_reason}.  A run that
    covered its whole state space stops with {!Completed}; every other
    reason marks the result as partial, and the harness must treat a
    clean-looking partial result as inconclusive — never as a proof.

    A {!t} bundles the two soft budgets:

    - a {e deadline} — absolute wall clock, checked by {!poll} from the
      engine step loops (the same places that poll [Par.Cancel]);
    - a {e memory budget} — a [Gc] alarm trips the guard at the end of
      a major collection once the heap exceeds the budget, so the run
      unwinds at the next poll instead of dying inside the allocator.
      {!poll} double-checks the heap size directly in case the alarm
      has not fired yet.

    Both trip points are sticky: the first reason wins and every later
    {!poll} re-raises it, so a tripped guard also stops any sibling
    domain polling the same guard.  As a last resort, callers that
    catch a genuine [Out_of_memory] can call {!relieve_memory} to drop
    registered caches before building a degraded result.

    Telemetry: [guard.deadline.trips] and [guard.mem.trips] count the
    budgets that fired; [fault.injected] counts injected faults. *)

(** Why a run stopped. *)
type stop_reason =
  | Completed  (** Ran to the natural end of its state space. *)
  | State_budget  (** The [max_states] budget was hit. *)
  | Deadline  (** The wall-clock deadline expired. *)
  | Memory  (** The soft memory budget was exceeded. *)
  | Cancelled  (** A [Par.Cancel] token was tripped (race loser). *)
  | Crashed of string  (** The engine died with the given exception. *)

val string_of_stop : stop_reason -> string
(** Stable machine-readable tag: ["completed"], ["state_budget"],
    ["deadline"], ["memory"], ["cancelled"], ["crashed: <msg>"]. *)

val stop_of_string : string -> stop_reason option
(** Inverse of {!string_of_stop} — used by the persistent result-cache
    journal to decode recovered outcomes.  [None] on an unknown tag. *)

val describe_stop : stop_reason -> string
(** Human-readable phrase for messages ("wall-clock deadline
    exceeded", ...). *)

val pp_stop : Format.formatter -> stop_reason -> unit

exception Interrupted of stop_reason
(** Raised by {!poll} when a budget has tripped.  Engines catch this
    around their step loop and return a partial result carrying the
    reason; it never escapes an engine entry point. *)

type t

val create :
  ?deadline_s:float -> ?mem_mb:int -> ?poll_mask:int -> unit -> t
(** [create ~deadline_s ~mem_mb ()] arms a guard [deadline_s] seconds
    from now with a soft heap budget of [mem_mb] megabytes.  Omitted
    budgets never trip.  The memory budget installs a [Gc] alarm
    (per-domain: create the guard in the domain that runs the engine);
    {!dispose} removes it.  [poll_mask] (a power of two minus one,
    default [63]) rate-limits the clock/heap reads in {!poll}: the
    budgets are re-checked every [poll_mask + 1] calls, while a trip
    already recorded is re-raised on every call. *)

val poll : t -> unit
(** Cheap check for the hottest loops: re-raise a recorded trip (one
    atomic load), and every [poll_mask + 1] calls read the clock and
    heap size.  Raises {!Interrupted}. *)

val poll_now : t -> unit
(** {!poll} without the rate limit — for coarse loops (one BDD
    fixpoint iteration, one GPN world expansion) whose step already
    dwarfs a clock read. *)

val check : ?cancel:Par.Cancel.t -> ?guard:t -> unit -> unit
(** The engine step-loop check: poll the cancellation token (raising
    [Par.Cancel.Cancelled]) then {!poll} the guard (raising
    {!Interrupted}).  Either may be absent. *)

val check_now : ?cancel:Par.Cancel.t -> ?guard:t -> unit -> unit
(** {!check} with {!poll_now} semantics. *)

val tripped : t -> stop_reason option
(** The recorded trip, if any (without raising). *)

val stop : t -> stop_reason
(** {!tripped}, with [Completed] when the guard never tripped. *)

val trip : t -> stop_reason -> unit
(** Record [reason] if the guard has not tripped yet (first one
    wins).  Used by the portfolio to tie a guard to a cancel token. *)

val dispose : t -> unit
(** Remove the [Gc] alarm, if any.  Idempotent. *)

val with_guard :
  ?deadline_s:float -> ?mem_mb:int -> ?poll_mask:int -> (t -> 'a) -> 'a
(** [create], run, [dispose] (also on exceptions). *)

val on_memory_pressure : (unit -> unit) -> unit
(** Register a hook that drops a recoverable cache (e.g. the world-set
    memo tables).  Hooks run in {!relieve_memory}; exceptions they
    raise are swallowed. *)

val relieve_memory : unit -> unit
(** Run every registered pressure hook, then [Gc.compact ()].  Called
    by the harness after catching [Out_of_memory] so the degraded
    result can be built without dying again. *)

(** Deterministic fault injection.

    A global, seeded schedule of simulated faults at named probe
    points in the engine hot loops ([Reachability]/[Stubborn] share
    ["reach.step"] and ["reach.par.step"]; ["gpo.step"], ["smv.iter"];
    the interning layer has ["bitset.intern"] and ["worldset.op"]; the
    witness walk-backs have ["reach.witness"], ["smv.witness"],
    ["gpo.witness"]; the structural reduction pipeline probes
    ["reduce.rule"] once per rule pass).  When disabled — the default —
    a probe is one
    atomic load and a branch.  When enabled, each probe draws from a
    splitmix-style PRNG keyed on [(seed, site, per-site call index)],
    so a given seed yields the same fault schedule on every run: the
    chaos suite replays failures exactly.

    Injected faults are the resource failures the guard layer must
    absorb: a simulated allocation failure ([Out_of_memory]), a
    scheduling delay, or a cancellation storm
    ([Par.Cancel.Cancelled]). *)
module Fault : sig
  type kind = Oom | Delay | Cancel

  val enable :
    ?rate:float ->
    ?kinds:kind list ->
    ?sites:string list ->
    ?max_injections:int ->
    int ->
    unit
  (** [enable seed] arms the global fault schedule.  [rate] (default
      [0.01]) is the per-probe injection probability; [kinds] (default
      all three) the faults drawn from; [sites] (default: all)
      restricts injection to the named probe points; [max_injections]
      (default: unlimited) stops injecting after that many faults.
      Resets the per-site counters, so schedules are reproducible. *)

  val disable : unit -> unit

  val enabled : unit -> bool

  val injected : unit -> int
  (** Faults injected since the last {!enable}. *)

  val probe : string -> unit
  (** [probe site] possibly injects a fault.  Free (one atomic load)
      while disabled. *)

  val with_faults :
    ?rate:float ->
    ?kinds:kind list ->
    ?sites:string list ->
    ?max_injections:int ->
    int ->
    (unit -> 'a) ->
    'a
  (** Scoped {!enable}/{!disable} (also on exceptions). *)
end
