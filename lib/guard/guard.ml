type stop_reason =
  | Completed
  | State_budget
  | Deadline
  | Memory
  | Cancelled
  | Crashed of string

let string_of_stop = function
  | Completed -> "completed"
  | State_budget -> "state_budget"
  | Deadline -> "deadline"
  | Memory -> "memory"
  | Cancelled -> "cancelled"
  | Crashed msg -> "crashed: " ^ msg

let stop_of_string = function
  | "completed" -> Some Completed
  | "state_budget" -> Some State_budget
  | "deadline" -> Some Deadline
  | "memory" -> Some Memory
  | "cancelled" -> Some Cancelled
  | s ->
      let prefix = "crashed: " in
      if String.starts_with ~prefix s then
        Some
          (Crashed
             (String.sub s (String.length prefix)
                (String.length s - String.length prefix)))
      else None

let describe_stop = function
  | Completed -> "completed"
  | State_budget -> "state budget exhausted"
  | Deadline -> "wall-clock deadline exceeded"
  | Memory -> "memory budget exceeded"
  | Cancelled -> "cancelled"
  | Crashed msg -> "crashed: " ^ msg

let pp_stop ppf r = Format.pp_print_string ppf (string_of_stop r)

exception Interrupted of stop_reason

let () =
  Printexc.register_printer (function
    | Interrupted r -> Some ("Guard.Interrupted(" ^ string_of_stop r ^ ")")
    | _ -> None)

let c_deadline_trips = Gpo_obs.Counter.make "guard.deadline.trips"
let c_mem_trips = Gpo_obs.Counter.make "guard.mem.trips"

let word_bytes = Sys.word_size / 8

type t = {
  deadline : float;  (** absolute [Unix.gettimeofday] time; [infinity] = none *)
  mem_words : int;  (** soft heap budget in words; [max_int] = none *)
  tripped : stop_reason option Atomic.t;
  poll_mask : int;
  mutable countdown : int;
      (* Benign race: shared across domains without synchronisation,
         so concurrent pollers may check the budgets a little more or
         less often than the mask says — never incorrectly. *)
  mutable alarm : Gc.alarm option;
}

let trip g reason =
  if Atomic.compare_and_set g.tripped None (Some reason) then begin
    (match reason with
    | Deadline -> Gpo_obs.Counter.incr c_deadline_trips
    | Memory -> Gpo_obs.Counter.incr c_mem_trips
    | _ -> ());
    Gpo_obs.instant "guard.trip"
      [ ("reason", Gpo_obs.S (string_of_stop reason)) ]
  end

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let create ?deadline_s ?mem_mb ?(poll_mask = 63) () =
  let deadline =
    match deadline_s with
    | None -> infinity
    | Some s -> Unix.gettimeofday () +. s
  in
  let mem_words =
    match mem_mb with
    | None -> max_int
    | Some mb -> max 1 mb * 1024 * 1024 / word_bytes
  in
  let g =
    {
      deadline;
      mem_words;
      tripped = Atomic.make None;
      poll_mask;
      countdown = 0;
      alarm = None;
    }
  in
  (* The Gc alarm fires at the end of each major collection — the
     natural moment to notice the heap has outgrown its budget, and
     early enough that the run unwinds before the allocator fails for
     real.  Alarms are per-domain: create the guard in the domain that
     runs the engine.  [poll] re-checks the heap directly, so a guard
     shared with sibling domains still trips there. *)
  if mem_words < max_int then
    g.alarm <-
      Some (Gc.create_alarm (fun () -> if heap_words () >= mem_words then trip g Memory));
  g

let recheck g =
  (* Inclusive comparison: a deadline of now (deadline_s = 0.0) is
     already expired even when the clock has not ticked past it — the
     strict form made zero-budget runs racy against the microsecond
     clock resolution. *)
  if g.deadline < infinity && Unix.gettimeofday () >= g.deadline then
    trip g Deadline;
  if g.mem_words < max_int && heap_words () >= g.mem_words then trip g Memory

let raise_if_tripped g =
  match Atomic.get g.tripped with
  | Some reason -> raise (Interrupted reason)
  | None -> ()

let poll_now g =
  raise_if_tripped g;
  recheck g;
  raise_if_tripped g

let poll g =
  raise_if_tripped g;
  let n = g.countdown in
  if n <= 0 then begin
    g.countdown <- g.poll_mask;
    recheck g;
    raise_if_tripped g
  end
  else g.countdown <- n - 1

let check ?cancel ?guard () =
  Par.Cancel.check_opt cancel;
  match guard with None -> () | Some g -> poll g

let check_now ?cancel ?guard () =
  Par.Cancel.check_opt cancel;
  match guard with None -> () | Some g -> poll_now g

let tripped g = Atomic.get g.tripped
let stop g = match Atomic.get g.tripped with Some r -> r | None -> Completed

let dispose g =
  match g.alarm with
  | None -> ()
  | Some a ->
      g.alarm <- None;
      Gc.delete_alarm a

let with_guard ?deadline_s ?mem_mb ?poll_mask f =
  let g = create ?deadline_s ?mem_mb ?poll_mask () in
  Fun.protect ~finally:(fun () -> dispose g) (fun () -> f g)

(* ------------------------------------------------------------------ *)
(* Memory-pressure hooks                                               *)

let pressure_hooks : (unit -> unit) list Atomic.t = Atomic.make []

let rec on_memory_pressure f =
  let hooks = Atomic.get pressure_hooks in
  if not (Atomic.compare_and_set pressure_hooks hooks (f :: hooks)) then
    on_memory_pressure f

let relieve_memory () =
  List.iter
    (fun f -> try f () with _ -> ())
    (Atomic.get pressure_hooks);
  Gc.compact ()

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)

module Fault = struct
  type kind = Oom | Delay | Cancel

  type config = {
    seed : int;
    rate : float;
    kinds : kind array;
    sites : string list;  (** empty = every probe point *)
    max_injections : int;  (** negative = unlimited *)
  }

  let c_injected = Gpo_obs.Counter.make "fault.injected"
  let config : config option Atomic.t = Atomic.make None
  let injected_total = Atomic.make 0

  (* Per-site call counters: the PRNG is keyed on (seed, site, call
     index), so a schedule depends only on how often each probe point
     is reached — deterministic for sequential runs with a fixed
     seed. *)
  let site_counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
  let site_lock = Mutex.create ()

  let site_counter site =
    Mutex.lock site_lock;
    let c =
      match Hashtbl.find_opt site_counters site with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add site_counters site c;
          c
    in
    Mutex.unlock site_lock;
    c

  let enable ?(rate = 0.01) ?(kinds = [ Oom; Delay; Cancel ]) ?(sites = [])
      ?(max_injections = -1) seed =
    if kinds = [] then invalid_arg "Guard.Fault.enable: empty kind list";
    Gpo_obs.Counter.touch c_injected;
    Mutex.lock site_lock;
    Hashtbl.reset site_counters;
    Mutex.unlock site_lock;
    Atomic.set injected_total 0;
    Atomic.set config
      (Some { seed; rate; kinds = Array.of_list kinds; sites; max_injections })

  let disable () = Atomic.set config None
  let enabled () = Atomic.get config <> None
  let injected () = Atomic.get injected_total

  (* Splitmix-flavoured mixer over native ints (constants kept inside
     the 63-bit literal range). *)
  let mix seed site_hash n =
    let h = ref (seed lxor (site_hash * 0x9E3779B9) lxor (n * 0x2545F4914F6CDD1D)) in
    h := !h lxor (!h lsr 30);
    h := !h * 0x1B873593;
    h := !h lxor (!h lsr 27);
    h := !h * 0x19D699A5;
    h := !h lxor (!h lsr 31);
    !h land max_int

  let kind_label = function Oom -> "oom" | Delay -> "delay" | Cancel -> "cancel"

  let inject cfg site h =
    Atomic.incr injected_total;
    Gpo_obs.Counter.incr c_injected;
    let kind = cfg.kinds.(h lsr 24 mod Array.length cfg.kinds) in
    Gpo_obs.instant "fault.injected"
      [ ("site", Gpo_obs.S site); ("kind", Gpo_obs.S (kind_label kind)) ];
    match kind with
    | Oom -> raise Out_of_memory
    | Delay -> Unix.sleepf 2e-4
    | Cancel -> raise Par.Cancel.Cancelled

  let probe site =
    match Atomic.get config with
    | None -> ()
    | Some cfg ->
        if cfg.sites = [] || List.mem site cfg.sites then begin
          let n = Atomic.fetch_and_add (site_counter site) 1 in
          let h = mix cfg.seed (Hashtbl.hash site) n in
          if
            float_of_int (h land 0xFFFFFF) /. 16777216.0 < cfg.rate
            && (cfg.max_injections < 0
               || Atomic.get injected_total < cfg.max_injections)
          then inject cfg site h
        end

  let with_faults ?rate ?kinds ?sites ?max_injections seed f =
    enable ?rate ?kinds ?sites ?max_injections seed;
    Fun.protect ~finally:disable f
end
